//! The zero-allocation steady-state contract, asserted directly: once a
//! serve lane's [`Scratch`] buffers have grown to the largest flush they
//! will see, executing further batches — staging, padding, pricing,
//! greeks, the fused price+greeks pass — performs **zero** heap
//! allocations.
//!
//! This binary holds exactly one test: the counting allocator (installed
//! globally by `finbench_harness`) tallies process-wide, so sharing a
//! process with concurrently running tests (cargo's default parallel
//! test threads) would make the "no allocations happened" assertion
//! meaningless. `ci.sh` additionally gates the same property through
//! `bench-report`'s `alloc-gate` lines; this test is the fast,
//! deterministic half of that gate.

use finbench::core::greeks::{greeks_batch_simd, price_and_greeks_into};
use finbench::core::MarketParams;
use finbench::serve::Scratch;
use finbench::telemetry;

const M: MarketParams = MarketParams::PAPER;

/// A deterministic option stream without allocating.
fn opt(i: usize) -> (f64, f64, f64) {
    let k = i as f64;
    (
        5.0 + (k * 7.3) % 25.0,
        1.0 + (k * 13.7) % 99.0,
        0.25 + (k * 0.61) % 9.5,
    )
}

#[test]
fn steady_state_serve_batches_allocate_nothing() {
    assert!(
        telemetry::counting_allocator_active(),
        "counting allocator must be installed in this test binary"
    );
    let mut scratch = Scratch::new();

    // Warmup: the largest flush this "lane" will see grows every buffer
    // to capacity; smaller and ragged flushes afterwards must reuse it.
    let sizes = [128usize, 37, 93, 128, 1, 64];
    let run = |scratch: &mut Scratch, n: usize, round: usize| {
        scratch.opts.clear();
        for i in 0..n {
            scratch.opts.push(opt(round * 131 + i));
        }
        scratch.stage(8);
        scratch.greeks.resize(scratch.soa.len());
        // The three steady-state serve paths: price sweep, greeks sweep,
        // and the fused single pass.
        finbench::core::black_scholes::soa::price_soa_simd::<8>(&mut scratch.soa, M);
        greeks_batch_simd::<8>(&scratch.soa, M, &mut scratch.greeks);
        price_and_greeks_into::<8>(&mut scratch.soa, M, &mut scratch.greeks);
        std::hint::black_box(&scratch.greeks);
    };
    for (round, &n) in sizes.iter().enumerate() {
        run(&mut scratch, n, round);
    }

    // Steady state: the same flush mix again, under the counter.
    let before = telemetry::alloc_stats();
    for (round, &n) in sizes.iter().enumerate() {
        run(&mut scratch, n, round + sizes.len());
    }
    let d = telemetry::alloc_stats().since(before);
    assert_eq!(
        d.allocs, 0,
        "steady-state serve batches must not allocate (saw {} allocs / {} bytes)",
        d.allocs, d.bytes
    );
    assert_eq!(d.bytes, 0);
}
