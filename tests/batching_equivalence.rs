//! The serving plane's core contract, as properties: **micro-batching is
//! invisible in the bits**. However requests are interleaved, whatever
//! batch sizes and flush triggers fire, each request's price is
//! bit-identical to pricing that request alone through the same serving
//! rung — because batches are padded to the rung's SIMD width and the
//! vector math is lane-wise.
//!
//! Two layers:
//!
//! * a *pure* replay of the [`MicroBatcher`] flush logic with synthetic
//!   clocks (every servable rung, arbitrary size/delay interleavings),
//! * an end-to-end pass through the threaded [`Server`] with real
//!   queueing and scatter-back — over a random shard count, so router
//!   placement, cross-shard spills, and work stealing are all exercised
//!   under the same bit-identity contract.

use finbench::core::engine::registry;
use finbench::core::greeks::{greeks_batch_simd, price_and_greeks_into, GreeksBatchSoa};
use finbench::core::OptionBatchSoa;
use finbench::engine::Engine;
use finbench::faults::{FaultKind, FaultPlan, FaultSpec, PlanGuard};
use finbench::serve::batcher::{BatchPolicy, MicroBatcher};
use finbench::serve::pricer::{self, padded_batch_into, PricerConfig};
use finbench::serve::{
    greeks_ladder, GreeksRequest, LoadMode, PriceRequest, Scratch, ServeConfig, Server,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The fault registry is process-global; tests that install a plan
/// serialize on this lock so concurrent cases never see each other's
/// faults.
fn faults_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn contract() -> impl Strategy<Value = (f64, f64, f64)> {
    // The paper's workload ranges.
    (5.0f64..30.0, 1.0f64..100.0, 0.25f64..10.0)
}

fn pricer_config() -> PricerConfig {
    PricerConfig {
        binomial_steps: 32,
        ..PricerConfig::default()
    }
}

/// Every batch-safe (kernel, rung) pair, resolved independently of the
/// host planner so the property covers the whole servable set, not just
/// the rung planned for this machine.
fn servable_rungs() -> Vec<pricer::ServingRung> {
    let cfg = pricer_config();
    let engine = Engine::new(registry());
    let mut out = Vec::new();
    for kernel in ["black_scholes", "binomial"] {
        let any = engine.registry().resolve(kernel).unwrap();
        for info in any.rungs() {
            if let Some(rung) = pricer::servable(kernel, &info.slug, &cfg) {
                out.push(rung);
            }
        }
    }
    assert!(out.len() >= 5, "servable set shrank: {}", out.len());
    out
}

/// Replay `opts` through a [`MicroBatcher`] under an arbitrary
/// interleaving: `gaps[i]` is the synthetic time step before request `i`
/// arrives, so both the size trigger and the delay trigger fire at
/// data-dependent points. Returns the flushed batches in dispatch order.
fn replay_batches(
    opts: &[(f64, f64, f64)],
    gaps: &[u32],
    max_batch: usize,
    max_delay_us: u64,
) -> Vec<Vec<(f64, f64, f64)>> {
    let mut batcher: MicroBatcher<(f64, f64, f64)> = MicroBatcher::new(BatchPolicy {
        max_batch,
        max_delay: Duration::from_micros(max_delay_us),
    });
    let t0 = Instant::now();
    let mut now = t0;
    let mut batches = Vec::new();
    for (i, &opt) in opts.iter().enumerate() {
        now += Duration::from_micros(u64::from(gaps[i % gaps.len()]));
        // The dispatcher checks the delay trigger before admitting new
        // work, exactly like the server loop.
        if batcher.due(now) {
            batches.push(batcher.flush());
        }
        if let Some(full) = batcher.offer(opt, now) {
            batches.push(full);
        }
    }
    let tail = batcher.flush();
    if !tail.is_empty() {
        batches.push(tail);
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_interleaving_prices_bit_identical_to_solo(
        opts in vec(contract(), 1..40usize),
        gaps in vec(0u32..200, 8usize),
        max_batch in 1usize..17,
        max_delay_us in 1u64..150,
    ) {
        for rung in servable_rungs() {
            let batches = replay_batches(&opts, &gaps, max_batch, max_delay_us);
            // Every request dispatched exactly once, order preserved
            // within the stream.
            let replayed: Vec<(f64, f64, f64)> =
                batches.iter().flatten().copied().collect();
            prop_assert_eq!(&replayed, &opts);
            for batch in &batches {
                prop_assert!(batch.len() <= max_batch);
                let mut soa = OptionBatchSoa::zeroed(0);
                padded_batch_into(&mut soa, batch, rung.width);
                prop_assert_eq!(soa.len() % rung.width.max(1), 0);
                rung.price(&mut soa);
                for (i, &(s, x, t)) in batch.iter().enumerate() {
                    let (call, put) = rung.price_one(s, x, t);
                    prop_assert_eq!(
                        soa.call[i].to_bits(), call.to_bits(),
                        "{}: call diverges at {} (batch of {})", &rung.slug, i, batch.len()
                    );
                    prop_assert_eq!(
                        soa.put[i].to_bits(), put.to_bits(),
                        "{}: put diverges at {} (batch of {})", &rung.slug, i, batch.len()
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn threaded_server_matches_the_solo_oracle_bit_for_bit(
        opts in vec(contract(), 1..60usize),
        kernel_picks in vec(0usize..2, 1..60usize),
        shards in 1usize..5,
    ) {
        let cfg = pricer_config();
        let engine = Engine::new(registry());
        let kernels = ["black_scholes", "binomial"];
        let oracles: Vec<_> = kernels
            .iter()
            .map(|k| pricer::resolve(&engine, k, &cfg).unwrap())
            .collect();

        let server = Server::start(ServeConfig {
            queue_capacity: opts.len().max(1),
            max_delay: Duration::from_micros(100),
            max_batch: 16,
            shards,
            pricer: cfg,
            ..ServeConfig::default()
        });
        let (tx, rx) = std::sync::mpsc::channel();
        for (i, &(s, x, t)) in opts.iter().enumerate() {
            let which = kernel_picks[i % kernel_picks.len()];
            server.submit_with(
                PriceRequest::new(i as u64, kernels[which], s, x, t),
                &tx,
            );
        }
        drop(tx);
        let mut responses: Vec<_> = rx.iter().collect();
        let snap = server.shutdown();
        prop_assert_eq!(snap.total_shed(), 0);
        prop_assert_eq!(responses.len(), opts.len());
        // The merged snapshot accounts for every request exactly once
        // across the shard set, however the router placed them.
        prop_assert_eq!(snap.shards.len(), shards);
        let submitted: u64 = snap.shards.iter().map(|s| s.submitted).sum();
        let served: u64 = snap.shards.iter().map(|s| s.served).sum();
        prop_assert_eq!(submitted, opts.len() as u64);
        prop_assert_eq!(served, opts.len() as u64);
        responses.sort_by_key(|r| r.id);
        for resp in responses {
            let i = resp.id as usize;
            let which = kernel_picks[i % kernel_picks.len()];
            let (s, x, t) = opts[i];
            let priced = resp.outcome.expect("nothing rejected");
            let (call, put) = oracles[which].price_one(s, x, t);
            prop_assert_eq!(
                priced.call.to_bits(), call.to_bits(),
                "{} call for request {} (batch of {})",
                kernels[which], i, priced.batch_len
            );
            prop_assert_eq!(
                priced.put.to_bits(), put.to_bits(),
                "{} put for request {}", kernels[which], i
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The same invisibility contract for the greeks lane: every
    // GreeksRequest that rides a micro-batch scatters back all ten
    // sensitivities (five per contract side) bit-identical to computing
    // that option alone on the rung that served it.
    #[test]
    fn greeks_through_the_server_match_the_solo_oracle_bit_for_bit(
        opts in vec(contract(), 1..60usize),
        shards in 1usize..4,
    ) {
        let cfg = pricer_config();
        let oracles: std::collections::BTreeMap<String, _> = greeks_ladder(cfg.market)
            .into_iter()
            .map(|r| (r.slug.clone(), r))
            .collect();

        let server = Server::start(ServeConfig {
            queue_capacity: opts.len().max(1),
            max_delay: Duration::from_micros(100),
            max_batch: 16,
            shards,
            pricer: cfg,
            ..ServeConfig::default()
        });
        let (tx, rx) = std::sync::mpsc::channel();
        for (i, &(s, x, t)) in opts.iter().enumerate() {
            server.submit_greeks_with(GreeksRequest::new(i as u64, s, x, t), &tx);
        }
        drop(tx);
        let mut responses: Vec<_> = rx.iter().collect();
        let snap = server.shutdown();
        prop_assert_eq!(snap.total_shed(), 0);
        prop_assert_eq!(responses.len(), opts.len());
        responses.sort_by_key(|r| r.id);
        for resp in responses {
            let i = resp.id as usize;
            let (s, x, t) = opts[i];
            let out = resp.outcome.expect("nothing rejected");
            let rung = oracles.get(&out.rung).expect("served on a ladder rung");
            let (call, put) = rung.compute_one(s, x, t);
            for (name, got, want) in [
                ("call delta", out.call.delta, call.delta),
                ("call gamma", out.call.gamma, call.gamma),
                ("call vega", out.call.vega, call.vega),
                ("call theta", out.call.theta, call.theta),
                ("call rho", out.call.rho, call.rho),
                ("put delta", out.put.delta, put.delta),
                ("put gamma", out.put.gamma, put.gamma),
                ("put vega", out.put.vega, put.vega),
                ("put theta", out.put.theta, put.theta),
                ("put rho", out.put.rho, put.rho),
            ] {
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "{} diverges for request {} on {} (batch of {})",
                    name, i, &out.rung, out.batch_len
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    // Sharding under duress: random seeded stalls hold work in shard
    // queues at data-dependent points, so the router spills between
    // shards and idle shards steal from deep siblings — interleavings
    // the happy path never produces. The contract is unchanged: every
    // response bit-identical to solo pricing on the rung that served
    // it, nothing shed, every request accounted for exactly once in
    // the merged shard telemetry.
    #[test]
    fn sharded_routing_and_stealing_stay_bit_invisible(
        opts in vec(contract(), 1..48usize),
        kernel_picks in vec(0usize..2, 1..48usize),
        shards in 2usize..5,
        stall_rate in 0.05f64..0.6,
        seed in 0u64..1_000,
    ) {
        let _l = faults_lock();
        let _g = PlanGuard::install(FaultPlan::new().with(
            FaultSpec::at_rate("queue", FaultKind::StallQueue, stall_rate).seeded(seed),
        ));
        let cfg = pricer_config();
        let engine = Engine::new(registry());
        let kernels = ["black_scholes", "binomial"];
        let oracles: Vec<_> = kernels
            .iter()
            .map(|k| pricer::resolve(&engine, k, &cfg).unwrap())
            .collect();

        let server = Server::start(ServeConfig {
            queue_capacity: opts.len().max(1),
            max_delay: Duration::from_micros(100),
            max_batch: 8,
            shards,
            pricer: cfg,
            ..ServeConfig::default()
        });
        let (tx, rx) = std::sync::mpsc::channel();
        for (i, &(s, x, t)) in opts.iter().enumerate() {
            let which = kernel_picks[i % kernel_picks.len()];
            server.submit_with(
                PriceRequest::new(i as u64, kernels[which], s, x, t),
                &tx,
            );
        }
        drop(tx);
        let mut responses: Vec<_> = rx.iter().collect();
        let snap = server.shutdown();
        prop_assert_eq!(snap.total_shed(), 0);
        prop_assert_eq!(responses.len(), opts.len());
        prop_assert_eq!(snap.shards.len(), shards);
        // Stolen work is served at the thief but submitted at the
        // victim; both tallies still sum to the request count.
        let submitted: u64 = snap.shards.iter().map(|s| s.submitted).sum();
        let served: u64 = snap.shards.iter().map(|s| s.served).sum();
        prop_assert_eq!(submitted, opts.len() as u64);
        prop_assert_eq!(served, opts.len() as u64);
        responses.sort_by_key(|r| r.id);
        for resp in responses {
            let i = resp.id as usize;
            let which = kernel_picks[i % kernel_picks.len()];
            let (s, x, t) = opts[i];
            let priced = resp.outcome.expect("nothing rejected");
            let (call, put) = oracles[which].price_one(s, x, t);
            prop_assert_eq!(
                priced.call.to_bits(), call.to_bits(),
                "{} call for request {} under stalls (batch of {})",
                kernels[which], i, priced.batch_len
            );
            prop_assert_eq!(
                priced.put.to_bits(), put.to_bits(),
                "{} put for request {} under stalls", kernels[which], i
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The zero-allocation redesign's core contract: running flush after
    // flush through ONE reused [`Scratch`] — dirty buffers, shrinking and
    // growing batch sizes — yields prices and all ten greeks bit-identical
    // to staging every flush into freshly allocated buffers. And the fused
    // single-pass kernel (prices + greeks together) agrees with the two
    // separate sweeps bit-for-bit, so the serve plane can swap it in
    // without changing a single answer.
    #[test]
    fn pooled_scratch_reuse_and_fused_pass_are_bit_identical(
        rounds in vec(vec(contract(), 0..33usize), 1..6usize),
        width_pick in 0usize..2,
    ) {
        let market = pricer_config().market;
        let width = [4usize, 8][width_pick];
        let mut scratch = Scratch::new();
        for opts in &rounds {
            // Oracle: fresh allocations for this flush, separate passes.
            let mut fresh = OptionBatchSoa::zeroed(0);
            padded_batch_into(&mut fresh, opts, width);
            let mut fresh_g = GreeksBatchSoa::zeroed(fresh.len());
            // Pooled: the same flush through the reused scratch.
            scratch.opts.clear();
            scratch.opts.extend_from_slice(opts);
            scratch.stage(width);
            scratch.greeks.resize(scratch.soa.len());
            // Fused: one pass computing prices + greeks together.
            let mut fused = OptionBatchSoa::zeroed(0);
            padded_batch_into(&mut fused, opts, width);
            let mut fused_g = GreeksBatchSoa::zeroed(fused.len());
            match width {
                4 => {
                    finbench::core::black_scholes::soa::price_soa_simd::<4>(&mut fresh, market);
                    greeks_batch_simd::<4>(&fresh, market, &mut fresh_g);
                    finbench::core::black_scholes::soa::price_soa_simd::<4>(
                        &mut scratch.soa, market,
                    );
                    greeks_batch_simd::<4>(&scratch.soa, market, &mut scratch.greeks);
                    price_and_greeks_into::<4>(&mut fused, market, &mut fused_g);
                }
                _ => {
                    finbench::core::black_scholes::soa::price_soa_simd::<8>(&mut fresh, market);
                    greeks_batch_simd::<8>(&fresh, market, &mut fresh_g);
                    finbench::core::black_scholes::soa::price_soa_simd::<8>(
                        &mut scratch.soa, market,
                    );
                    greeks_batch_simd::<8>(&scratch.soa, market, &mut scratch.greeks);
                    price_and_greeks_into::<8>(&mut fused, market, &mut fused_g);
                }
            }
            for i in 0..opts.len() {
                prop_assert_eq!(
                    scratch.soa.call[i].to_bits(), fresh.call[i].to_bits(),
                    "pooled call diverges at {} (w={})", i, width
                );
                prop_assert_eq!(
                    scratch.soa.put[i].to_bits(), fresh.put[i].to_bits(),
                    "pooled put diverges at {} (w={})", i, width
                );
                prop_assert_eq!(
                    fused.call[i].to_bits(), fresh.call[i].to_bits(),
                    "fused call diverges at {} (w={})", i, width
                );
                prop_assert_eq!(
                    fused.put[i].to_bits(), fresh.put[i].to_bits(),
                    "fused put diverges at {} (w={})", i, width
                );
                for (name, pooled, fused_v, want) in [
                    ("call delta", scratch.greeks.call.at(i).delta, fused_g.call.at(i).delta, fresh_g.call.at(i).delta),
                    ("call gamma", scratch.greeks.call.at(i).gamma, fused_g.call.at(i).gamma, fresh_g.call.at(i).gamma),
                    ("call vega", scratch.greeks.call.at(i).vega, fused_g.call.at(i).vega, fresh_g.call.at(i).vega),
                    ("call theta", scratch.greeks.call.at(i).theta, fused_g.call.at(i).theta, fresh_g.call.at(i).theta),
                    ("call rho", scratch.greeks.call.at(i).rho, fused_g.call.at(i).rho, fresh_g.call.at(i).rho),
                    ("put delta", scratch.greeks.put.at(i).delta, fused_g.put.at(i).delta, fresh_g.put.at(i).delta),
                    ("put gamma", scratch.greeks.put.at(i).gamma, fused_g.put.at(i).gamma, fresh_g.put.at(i).gamma),
                    ("put vega", scratch.greeks.put.at(i).vega, fused_g.put.at(i).vega, fresh_g.put.at(i).vega),
                    ("put theta", scratch.greeks.put.at(i).theta, fused_g.put.at(i).theta, fresh_g.put.at(i).theta),
                    ("put rho", scratch.greeks.put.at(i).rho, fused_g.put.at(i).rho, fresh_g.put.at(i).rho),
                ] {
                    prop_assert_eq!(
                        pooled.to_bits(), want.to_bits(),
                        "pooled {} diverges at {} (w={})", name, i, width
                    );
                    prop_assert_eq!(
                        fused_v.to_bits(), want.to_bits(),
                        "fused {} diverges at {} (w={})", name, i, width
                    );
                }
            }
        }
    }
}

// Exercise the loadgen-driven path once too: the serve_bench experiment's
// zero-shed guarantee holds whenever capacity covers the offered load.
#[test]
fn closed_loop_with_ample_capacity_sheds_nothing() {
    let server = Server::start(ServeConfig {
        queue_capacity: 256,
        max_delay: Duration::from_micros(200),
        max_batch: 64,
        pricer: pricer_config(),
        ..ServeConfig::default()
    });
    let report = finbench::serve::run_load(
        &server,
        "black_scholes",
        LoadMode::Closed {
            clients: 2,
            requests_per_client: 50,
        },
        3,
        None,
    );
    assert_eq!(report.served, 100);
    assert_eq!(report.total_shed(), 0);
    assert_eq!(server.shutdown().total_shed(), 0);
}
