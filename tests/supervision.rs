//! The self-healing contract of the serving plane: **under any rolling
//! kill schedule, every admitted request gets exactly one terminal
//! response, every killed seat is respawned, and every `Priced`
//! response stays bit-identical to pricing that option alone on the
//! rung that served it.** Kills may shed (typed rejections) and redrive
//! stranded work to siblings — they must never drop a request silently,
//! answer it twice, or corrupt a price.
//!
//! The fault registry is process-global, so every test that arms it
//! serializes on one lock and installs plans through [`PlanGuard`],
//! which disarms on drop even when a proptest case fails.

use finbench::core::engine::registry;
use finbench::engine::Engine;
use finbench::faults::{self, FaultKind, FaultPlan, FaultSpec, PlanGuard};
use finbench::serve::pricer::{self, PricerConfig, ServingRung};
use finbench::serve::{
    BreakerPolicy, PriceRequest, Rejected, ServeConfig, Server, SupervisorPolicy,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn contract() -> impl Strategy<Value = (f64, f64, f64)> {
    // The paper's workload ranges.
    (5.0f64..30.0, 1.0f64..100.0, 0.25f64..10.0)
}

fn pricer_config() -> PricerConfig {
    PricerConfig {
        binomial_steps: 32,
        ..PricerConfig::default()
    }
}

fn oracle_rungs(kernel: &str) -> BTreeMap<String, ServingRung> {
    let engine = Engine::new(registry());
    pricer::servable_ladder(&engine, kernel, &pricer_config())
        .unwrap()
        .into_iter()
        .map(|r| (r.slug.clone(), r))
        .collect()
}

fn healing_config(shards: usize, capacity: usize) -> ServeConfig {
    ServeConfig {
        queue_capacity: capacity,
        max_delay: Duration::from_micros(200),
        max_batch: 64,
        shards,
        pricer: pricer_config(),
        breaker: BreakerPolicy {
            cooldown: Duration::from_millis(1),
            promote_after: 4,
            ..BreakerPolicy::default()
        },
        supervisor: SupervisorPolicy {
            respawn: true,
            cooldown: Duration::from_millis(1),
            ..SupervisorPolicy::default()
        },
    }
}

/// Rolling kill: every seat dies exactly once, the supervisor respawns
/// each one, and the respawned fleet serves a full drive bit-exactly.
#[test]
fn every_killed_seat_respawns_and_the_healed_fleet_serves_bit_exactly() {
    let _l = chaos_lock();
    faults::silence_injected_panics();
    let shards = 3usize;
    let mut plan = FaultPlan::new();
    for i in 0..shards {
        plan = plan.with(FaultSpec::always(format!("serve.shard.{i}"), FaultKind::Kill).limited(1));
    }
    let _g = PlanGuard::install(plan);
    let server = Server::start(healing_config(shards, 4096));

    // Each shard's first loop iteration hits its armed kill; wait for the
    // supervisor to put a fresh worker in every seat.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = server.snapshot();
        if snap.alive_shards() == shards && snap.total_respawns() >= shards as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor failed to respawn all seats within 10s: {} alive, {} respawns",
            snap.alive_shards(),
            snap.total_respawns()
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    let oracles = oracle_rungs("black_scholes");
    let opts: Vec<(f64, f64, f64)> = (0..200)
        .map(|i| (5.0 + (i as f64) * 0.1, 10.0 + (i as f64) * 0.4, 1.5))
        .collect();
    let (tx, rx) = std::sync::mpsc::channel();
    for (i, &(s, x, t)) in opts.iter().enumerate() {
        server.submit_with(PriceRequest::new(i as u64, "black_scholes", s, x, t), &tx);
    }
    drop(tx);
    let mut responses: Vec<_> = rx.iter().collect();
    let snap = server.shutdown();

    assert_eq!(
        responses.len(),
        opts.len(),
        "every request answers exactly once"
    );
    responses.sort_by_key(|r| r.id);
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.id, i as u64, "response ids are unique and complete");
        let (s, x, t) = opts[i];
        let p = resp
            .outcome
            .as_ref()
            .expect("healed fleet sheds nothing (kill budgets exhausted)");
        let rung = oracles
            .get(&p.rung)
            .expect("response names a servable rung");
        let (call, put) = rung.price_one(s, x, t);
        assert_eq!(
            p.call.to_bits(),
            call.to_bits(),
            "call bit-exact after respawn"
        );
        assert_eq!(
            p.put.to_bits(),
            put.to_bits(),
            "put bit-exact after respawn"
        );
    }
    assert_eq!(snap.total_respawns(), shards as u64, "one respawn per seat");
    assert_eq!(snap.alive_shards(), shards, "every seat healed");
    let mttr = snap
        .mean_mttr()
        .expect("MTTR reported once anything respawned");
    assert!(mttr > Duration::ZERO);
    assert_eq!(snap.internal, 0, "nothing rejected after recovery");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance property: across random kill/respawn/redrive
    /// interleavings — any shard count, kill rates, and kill budgets —
    /// every admitted request gets **exactly one** terminal response
    /// (redrive is at-most-once, never a duplicate, never a silent
    /// drop), and every `Priced` response bit-matches its rung's solo
    /// oracle.
    #[test]
    fn exactly_one_terminal_response_under_random_kill_interleavings(
        opts in vec(contract(), 1..60usize),
        shards in 1usize..5,
        kill_rates in vec(0.0f64..0.08, 4),
        budgets in vec(1u64..4, 4),
        respawn_bit in 0u64..2,
        seed in 0usize..65_536,
    ) {
        let respawn = respawn_bit == 1;
        let _l = chaos_lock();
        faults::silence_injected_panics();
        let oracles = oracle_rungs("black_scholes");
        let mut plan = FaultPlan::new();
        for i in 0..shards {
            plan = plan.with(
                FaultSpec::at_rate(format!("serve.shard.{i}"), FaultKind::Kill, kill_rates[i])
                    .limited(budgets[i])
                    .seeded(seed as u64 ^ (i as u64) << 8),
            );
        }
        let _g = PlanGuard::install(plan);
        let mut config = healing_config(shards, opts.len().max(16));
        config.supervisor.respawn = respawn;
        let server = Server::start(config);
        let (tx, rx) = std::sync::mpsc::channel();
        for (i, &(s, x, t)) in opts.iter().enumerate() {
            server.submit_with(PriceRequest::new(i as u64, "black_scholes", s, x, t), &tx);
        }
        drop(tx);
        let mut responses: Vec<_> = rx.iter().collect();
        let snap = server.shutdown();

        // Exactly one terminal response per admitted request: no silent
        // drops and no duplicate delivery, whatever got killed, respawned,
        // stolen, or redriven in between.
        prop_assert_eq!(responses.len(), opts.len());
        responses.sort_by_key(|r| r.id);
        for (i, resp) in responses.iter().enumerate() {
            prop_assert_eq!(resp.id, i as u64, "ids unique and complete");
            let (s, x, t) = opts[i];
            match &resp.outcome {
                Ok(p) => {
                    let rung = oracles.get(&p.rung);
                    prop_assert!(rung.is_some(), "unknown serving rung {}", &p.rung);
                    let (call, put) = rung.unwrap().price_one(s, x, t);
                    prop_assert_eq!(
                        p.call.to_bits(), call.to_bits(),
                        "call diverges from solo pricing on rung {}", &p.rung
                    );
                    prop_assert_eq!(
                        p.put.to_bits(), put.to_bits(),
                        "put diverges from solo pricing on rung {}", &p.rung
                    );
                }
                // Kill chaos may shed work (typed): a queue closed by a
                // kill, a redrive with no live sibling, or an exhausted
                // redrive budget all answer `Internal`.
                Err(Rejected::Internal { .. }) | Err(Rejected::QueueFull { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected rejection {other:?}"),
            }
        }
        // Redrive is bounded by the kill budgets: at most one redrive per
        // stranded item, and respawn-off runs never resurrect a seat.
        if !respawn {
            prop_assert_eq!(snap.total_respawns(), 0);
        }
    }
}
