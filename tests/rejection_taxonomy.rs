//! One end-to-end test per [`Rejected`] variant: each drives the real
//! threaded server into that rejection and asserts the *matching*
//! telemetry counter increments exactly once per rejected request — the
//! taxonomy and the metrics must never drift apart.
//!
//! Telemetry counters are process-global and cargo runs these tests as
//! parallel threads of one process, so every test serializes on one lock
//! and asserts on counter *deltas* — each variant's counter must move by
//! exactly the number of rejections of that variant, and nothing else.

use finbench::faults::{self, FaultKind, FaultPlan, FaultSpec, PlanGuard};
use finbench::serve::{BreakerPolicy, PriceRequest, PricerConfig, Rejected, ServeConfig, Server};
use finbench::telemetry::counter_value;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn serial_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        max_delay: Duration::from_micros(200),
        max_batch: 64,
        pricer: PricerConfig {
            binomial_steps: 16,
            ..PricerConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn recv(server: &Server, req: PriceRequest) -> Result<finbench::serve::Priced, Rejected> {
    server
        .submit(req)
        .recv_timeout(Duration::from_secs(10))
        .expect("one response per request")
        .outcome
}

#[test]
fn queue_full_increments_the_queue_full_counter_once() {
    let _l = serial_lock();
    let before = counter_value("serve.shed.queue_full");
    let server = Server::start(ServeConfig {
        queue_capacity: 1,
        max_delay: Duration::from_millis(50),
        ..quick_config()
    });
    let (tx, rx) = std::sync::mpsc::channel();
    for i in 0..100 {
        server.submit_with(PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0), &tx);
    }
    drop(tx);
    let full = rx
        .iter()
        .filter(|r| matches!(r.outcome, Err(Rejected::QueueFull { .. })))
        .count();
    let snap = server.shutdown();
    assert!(full > 0, "flooding a capacity-1 queue must overflow");
    assert_eq!(snap.shed_queue_full as usize, full);
    assert_eq!(
        counter_value("serve.shed.queue_full") - before,
        full as u64,
        "exactly one counter increment per QueueFull rejection"
    );
}

#[test]
fn deadline_exceeded_increments_the_deadline_counter_once() {
    let _l = serial_lock();
    let before = counter_value("serve.shed.deadline");
    let server = Server::start(quick_config());
    let mut req = PriceRequest::new(1, "black_scholes", 30.0, 35.0, 1.0);
    req.deadline = Some(Instant::now() - Duration::from_millis(1));
    assert!(matches!(
        recv(&server, req),
        Err(Rejected::DeadlineExceeded { .. })
    ));
    let snap = server.shutdown();
    assert_eq!(snap.shed_deadline, 1);
    assert_eq!(counter_value("serve.shed.deadline") - before, 1);
}

#[test]
fn unknown_kernel_increments_the_rejected_counter_once() {
    let _l = serial_lock();
    let before = counter_value("serve.rejected");
    let server = Server::start(quick_config());
    assert!(matches!(
        recv(
            &server,
            PriceRequest::new(1, "no_such_kernel", 30.0, 35.0, 1.0)
        ),
        Err(Rejected::UnknownKernel { .. })
    ));
    let snap = server.shutdown();
    assert_eq!(snap.rejected, 1);
    assert_eq!(counter_value("serve.rejected") - before, 1);
}

#[test]
fn unservable_kernel_increments_the_rejected_counter_once() {
    let _l = serial_lock();
    let before = counter_value("serve.rejected");
    let server = Server::start(quick_config());
    // `rng` is registered but has no batch-safe serving rung.
    assert!(matches!(
        recv(&server, PriceRequest::new(1, "rng", 30.0, 35.0, 1.0)),
        Err(Rejected::Unservable { .. })
    ));
    let snap = server.shutdown();
    assert_eq!(snap.rejected, 1);
    assert_eq!(counter_value("serve.rejected") - before, 1);
}

#[test]
fn shutting_down_is_typed_and_not_counted_as_shedding() {
    let _l = serial_lock();
    let server = Server::start(quick_config());
    let snap_before = server.snapshot();
    // Drop closes the queue; races with submit are answered ShuttingDown.
    // Exercise the variant through the closed-queue path directly: close
    // happens inside shutdown, so submit afterwards is not possible on
    // the same handle — instead verify the rendered taxonomy is stable.
    assert_eq!(
        Rejected::ShuttingDown.to_string(),
        "server is shutting down"
    );
    let snap = server.shutdown();
    assert_eq!(snap.shed_queue_full, snap_before.shed_queue_full);
}

#[test]
fn invalid_input_increments_the_invalid_input_counter_once() {
    let _l = serial_lock();
    let before = counter_value("serve.invalid_input");
    let server = Server::start(quick_config());
    assert!(matches!(
        recv(
            &server,
            PriceRequest::new(1, "black_scholes", f64::NAN, 35.0, 1.0)
        ),
        Err(Rejected::InvalidInput { .. })
    ));
    let snap = server.shutdown();
    assert_eq!(snap.invalid_input, 1);
    assert_eq!(counter_value("serve.invalid_input") - before, 1);
}

#[test]
fn internal_increments_the_internal_counter_once_per_request() {
    let _l = serial_lock();
    faults::silence_injected_panics();
    let before = counter_value("serve.internal");
    let _g = PlanGuard::install(
        FaultPlan::new().with(FaultSpec::always("batch.black_scholes", FaultKind::Panic)),
    );
    let server = Server::start(quick_config());
    match recv(
        &server,
        PriceRequest::new(1, "black_scholes", 30.0, 35.0, 1.0),
    ) {
        Err(Rejected::Internal { reason }) => {
            assert!(reason.contains("panic"), "{reason}");
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    let snap = server.shutdown();
    assert_eq!(snap.internal, 1);
    assert_eq!(counter_value("serve.internal") - before, 1);
}

#[test]
fn internal_from_an_open_breaker_counts_each_rejected_request() {
    let _l = serial_lock();
    faults::silence_injected_panics();
    let _g = PlanGuard::install(
        FaultPlan::new().with(FaultSpec::always("batch.black_scholes", FaultKind::Panic)),
    );
    // open_after 1 with a long cooldown: once the lane hits the ladder
    // bottom the breaker opens and stays open for the rest of the test.
    let server = Server::start(ServeConfig {
        breaker: BreakerPolicy {
            open_after: 1,
            cooldown: Duration::from_secs(60),
            ..BreakerPolicy::default()
        },
        ..quick_config()
    });
    let before = counter_value("serve.breaker_open");
    // Walk the ladder to the bottom; every response is Internal.
    for i in 0..8u64 {
        let out = recv(
            &server,
            PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0),
        );
        assert!(matches!(out, Err(Rejected::Internal { .. })), "{out:?}");
    }
    let snap = server.shutdown();
    assert_eq!(snap.internal, 8);
    let k = &snap.kernels[0];
    assert_eq!(k.breaker, "open");
    assert!(k.breaker_open >= 1);
    assert_eq!(
        counter_value("serve.breaker_open") - before,
        k.breaker_open,
        "breaker_open counter matches the snapshot tally"
    );
}

#[test]
fn served_requests_increment_only_the_served_counter() {
    let _l = serial_lock();
    let served_before = counter_value("serve.served");
    let internal_before = counter_value("serve.internal");
    let invalid_before = counter_value("serve.invalid_input");
    let server = Server::start(quick_config());
    assert!(recv(
        &server,
        PriceRequest::new(1, "black_scholes", 30.0, 35.0, 1.0)
    )
    .is_ok());
    server.shutdown();
    assert_eq!(counter_value("serve.served") - served_before, 1);
    assert_eq!(counter_value("serve.internal"), internal_before);
    assert_eq!(counter_value("serve.invalid_input"), invalid_before);
}
