//! Golden test: the experiment index documented in DESIGN.md §5 and the
//! ids the CLI serves (`finbench --list` prints `EXPERIMENTS` verbatim —
//! see `finbench-harness/src/main.rs`) must stay in sync. Parses the §5
//! table's Id column and asserts set equality, so adding an experiment to
//! either side without the other fails CI.

use std::collections::BTreeSet;

/// Extract the backticked Id column entries from the §5 table.
fn design_ids(design: &str) -> BTreeSet<String> {
    let section = design
        .split("## 5.")
        .nth(1)
        .expect("DESIGN.md has a §5")
        .split("\n## ")
        .next()
        .unwrap();
    section
        .lines()
        .filter(|l| l.starts_with('|'))
        .filter_map(|l| {
            // First cell of each row; ids are backticked, the ablations
            // row ("—") and the header/separator rows are not.
            let cell = l.trim_start_matches('|').split('|').next()?.trim();
            let id = cell.strip_prefix('`')?.strip_suffix('`')?;
            Some(id.to_string())
        })
        .collect()
}

#[test]
fn design_section_5_matches_finbench_list() {
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
        .expect("read DESIGN.md");
    let documented = design_ids(&design);
    let served: BTreeSet<String> = finbench::harness::EXPERIMENTS
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert!(!served.is_empty());
    assert_eq!(
        documented,
        served,
        "DESIGN.md §5 Id column and `finbench --list` diverged \
         (documented-only: {:?}; served-only: {:?})",
        documented.difference(&served).collect::<Vec<_>>(),
        served.difference(&documented).collect::<Vec<_>>(),
    );
}

#[test]
fn native_kernels_cover_every_figure_artifact() {
    // Every kernel's artifact id is itself a served experiment, so the
    // per-figure experiments can derive their native sections from the
    // registry.
    for k in finbench::core::engine::registry().kernels() {
        assert!(
            finbench::harness::EXPERIMENTS.contains(&k.artifact()),
            "{}: artifact {} is not a served experiment",
            k.name(),
            k.artifact()
        );
    }
}
