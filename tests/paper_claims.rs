//! End-to-end regeneration of the paper's quantitative claims through the
//! public API — the integration-level counterpart of the calibration pins
//! inside `finbench-machine`. Each test quotes the sentence from the
//! paper it checks.

use finbench::machine::{figures, kernels, KNC, SNB_EP};

#[test]
fn table1_system_configuration() {
    // Table I: "Single Precision GFLOP/s 691 / 2127; Double 346 / 1063".
    assert!((SNB_EP.peak_dp_gflops() - 346.0).abs() < 7.0);
    assert!((KNC.peak_dp_gflops() - 1063.0).abs() < 55.0);
    // "Bandwidth from STREAM 76 GB/s / 150 GB/s".
    assert_eq!(SNB_EP.stream_bw_gbs, 76.0);
    assert_eq!(KNC.stream_bw_gbs, 150.0);
}

#[test]
fn fig4_bandwidth_bound_is_b_over_40() {
    // §IV-A3: "the bandwidth-bound performance is B/40 options per
    // second".
    let fig = figures::fig4();
    for s in &fig.series {
        let (_, bound) = s.bound.expect("fig4 carries the bandwidth bound");
        let arch = if s.arch == "SNB-EP" { &SNB_EP } else { &KNC };
        let want = arch.bw_bytes_per_sec() / 40.0 * 1e-6;
        assert!((bound - want).abs() / want < 1e-9, "{}", s.arch);
    }
}

#[test]
fn fig4_ladder_ordering_and_ratios() {
    let fig = figures::fig4();
    let snb = &fig.series[0];
    let knc = &fig.series[1];
    // "the reference version is 3x slower" on KNC.
    let r = snb.levels[0].1 / knc.levels[0].1;
    assert!((2.4..=3.6).contains(&r), "{r}");
    // Monotone ladders.
    for s in [snb, knc] {
        assert!(s.levels[0].1 < s.levels[1].1 && s.levels[1].1 < s.levels[2].1);
    }
}

#[test]
fn fig5_compute_bound_follows_flop_formula() {
    // §IV-B1: "This kernel requires ~ 3N(N+1)/2 floating point
    // computations"; the upper bar is peak/flops.
    for n in [1024usize, 2048] {
        let fig = figures::fig5(n);
        for s in &fig.series {
            let arch = if s.arch == "SNB-EP" { &SNB_EP } else { &KNC };
            let (_, bound) = s.bound.unwrap();
            let want = arch.peak_dp_gflops() * 1e9 / kernels::binomial_flops(n) * 1e-3;
            assert!((bound - want).abs() / want < 1e-9);
            // every level sits below the bound
            for (label, v) in &s.levels {
                assert!(*v <= bound * 1.001, "{} {label}", s.arch);
            }
        }
    }
}

#[test]
fn fig6_crossover_structure() {
    // §IV-C3: basic -> KNC slower; intermediate -> bandwidth-ratio;
    // advanced -> compute-bound, 2x.
    let fig = figures::fig6();
    let snb = &fig.series[0];
    let knc = &fig.series[1];
    assert!(knc.levels[0].1 < snb.levels[0].1, "basic: KNC must trail");
    let mid_ratio = knc.levels[1].1 / snb.levels[1].1;
    assert!((1.8..=2.1).contains(&mid_ratio), "bw ratio {mid_ratio}");
    let adv_ratio = knc.levels[3].1 / snb.levels[3].1;
    assert!(
        (1.8..=2.2).contains(&adv_ratio),
        "compute ratio {adv_ratio}"
    );
}

#[test]
fn table2_reproduces_paper_numbers() {
    // Table II verbatim: 29,813 / 92,722 / 5,556 / 16,366 options/s and
    // the RNG rows. Model within 10%.
    for row in figures::table2() {
        let snb_err = (row.snb_model - row.snb_paper).abs() / row.snb_paper;
        let knc_err = (row.knc_model - row.knc_paper).abs() / row.knc_paper;
        assert!(
            snb_err < 0.10,
            "{}: SNB {:.1}% off",
            row.label,
            snb_err * 100.0
        );
        assert!(
            knc_err < 0.10,
            "{}: KNC {:.1}% off",
            row.label,
            knc_err * 100.0
        );
    }
}

#[test]
fn fig8_simd_gains() {
    // §IV-E3: "the gain due to SIMD on the two architectures is about
    // 3.1X and 4.1X respectively", with absolute levels 6.4K and 11.4K.
    let fig = figures::fig8();
    let snb = &fig.series[0];
    let knc = &fig.series[1];
    let snb_gain = snb.levels[2].1 / snb.levels[0].1;
    let knc_gain = knc.levels[2].1 / knc.levels[0].1;
    assert!((2.8..=3.4).contains(&snb_gain), "{snb_gain}");
    assert!((3.8..=4.5).contains(&knc_gain), "{knc_gain}");
    assert!((snb.levels[2].1 - 6.4).abs() < 0.7, "{}", snb.levels[2].1);
    assert!((knc.levels[2].1 - 11.4).abs() < 1.2, "{}", knc.levels[2].1);
}

#[test]
fn conclusion_ninja_gap_and_cross_arch_ratios() {
    // §V: "On average, the Ninja gap is 1.9x for SNB-EP and 4x for KNC";
    // "the best-optimized code on KNC achieves on average 2.5x on compute
    // bound kernels and 2x on bandwidth-bound kernels".
    let s = figures::ninja_summary();
    assert!((1.6..=2.6).contains(&s.avg_snb), "SNB avg {}", s.avg_snb);
    assert!((3.2..=6.5).contains(&s.avg_knc), "KNC avg {}", s.avg_knc);
    assert!((2.0..=2.8).contains(&s.compute_bound_ratio));
    assert!((1.85..=2.15).contains(&s.bandwidth_bound_ratio));
}

#[test]
fn every_experiment_runs_end_to_end() {
    // The harness must execute every registered experiment (quick mode).
    let opts = finbench::harness::RunOptions {
        quick: true,
        ..Default::default()
    };
    for id in finbench::harness::EXPERIMENTS {
        assert!(finbench::harness::run_experiment(id, &opts), "{id}");
    }
    assert!(!finbench::harness::run_experiment("nonsense", &opts));
}

#[test]
fn csv_export_writes_files() {
    let dir = std::env::temp_dir().join(format!("finbench_csv_{}", std::process::id()));
    let opts = finbench::harness::RunOptions {
        quick: true,
        csv_dir: Some(dir.to_string_lossy().into_owned()),
        ..Default::default()
    };
    assert!(finbench::harness::run_experiment("fig4", &opts));
    let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(
        entries.len() >= 2,
        "expected model CSVs, got {}",
        entries.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
