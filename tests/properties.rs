//! Property-based tests (proptest) over the suite's core invariants:
//! no-arbitrage relations, distributional identities, and the
//! equivalence of optimization levels on *random* inputs rather than the
//! hand-picked ones of the unit tests.

use finbench::core::binomial;
use finbench::core::black_scholes::{price_single, soa};
use finbench::core::brownian_bridge::{reference::build_path, BridgePlan};
use finbench::core::greeks::{greeks, OptionType};
use finbench::core::monte_carlo::{reference::paths_streamed, GbmTerminal};
use finbench::core::portfolio::var_es;
use finbench::core::workload::{MarketParams, OptionBatchSoa};
use finbench::math as fm;
use finbench::simd::{math as vmath, F64v};
use finbench::telemetry::nearest_rank;
use proptest::prelude::*;

fn market() -> impl Strategy<Value = MarketParams> {
    (0.0f64..0.12, 0.05f64..0.8).prop_map(|(r, sigma)| MarketParams { r, sigma })
}

fn contract() -> impl Strategy<Value = (f64, f64, f64)> {
    (5.0f64..300.0, 5.0f64..300.0, 0.05f64..10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn put_call_parity_always_holds((s, k, t) in contract(), m in market()) {
        let (c, p) = price_single(s, k, t, m);
        let parity = s - k * fm::exp(-m.r * t);
        prop_assert!((c - p - parity).abs() < 1e-9 * s.max(k));
    }

    #[test]
    fn arbitrage_bounds_always_hold((s, k, t) in contract(), m in market()) {
        let (c, p) = price_single(s, k, t, m);
        let disc_k = k * fm::exp(-m.r * t);
        prop_assert!(c >= (s - disc_k).max(0.0) - 1e-9);
        prop_assert!(c <= s * (1.0 + 1e-12));
        prop_assert!(p >= (disc_k - s).max(0.0) - 1e-9);
        prop_assert!(p <= disc_k * (1.0 + 1e-12));
    }

    #[test]
    fn call_price_monotone_in_spot(k in 20.0f64..200.0, t in 0.1f64..5.0, m in market()) {
        let mut prev = -1.0;
        for i in 0..20 {
            let s = 10.0 + i as f64 * 15.0;
            let (c, _) = price_single(s, k, t, m);
            prop_assert!(c >= prev - 1e-10, "s={s}");
            prev = c;
        }
    }

    #[test]
    fn vega_always_positive((s, k, t) in contract(), m in market()) {
        let g = greeks(OptionType::Call, s, k, t, m);
        prop_assert!(g.vega >= 0.0);
        prop_assert!(g.gamma >= 0.0);
        prop_assert!((0.0..=1.0).contains(&g.delta));
    }

    #[test]
    fn simd_black_scholes_equals_scalar_on_random_batches(seed in 0u64..1_000_000) {
        let base = OptionBatchSoa::random(64, seed, Default::default());
        let mut a = base.clone();
        soa::price_soa_scalar(&mut a, MarketParams::PAPER);
        let mut b = base;
        soa::price_soa_simd::<8>(&mut b, MarketParams::PAPER);
        for i in 0..64 {
            prop_assert!((a.call[i] - b.call[i]).abs() <= 1e-12 * a.call[i].abs().max(1.0));
        }
    }

    #[test]
    fn binomial_tiling_bit_exact_on_random_leaves(
        seed in 0u64..1_000_000,
        n in 1usize..128,
    ) {
        let mut state = seed;
        let mut draw = || {
            state = finbench::rng::SplitMix64::mix(state);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 40.0
        };
        let leaves: Vec<F64v<4>> = (0..=n)
            .map(|_| F64v([draw(), draw(), draw(), draw()]))
            .collect();
        let mut a = leaves.clone();
        let ra = binomial::simd::reduce_simd(&mut a, n, 0.5012, 0.4979);
        let mut b = leaves;
        let rb = binomial::tiled::reduce_tiled::<4, 8>(&mut b, n, 0.5012, 0.4979);
        for l in 0..4 {
            prop_assert_eq!(ra[l].to_bits(), rb[l].to_bits());
        }
    }

    #[test]
    fn american_dominates_european_on_lattice((s, k, t) in contract(), m in market()) {
        let n = 128;
        let eur = binomial::reference::price_european(s, k, t, m, n, false);
        let amer = binomial::american::price_american::<f64>(s, k, t, m, n, false);
        prop_assert!(amer >= eur - 1e-9, "eur {eur} amer {amer}");
        prop_assert!(amer >= (k - s).max(0.0) - 1e-9);
    }

    #[test]
    fn bridge_endpoint_is_exact(seed in 0u64..1_000_000, depth in 1usize..8) {
        // Whatever the interior randoms, the endpoint is pinned to
        // r0 * sqrt(T) by construction.
        let plan = BridgePlan::new(depth, 1.7);
        let mut state = seed;
        let randoms: Vec<f64> = (0..plan.randoms_per_path())
            .map(|_| {
                state = finbench::rng::SplitMix64::mix(state);
                ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 4.0
            })
            .collect();
        let mut out = vec![0.0; plan.points()];
        build_path::<f64>(&plan, &randoms, &mut out);
        let want = randoms[0] * 1.7f64.sqrt();
        prop_assert!((out[plan.points() - 1] - want).abs() < 1e-12);
        prop_assert_eq!(out[0], 0.0);
    }

    #[test]
    fn vector_math_matches_scalar_on_random_lanes(
        a in -30.0f64..30.0, b in -30.0f64..30.0,
        c in -30.0f64..30.0, d in -30.0f64..30.0,
    ) {
        let v = F64v([a, b, c, d]);
        let e = vmath::vexp(v);
        let n = vmath::vnorm_cdf(v);
        for (i, &x) in [a, b, c, d].iter().enumerate() {
            prop_assert!(((e[i] - fm::exp(x)) / fm::exp(x)).abs() < 1e-14);
            prop_assert!((n[i] - fm::norm_cdf(x)).abs() < 1e-13);
        }
    }

    #[test]
    fn inverse_cdf_round_trip(p in 1e-10f64..1.0) {
        let p = p.min(1.0 - 1e-10);
        let x = fm::inv_norm_cdf(p);
        prop_assert!((fm::norm_cdf(x) - p).abs() < 1e-11, "p={p} x={x}");
    }

    #[test]
    fn mc_payoff_sums_are_finite_and_ordered(
        (s, k, t) in contract(), m in market(), seed in 0u64..100_000,
    ) {
        let mut state = seed;
        let randoms: Vec<f64> = (0..256)
            .map(|_| {
                state = finbench::rng::SplitMix64::mix(state);
                fm::inv_norm_cdf(((state >> 11) as f64 + 0.5) / (1u64 << 53) as f64)
            })
            .collect();
        let sums = paths_streamed::<f64>(s, k, GbmTerminal::new(t, m), &randoms);
        prop_assert!(sums.v0.is_finite() && sums.v0 >= 0.0);
        prop_assert!(sums.v1 >= 0.0);
        // Cauchy-Schwarz: (sum x)^2 <= n * sum x^2.
        prop_assert!(sums.v0 * sums.v0 <= 256.0 * sums.v1 * (1.0 + 1e-12) + 1e-12);
    }

    #[test]
    fn nearest_rank_matches_the_brute_force_oracle(
        mut sample in proptest::collection::vec(-1e6f64..1e6, 1..200),
        q in 0.0f64..1.0,
    ) {
        sample.sort_by(f64::total_cmp);
        let got = nearest_rank(&sample, q);
        // Oracle straight from the definition: the smallest sample value
        // whose cumulative count covers at least ceil(q·n) elements
        // (rank floored at 1 so q = 0 still selects the minimum).
        let threshold = ((q * sample.len() as f64).ceil() as usize).max(1);
        let want = sample
            .iter()
            .copied()
            .find(|&v| sample.iter().filter(|&&e| e <= v).count() >= threshold)
            .expect("threshold <= n, so some value always covers it");
        prop_assert_eq!(got.to_bits(), want.to_bits(), "q={} n={}", q, sample.len());
    }

    #[test]
    fn extreme_quantiles_pin_to_the_sample_edges(
        mut sample in proptest::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        sample.sort_by(f64::total_cmp);
        let (min, max) = (sample[0], sample[sample.len() - 1]);
        // q just above zero is the minimum (rank clamps up to 1), and q
        // just below one is already the maximum (ceil((1-ε)·n) = n for
        // any sample this size) — the edges where off-by-one rank
        // conventions historically diverged.
        for q in [0.0, 1e-12, 1.0 / (sample.len() as f64 * 2.0)] {
            prop_assert_eq!(nearest_rank(&sample, q).to_bits(), min.to_bits(), "q={}", q);
        }
        for q in [1.0 - 1e-12, 1.0] {
            prop_assert_eq!(nearest_rank(&sample, q).to_bits(), max.to_bits(), "q={}", q);
        }
    }

    #[test]
    fn expected_shortfall_dominates_var_on_random_pnl(
        pnl in proptest::collection::vec(-1e4f64..1e4, 4..200),
        c in 0.5f64..0.999,
    ) {
        // ES averages the tail at/beyond the VaR cut, so it can never
        // sit below VaR; both are finite on finite P&L.
        let risk = var_es(&pnl, &[c]);
        prop_assert_eq!(risk.len(), 1);
        prop_assert!(risk[0].var.is_finite());
        prop_assert!(risk[0].es >= risk[0].var - 1e-12, "{:?}", risk[0]);
        prop_assert!(risk[0].var_ci.0 <= risk[0].var && risk[0].var <= risk[0].var_ci.1);
    }
}

/// The same numbers anchor `var_es_on_a_known_distribution` in
/// `crates/core/src/portfolio/mod.rs` — change both together. Losses
/// 1..=100 make every rank arithmetic error visible: VaR95 must be
/// exactly the 95th element, and the 95% tail is {95..=100} (6 values,
/// mean 97.5).
#[test]
fn var_es_pins_the_known_distribution_through_the_shared_percentile() {
    let pnl: Vec<f64> = (1..=100).map(|l| -(l as f64)).collect();
    let risk = var_es(&pnl, &[0.95, 0.99]);
    assert_eq!(risk.len(), 2);
    assert_eq!(risk[0].var, 95.0);
    assert_eq!(risk[0].es, 97.5);
    assert_eq!(risk[0].tail_len, 6);
    assert_eq!(risk[1].var, 99.0);
    assert_eq!(risk[1].es, 99.5);
    assert_eq!(risk[1].tail_len, 2);
    // VaR is definitionally the shared nearest-rank percentile of the
    // loss distribution — the same function the latency reports use.
    let losses: Vec<f64> = (1..=100).map(|l| l as f64).collect();
    assert_eq!(risk[0].var, nearest_rank(&losses, 0.95));
    assert_eq!(risk[1].var, nearest_rank(&losses, 0.99));
}
