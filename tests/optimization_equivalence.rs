//! The central contract of the benchmark: **optimization never changes
//! the answer**. Every intermediate/advanced variant must reproduce its
//! reference level — bit-for-bit where the arithmetic is identical
//! (binomial tiling, PSOR wavefront, bridge SIMD), to tight tolerance
//! where the operation order legitimately differs (transcendental-heavy
//! Black-Scholes, Monte-Carlo reductions).

use finbench::core::binomial;
use finbench::core::black_scholes::{reference, soa, vml};
use finbench::core::brownian_bridge::{reference as bref, simd as bsimd, BridgePlan};
use finbench::core::crank_nicolson::reference::psor_sweep;
use finbench::core::crank_nicolson::wavefront;
use finbench::core::workload::{MarketParams, OptionBatchSoa, WorkloadRanges};
use finbench::rng::{normal::fill_standard_normal_icdf, Mt19937_64};

const M: MarketParams = MarketParams::PAPER;

#[test]
fn black_scholes_five_variants_agree() {
    let n = 2048 + 3;
    let base = OptionBatchSoa::random(n, 99, WorkloadRanges::default());

    let mut scalar = base.clone();
    soa::price_soa_scalar(&mut scalar, M);

    let mut aos = base.to_aos();
    reference::price_aos::<f64>(&mut aos, M);

    let mut gather = base.to_aos();
    reference::price_aos_simd_gather::<8>(&mut gather, M);

    let mut simd = base.clone();
    soa::price_soa_simd::<8>(&mut simd, M);

    let mut parity = base.clone();
    soa::price_soa_simd_erf_parity::<8>(&mut parity, M);

    let mut batch = base.clone();
    let mut ws = vml::VmlWorkspace::default();
    vml::price_soa_vml(&mut batch, M, &mut ws);

    for i in 0..n {
        let want_c = scalar.call[i];
        let want_p = scalar.put[i];
        for (label, got_c, got_p) in [
            ("aos", aos.opts[i].call, aos.opts[i].put),
            ("gather", gather.opts[i].call, gather.opts[i].put),
            ("simd", simd.call[i], simd.put[i]),
            ("parity", parity.call[i], parity.put[i]),
            ("vml", batch.call[i], batch.put[i]),
        ] {
            assert!(
                (got_c - want_c).abs() <= 1e-11 * want_c.abs().max(1.0),
                "{label} call {i}: {got_c} vs {want_c}"
            );
            assert!(
                (got_p - want_p).abs() <= 1e-11 * want_p.abs().max(1.0),
                "{label} put {i}: {got_p} vs {want_p}"
            );
        }
    }
}

#[test]
fn binomial_tiling_is_bit_exact_for_many_shapes() {
    let mut batch = OptionBatchSoa::random(24, 5, WorkloadRanges::default());
    for t in &mut batch.t {
        *t = 1.25;
    }
    for n_steps in [63usize, 64, 65, 200, 511, 513] {
        let mut reference_b = batch.clone();
        binomial::simd::price_batch_simd::<8>(&mut reference_b, M, n_steps, true);
        let mut t4 = batch.clone();
        binomial::tiled::price_batch_tiled::<8, 4>(&mut t4, M, n_steps, true);
        let mut t16 = batch.clone();
        binomial::tiled::price_batch_tiled::<8, 16>(&mut t16, M, n_steps, true);
        for i in 0..batch.len() {
            assert_eq!(
                reference_b.call[i].to_bits(),
                t4.call[i].to_bits(),
                "TS=4 n={n_steps} i={i}"
            );
            assert_eq!(
                reference_b.call[i].to_bits(),
                t16.call[i].to_bits(),
                "TS=16 n={n_steps} i={i}"
            );
        }
    }
}

#[test]
fn bridge_simd_is_bit_exact_vs_scalar() {
    for depth in [1usize, 3, 6, 8] {
        let plan = BridgePlan::new(depth, 2.5);
        let per = plan.randoms_per_path();
        let n_paths = 16;
        let mut rng = Mt19937_64::new(depth as u64);
        let mut randoms = vec![0.0; n_paths * per];
        fill_standard_normal_icdf(&mut rng, &mut randoms);

        let mut scalar_out = vec![0.0; n_paths * plan.points()];
        bref::build_paths::<f64>(&plan, &randoms, &mut scalar_out, n_paths);

        let transposed = bsimd::transpose_randoms::<8>(&randoms, per);
        let mut simd_out = vec![0.0; n_paths * plan.points()];
        bsimd::build_paths_simd::<8>(&plan, &transposed, &mut simd_out, n_paths);

        assert_eq!(
            scalar_out
                .iter()
                .zip(&simd_out)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count(),
            0,
            "depth {depth}"
        );
    }
}

#[test]
fn psor_wavefront_blocks_are_bit_exact_vs_scalar_sweeps() {
    // A CN-like system at several sizes and omega values.
    for n in [16usize, 64, 256, 1024] {
        for omega in [1.0, 1.3, 1.7] {
            let mut state = 0xC0FFEE ^ n as u64;
            let mut draw = || {
                state = finbench::rng::SplitMix64::mix(state);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let u0: Vec<f64> = (0..n).map(|_| draw()).collect();
            let b: Vec<f64> = (0..n).map(|_| draw()).collect();
            let g: Vec<f64> = (0..n).map(|_| draw() * 0.8).collect();
            let (alphah, coeff) = (0.35, 1.0 / 1.7);

            let mut us = u0.clone();
            for _ in 0..16 {
                psor_sweep(&mut us, &b, &g, 1, n - 2, alphah, coeff, omega, true);
            }

            // 2 blocks of 8 lanes = exactly 16 wavefront iterations.
            let mut uw = u0.clone();
            wavefront::psor_solve_wavefront_fixed_blocks::<8>(
                &mut uw,
                &b,
                &g,
                1,
                n - 2,
                alphah,
                coeff,
                omega,
                true,
                2,
            );
            for j in 0..n {
                assert_eq!(
                    us[j].to_bits(),
                    uw[j].to_bits(),
                    "n={n} omega={omega} j={j}"
                );
            }
        }
    }
}

#[test]
fn workload_transposition_does_not_change_prices() {
    // AOS->SOA->AOS->price == price->AOS path: layout is orthogonal to
    // values.
    let soa_batch = OptionBatchSoa::random(513, 77, WorkloadRanges::default());
    let mut direct = soa_batch.clone();
    soa::price_soa_scalar(&mut direct, M);

    let mut round_trip = soa_batch.to_aos().to_soa();
    soa::price_soa_scalar(&mut round_trip, M);
    assert_eq!(direct.call, round_trip.call);
    assert_eq!(direct.put, round_trip.put);
}
