//! The central contract of the benchmark: **optimization never changes
//! the answer**. Every intermediate/advanced variant must reproduce its
//! reference level — bit-for-bit where the arithmetic is identical
//! (binomial tiling, PSOR wavefront, bridge SIMD), to tight tolerance
//! where the operation order legitimately differs (transcendental-heavy
//! Black-Scholes, Monte-Carlo reductions).
//!
//! The per-kernel equivalence sweeps that used to live here (one
//! hand-written comparison per variant) are now a single property test:
//! every [`Rung`](finbench::engine::Rung) declares its check and baseline,
//! and [`Engine::validate_all`] runs the whole §6 strategy over random
//! workloads. What remains below are the shapes the ladder does not
//! exercise (odd tile sizes, odd step counts, raw wavefront blocks).

use finbench::core::binomial;
use finbench::core::black_scholes::soa;
use finbench::core::crank_nicolson::reference::psor_sweep;
use finbench::core::crank_nicolson::wavefront;
use finbench::core::engine::registry;
use finbench::core::workload::{MarketParams, OptionBatchSoa, WorkloadRanges};
use finbench::engine::{Engine, Planner, WorkloadSpec};
use finbench::machine::SNB_EP;
use proptest::prelude::*;

const M: MarketParams = MarketParams::PAPER;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every rung of every registered kernel reproduces its baseline rung
    /// on randomized workloads — sizes and seeds drawn here, clamping and
    /// SIMD-width rounding done by each kernel's `make_workload`.
    #[test]
    fn every_rung_matches_its_baseline_on_random_workloads(
        seed in 0u64..1_000_000,
        n_hint in 1usize..96,
    ) {
        let engine = Engine::with_planner(registry(), Planner::new(SNB_EP));
        let errs = engine.validate_all(&WorkloadSpec::validation(seed, n_hint));
        prop_assert!(errs.is_empty(), "{errs:?}");
    }
}

#[test]
fn binomial_tiling_is_bit_exact_for_many_shapes() {
    let mut batch = OptionBatchSoa::random(24, 5, WorkloadRanges::default());
    for t in &mut batch.t {
        *t = 1.25;
    }
    for n_steps in [63usize, 64, 65, 200, 511, 513] {
        let mut reference_b = batch.clone();
        binomial::simd::price_batch_simd::<8>(&mut reference_b, M, n_steps, true);
        let mut t4 = batch.clone();
        binomial::tiled::price_batch_tiled::<8, 4>(&mut t4, M, n_steps, true);
        let mut t16 = batch.clone();
        binomial::tiled::price_batch_tiled::<8, 16>(&mut t16, M, n_steps, true);
        for i in 0..batch.len() {
            assert_eq!(
                reference_b.call[i].to_bits(),
                t4.call[i].to_bits(),
                "TS=4 n={n_steps} i={i}"
            );
            assert_eq!(
                reference_b.call[i].to_bits(),
                t16.call[i].to_bits(),
                "TS=16 n={n_steps} i={i}"
            );
        }
    }
}

#[test]
fn psor_wavefront_blocks_are_bit_exact_vs_scalar_sweeps() {
    // A CN-like system at several sizes and omega values.
    for n in [16usize, 64, 256, 1024] {
        for omega in [1.0, 1.3, 1.7] {
            let mut state = 0xC0FFEE ^ n as u64;
            let mut draw = || {
                state = finbench::rng::SplitMix64::mix(state);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let u0: Vec<f64> = (0..n).map(|_| draw()).collect();
            let b: Vec<f64> = (0..n).map(|_| draw()).collect();
            let g: Vec<f64> = (0..n).map(|_| draw() * 0.8).collect();
            let (alphah, coeff) = (0.35, 1.0 / 1.7);

            let mut us = u0.clone();
            for _ in 0..16 {
                psor_sweep(&mut us, &b, &g, 1, n - 2, alphah, coeff, omega, true);
            }

            // 2 blocks of 8 lanes = exactly 16 wavefront iterations.
            let mut uw = u0.clone();
            wavefront::psor_solve_wavefront_fixed_blocks::<8>(
                &mut uw,
                &b,
                &g,
                1,
                n - 2,
                alphah,
                coeff,
                omega,
                true,
                2,
            );
            for j in 0..n {
                assert_eq!(
                    us[j].to_bits(),
                    uw[j].to_bits(),
                    "n={n} omega={omega} j={j}"
                );
            }
        }
    }
}

#[test]
fn workload_transposition_does_not_change_prices() {
    // AOS->SOA->AOS->price == price->AOS path: layout is orthogonal to
    // values.
    let soa_batch = OptionBatchSoa::random(513, 77, WorkloadRanges::default());
    let mut direct = soa_batch.clone();
    soa::price_soa_scalar(&mut direct, M);

    let mut round_trip = soa_batch.to_aos().to_soa();
    soa::price_soa_scalar(&mut round_trip, M);
    assert_eq!(direct.call, round_trip.call);
    assert_eq!(direct.put, round_trip.put);
}
