//! Cross-method integration tests: every numerical method in the suite
//! must agree with every other on the contracts they can all price.
//! The Black-Scholes closed form is the oracle for European options; the
//! binomial lattice is the oracle for American ones.

use finbench::core::binomial;
use finbench::core::black_scholes::price_single;
use finbench::core::crank_nicolson::{self, PsorKind};
use finbench::core::monte_carlo::{
    reference::paths_streamed, simd::paths_streamed_simd, GbmTerminal,
};
use finbench::core::workload::MarketParams;
use finbench::rng::{normal::fill_standard_normal_icdf, Mt19937_64};

const MARKETS: [MarketParams; 3] = [
    MarketParams {
        r: 0.05,
        sigma: 0.2,
    },
    MarketParams {
        r: 0.01,
        sigma: 0.45,
    },
    MarketParams {
        r: 0.08,
        sigma: 0.15,
    },
];

const CONTRACTS: [(f64, f64, f64); 4] = [
    (100.0, 100.0, 1.0),
    (90.0, 100.0, 0.5),
    (120.0, 100.0, 2.0),
    (100.0, 80.0, 1.5),
];

#[test]
fn binomial_converges_to_black_scholes_across_grid() {
    for m in MARKETS {
        for (s, k, t) in CONTRACTS {
            let (bs_call, bs_put) = price_single(s, k, t, m);
            let call = binomial::reference::price_european(s, k, t, m, 2048, true);
            let put = binomial::reference::price_european(s, k, t, m, 2048, false);
            assert!(
                (call - bs_call).abs() < 0.02,
                "call s={s} k={k} t={t} sigma={}: {call} vs {bs_call}",
                m.sigma
            );
            assert!((put - bs_put).abs() < 0.02, "put s={s} k={k} t={t}");
        }
    }
}

#[test]
fn crank_nicolson_european_matches_black_scholes() {
    for m in MARKETS {
        for (s, k, t) in CONTRACTS {
            let (_, bs_put) = price_single(s, k, t, m);
            let cn = crank_nicolson::price_put(s, k, t, m, PsorKind::Reference, false);
            assert!(
                (cn - bs_put).abs() < 0.05,
                "s={s} k={k} t={t} sigma={}: {cn} vs {bs_put}",
                m.sigma
            );
        }
    }
}

#[test]
fn crank_nicolson_american_matches_binomial() {
    for m in MARKETS {
        for (s, k, t) in CONTRACTS {
            let lattice = binomial::american::price_american::<f64>(s, k, t, m, 2000, false);
            let cn = crank_nicolson::price_put(s, k, t, m, PsorKind::Reference, true);
            assert!(
                (cn - lattice).abs() < 0.05,
                "s={s} k={k} t={t} sigma={}: cn {cn} vs lattice {lattice}",
                m.sigma
            );
        }
    }
}

#[test]
fn all_three_psor_kernels_price_identically() {
    let m = MarketParams {
        r: 0.05,
        sigma: 0.3,
    };
    let prob = crank_nicolson::CnProblem::paper(m, 1.0);
    let a = prob.solve(PsorKind::Reference);
    let b = prob.solve(PsorKind::Wavefront);
    let c = prob.solve(PsorKind::WavefrontSoa);
    for s in [70.0, 90.0, 100.0, 115.0, 140.0] {
        let pa = a.price(s, 100.0);
        let pb = b.price(s, 100.0);
        let pc = c.price(s, 100.0);
        // The scalar solver checks convergence every iteration, the
        // wavefront every W — so they stop at slightly different points
        // and the difference compounds over 1000 time steps. ~1e-6 per
        // price is the observed drift; 1e-4 is a safe band.
        assert!((pa - pb).abs() < 1e-4, "s={s}: {pa} vs {pb}");
        // The two wavefront layouts run the identical iteration schedule.
        assert!((pb - pc).abs() < 1e-12, "s={s}: {pb} vs {pc}");
    }
}

#[test]
fn monte_carlo_brackets_black_scholes() {
    let mut rng = Mt19937_64::new(20120101);
    let mut randoms = vec![0.0; 400_000];
    fill_standard_normal_icdf(&mut rng, &mut randoms);
    for m in MARKETS {
        for (s, k, t) in CONTRACTS {
            let (bs_call, _) = price_single(s, k, t, m);
            let sums = paths_streamed::<f64>(s, k, GbmTerminal::new(t, m), &randoms);
            let (price, se) = sums.price(m.r, t);
            assert!(
                (price - bs_call).abs() < 4.5 * se.max(1e-6),
                "s={s} k={k} t={t} sigma={}: {price}±{se} vs {bs_call}",
                m.sigma
            );
        }
    }
}

#[test]
fn simd_and_scalar_monte_carlo_agree_on_the_same_stream() {
    let mut rng = Mt19937_64::new(7);
    let mut randoms = vec![0.0; 100_000];
    fill_standard_normal_icdf(&mut rng, &mut randoms);
    let m = MARKETS[0];
    for (s, k, t) in CONTRACTS {
        let g = GbmTerminal::new(t, m);
        let a = paths_streamed::<f64>(s, k, g, &randoms);
        let b = paths_streamed_simd::<8>(s, k, g, &randoms);
        assert!(
            ((a.v0 - b.v0) / a.v0.max(1e-9)).abs() < 1e-12,
            "s={s} k={k}"
        );
    }
}

#[test]
fn deep_moneyness_limits() {
    // Far in/out of the money, every engine must pin to the arbitrage
    // values.
    let m = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };
    // Deep OTM call: worthless by every method.
    let (bs, _) = price_single(1.0, 1000.0, 0.25, m);
    assert!(bs < 1e-12);
    let bin = binomial::reference::price_european(1.0, 1000.0, 0.25, m, 256, true);
    assert!(bin < 1e-12);
    // Deep ITM American put: intrinsic.
    let am = binomial::american::price_american::<f64>(5.0, 1000.0, 1.0, m, 256, false);
    assert!((am - 995.0).abs() < 1e-8);
}
