//! Integration tests for the beyond-the-paper extensions: every pricing
//! engine in the repository cross-checked against every other on shared
//! contracts, plus the exotic-payoff and quasi-Monte-Carlo machinery.

use finbench::core::binomial::{self, american, trinomial};
use finbench::core::black_scholes::price_single;
use finbench::core::crank_nicolson::{self, PsorKind};
use finbench::core::monte_carlo::lsm;
use finbench::core::workload::MarketParams;

const M: MarketParams = MarketParams {
    r: 0.05,
    sigma: 0.2,
};

#[test]
fn four_american_engines_agree() {
    // Binomial, trinomial, Crank-Nicolson PSOR and Longstaff-Schwartz all
    // price the same 1-year ATM American put.
    let (s, k, t) = (100.0, 100.0, 1.0);
    let bin = american::price_american::<f64>(s, k, t, M, 2000, false);
    let tri = trinomial::price_american(s, k, t, M, 1000, false);
    let cn = crank_nicolson::price_put(s, k, t, M, PsorKind::WavefrontSoa, true);
    let mc = lsm::price_american_put_lsm(s, k, t, M, 100_000, 50, 2026);

    assert!(
        (tri - bin).abs() < 0.01,
        "trinomial {tri} vs binomial {bin}"
    );
    assert!((cn - bin).abs() < 0.02, "cn {cn} vs binomial {bin}");
    assert!(
        (mc.price - bin).abs() < 4.0 * mc.std_error + 0.01 * bin,
        "lsm {} ± {} vs binomial {bin}",
        mc.price,
        mc.std_error
    );
}

#[test]
fn exercise_right_ordering_across_engines() {
    // European <= Bermudan(quarterly) <= Bermudan(weekly) <= American,
    // each relation on its natural engine.
    let (s, k, t, n) = (95.0, 100.0, 1.0, 520);
    let eur = binomial::reference::price_european(s, k, t, M, n, false);
    let quarterly = american::price_bermudan(s, k, t, M, n, n / 4, false);
    let weekly = american::price_bermudan(s, k, t, M, n, n / 52, false);
    let amer = american::price_american::<f64>(s, k, t, M, n, false);
    assert!(eur <= quarterly + 1e-10);
    assert!(quarterly <= weekly + 1e-10);
    assert!(weekly <= amer + 1e-10);
    assert!(amer > eur, "exercise right must carry value for an ITM put");
}

#[test]
fn trinomial_and_binomial_agree_for_european() {
    for (s, k, t) in [(100.0, 100.0, 1.0), (80.0, 100.0, 0.5), (120.0, 90.0, 2.0)] {
        let (bs, _) = price_single(s, k, t, M);
        let tri = trinomial::price_european(s, k, t, M, 800, true);
        let bin = binomial::reference::price_european(s, k, t, M, 800, true);
        assert!((tri - bs).abs() < 0.02, "tri {tri} vs bs {bs}");
        assert!((tri - bin).abs() < 0.03, "tri {tri} vs bin {bin}");
    }
}

#[test]
fn lsm_tracks_lattice_across_moneyness() {
    for s in [80.0, 90.0, 100.0, 110.0] {
        let lattice = american::price_american::<f64>(s, 100.0, 1.0, M, 1000, false);
        let mc = lsm::price_american_put_lsm(s, 100.0, 1.0, M, 60_000, 50, 7);
        assert!(
            (mc.price - lattice).abs() < 4.0 * mc.std_error + 0.015 * lattice.max(1.0),
            "s={s}: lsm {} ± {} vs lattice {lattice}",
            mc.price,
            mc.std_error
        );
    }
}

#[test]
fn batch_greeks_aggregate_sanity() {
    use finbench::core::greeks::{greeks_soa_simd, OptionType};
    use finbench::core::workload::{OptionBatchSoa, WorkloadRanges};
    let b = OptionBatchSoa::random(4096, 17, WorkloadRanges::default());
    let mut delta = vec![0.0; b.len()];
    let mut gamma = vec![0.0; b.len()];
    let mut vega = vec![0.0; b.len()];
    greeks_soa_simd::<8>(OptionType::Call, &b, M, &mut delta, &mut gamma, &mut vega);
    // Call deltas in [0,1], gamma/vega non-negative, all finite.
    assert!(delta.iter().all(|d| (0.0..=1.0).contains(d)));
    assert!(gamma.iter().all(|g| *g >= 0.0 && g.is_finite()));
    assert!(vega.iter().all(|v| *v >= 0.0 && v.is_finite()));

    // Put deltas are call deltas minus one, lane for lane.
    let mut pdelta = vec![0.0; b.len()];
    let mut pg = vec![0.0; b.len()];
    let mut pv = vec![0.0; b.len()];
    greeks_soa_simd::<8>(OptionType::Put, &b, M, &mut pdelta, &mut pg, &mut pv);
    for i in 0..b.len() {
        assert!((delta[i] - pdelta[i] - 1.0).abs() < 1e-12, "i={i}");
        assert_eq!(gamma[i].to_bits(), pg[i].to_bits(), "gamma parity i={i}");
    }
}

#[test]
fn halton_bridge_and_streams_compose() {
    // The QMC driver, the Philox stream family and the plain MT route all
    // estimate the same Brownian functional (terminal variance).
    use finbench::core::brownian_bridge::{
        interleaved::build_paths_interleaved, qmc::build_paths_qmc, BridgePlan,
    };
    use finbench::rng::StreamFamily;
    let plan = BridgePlan::new(6, 2.0);
    let n = 8192;
    let points = plan.points();

    let terminal_var = |paths: &[f64]| {
        let mut v = 0.0;
        for p in 0..n {
            let w = paths[p * points + points - 1];
            v += w * w;
        }
        v / n as f64
    };

    let mut qmc = vec![0.0; n * points];
    build_paths_qmc(&plan, 0, &mut qmc, n);
    let mut mc = vec![0.0; n * points];
    build_paths_interleaved::<8>(&plan, &StreamFamily::new(3), &mut mc, n);

    let vq = terminal_var(&qmc);
    let vm = terminal_var(&mc);
    assert!((vq - 2.0).abs() < 0.05, "qmc var {vq}");
    assert!((vm - 2.0).abs() < 0.15, "mc var {vm}");
}

#[test]
fn fast_icdf_is_statistically_indistinguishable_in_pricing() {
    // Pricing with the fast Acklam transform must agree with the accurate
    // one far inside the Monte-Carlo noise.
    use finbench::core::monte_carlo::{reference::paths_streamed, GbmTerminal};
    use finbench::rng::normal::{fill_standard_normal_icdf, fill_standard_normal_icdf_fast};
    use finbench::rng::Mt19937_64;
    let g = GbmTerminal::new(1.0, M);
    let n = 100_000;

    let mut a = vec![0.0; n];
    fill_standard_normal_icdf(&mut Mt19937_64::new(5), &mut a);
    let pa = paths_streamed::<f64>(100.0, 100.0, g, &a).price(M.r, 1.0).0;

    let mut b = vec![0.0; n];
    fill_standard_normal_icdf_fast(&mut Mt19937_64::new(5), &mut b);
    let pb = paths_streamed::<f64>(100.0, 100.0, g, &b).price(M.r, 1.0).0;

    // Same underlying uniforms: the two transforms differ by <= 1e-7 per
    // draw, so the prices differ by far less than a cent.
    assert!((pa - pb).abs() < 1e-4, "{pa} vs {pb}");
}
