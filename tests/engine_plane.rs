//! Wiring tests for the engine plane over the *real* six-kernel registry:
//! registry consistency (the CI gate), planner decisions per kernel, and
//! the override escape hatch. The generic measure/validate machinery is
//! unit-tested in `finbench-engine` against a toy kernel; here we check
//! the production registry drives it correctly.

use finbench::core::engine::registry;
use finbench::engine::{Check, Planner};
use finbench::machine::{arch::host_spec, KNC, SNB_EP};

#[test]
fn registry_consistency_holds_on_all_planning_archs() {
    let reg = registry();
    for arch in [SNB_EP, KNC, host_spec()] {
        let errs = reg.consistency_errors(&arch);
        assert!(errs.is_empty(), "{}: {errs:?}", arch.name);
    }
}

#[test]
fn every_kernel_gets_a_valid_plan_on_every_arch() {
    let reg = registry();
    for arch in [SNB_EP, KNC, host_spec()] {
        let planner = Planner::new(arch);
        for k in reg.kernels() {
            let plan = planner.plan(k).unwrap_or_else(|e| panic!("{e}"));
            let rungs = k.rungs();
            assert!(plan.rung < rungs.len(), "{}: {plan:?}", k.name());
            assert_eq!(plan.slug, rungs[plan.rung].slug);
            assert!(
                plan.predicted_rate.is_finite() && plan.predicted_rate > 0.0,
                "{}: {plan:?}",
                k.name()
            );
            assert!(!plan.reason.is_empty() && !plan.overridden);
        }
    }
}

#[test]
fn plan_override_forces_a_specific_rung() {
    let reg = registry();
    let mut planner = Planner::new(SNB_EP);
    planner.set_override("black_scholes", "intermediate_scalar_soa");
    let plan = planner.plan(reg.get("black_scholes").unwrap()).unwrap();
    assert_eq!(plan.slug, "intermediate_scalar_soa");
    assert!(plan.overridden);

    planner.set_override("black_scholes", "no_such_rung");
    let err = planner.plan(reg.get("black_scholes").unwrap()).unwrap_err();
    assert!(
        matches!(err, finbench::engine::EngineError::UnknownRung { ref slug, .. }
            if slug == "no_such_rung"),
        "{err:?}"
    );
    assert!(err.to_string().contains("no_such_rung"), "{err}");
}

#[test]
fn reference_rungs_are_baselines_and_checked_rungs_point_backwards() {
    // Ladder discipline the §6 strategy relies on: rung 0 never checks
    // against anything, and every checked rung validates against an
    // *earlier* rung (so the lazy validation pass never cycles).
    for k in registry().kernels() {
        let rungs = k.rungs();
        assert_eq!(rungs[0].check, Check::None, "{}", k.name());
        for (i, r) in rungs.iter().enumerate() {
            if r.check != Check::None {
                assert!(
                    r.baseline < i,
                    "{}: rung {i} baseline {}",
                    k.name(),
                    r.baseline
                );
            }
        }
    }
}
