//! Reproducibility contract: every result in the suite is a pure function
//! of its seed — across reruns, across thread counts, across scheduling.

use finbench::core::black_scholes::soa;
use finbench::core::brownian_bridge::{interleaved, BridgePlan};
use finbench::core::monte_carlo::{simd, GbmTerminal};
use finbench::core::workload::{MarketParams, OptionBatchSoa, WorkloadRanges};
use finbench::parallel::{parallel_for_chunks, parallel_map_reduce};
use finbench::rng::{
    normal::fill_standard_normal_icdf, Mt19937_64, Philox4x32, RngCore64, StreamFamily,
};

const M: MarketParams = MarketParams::PAPER;

#[test]
fn workloads_are_seed_deterministic() {
    let a = OptionBatchSoa::random(1000, 1, WorkloadRanges::default());
    let b = OptionBatchSoa::random(1000, 1, WorkloadRanges::default());
    assert_eq!(a.s, b.s);
    assert_eq!(a.x, b.x);
    assert_eq!(a.t, b.t);
}

#[test]
fn generators_replay_exactly() {
    let seq = |seed: u64| -> Vec<u64> {
        let mut r = Mt19937_64::new(seed);
        (0..1000).map(|_| r.next_u64()).collect()
    };
    assert_eq!(seq(123), seq(123));
    assert_ne!(seq(123), seq(124));

    let pseq = |key: u64| -> Vec<u64> {
        let mut r = Philox4x32::new(key);
        (0..1000).map(|_| r.next_u64()).collect()
    };
    assert_eq!(pseq(9), pseq(9));
}

#[test]
fn parallel_pricing_is_worker_count_invariant() {
    let base = OptionBatchSoa::random(20_000, 3, WorkloadRanges::default());
    let mut serial = base.clone();
    soa::price_soa_simd_erf_parity::<8>(&mut serial, M);

    let mut par = base.clone();
    soa::par_price_soa::<8>(&mut par, M, 1024);

    for i in 0..base.len() {
        assert_eq!(serial.call[i].to_bits(), par.call[i].to_bits(), "i={i}");
        assert_eq!(serial.put[i].to_bits(), par.put[i].to_bits(), "i={i}");
    }
}

#[test]
fn monte_carlo_parallel_reduction_is_schedule_invariant() {
    let mut rng = Mt19937_64::new(11);
    let mut randoms = vec![0.0; 300_000];
    fill_standard_normal_icdf(&mut rng, &mut randoms);
    let g = GbmTerminal::new(1.0, M);

    let baseline = simd::paths_streamed_parallel::<8>(100.0, 105.0, g, &randoms, 1);
    for workers in [2, 3, 5, 8] {
        let run = simd::paths_streamed_parallel::<8>(100.0, 105.0, g, &randoms, workers);
        assert_eq!(baseline.v0.to_bits(), run.v0.to_bits(), "workers {workers}");
        assert_eq!(baseline.v1.to_bits(), run.v1.to_bits(), "workers {workers}");
    }
}

#[test]
fn interleaved_bridge_is_group_addressed_not_order_addressed() {
    // Stream ids are derived from the group index, so the output is a
    // pure function of (seed, W, n_paths) regardless of execution order.
    let plan = BridgePlan::new(5, 1.0);
    let fam = StreamFamily::new(404);
    let mut a = vec![0.0; 64 * plan.points()];
    let mut b = vec![0.0; 64 * plan.points()];
    interleaved::build_paths_interleaved::<8>(&plan, &fam, &mut a, 64);
    interleaved::build_paths_interleaved::<8>(&plan, &fam, &mut b, 64);
    assert_eq!(a, b);
    // Extending the path count must not change earlier groups.
    let mut c = vec![0.0; 128 * plan.points()];
    interleaved::build_paths_interleaved::<8>(&plan, &fam, &mut c, 128);
    assert_eq!(&a[..], &c[..64 * plan.points()]);
}

#[test]
fn own_pool_for_chunks_is_deterministic_in_output() {
    // Each element's final value depends only on its index, whatever the
    // interleaving of workers.
    for trial in 0..5 {
        let mut v = vec![0u64; 8192];
        parallel_for_chunks(&mut v, 64, 4, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = finbench::rng::SplitMix64::mix((start + i) as u64);
            }
        });
        let want: Vec<u64> = (0..8192)
            .map(|i| finbench::rng::SplitMix64::mix(i as u64))
            .collect();
        assert_eq!(v, want, "trial {trial}");
    }
}

#[test]
fn map_reduce_is_bitwise_stable_for_float_sums() {
    let xs: Vec<f64> = (0..100_000)
        .map(|i| ((i * 2654435761u64 as usize) % 1000) as f64 * 1e-3 + 1e-9)
        .collect();
    let sum = |workers: usize| {
        parallel_map_reduce(
            xs.len(),
            128,
            workers,
            |r| xs[r].iter().sum::<f64>(),
            |a, b| a + b,
            0.0f64,
        )
    };
    let want = sum(1);
    for w in [2, 4, 16] {
        assert_eq!(want.to_bits(), sum(w).to_bits(), "workers {w}");
    }
}
