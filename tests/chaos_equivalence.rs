//! The chaos contract of the serving plane, as a property: **under any
//! fault plan and any interleaving, a `Priced` response is bit-identical
//! to pricing that option alone on the rung the response says served
//! it.** Faults may shed requests (typed rejections) or degrade lanes
//! down the rung ladder — they must never corrupt a price.
//!
//! The fault registry is process-global, so every test that arms it
//! serializes on one lock and installs plans through [`PlanGuard`],
//! which disarms on drop even when a proptest case fails.

use finbench::core::engine::registry;
use finbench::engine::Engine;
use finbench::faults::{self, Corruption, FaultKind, FaultPlan, FaultSpec, PlanGuard};
use finbench::serve::pricer::{self, PricerConfig, ServingRung};
use finbench::serve::{
    BreakerPolicy, PriceRequest, Rejected, ServeConfig, Server, SupervisorPolicy,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn contract() -> impl Strategy<Value = (f64, f64, f64)> {
    // The paper's workload ranges.
    (5.0f64..30.0, 1.0f64..100.0, 0.25f64..10.0)
}

fn pricer_config() -> PricerConfig {
    PricerConfig {
        binomial_steps: 32,
        ..PricerConfig::default()
    }
}

/// Every servable rung of `kernel` by slug — the oracle set. Responses
/// name the rung that priced them, which under chaos may be any ladder
/// level, so the check keys on the *reported* slug.
fn oracle_rungs(kernel: &str) -> BTreeMap<String, ServingRung> {
    let engine = Engine::new(registry());
    pricer::servable_ladder(&engine, kernel, &pricer_config())
        .unwrap()
        .into_iter()
        .map(|r| (r.slug.clone(), r))
        .collect()
}

/// A random fault plan aimed at the serving plane's hook sites.
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..0.6,    // panic rate at the batch site
        0.0f64..0.4,    // corruption rate at the admit site
        0.0f64..0.3,    // stall rate at the queue site
        0usize..2,      // add batch latency too?
        0..3usize,      // which corruption
        0usize..65_536, // fault seed
    )
        .prop_map(
            |(panic_rate, corrupt_rate, stall_rate, latency, which, seed)| {
                let latency = latency == 1;
                let seed = seed as u16;
                let corruption = [Corruption::NaN, Corruption::Inf, Corruption::Negative][which];
                let mut plan = FaultPlan::new()
                    .with(
                        FaultSpec::at_rate("batch.black_scholes", FaultKind::Panic, panic_rate)
                            .seeded(u64::from(seed)),
                    )
                    .with(
                        FaultSpec::at_rate(
                            "admit.black_scholes",
                            FaultKind::CorruptInput(corruption),
                            corrupt_rate,
                        )
                        .seeded(u64::from(seed) ^ 0xABCD),
                    )
                    .with(
                        FaultSpec::at_rate("queue", FaultKind::StallQueue, stall_rate)
                            .seeded(u64::from(seed) ^ 0x1234),
                    );
                if latency {
                    plan = plan.with(FaultSpec::always(
                        "batch.black_scholes",
                        FaultKind::Latency(Duration::from_micros(50)),
                    ));
                }
                plan
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn no_fault_plan_ever_corrupts_a_priced_response(
        opts in vec(contract(), 1..50usize),
        plan in fault_plan(),
        max_batch in 1usize..24,
        max_delay_us in 20u64..300,
    ) {
        let _l = chaos_lock();
        faults::silence_injected_panics();
        let oracles = oracle_rungs("black_scholes");
        let _g = PlanGuard::install(plan);
        let server = Server::start(ServeConfig {
            queue_capacity: opts.len().max(1),
            max_delay: Duration::from_micros(max_delay_us),
            max_batch,
            shards: 1,
            pricer: pricer_config(),
            breaker: BreakerPolicy {
                cooldown: Duration::from_millis(1),
                promote_after: 4,
                ..BreakerPolicy::default()
            },
            // Pin pre-supervision semantics: a killed shard stays dead and
            // the router sheds (typed). Respawn interleavings get their own
            // property coverage in `tests/supervision.rs`.
            supervisor: SupervisorPolicy {
                respawn: false,
                ..SupervisorPolicy::default()
            },
        });
        let (tx, rx) = std::sync::mpsc::channel();
        for (i, &(s, x, t)) in opts.iter().enumerate() {
            server.submit_with(PriceRequest::new(i as u64, "black_scholes", s, x, t), &tx);
        }
        drop(tx);
        let mut responses: Vec<_> = rx.iter().collect();
        server.shutdown();
        // Exactly one response per request, no silent drops even under
        // panics, stalls, and corruption.
        prop_assert_eq!(responses.len(), opts.len());
        responses.sort_by_key(|r| r.id);
        for resp in responses {
            let (s, x, t) = opts[resp.id as usize];
            match resp.outcome {
                Ok(p) => {
                    let rung = oracles.get(&p.rung);
                    prop_assert!(rung.is_some(), "unknown serving rung {}", &p.rung);
                    let (call, put) = rung.unwrap().price_one(s, x, t);
                    prop_assert_eq!(
                        p.call.to_bits(), call.to_bits(),
                        "call diverges from solo pricing on rung {}", &p.rung
                    );
                    prop_assert_eq!(
                        p.put.to_bits(), put.to_bits(),
                        "put diverges from solo pricing on rung {}", &p.rung
                    );
                }
                // Shedding and typed failure are allowed outcomes under
                // chaos; corruption of a Priced response is not.
                Err(Rejected::Internal { .. })
                | Err(Rejected::InvalidInput { .. })
                | Err(Rejected::QueueFull { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected rejection {other:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// With every fault disarmed the plane is exactly the no-chaos plane:
    /// everything is served, nothing degrades, and the bits match the
    /// planned rung's solo oracle.
    #[test]
    fn disarmed_faults_change_nothing(
        opts in vec(contract(), 1..30usize),
    ) {
        let _l = chaos_lock();
        faults::disarm();
        let engine = Engine::new(registry());
        let oracle = pricer::resolve(&engine, "black_scholes", &pricer_config()).unwrap();
        let server = Server::start(ServeConfig {
            queue_capacity: opts.len().max(1),
            max_delay: Duration::from_micros(100),
            max_batch: 16,
            pricer: pricer_config(),
            ..ServeConfig::default()
        });
        let (tx, rx) = std::sync::mpsc::channel();
        for (i, &(s, x, t)) in opts.iter().enumerate() {
            server.submit_with(PriceRequest::new(i as u64, "black_scholes", s, x, t), &tx);
        }
        drop(tx);
        let responses: Vec<_> = rx.iter().collect();
        let snap = server.shutdown();
        prop_assert_eq!(responses.len(), opts.len());
        prop_assert_eq!(snap.internal, 0);
        prop_assert_eq!(snap.invalid_input, 0);
        prop_assert_eq!(snap.total_degraded(), 0);
        for resp in responses {
            let (s, x, t) = opts[resp.id as usize];
            let p = resp.outcome.expect("nothing rejected without faults");
            prop_assert_eq!(&p.rung, &oracle.slug);
            let (call, put) = oracle.price_one(s, x, t);
            prop_assert_eq!(p.call.to_bits(), call.to_bits());
            prop_assert_eq!(p.put.to_bits(), put.to_bits());
        }
    }
}
