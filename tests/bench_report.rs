//! End-to-end exercise of the perf-trajectory pipeline: run a real (tiny)
//! `bench-report`, check the snapshot covers every kernel's full rung
//! ladder plus the serve/greeks/alloc lanes, and drive the comparison
//! gate over it — identical snapshots must be clean, a synthetically
//! degraded one must fail, and unknown schema versions must come back as
//! typed errors rather than panics.
//!
//! The counting allocator is installed here too — `#[global_allocator]`
//! in the harness lib applies to every binary linking it — so the alloc
//! lanes measure real numbers, just as in the shipped CLI.

use finbench_harness::report::{
    bench_compare, bench_report, compare_metrics, gate_self_test, load_bench, BenchReportOptions,
    CompareError, BENCH_SCHEMA_VERSION,
};
use finbench_telemetry::json::{self, Json};
use std::path::PathBuf;
use std::sync::OnceLock;

/// One shared real run for the whole test binary — bench-report sweeps
/// every kernel ladder plus the serving lanes, so even the quick mode is
/// a second or two.
fn snapshot_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let dir = std::env::temp_dir().join("finbench_bench_report_it");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_it.json");
        let opts = BenchReportOptions {
            quick: true,
            trials: 1,
            out: Some(out.display().to_string()),
        };
        bench_report(&opts).expect("bench-report run")
    })
}

fn snapshot_doc() -> Json {
    let text = std::fs::read_to_string(snapshot_path()).unwrap();
    json::parse(&text).expect("snapshot parses")
}

fn arr<'a>(doc: &'a Json, key: &str) -> &'a [Json] {
    match doc.get(key) {
        Some(Json::Arr(items)) => items,
        other => panic!("{key}: expected array, got {other:?}"),
    }
}

#[test]
fn snapshot_covers_every_kernel_ladder_and_every_lane() {
    let doc = snapshot_doc();
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_f64),
        Some(BENCH_SCHEMA_VERSION as f64)
    );
    assert_eq!(doc.get("quick"), Some(&Json::Bool(true)));
    assert!(doc.get("cycle_source").and_then(Json::as_str).is_some());
    assert!(doc.get("tsc_ghz").and_then(Json::as_f64).unwrap() > 0.0);

    // Every registry kernel appears, and each of its rungs carries a
    // positive median rate.
    let kernels = arr(&doc, "kernels");
    let mut names: Vec<&str> = kernels
        .iter()
        .map(|k| k.get("name").and_then(Json::as_str).unwrap())
        .collect();
    names.sort_unstable();
    let mut expected = finbench_harness::native::kernel_names();
    expected.sort_unstable();
    assert_eq!(names, expected, "all registry kernels in the snapshot");
    for kernel in kernels {
        let rungs = match kernel.get("rungs") {
            Some(Json::Arr(r)) => r,
            other => panic!("rungs: {other:?}"),
        };
        assert!(!rungs.is_empty());
        for rung in rungs {
            let slug = rung.get("slug").and_then(Json::as_str).unwrap();
            let median = rung.get("median_rate").and_then(Json::as_f64).unwrap();
            assert!(median > 0.0, "{slug} median_rate");
            assert!(rung.get("p95_rate").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(rung.get("median_cpi").and_then(Json::as_f64).is_some());
        }
    }

    // Both serve lanes with their latency percentiles and a peak search.
    let lanes = arr(&doc, "serve");
    let lane_names: Vec<&str> = lanes
        .iter()
        .map(|l| l.get("lane").and_then(Json::as_str).unwrap())
        .collect();
    assert!(lane_names.contains(&"black_scholes"), "{lane_names:?}");
    assert!(lane_names.contains(&"greeks"), "{lane_names:?}");
    for lane in lanes {
        let served = lane.get("served").and_then(Json::as_f64).unwrap();
        assert!(served > 0.0);
        let p50 = lane.get("p50_us").and_then(Json::as_f64).unwrap();
        let p95 = lane.get("p95_us").and_then(Json::as_f64).unwrap();
        let p99 = lane.get("p99_us").and_then(Json::as_f64).unwrap();
        assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(lane
            .get("peak_sustained_hz")
            .and_then(Json::as_f64)
            .is_some());
        assert!(
            lane.get("peak_last_attempted_hz")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
    }

    // Alloc lanes exist for both pricing kernels and the greeks path,
    // with the counter-active flag recorded.
    let allocs = arr(&doc, "allocs");
    let alloc_lanes: Vec<&str> = allocs
        .iter()
        .map(|a| a.get("lane").and_then(Json::as_str).unwrap())
        .collect();
    assert!(alloc_lanes.contains(&"black_scholes"), "{alloc_lanes:?}");
    assert!(alloc_lanes.contains(&"greeks"), "{alloc_lanes:?}");
    assert!(matches!(
        doc.get("alloc_counter_active"),
        Some(Json::Bool(_))
    ));

    // The sweep's own shed counters made it into the snapshot.
    assert!(matches!(doc.get("counters"), Some(Json::Obj(_))));
}

#[test]
fn identical_snapshots_compare_clean_end_to_end() {
    let path = snapshot_path();
    let report = bench_compare(path, path, 10.0).expect("self-compare");
    assert_eq!(report.gated_regressions(), 0, "{}", report.render());
    assert!(report.added.is_empty() && report.removed.is_empty());
    assert!(!report.deltas.is_empty(), "snapshot produced no metrics");
    assert!(report.deltas.iter().any(|d| d.gated), "no gated metrics");
}

#[test]
fn degraded_snapshot_fails_the_gate_end_to_end() {
    let (flagged, gated_total, report) = gate_self_test(snapshot_path(), 10.0).expect("self-test");
    assert!(gated_total > 0);
    assert_eq!(flagged, gated_total, "{}", report.render());
    assert!(report.render().contains("REGRESSED"));
}

#[test]
fn unknown_schema_version_is_a_typed_error_on_a_real_snapshot() {
    let text = std::fs::read_to_string(snapshot_path()).unwrap();
    let bumped = text.replacen(
        &format!("\"schema_version\":{BENCH_SCHEMA_VERSION}"),
        "\"schema_version\":999",
        1,
    );
    assert_ne!(text, bumped, "snapshot should carry its schema version");
    let dir = std::env::temp_dir().join("finbench_bench_report_it");
    let path = dir.join("BENCH_future.json");
    std::fs::write(&path, bumped).unwrap();
    match load_bench(&path) {
        Err(CompareError::UnknownSchema {
            found, supported, ..
        }) => {
            assert_eq!(found, "999");
            assert_eq!(supported, BENCH_SCHEMA_VERSION);
        }
        other => panic!("expected UnknownSchema, got {other:?}"),
    }
}

#[test]
fn quick_full_mismatch_is_refused_end_to_end() {
    let text = std::fs::read_to_string(snapshot_path()).unwrap();
    let full = text.replacen("\"quick\":true", "\"quick\":false", 1);
    assert_ne!(text, full);
    let dir = std::env::temp_dir().join("finbench_bench_report_it");
    let path = dir.join("BENCH_full.json");
    std::fs::write(&path, full).unwrap();
    match bench_compare(snapshot_path(), &path, 10.0) {
        Err(CompareError::Malformed { what, .. }) => {
            assert!(what.contains("mode mismatch"), "{what}")
        }
        other => panic!("expected Malformed mode mismatch, got {other:?}"),
    }
}

#[test]
fn threaded_rungs_are_advisory_everything_else_on_median_is_gated() {
    let doc = load_bench(snapshot_path()).unwrap();
    let medians: Vec<_> = doc
        .metrics
        .iter()
        .filter(|m| m.path.starts_with("native.") && m.path.ends_with(".median_rate"))
        .collect();
    assert!(!medians.is_empty());
    // Gated and advisory medians both exist (the ladders have threaded
    // top rungs), and comparing the snapshot against itself stays clean
    // either way.
    assert!(medians.iter().any(|m| m.gated));
    assert!(medians.iter().any(|m| !m.gated));
    let report = compare_metrics(&doc.metrics, &doc.metrics, 0.0);
    assert_eq!(report.gated_regressions(), 0);
}
