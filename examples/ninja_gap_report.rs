//! The full paper regeneration in one shot: every modeled table and
//! figure plus the native optimization ladders, equivalent to
//! `finbench all --quick`.
//!
//! ```text
//! cargo run --release --example ninja_gap_report
//! ```

use finbench::harness::{run_experiment, RunOptions, EXPERIMENTS};

fn main() {
    let opts = RunOptions {
        quick: true,
        ..RunOptions::default()
    };
    for id in EXPERIMENTS {
        assert!(run_experiment(id, &opts), "experiment {id} must exist");
    }
    println!("\nAll {} experiments regenerated.", EXPERIMENTS.len());
}
