//! Path-dependent pricing: an arithmetic-average Asian option priced by
//! Monte Carlo over Brownian-bridge-constructed paths, exercising the
//! bridge's cache-to-cache fusion and the independent stream family.
//!
//! The asset path is geometric Brownian motion sampled at 64 dates; the
//! payoff depends on the *average* price, so the whole path matters —
//! exactly the workload the paper says the bridge kernel feeds
//! ("the computed Brownian sequence is to be used immediately and
//! discarded").
//!
//! ```text
//! cargo run --release --example asian_option_mc
//! ```

use finbench::core::black_scholes::price_single;
use finbench::core::brownian_bridge::{interleaved::simulate_fused, BridgePlan};
use finbench::core::workload::MarketParams;
use finbench::rng::StreamFamily;
use finbench::simd::F64v;

fn main() {
    let market = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };
    let (s0, k, t) = (100.0, 100.0, 1.0);
    let n_paths = 262_144;

    let plan = BridgePlan::new(6, t); // 64 monitoring dates
    let fam = StreamFamily::new(20260707);

    // Fused consumer: map each Wiener path to the Asian call payoff.
    // Lane-parallel: path[k] holds W(t_k) for 8 paths at once.
    let steps = plan.steps();
    let dt = t / steps as f64;
    let drift: Vec<f64> = (1..=steps)
        .map(|kk| (market.r - 0.5 * market.sigma * market.sigma) * (kk as f64 * dt))
        .collect();

    let mut payoffs = vec![0.0; n_paths];
    let t0 = std::time::Instant::now();
    simulate_fused::<8>(&plan, &fam, n_paths, &mut payoffs, |path| {
        // Average S over the monitoring dates, then the call payoff.
        let mut avg = F64v::<8>::zero();
        for (kk, w) in path[1..].iter().enumerate() {
            let log_s = *w * market.sigma + drift[kk];
            avg += finbench::simd::math::vexp(log_s) * s0;
        }
        avg *= 1.0 / steps as f64;
        (avg - F64v::splat(k)).max(F64v::zero())
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let disc = (-market.r * t).exp();
    let mean: f64 = payoffs.iter().sum::<f64>() / n_paths as f64;
    let var: f64 = payoffs.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n_paths as f64;
    let price = disc * mean;
    let se = disc * (var / n_paths as f64).sqrt();

    println!("Arithmetic Asian call, S0={s0} K={k} T={t}, 64 monitoring dates");
    println!("  paths            : {n_paths}");
    println!("  price            : {price:.4} +/- {:.4} (1 sigma)", se);
    println!(
        "  throughput       : {:.2} Mpaths/s (bridge + payoff fused)",
        n_paths as f64 / elapsed / 1e6
    );

    // Sanity anchors: the Asian call is worth less than the European call
    // (averaging reduces volatility) but is positive.
    let (euro, _) = price_single(s0, k, t, market);
    println!("\n  European call    : {euro:.4}  (Asian must be below)");
    assert!(price > 0.0 && price < euro);

    // A second anchor: the *geometric* Asian call has a closed form
    // (Black-Scholes with adjusted vol/drift); the arithmetic price must
    // exceed it (AM-GM).
    let sig_g = market.sigma
        * ((steps as f64 + 1.0) * (2.0 * steps as f64 + 1.0) / (6.0 * steps as f64 * steps as f64))
            .sqrt();
    let mu_g = 0.5 * (market.r - 0.5 * market.sigma * market.sigma) * (steps as f64 + 1.0)
        / steps as f64
        + 0.5 * sig_g * sig_g;
    // Closed form: Call_geo = e^{(mu_g - r)T} * BS_call(S0, K, T; r=mu_g,
    // sigma=sig_g) — Black-Scholes under the adjusted drift, re-discounted
    // at the real rate.
    let m_g = MarketParams {
        r: mu_g,
        sigma: sig_g,
    };
    let (geo_raw, _) = price_single(s0, k, t, m_g);
    let geo = geo_raw * ((mu_g - market.r) * t).exp();
    println!("  Geometric anchor : {geo:.4}  (arithmetic should exceed)");
    assert!(price > geo - 3.0 * se);
}
