//! American option pricing: the binomial lattice and the Crank-Nicolson
//! PSOR solver price the same contracts; this example compares them,
//! traces the early-exercise boundary, and shows the wavefront PSOR
//! variants agreeing with the scalar solver.
//!
//! ```text
//! cargo run --release --example american_options
//! ```

use finbench::core::binomial::american::{early_exercise_premium, price_american};
use finbench::core::crank_nicolson::{CnProblem, PsorKind};
use finbench::core::workload::MarketParams;

fn main() {
    let market = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };
    let (k, t) = (100.0, 1.0);

    println!(
        "American puts, K={k} T={t}, r={}, sigma={}\n",
        market.r, market.sigma
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "spot", "binomial", "CN scalar", "CN wavefront", "premium"
    );

    let prob = CnProblem::paper(market, t);
    let sol_ref = prob.solve(PsorKind::Reference);
    let sol_wave = prob.solve(PsorKind::WavefrontSoa);

    for s in [60.0, 70.0, 80.0, 90.0, 100.0, 110.0, 120.0, 140.0] {
        let bin = price_american::<f64>(s, k, t, market, 2000, false);
        let cn_r = sol_ref.price(s, k);
        let cn_w = sol_wave.price(s, k);
        let prem = early_exercise_premium(s, k, t, market, 2000, false);
        println!("{s:>8.0} {bin:>12.4} {cn_r:>12.4} {cn_w:>12.4} {prem:>10.4}");
    }

    println!(
        "\nPSOR iterations: scalar {} vs wavefront {}",
        sol_ref.psor_iterations, sol_wave.psor_iterations
    );

    // Early-exercise boundary: the largest spot at which immediate
    // exercise is optimal (price == intrinsic), scanned on the lattice.
    let mut boundary = 0.0;
    let mut s = 60.0;
    while s <= 100.0 {
        let p = price_american::<f64>(s, k, t, market, 1000, false);
        if (p - (k - s)).abs() < 1e-4 {
            boundary = s;
        }
        s += 0.5;
    }
    println!("early-exercise boundary at expiry-1y: S* ~ {boundary:.1}");

    // Rate sensitivity of the premium.
    println!("\npremium vs interest rate (S=K={k}):");
    for r in [0.01, 0.03, 0.05, 0.08] {
        let m = MarketParams {
            r,
            sigma: market.sigma,
        };
        let prem = early_exercise_premium(100.0, k, t, m, 1000, false);
        println!("  r={r:.2}: premium {prem:.4}");
    }
}
