//! Portfolio pricing: run the full Black-Scholes optimization ladder over
//! a million-option book, then compute greeks and round-trip implied
//! volatilities — the risk-management workload the paper's introduction
//! motivates.
//!
//! ```text
//! cargo run --release --example portfolio_pricing
//! ```

use finbench::core::black_scholes::{reference, soa, vml};
use finbench::core::greeks::{greeks, implied_vol, OptionType};
use finbench::core::workload::{MarketParams, OptionBatchSoa, WorkloadRanges};
use std::time::Instant;

fn main() {
    let n = 1_000_000;
    let market = MarketParams {
        r: 0.03,
        sigma: 0.25,
    };
    println!(
        "Pricing a book of {n} European options (r={}, sigma={})\n",
        market.r, market.sigma
    );

    let batch0 = OptionBatchSoa::random(n, 2026, WorkloadRanges::default());

    let time = |label: &str, f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{label:<38} {:>8.1} ms  ({:>6.1} Mopts/s)",
            dt * 1e3,
            n as f64 / dt / 1e6
        );
    };

    let mut aos = batch0.to_aos();
    time("basic: scalar AOS reference", &mut || {
        reference::price_aos::<f64>(&mut aos, market)
    });

    let mut b = batch0.clone();
    time("intermediate: SIMD across options", &mut || {
        soa::price_soa_simd::<8>(&mut b, market)
    });

    let mut b2 = batch0.clone();
    time("advanced: erf + call/put parity", &mut || {
        soa::price_soa_simd_erf_parity::<8>(&mut b2, market)
    });

    let mut b3 = batch0.clone();
    let mut ws = vml::VmlWorkspace::with_capacity(n);
    time("advanced: VML-style batch math", &mut || {
        vml::price_soa_vml(&mut b3, market, &mut ws)
    });

    let mut b4 = batch0.clone();
    time("advanced + own-pool threads", &mut || {
        soa::par_price_soa::<8>(&mut b4, market, 8192)
    });

    // Cross-check the levels against each other.
    let max_diff = (0..n)
        .map(|i| {
            (b.call[i] - b2.call[i])
                .abs()
                .max((b.call[i] - b3.call[i]).abs())
        })
        .fold(0.0f64, f64::max);
    println!("\nmax |call| disagreement across levels: {max_diff:.2e}");

    // Portfolio risk: aggregate greeks over a slice of the book.
    let mut net_delta = 0.0;
    let mut net_vega = 0.0;
    for i in 0..10_000 {
        let g = greeks(OptionType::Call, b.s[i], b.x[i], b.t[i], market);
        net_delta += g.delta;
        net_vega += g.vega;
    }
    println!("first 10k options: net delta {net_delta:.1}, net vega {net_vega:.1}");

    // Implied-vol round trip on a sample.
    let mut recovered = 0;
    for i in (0..n).step_by(n / 1000) {
        if let Some(iv) = implied_vol(
            OptionType::Call,
            b.call[i],
            b.s[i],
            b.x[i],
            b.t[i],
            market.r,
        ) {
            if (iv - market.sigma).abs() < 1e-6 {
                recovered += 1;
            }
        }
    }
    println!("implied vol recovered exactly on {recovered}/1001 sampled quotes");
}
