//! Quickstart: price one European option five ways and watch every
//! numerical method converge to the Black-Scholes closed form.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use finbench::core::binomial;
use finbench::core::black_scholes::price_single;
use finbench::core::crank_nicolson::{self, PsorKind};
use finbench::core::monte_carlo::{reference::paths_streamed, GbmTerminal};
use finbench::core::workload::MarketParams;
use finbench::rng::{normal::fill_standard_normal_icdf, Mt19937_64};

fn main() {
    // The contract: a 1-year at-the-money put on a $100 stock,
    // 20% vol, 5% rates.
    let (s, k, t) = (100.0, 100.0, 1.0);
    let market = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };

    println!(
        "European put, S={s} K={k} T={t}, r={}, sigma={}\n",
        market.r, market.sigma
    );

    // 1. Closed form (the oracle).
    let (_, bs_put) = price_single(s, k, t, market);
    println!("Black-Scholes closed form : {bs_put:.6}");

    // 2. Binomial lattice, increasing resolution.
    for n in [64, 256, 1024] {
        let p = binomial::reference::price_european(s, k, t, market, n, false);
        println!(
            "Binomial tree (N={n:>5})   : {p:.6}  (err {:+.2e})",
            p - bs_put
        );
    }

    // 3. Crank-Nicolson finite differences (European mode).
    let cn = crank_nicolson::price_put(s, k, t, market, PsorKind::Reference, false);
    println!(
        "Crank-Nicolson (256x1000) : {cn:.6}  (err {:+.2e})",
        cn - bs_put
    );

    // 4. Monte Carlo with a seeded normal stream.
    let mut rng = Mt19937_64::new(42);
    let mut randoms = vec![0.0; 500_000];
    fill_standard_normal_icdf(&mut rng, &mut randoms);
    let g = GbmTerminal::new(t, market);
    // Put payoff via parity of the sampled call: price the call then use
    // parity — or sample the put directly by flipping the payoff; here we
    // price the call and apply parity.
    let sums = paths_streamed::<f64>(s, k, g, &randoms);
    let (mc_call, se) = sums.price(market.r, t);
    let mc_put = mc_call - s + k * (-market.r * t).exp();
    println!("Monte Carlo (500k paths)  : {mc_put:.6}  (stderr {se:.4})");

    // 5. American flavour: the early-exercise premium.
    let am = binomial::american::price_american::<f64>(s, k, t, market, 1024, false);
    println!("\nAmerican put (binomial)   : {am:.6}");
    println!("Early-exercise premium    : {:.6}", am - bs_put);

    let cn_am = crank_nicolson::price_put(s, k, t, market, PsorKind::WavefrontSoa, true);
    println!("American put (CN + PSOR)  : {cn_am:.6}");

    let lsm =
        finbench::core::monte_carlo::lsm::price_american_put_lsm(s, k, t, market, 100_000, 50, 42);
    println!(
        "American put (LSM MC)     : {:.6}  (stderr {:.4})",
        lsm.price, lsm.std_error
    );
}
