//! Quasi-Monte-Carlo convergence study: price a geometric Asian call
//! (exact closed form available) with scrambled-Halton-driven Brownian
//! bridges versus plain pseudo-random Monte Carlo, sweeping the path
//! budget. QMC through the bridge converges visibly faster — the reason
//! the bridge kernel earns its place in the paper's benchmark.
//!
//! ```text
//! cargo run --release --example qmc_convergence
//! ```

use finbench::core::black_scholes::price_single;
use finbench::core::brownian_bridge::{qmc::build_paths_qmc, reference::build_paths, BridgePlan};
use finbench::core::workload::MarketParams;
use finbench::math::{exp, ln};
use finbench::rng::{normal::fill_standard_normal_icdf, Mt19937_64};

const M: MarketParams = MarketParams {
    r: 0.05,
    sigma: 0.2,
};
const S0: f64 = 100.0;
const K: f64 = 100.0;
const T: f64 = 1.0;

fn geometric_asian_exact(steps: usize) -> f64 {
    let nf = steps as f64;
    let sig_g = M.sigma * ((nf + 1.0) * (2.0 * nf + 1.0) / (6.0 * nf * nf)).sqrt();
    let mu_g = 0.5 * (M.r - 0.5 * M.sigma * M.sigma) * (nf + 1.0) / nf + 0.5 * sig_g * sig_g;
    let (raw, _) = price_single(
        S0,
        K,
        T,
        MarketParams {
            r: mu_g,
            sigma: sig_g,
        },
    );
    raw * exp((mu_g - M.r) * T)
}

fn price_from_paths(paths: &[f64], plan: &BridgePlan) -> f64 {
    let points = plan.points();
    let steps = plan.steps();
    let dt = T / steps as f64;
    let drift = M.r - 0.5 * M.sigma * M.sigma;
    let n_paths = paths.len() / points;
    let mut sum = 0.0;
    for p in 0..n_paths {
        let row = &paths[p * points..(p + 1) * points];
        let mut mean_log = 0.0;
        for (kk, w) in row[1..].iter().enumerate() {
            mean_log += drift * ((kk + 1) as f64 * dt) + M.sigma * w;
        }
        mean_log = mean_log / steps as f64 + ln(S0);
        sum += (exp(mean_log) - K).max(0.0);
    }
    exp(-M.r * T) * sum / n_paths as f64
}

fn main() {
    let plan = BridgePlan::new(6, T); // 64 monitoring dates
    let exact = geometric_asian_exact(plan.steps());
    println!("Geometric Asian call, 64 dates; exact price {exact:.6}\n");
    println!(
        "{:>9} {:>14} {:>14} {:>8}",
        "paths", "|QMC error|", "|MC error|", "ratio"
    );

    let per = plan.randoms_per_path();
    for exp2 in [9usize, 11, 13, 15] {
        let n = 1usize << exp2;
        let mut qmc_paths = vec![0.0; n * plan.points()];
        build_paths_qmc(&plan, 0, &mut qmc_paths, n);
        let qmc_err = (price_from_paths(&qmc_paths, &plan) - exact).abs();

        // MC error averaged over 5 seeds (a single draw is too noisy to
        // display).
        let mut mc_err = 0.0;
        for seed in 1..=5u64 {
            let mut rng = Mt19937_64::new(seed);
            let mut randoms = vec![0.0; n * per];
            fill_standard_normal_icdf(&mut rng, &mut randoms);
            let mut paths = vec![0.0; n * plan.points()];
            build_paths::<f64>(&plan, &randoms, &mut paths, n);
            mc_err += (price_from_paths(&paths, &plan) - exact).abs();
        }
        mc_err /= 5.0;

        println!(
            "{n:>9} {qmc_err:>14.6} {mc_err:>14.6} {:>7.1}x",
            mc_err / qmc_err.max(1e-12)
        );
    }

    println!("\nQMC error decays ~n^-1 (vs n^-1/2 for MC) thanks to the bridge's");
    println!("variance concentration into the leading Halton dimensions.");
}
