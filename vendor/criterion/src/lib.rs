//! Offline stand-in for the `criterion` crate.
//!
//! The build host has no crates.io access, so this workspace vendors a
//! dependency-free implementation of the criterion API surface the bench
//! targets use: `Criterion::benchmark_group`, the group builder methods
//! (`throughput`, `sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: an untimed warm-up loop followed by
//! a timed loop, reporting the mean time per iteration and (when a
//! [`Throughput`] is set) the derived rate. When the binary is run with a
//! `--test` argument — what `cargo test` passes to `harness = false`
//! targets — every routine runs exactly once so the benches act as smoke
//! tests instead of burning CI time.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Work-per-iteration declaration used to derive a rate from the mean
/// iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; ignored by this implementation
/// (setup is always untimed, per-iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// A function-plus-parameter benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching criterion's display form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness = false bench targets with `--test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            throughput: None,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(600),
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing throughput and timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
    // Tie the group's lifetime to the Criterion borrow like upstream does.
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declare the work performed by one iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Untimed warm-up duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Timed measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.test_mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: None,
        };
        f(&mut b);
        self.report(&id, b.mean_ns);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, mean_ns: Option<f64>) {
        let full = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        match mean_ns {
            None => println!("bench {full}: ok (test mode, 1 iteration)"),
            Some(ns) => {
                let rate = self.throughput.map(|t| {
                    let (n, unit) = match t {
                        Throughput::Elements(n) => (n, "elem/s"),
                        Throughput::Bytes(n) => (n, "B/s"),
                    };
                    format!(" ({:.3e} {unit})", n as f64 / (ns * 1e-9))
                });
                println!("bench {full}: {ns:.1} ns/iter{}", rate.unwrap_or_default());
            }
        }
    }
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let mut iters = 0u64;
        let t0 = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if t0.elapsed() >= self.measurement {
                break;
            }
        }
        self.mean_ns = Some(t0.elapsed().as_nanos() as f64 / iters as f64);
    }

    /// Time `routine` with a fresh untimed `setup` product per call.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        let wall0 = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            busy += t0.elapsed();
            iters += 1;
            if wall0.elapsed() >= self.measurement {
                break;
            }
        }
        self.mean_ns = Some(busy.as_nanos() as f64 / iters as f64);
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $(
                $target(&mut c);
            )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u32;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("f", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls >= 1);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut b = Bencher {
            test_mode: true,
            warm_up: Duration::ZERO,
            measurement: Duration::ZERO,
            mean_ns: None,
        };
        b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::LargeInput);
        assert!(b.mean_ns.is_none()); // test mode records nothing
    }

    #[test]
    fn benchmark_id_display_form() {
        let id = BenchmarkId::new("kernel", 1024);
        assert_eq!(id.id, "kernel/1024");
    }
}
