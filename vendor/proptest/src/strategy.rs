//! The [`Strategy`] trait and the built-in strategies the suite uses:
//! numeric ranges, tuples, fixed-size arrays, and `prop_map` adapters.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        self.start + rng.next_below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        self.start + rng.next_below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        self.start + rng.next_below((self.end - self.start) as u64) as u32
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        self.start + rng.next_below((self.end as i64 - self.start as i64) as u64) as i32
    }
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (2.0f64..5.0).generate(&mut r);
            assert!((2.0..5.0).contains(&x));
            let n = (3u64..17).generate(&mut r);
            assert!((3..17).contains(&n));
            let m = (1usize..4).generate(&mut r);
            assert!((1..4).contains(&m));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut r = rng();
        let s = (0.0f64..1.0, 10u64..20).prop_map(|(a, b)| a + b as f64);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((10.0..21.0).contains(&v));
        }
    }

    #[test]
    fn arrays_generate_elementwise() {
        let mut r = rng();
        let arr = [0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0].generate(&mut r);
        assert!(arr.iter().all(|x| (0.0..1.0).contains(x)));
    }
}
