//! Offline stand-in for the `proptest` crate.
//!
//! The build host has no crates.io access, so this workspace vendors a
//! minimal, dependency-free implementation of the `proptest` API surface
//! the test suite actually uses: the [`Strategy`] trait (ranges, tuples,
//! fixed-size arrays, `prop_map`, `collection::vec`), the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * Inputs are drawn from a SplitMix64 stream seeded by a hash of the
//!   test's module path and name, so every run of a given test sees the
//!   same case sequence — failures reproduce without a persistence file.
//! * There is no shrinking; the failing input values are reported as-is
//!   (the case index identifies the exact inputs deterministically).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The subset of `proptest::prelude` the suite uses.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: an optional inner `proptest_config` attribute
/// followed by `#[test]` functions whose arguments are drawn from
/// strategies with `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Expansion helper for [`proptest!`] — the config expression is bound
/// exactly once here, so it can be referenced from inside the per-test
/// repetition.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        @cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    )*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest case #{} of {} failed: {}",
                            __case,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body; failure aborts the
/// current case with a descriptive error instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}
