//! Deterministic case generation and failure reporting.

/// Per-test run configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed test case (carries the assertion message).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64 input stream, seeded from the test's fully-qualified name so
/// each test sees a reproducible case sequence on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)` from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_name("x::z");
        assert_ne!(TestRng::from_name("x::y").next_u64(), c.next_u64());
    }

    #[test]
    fn unit_doubles_in_range() {
        let mut r = TestRng::from_name("unit");
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
