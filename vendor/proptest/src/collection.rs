//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification for collection strategies: either exact or a
/// half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from `element` with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_name("collection-tests");
        let exact = vec(0.0f64..1.0, 8).generate(&mut rng);
        assert_eq!(exact.len(), 8);
        for _ in 0..200 {
            let v = vec(0usize..10, 3..6).generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
