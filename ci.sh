#!/usr/bin/env bash
# Full local CI gate: build, test, format, lint. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> engine registry consistency"
cargo test -q -p finbench --test engine_plane
cargo test -q -p finbench-core --lib engine::

echo "==> serve-bench smoke gate (zero shed + shard scaling)"
serve_out=$(cargo run --release -q -p finbench-harness --bin finbench -- serve-bench --quick)
echo "$serve_out" | tail -3
echo "$serve_out" | grep -q "total shed: 0" || {
  echo "serve-bench shed requests under a zero-shed configuration" >&2
  exit 1
}
# The sharded tier must demonstrate closed-loop scaling. Real speedup
# needs real parallelism: enforce the 2-shard >= 1.3x ratio only when
# the host has >= 2 cores; on smaller boxes just require that the sweep
# ran (the shed gate above already covers its correctness).
scaling_line=$(echo "$serve_out" | grep "shard scaling 1->2:" || true)
if [ -z "$scaling_line" ]; then
  echo "serve-bench did not run the shard-scaling sweep" >&2
  exit 1
fi
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 2 ]; then
  speedup=$(echo "$scaling_line" | sed -n 's/.*: \([0-9.]*\)x/\1/p')
  awk -v s="$speedup" 'BEGIN { exit !(s >= 1.3) }' || {
    echo "shard scaling 1->2 below 1.3x on a ${cores}-core host: ${speedup}x" >&2
    exit 1
  }
  echo "--> shard scaling 1->2: ${speedup}x (>= 1.3x on ${cores} cores)"
else
  echo "--> 1-core host: shard-scaling ratio check skipped (${scaling_line#"${scaling_line%%[![:space:]]*}"})"
fi

echo "==> chaos gate (faults degrade, never corrupt; shard kill survivable)"
chaos_out=$(cargo run --release -q -p finbench-harness --bin finbench -- chaos-bench --quick)
echo "$chaos_out" | grep -E "corrupted prices|degraded batches|shard-kill"
echo "$chaos_out" | grep -q "corrupted prices: 0" || {
  echo "chaos-bench found corrupted prices under fault injection" >&2
  exit 1
}
if echo "$chaos_out" | grep -q "degraded batches: 0"; then
  echo "chaos-bench never exercised the degradation ladder (degraded batches: 0)" >&2
  exit 1
fi
# Killing one of two shards must leave a serving survivor and keep
# availability above the SLO floor: the router reroutes, it never
# corrupts (the zero-corruption grep above covers the kill plan too).
echo "$chaos_out" | grep -q "shard-kill survivors: 1/2 shards alive" || {
  echo "chaos-bench shard-kill plan did not leave exactly one survivor" >&2
  exit 1
}
kill_avail=$(echo "$chaos_out" | sed -n 's/.*shard-kill availability: \([0-9.]*\)%.*/\1/p')
awk -v a="$kill_avail" 'BEGIN { exit !(a >= 90.0) }' || {
  echo "shard-kill availability ${kill_avail}% below the 90% floor" >&2
  exit 1
}
# Self-healing: the rolling-kill plan must see the supervisor respawn
# every killed seat, and the healed fleet must serve >= 99% of the
# post-recovery drive (the zero-corruption grep above covers both
# phases of the rolling panel too).
echo "$chaos_out" | grep "rolling-kill"
respawns=$(echo "$chaos_out" | sed -n 's/.*rolling-kill respawns: \([0-9]*\).*/\1/p')
if [ -z "$respawns" ] || [ "$respawns" -lt 1 ]; then
  echo "chaos-bench rolling-kill plan saw no supervised respawns" >&2
  exit 1
fi
heal_avail=$(echo "$chaos_out" | sed -n 's/.*rolling-kill post-recovery availability: \([0-9.]*\)%.*/\1/p')
awk -v a="$heal_avail" 'BEGIN { exit !(a >= 99.0) }' || {
  echo "post-recovery availability ${heal_avail}% below the 99% floor" >&2
  exit 1
}

echo "==> greeks gate (bump agreement + zero shed on the greeks lane)"
greeks_out=$(cargo run --release -q -p finbench-harness --bin finbench -- greeks-bench --quick)
echo "$greeks_out" | grep -E "bump agreement|total shed"
echo "$greeks_out" | grep -q "bump agreement: OK" || {
  echo "greeks-bench: bump-and-reprice disagrees with the analytic greeks" >&2
  exit 1
}
echo "$greeks_out" | grep -q "total shed: 0" || {
  echo "greeks-bench shed requests under a zero-shed configuration" >&2
  exit 1
}

echo "==> portfolio gate (served fan-out bit-identical to native; VaR converges)"
portfolio_out=$(cargo run --release -q -p finbench-harness --bin finbench -- portfolio-bench --quick)
echo "$portfolio_out" | grep -E "portfolio replay|portfolio var check"
echo "$portfolio_out" | grep -q "portfolio replay: OK" || {
  echo "portfolio-bench: served fan-out P&L diverged from the native sweep" >&2
  exit 1
}
echo "$portfolio_out" | grep -q "portfolio var check: OK" || {
  echo "portfolio-bench: VaR estimates did not converge to the reference grid" >&2
  exit 1
}

echo "==> perf-regression gate (bench-report vs committed trajectory)"
# Compare a fresh quick snapshot against the latest committed BENCH_<n>.json.
# Gated metrics (non-threaded rung medians, serve shed, allocs/iter) fail CI
# past the threshold; latency/peak metrics are advisory. Override with e.g.
# FINBENCH_BENCH_THRESHOLD=15 on noisy machines.
bench_threshold="${FINBENCH_BENCH_THRESHOLD:-10}"
latest_bench=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
bench_tmp=$(mktemp -t finbench_bench_XXXXXX.json)
trap 'rm -f "$bench_tmp"' EXIT
bench_out=$(cargo run --release -q -p finbench-harness --bin finbench -- bench-report --quick --out "$bench_tmp")
echo "$bench_out"

echo "==> zero-alloc gate (steady-state serve batch paths)"
# Every pooled (steady-state serve) alloc lane must report exactly zero
# allocations per batch iteration: the *_into buffer-pool path promises
# an allocation-free hot loop, not just a cheap one.
alloc_gate_lines=$(echo "$bench_out" | grep 'alloc-gate' || true)
if [ -z "$alloc_gate_lines" ]; then
  echo "bench-report emitted no alloc-gate lines (counting allocator inactive?)" >&2
  exit 1
fi
echo "$alloc_gate_lines"
nonzero=$(echo "$alloc_gate_lines" | grep -v 'allocs_per_iter=0.0' || true)
if [ -n "$nonzero" ]; then
  echo "steady-state serve batch paths allocated:" >&2
  echo "$nonzero" >&2
  exit 1
fi
# Print the metric names a compare run flagged as REGRESSED.
regressed_metrics() {
  awk -F'|' '/REGRESSED/ { gsub(/ /, "", $2); print $2 }'
}
if [ -n "$latest_bench" ]; then
  echo "--> bench-compare $latest_bench vs fresh snapshot (threshold ${bench_threshold}%)"
  # Shared boxes have bursty noise windows that depress whole groups of
  # kernels at once; a real regression reproduces *on the same metric*,
  # noise lands somewhere else each time. Fail only when a second fresh
  # measurement flags an overlapping metric.
  rc1=0
  out1=$(cargo run --release -q -p finbench-harness --bin finbench -- \
    bench-compare "$latest_bench" "$bench_tmp" --threshold "$bench_threshold") || rc1=$?
  echo "$out1"
  if [ "$rc1" -eq 1 ]; then
    echo "--> gated regression on first measurement; re-measuring once to rule out ambient noise"
    cargo run --release -q -p finbench-harness --bin finbench -- bench-report --quick --out "$bench_tmp"
    rc2=0
    out2=$(cargo run --release -q -p finbench-harness --bin finbench -- \
      bench-compare "$latest_bench" "$bench_tmp" --threshold "$bench_threshold") || rc2=$?
    echo "$out2"
    if [ "$rc2" -eq 1 ]; then
      common=$(comm -12 <(echo "$out1" | regressed_metrics | sort) \
                        <(echo "$out2" | regressed_metrics | sort))
      if [ -n "$common" ]; then
        echo "persistent gated regressions (flagged in both measurements):" >&2
        echo "$common" >&2
        exit 1
      fi
      echo "--> regressions did not reproduce on the same metrics; ambient noise, gate passes"
    elif [ "$rc2" -ne 0 ]; then
      exit "$rc2"
    fi
  elif [ "$rc1" -ne 0 ]; then
    exit "$rc1"
  fi
else
  echo "--> no committed BENCH_<n>.json yet; skipping comparison"
fi

echo "==> regression-gate self-test (gate must fire on a degraded snapshot)"
cargo run --release -q -p finbench-harness --bin finbench -- \
  bench-compare --self-test "$bench_tmp" --threshold "$bench_threshold"

echo "==> examples (quick mode)"
cargo build --release --examples
for ex in quickstart portfolio_pricing american_options asian_option_mc ninja_gap_report qmc_convergence; do
  echo "--> example: $ex"
  FINBENCH_QUICK=1 cargo run --release -q --example "$ex" > /dev/null
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
