#!/usr/bin/env bash
# Full local CI gate: build, test, format, lint. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> engine registry consistency"
cargo test -q -p finbench --test engine_plane
cargo test -q -p finbench-core --lib engine::

echo "==> serve-bench smoke gate (zero shed)"
serve_out=$(cargo run --release -q -p finbench-harness --bin finbench -- serve-bench --quick)
echo "$serve_out" | tail -3
echo "$serve_out" | grep -q "total shed: 0" || {
  echo "serve-bench shed requests under a zero-shed configuration" >&2
  exit 1
}

echo "==> chaos gate (faults degrade, never corrupt)"
chaos_out=$(cargo run --release -q -p finbench-harness --bin finbench -- chaos-bench --quick)
echo "$chaos_out" | grep -E "corrupted prices|degraded batches"
echo "$chaos_out" | grep -q "corrupted prices: 0" || {
  echo "chaos-bench found corrupted prices under fault injection" >&2
  exit 1
}
if echo "$chaos_out" | grep -q "degraded batches: 0"; then
  echo "chaos-bench never exercised the degradation ladder (degraded batches: 0)" >&2
  exit 1
fi

echo "==> greeks gate (bump agreement + zero shed on the greeks lane)"
greeks_out=$(cargo run --release -q -p finbench-harness --bin finbench -- greeks-bench --quick)
echo "$greeks_out" | grep -E "bump agreement|total shed"
echo "$greeks_out" | grep -q "bump agreement: OK" || {
  echo "greeks-bench: bump-and-reprice disagrees with the analytic greeks" >&2
  exit 1
}
echo "$greeks_out" | grep -q "total shed: 0" || {
  echo "greeks-bench shed requests under a zero-shed configuration" >&2
  exit 1
}

echo "==> perf-regression gate (bench-report vs committed trajectory)"
# Compare a fresh quick snapshot against the latest committed BENCH_<n>.json.
# Gated metrics (non-threaded rung medians, serve shed, allocs/iter) fail CI
# past the threshold; latency/peak metrics are advisory. Override with e.g.
# FINBENCH_BENCH_THRESHOLD=15 on noisy machines.
bench_threshold="${FINBENCH_BENCH_THRESHOLD:-10}"
latest_bench=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
bench_tmp=$(mktemp -t finbench_bench_XXXXXX.json)
trap 'rm -f "$bench_tmp"' EXIT
cargo run --release -q -p finbench-harness --bin finbench -- bench-report --quick --out "$bench_tmp"
if [ -n "$latest_bench" ]; then
  echo "--> bench-compare $latest_bench vs fresh snapshot (threshold ${bench_threshold}%)"
  cargo run --release -q -p finbench-harness --bin finbench -- \
    bench-compare "$latest_bench" "$bench_tmp" --threshold "$bench_threshold"
else
  echo "--> no committed BENCH_<n>.json yet; skipping comparison"
fi

echo "==> regression-gate self-test (gate must fire on a degraded snapshot)"
cargo run --release -q -p finbench-harness --bin finbench -- \
  bench-compare --self-test "$bench_tmp" --threshold "$bench_threshold"

echo "==> examples (quick mode)"
cargo build --release --examples
for ex in quickstart portfolio_pricing american_options asian_option_mc ninja_gap_report qmc_convergence; do
  echo "--> example: $ex"
  FINBENCH_QUICK=1 cargo run --release -q --example "$ex" > /dev/null
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
