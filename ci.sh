#!/usr/bin/env bash
# Full local CI gate: build, test, format, lint. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> engine registry consistency"
cargo test -q -p finbench --test engine_plane
cargo test -q -p finbench-core --lib engine::

echo "==> serve-bench smoke gate (zero shed)"
serve_out=$(cargo run --release -q -p finbench-harness --bin finbench -- serve-bench --quick)
echo "$serve_out" | tail -3
echo "$serve_out" | grep -q "total shed: 0" || {
  echo "serve-bench shed requests under a zero-shed configuration" >&2
  exit 1
}

echo "==> chaos gate (faults degrade, never corrupt)"
chaos_out=$(cargo run --release -q -p finbench-harness --bin finbench -- chaos-bench --quick)
echo "$chaos_out" | grep -E "corrupted prices|degraded batches"
echo "$chaos_out" | grep -q "corrupted prices: 0" || {
  echo "chaos-bench found corrupted prices under fault injection" >&2
  exit 1
}
if echo "$chaos_out" | grep -q "degraded batches: 0"; then
  echo "chaos-bench never exercised the degradation ladder (degraded batches: 0)" >&2
  exit 1
fi

echo "==> greeks gate (bump agreement + zero shed on the greeks lane)"
greeks_out=$(cargo run --release -q -p finbench-harness --bin finbench -- greeks-bench --quick)
echo "$greeks_out" | grep -E "bump agreement|total shed"
echo "$greeks_out" | grep -q "bump agreement: OK" || {
  echo "greeks-bench: bump-and-reprice disagrees with the analytic greeks" >&2
  exit 1
}
echo "$greeks_out" | grep -q "total shed: 0" || {
  echo "greeks-bench shed requests under a zero-shed configuration" >&2
  exit 1
}

echo "==> examples (quick mode)"
cargo build --release --examples
for ex in quickstart portfolio_pricing american_options asian_option_mc ninja_gap_report qmc_convergence; do
  echo "--> example: $ex"
  FINBENCH_QUICK=1 cargo run --release -q --example "$ex" > /dev/null
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
