//! Calibrated cost descriptors: one [`LevelCost`] per kernel per
//! optimization level per architecture.
//!
//! Structural fields (flops, transcendental mix, bytes) restate the
//! paper's own accounting — Black-Scholes streams 24 B in / 16 B out and
//! calls one `ln`, one `exp` and four `cnd` (two `erf` after the advanced
//! substitution); the binomial reduction is `3·N(N+1)/2` flops; the
//! 64-step bridge consumes 64 normals (512 B) and emits 65 points
//! (520 B); a Monte-Carlo path-step is ~7 flops + one `exp`;
//! Crank-Nicolson does ~7 flops per PSOR node visit. These inputs are
//! audited against `CountedF64` runs of the real kernels in this module's
//! tests.
//!
//! Efficiency fields (`width_frac`, `ilp`, `overhead`, `gather_lines`)
//! are calibrated so the modeled bars land on the bars the paper reports;
//! every calibrated claim is pinned by a test, so the calibration cannot
//! drift silently. See EXPERIMENTS.md for model-vs-paper values.

use crate::arch::{ArchSpec, Issue};
use crate::cost::LevelCost;

/// Which of the two modeled testbeds a spec describes.
fn is_knc(arch: &ArchSpec) -> bool {
    arch.issue == Issue::InOrder
}

/// One labeled rung of a kernel's optimization ladder.
#[derive(Debug, Clone, Copy)]
pub struct Level {
    /// Display label (matches the paper's legend).
    pub label: &'static str,
    /// The cost descriptor.
    pub cost: LevelCost,
}

// ---------------------------------------------------------------------
// Black-Scholes (items = options; Fig. 4, Mopts/s)
// ---------------------------------------------------------------------

/// Black-Scholes ladder: Basic (AOS reference) → Intermediate (AOS→SOA +
/// SIMD) → Advanced (erf + parity; VML on SNB-EP).
pub fn black_scholes(arch: &ArchSpec) -> Vec<Level> {
    let knc = is_knc(arch);
    // 24 B in + 16 B out per option.
    let bytes = 40.0;

    // Basic: the cnd-form kernel — 1 exp, 1 ln + 4 cnd (5 heavies),
    // 1 sqrt + 1 div, ~20 residual flops.
    let basic = LevelCost {
        flops: 20.0,
        exps: 1.0,
        heavies: 5.0,
        // 2 divides (S/X and 1/(sigma sqrt T)) + 1 sqrt.
        slow_ops: 3.0,
        rng_normals: 0.0,
        bytes,
        // SNB-EP: the compiler partially vectorizes the AOS loop
        // (superscalar hides the strided accesses). KNC: fully
        // vectorized but every field access is an 8-line gather and the
        // masked gather sequences blow up the instruction count ("more
        // than 10x increase in the number of instructions").
        width_frac: if knc { 1.0 } else { 0.45 },
        ilp: 0.9,
        gather_lines: if knc { 5.0 } else { 0.0 },
        overhead: if knc { 5.0 } else { 1.0 },
    };

    // Intermediate: SOA layout, unit-stride SIMD, still the cnd form.
    let intermediate = LevelCost {
        width_frac: 1.0,
        gather_lines: 0.0,
        overhead: 1.0,
        ..basic
    };

    // Advanced: cnd -> erf (4 cnd -> 2 erf) + call/put parity; the VML
    // batch form performs identically in the model (same op mix).
    let advanced = LevelCost {
        flops: 15.0,
        heavies: 3.0, // 2 erf + 1 ln
        ..intermediate
    };

    vec![
        Level {
            label: "Basic (reference AOS)",
            cost: basic,
        },
        Level {
            label: "Intermediate (AOS->SOA + SIMD)",
            cost: intermediate,
        },
        Level {
            label: "Advanced (erf/parity, VML)",
            cost: advanced,
        },
    ]
}

// ---------------------------------------------------------------------
// Binomial tree (items = options; Fig. 5, Kopts/s)
// ---------------------------------------------------------------------

/// The paper's reduction flop count for an `n`-step tree.
pub fn binomial_flops(n: usize) -> f64 {
    1.5 * n as f64 * (n as f64 + 1.0)
}

/// Binomial ladder at `n` time steps: Basic (inner-loop autovec) →
/// Intermediate (SIMD across options) → Advanced (register tiling) →
/// Advanced+unroll.
pub fn binomial(arch: &ArchSpec, n: usize) -> Vec<Level> {
    let knc = is_knc(arch);
    let flops = binomial_flops(n);
    let mk = |width_frac: f64, ilp: f64| LevelCost {
        width_frac,
        ilp,
        ..LevelCost::flops_only(flops, 0.0)
    };
    // Basic: inner-loop autovectorization; unaligned Call[j+1] loads and
    // the ragged loop tail cap lane utilization, and the 2-flop node
    // recurrence is load/store-latency-bound.
    let basic = if knc { mk(0.95, 0.199) } else { mk(0.9, 0.455) };
    // Intermediate: one option per lane fixes alignment but each node is
    // still a load + store + 3 flops — "hardly improves performance".
    let intermediate = if knc { mk(1.0, 0.22) } else { mk(1.0, 0.46) };
    // Advanced: register tiling — each Call element is loaded/stored once
    // per TS steps, so the recurrence runs from the register file.
    let tiled = if knc { mk(1.0, 0.55) } else { mk(1.0, 0.9) };
    // Unrolling on top: exposes ILP the in-order KNC cannot find itself;
    // the out-of-order SNB-EP already extracts it ("little effect").
    let unrolled = if knc { mk(1.0, 0.75) } else { mk(1.0, 0.92) };
    vec![
        Level {
            label: "Basic (reference)",
            cost: basic,
        },
        Level {
            label: "Intermediate (SIMD across options)",
            cost: intermediate,
        },
        Level {
            label: "Advanced (register tiling)",
            cost: tiled,
        },
        Level {
            label: "Basic unroll (on tiled)",
            cost: unrolled,
        },
    ]
}

// ---------------------------------------------------------------------
// Brownian bridge (items = paths; Fig. 6, Mpaths/s, 64-step DP)
// ---------------------------------------------------------------------

/// Brownian-bridge ladder for a 64-step bridge: Basic → SIMD across paths
/// → interleaved RNG → cache-to-cache fusion.
pub fn brownian_bridge(arch: &ArchSpec) -> Vec<Level> {
    let knc = is_knc(arch);
    // ~5 flops per midpoint x 63 midpoints plus buffer traffic ~ 320.
    let flops = 320.0;
    // Streamed: 64 normals in (512 B) + 65 points out (520 B).
    let bytes_streamed = 1032.0;
    let bytes_interleaved = 520.0; // randoms stay in LLC
    let bytes_fused = 8.0; // one functional value out per path

    let mk = |wf: f64, ilp: f64, ov: f64, bytes: f64| LevelCost {
        width_frac: wf,
        ilp,
        overhead: ov,
        ..LevelCost::flops_only(flops, bytes)
    };
    // Basic: scalar (random consumption pattern defeats the
    // autovectorizer); KNC's in-order scalar pipeline is ~25% slower.
    let basic = if knc {
        mk(0.125, 0.25, 2.0, bytes_streamed)
    } else {
        mk(0.25, 0.30, 1.2, bytes_streamed)
    };
    // Intermediate: one path per lane; compute now outruns DRAM and the
    // kernel is bandwidth-bound on both machines (the ping-ponged
    // src/dst working set keeps lane efficiency modest).
    let simd = if knc {
        mk(1.0, 0.08, 1.0, bytes_streamed)
    } else {
        mk(1.0, 0.12, 1.0, bytes_streamed)
    };
    // Advanced: interleaving the RNG removes the random-stream traffic
    // (slight ILP loss from the staging buffer churn)...
    let interleaved = if knc {
        mk(1.0, 0.07, 1.0, bytes_interleaved)
    } else {
        mk(1.0, 0.105, 1.0, bytes_interleaved)
    };
    // ...and fusing the consumer removes the output stream: compute-bound
    // on both; no FMA in the (mul-heavy) midpoint op, so KNC leads by 2x
    // rather than its 3x flop ratio.
    let fused = if knc {
        mk(1.0, 0.08, 1.0, bytes_fused)
    } else {
        mk(1.0, 0.12, 1.0, bytes_fused)
    };
    vec![
        Level {
            label: "Basic (pragma simd/omp/unroll)",
            cost: basic,
        },
        Level {
            label: "Intermediate (SIMD across paths)",
            cost: simd,
        },
        Level {
            label: "Advanced (interleaved RNG)",
            cost: interleaved,
        },
        Level {
            label: "Advanced (cache-to-cache)",
            cost: fused,
        },
    ]
}

// ---------------------------------------------------------------------
// Monte Carlo (items = paths; Tab. II, options/s at 256k paths)
// ---------------------------------------------------------------------

/// Paths per option in Table II.
pub const MC_PATHS_PER_OPTION: f64 = 262_144.0;

/// Monte-Carlo per-path descriptors: `(streamed RNG, computed RNG)`.
/// Already peak code at the basic level ("only a handful of compiler
/// pragmas are needed").
pub fn monte_carlo(arch: &ArchSpec) -> (LevelCost, LevelCost) {
    let knc = is_knc(arch);
    let streamed = LevelCost {
        flops: 8.0,
        exps: 1.0,
        // The shared random stream is reused by every option, so its DRAM
        // traffic amortizes to ~0 per (option, path) pair.
        bytes: 0.0,
        width_frac: 1.0,
        ilp: if knc { 0.85 } else { 0.75 },
        ..LevelCost::flops_only(0.0, 0.0)
    };
    let computed = LevelCost {
        rng_normals: 1.0,
        ..streamed
    };
    (streamed, computed)
}

/// [`monte_carlo`] as a labeled ladder for the engine's planner.
pub fn monte_carlo_levels(arch: &ArchSpec) -> Vec<Level> {
    let (streamed, computed) = monte_carlo(arch);
    vec![
        Level {
            label: "Streamed RNG",
            cost: streamed,
        },
        Level {
            label: "Computed RNG",
            cost: computed,
        },
    ]
}

// ---------------------------------------------------------------------
// Random number generation (items = numbers; Tab. II rows 3-4, nums/s)
// ---------------------------------------------------------------------

/// RNG ladder: uniform DP (vectorized Mersenne-class generator) and
/// normal DP (uniform + inverse CDF). Both descriptors reduce to the
/// calibrated `*_rng_cpe` constants, so their modeled rates are exactly
/// the Table II rows the constants were fit to. The output buffer is
/// LLC-resident in the benchmark loop, so no DRAM bytes are charged.
pub fn rng(arch: &ArchSpec) -> Vec<Level> {
    // Charge the uniform generator through the flop term: with full lanes
    // and unit ILP, `flops / (2 * width)` cycles/item = `uniform_rng_cpe`.
    let uniform =
        LevelCost::flops_only(2.0 * arch.simd_width_dp as f64 * arch.uniform_rng_cpe, 0.0);
    let normal = LevelCost {
        rng_normals: 1.0,
        ..LevelCost::flops_only(0.0, 0.0)
    };
    vec![
        Level {
            label: "Uniform DP (vector MT)",
            cost: uniform,
        },
        Level {
            label: "Normal DP (ICDF)",
            cost: normal,
        },
    ]
}

// ---------------------------------------------------------------------
// Crank-Nicolson (items = options; Fig. 8, Kopts/s)
// ---------------------------------------------------------------------

/// PSOR node visits per option: interior points × time steps × average
/// PSOR iterations (~8 with the adapted omega).
pub fn cn_nodes_per_option(n_points: usize, n_steps: usize) -> f64 {
    (n_points as f64 - 2.0) * n_steps as f64 * 8.0
}

/// Crank-Nicolson ladder: Basic (scalar PSOR) → Advanced (wavefront
/// manual SIMD) → Advanced (+ data-structure transform).
pub fn crank_nicolson(arch: &ArchSpec, n_points: usize, n_steps: usize) -> Vec<Level> {
    let knc = is_knc(arch);
    let nodes = cn_nodes_per_option(n_points, n_steps);
    let flops = 7.0 * nodes;

    // Basic: scalar Gauss-Seidel — the j -> j+1 dependence chain is
    // latency-bound (~10 cycles per node on SNB-EP; SMT covers part of
    // it on KNC).
    let reference = LevelCost {
        width_frac: if knc { 0.125 } else { 0.25 },
        ilp: if knc { 0.29 } else { 0.34 },
        ..LevelCost::flops_only(flops, 0.0)
    };
    // Wavefront: full lanes, but B/G reads are stride-2 across lanes —
    // each W-node step touches ~W/4 extra cache lines (0.25 lines/node).
    let wavefront = LevelCost {
        width_frac: 1.0,
        ilp: if knc { 0.18 } else { 0.20 },
        gather_lines: 0.25 * nodes,
        ..LevelCost::flops_only(flops, 0.0)
    };
    // Data transform: B/G re-skewed for unit stride; the 10% overhead is
    // the per-timestep skewing pass the paper charges the same way.
    let soa = LevelCost {
        width_frac: 1.0,
        ilp: if knc { 0.171 } else { 0.29 },
        overhead: 1.1,
        ..LevelCost::flops_only(flops, 0.0)
    };
    vec![
        Level {
            label: "Basic (reference)",
            cost: reference,
        },
        Level {
            label: "Advanced (manual SIMD wavefront)",
            cost: wavefront,
        },
        Level {
            label: "Advanced (+data transform)",
            cost: soa,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{KNC, SNB_EP};
    use finbench_core::workload::MarketParams;
    use finbench_math::counted::counting;
    use finbench_math::{CountedF64, Real};

    // ---- structural audits against the instrumented kernels ----

    #[test]
    fn audit_black_scholes_op_mix() {
        let (_, c) = counting(|| {
            finbench_core::black_scholes::price_single(
                CountedF64(100.0),
                CountedF64(95.0),
                CountedF64(1.0),
                MarketParams::PAPER,
            )
        });
        let model = &black_scholes(&SNB_EP)[0].cost;
        assert_eq!(c.exps as f64, model.exps);
        assert_eq!((c.cnds + c.logs) as f64, model.heavies);
        assert_eq!((c.sqrts + c.divs) as f64, model.slow_ops);
        // Residual flops within 30% of the descriptor.
        let resid = (c.adds + c.muls + c.maxs) as f64;
        assert!(
            (resid - model.flops).abs() / model.flops < 0.3,
            "counted {resid} vs model {}",
            model.flops
        );
    }

    #[test]
    fn audit_binomial_flops_formula() {
        for n in [64usize, 256] {
            let mut call: Vec<CountedF64> = (0..=n).map(|j| CountedF64(j as f64)).collect();
            let (_, c) = counting(|| {
                finbench_core::binomial::reference::reduce(
                    &mut call,
                    n,
                    CountedF64(0.5),
                    CountedF64(0.5),
                );
            });
            assert_eq!(c.flops() as f64, binomial_flops(n), "n={n}");
        }
    }

    #[test]
    fn audit_brownian_bridge_flops() {
        use finbench_core::brownian_bridge::{reference::build_path, BridgePlan};
        let plan = BridgePlan::new(6, 1.0); // 64-step
        let randoms = vec![0.3; plan.randoms_per_path()];
        let mut out = vec![0.0; plan.points()];
        let (_, c) = counting(|| build_path::<CountedF64>(&plan, &randoms, &mut out));
        let model = brownian_bridge(&SNB_EP)[0].cost.flops;
        let counted = c.flops() as f64;
        assert!(
            (counted - model).abs() / model < 0.15,
            "counted {counted} vs model {model}"
        );
    }

    #[test]
    fn audit_monte_carlo_step_ops() {
        use finbench_core::monte_carlo::{reference::paths_streamed, GbmTerminal};
        let g = GbmTerminal::new(1.0, MarketParams::PAPER);
        let randoms = [0.25];
        let (_, c) = counting(|| paths_streamed::<CountedF64>(100.0, 100.0, g, &randoms));
        let model = monte_carlo(&SNB_EP).0;
        assert_eq!(c.exps as f64, model.exps);
        // 3 muls + 4 adds + 1 max per path-step ~ model's 8 flops.
        assert!((c.flops() as f64 - model.flops).abs() <= 1.0, "{c:?}");
    }

    #[test]
    fn audit_cn_flops_per_node() {
        use finbench_core::crank_nicolson::reference::psor_sweep;
        // Count one interior sweep with CountedF64 via a manual re-run of
        // the same expression shape.
        let n = 34usize;
        let (_, c) = counting(|| {
            let mut u: Vec<CountedF64> = (0..n).map(|j| CountedF64(j as f64 * 0.1)).collect();
            let b: Vec<CountedF64> = u.clone();
            let g: Vec<CountedF64> = u.clone();
            let coeff = CountedF64(0.4);
            let ah = CountedF64(0.3);
            let om = CountedF64(1.2);
            for j in 1..n - 1 {
                let y = coeff * (b[j] + ah * (u[j - 1] + u[j + 1]));
                let old = u[j];
                let val = (old + om * (y - old)).max(g[j]);
                u[j] = val;
            }
        });
        let per_node = c.flops() as f64 / (n as f64 - 2.0);
        // Model charges 7 flops/node (error term excluded — it is only
        // accumulated for convergence checks).
        assert!((per_node - 8.0).abs() <= 1.5, "per node {per_node}");
        // Silence unused import if signatures change.
        let _ = psor_sweep;
    }

    // ---- calibration pins: the paper's reported numbers ----

    fn tput(levels: &[Level], i: usize, arch: &ArchSpec) -> f64 {
        levels[i].cost.throughput(arch)
    }

    #[test]
    fn fig4_black_scholes_shape() {
        let snb = black_scholes(&SNB_EP);
        let knc = black_scholes(&KNC);
        // "the reference version is 3x slower [on KNC] than on SNB-EP".
        let ratio = tput(&snb, 0, &SNB_EP) / tput(&knc, 0, &KNC);
        assert!((2.4..=3.6).contains(&ratio), "ref ratio {ratio}");
        // "performance improves by 10x" with AOS->SOA on KNC.
        let jump = tput(&knc, 1, &KNC) / tput(&knc, 0, &KNC);
        assert!((8.0..=12.0).contains(&jump), "KNC AOS->SOA jump {jump}");
        // "SNB-EP achieves 84% of the bound, while KNC achieves 60%".
        let snb_frac = tput(&snb, 2, &SNB_EP) / snb[2].cost.bandwidth_bound(&SNB_EP);
        assert!((0.72..=0.92).contains(&snb_frac), "SNB frac {snb_frac}");
        let knc_frac = tput(&knc, 2, &KNC) / knc[2].cost.bandwidth_bound(&KNC);
        assert!((0.52..=0.68).contains(&knc_frac), "KNC frac {knc_frac}");
        // Monotone ladder on both.
        for (levels, arch) in [(&snb, &SNB_EP), (&knc, &KNC)] {
            assert!(tput(levels, 0, arch) < tput(levels, 1, arch));
            assert!(tput(levels, 1, arch) < tput(levels, 2, arch));
        }
    }

    #[test]
    fn fig5_binomial_shape() {
        for n in [1024usize, 2048] {
            let snb = binomial(&SNB_EP, n);
            let knc = binomial(&KNC, n);
            // "KNC is 1.4x faster than SNB-EP" at the basic level.
            let basic_ratio = tput(&knc, 0, &KNC) / tput(&snb, 0, &SNB_EP);
            assert!(
                (1.2..=1.6).contains(&basic_ratio),
                "basic ratio {basic_ratio}"
            );
            // SIMD across options "hardly improves performance".
            for (levels, arch) in [(&snb, &SNB_EP), (&knc, &KNC)] {
                let bump = tput(levels, 1, arch) / tput(levels, 0, arch);
                assert!((1.0..=1.25).contains(&bump), "SIMD-only bump {bump}");
            }
            // Register tiling: ~2x or more over intermediate.
            let snb_tile = tput(&snb, 2, &SNB_EP) / tput(&snb, 1, &SNB_EP);
            assert!(snb_tile >= 1.8, "SNB tiling {snb_tile}");
            let knc_tile = tput(&knc, 2, &KNC) / tput(&knc, 1, &KNC);
            assert!(knc_tile >= 2.0, "KNC tiling {knc_tile}");
            // Unrolling: ~1.4x on KNC, little effect on SNB-EP.
            let knc_unroll = tput(&knc, 3, &KNC) / tput(&knc, 2, &KNC);
            assert!(
                (1.25..=1.5).contains(&knc_unroll),
                "KNC unroll {knc_unroll}"
            );
            let snb_unroll = tput(&snb, 3, &SNB_EP) / tput(&snb, 2, &SNB_EP);
            assert!(snb_unroll < 1.1, "SNB unroll {snb_unroll}");
            // Bound proximity: SNB within ~10%, KNC within ~30%.
            let peak_opts_snb = SNB_EP.peak_dp_gflops() * 1e9 / binomial_flops(n);
            let snb_frac = tput(&snb, 3, &SNB_EP) / peak_opts_snb;
            assert!(
                (0.85..=1.0).contains(&snb_frac),
                "SNB bound frac {snb_frac}"
            );
            let peak_opts_knc = KNC.peak_dp_gflops() * 1e9 / binomial_flops(n);
            let knc_frac = tput(&knc, 3, &KNC) / peak_opts_knc;
            assert!(
                (0.68..=0.85).contains(&knc_frac),
                "KNC bound frac {knc_frac}"
            );
            // "KNC is 2.6x faster than SNB-EP for both 1K and 2K steps".
            let final_ratio = tput(&knc, 3, &KNC) / tput(&snb, 3, &SNB_EP);
            assert!(
                (2.3..=2.8).contains(&final_ratio),
                "final ratio {final_ratio}"
            );
        }
    }

    #[test]
    fn fig6_brownian_bridge_shape() {
        let snb = brownian_bridge(&SNB_EP);
        let knc = brownian_bridge(&KNC);
        // Basic: "KNC is 25% slower than SNB-EP".
        let basic_ratio = tput(&knc, 0, &KNC) / tput(&snb, 0, &SNB_EP);
        assert!((0.70..=0.85).contains(&basic_ratio), "basic {basic_ratio}");
        // Intermediate: both bandwidth-bound; ratio = bandwidth ratio.
        assert!(snb[1].cost.is_bandwidth_bound(&SNB_EP));
        assert!(knc[1].cost.is_bandwidth_bound(&KNC));
        let bw_ratio = tput(&knc, 1, &KNC) / tput(&snb, 1, &SNB_EP);
        assert!((1.85..=2.1).contains(&bw_ratio), "bw ratio {bw_ratio}");
        // Advanced: compute-bound, KNC 2x (not the 3x flop ratio).
        assert!(!snb[3].cost.is_bandwidth_bound(&SNB_EP));
        assert!(!knc[3].cost.is_bandwidth_bound(&KNC));
        let adv_ratio = tput(&knc, 3, &KNC) / tput(&snb, 3, &SNB_EP);
        assert!((1.8..=2.2).contains(&adv_ratio), "advanced {adv_ratio}");
        // Ladder is monotone on both machines.
        for (levels, arch) in [(&snb, &SNB_EP), (&knc, &KNC)] {
            for i in 1..4 {
                assert!(
                    tput(levels, i, arch) >= tput(levels, i - 1, arch),
                    "level {i}"
                );
            }
        }
    }

    #[test]
    fn table2_monte_carlo_rates() {
        // Paper Table II, exact numbers; model within 10%.
        let cases = [(&SNB_EP, 29_813.0, 5_556.0), (&KNC, 92_722.0, 16_366.0)];
        for (arch, want_stream, want_comp) in cases {
            let (stream, comp) = monte_carlo(arch);
            let got_stream = stream.throughput(arch) / MC_PATHS_PER_OPTION;
            let got_comp = comp.throughput(arch) / MC_PATHS_PER_OPTION;
            assert!(
                (got_stream - want_stream).abs() / want_stream < 0.10,
                "{} stream {got_stream} vs {want_stream}",
                arch.name
            );
            assert!(
                (got_comp - want_comp).abs() / want_comp < 0.10,
                "{} computed {got_comp} vs {want_comp}",
                arch.name
            );
        }
    }

    #[test]
    fn rng_ladder_reproduces_table2_rows() {
        // Table II rows 3-4: normal 1.79e9 / 5.21e9, uniform 13.31e9 /
        // 25.134e9 numbers per second.
        let cases = [(&SNB_EP, 13.31e9, 1.79e9), (&KNC, 25.134e9, 5.21e9)];
        for (arch, want_uniform, want_normal) in cases {
            let levels = rng(arch);
            let got_u = levels[0].cost.throughput(arch);
            let got_n = levels[1].cost.throughput(arch);
            assert!(
                (got_u - want_uniform).abs() / want_uniform < 0.05,
                "{} uniform {got_u} vs {want_uniform}",
                arch.name
            );
            assert!(
                (got_n - want_normal).abs() / want_normal < 0.05,
                "{} normal {got_n} vs {want_normal}",
                arch.name
            );
        }
    }

    #[test]
    fn monte_carlo_levels_matches_tuple() {
        for arch in [&SNB_EP, &KNC] {
            let (s, c) = monte_carlo(arch);
            let levels = monte_carlo_levels(arch);
            assert_eq!(levels.len(), 2);
            assert_eq!(levels[0].cost, s);
            assert_eq!(levels[1].cost, c);
        }
    }

    #[test]
    fn fig8_crank_nicolson_shape() {
        let snb = crank_nicolson(&SNB_EP, 256, 1000);
        let knc = crank_nicolson(&KNC, 256, 1000);
        // Reference: "KNC is only 1.3x faster than SNB-EP".
        let ref_ratio = tput(&knc, 0, &KNC) / tput(&snb, 0, &SNB_EP);
        assert!((1.2..=1.4).contains(&ref_ratio), "ref {ref_ratio}");
        // Absolute anchors: 4.4K/7.3K (manual SIMD), 6.4K/11.4K (layout).
        let anchors = [
            (&snb, &SNB_EP, 1usize, 4_400.0),
            (&knc, &KNC, 1, 7_300.0),
            (&snb, &SNB_EP, 2, 6_400.0),
            (&knc, &KNC, 2, 11_400.0),
        ];
        for (levels, arch, i, want) in anchors {
            let got = tput(levels, i, arch);
            assert!(
                (got - want).abs() / want < 0.10,
                "{} level {i}: {got} vs {want}",
                arch.name
            );
        }
        // Net SIMD gain "about 3.1X and 4.1X respectively".
        let snb_gain = tput(&snb, 2, &SNB_EP) / tput(&snb, 0, &SNB_EP);
        assert!((2.8..=3.4).contains(&snb_gain), "SNB gain {snb_gain}");
        let knc_gain = tput(&knc, 2, &KNC) / tput(&knc, 0, &KNC);
        assert!((3.8..=4.5).contains(&knc_gain), "KNC gain {knc_gain}");
    }
}
