//! # finbench-machine
//!
//! Analytical architecture models of the paper's two testbeds — the Intel
//! Xeon E5-2680 ("SNB-EP") and the Xeon Phi Knights Corner coprocessor
//! ("KNC") — and the roofline/instruction-throughput cost model that
//! regenerates every performance figure and table of the paper.
//!
//! ## Why a model (the substitution)
//!
//! The paper is a tuning study on hardware that no longer exists; its
//! *results* are throughput bars whose shape follows from a handful of
//! architectural parameters the paper itself reasons with: peak flops
//! (Table I), STREAM bandwidth, SIMD width, FMA availability, in-order vs
//! out-of-order issue, and gather cost. This crate encodes:
//!
//! * [`arch`] — the Table I specifications verbatim, plus derived peaks;
//! * [`cost`] — a per-item cycle model: flop issue, vectorized
//!   transcendental throughput, RNG throughput, gather penalties,
//!   instruction-overhead multipliers, and a bandwidth roofline;
//! * [`kernels`] — one calibrated [`cost::LevelCost`] descriptor per
//!   kernel per optimization level. Structural inputs (flop counts, byte
//!   traffic, transcendental mix) come from the paper's own formulas and
//!   are audited against `CountedF64` instrumented runs of the real
//!   kernels; efficiency constants (ILP fractions, overhead multipliers)
//!   are calibrated so the modeled bars land on the paper's reported
//!   numbers — the calibration is *checked in* as tests, so any model
//!   change that breaks a paper-reported ratio fails CI;
//! * [`figures`] — the per-figure series (Figs. 4, 5, 6, 8, Tables I–II)
//!   and the §V "Ninja gap" summary.

pub mod arch;
pub mod cost;
pub mod figures;
pub mod kernels;

pub use arch::{ArchSpec, Issue, KNC, SNB_EP};
pub use cost::LevelCost;
pub use figures::{ArchSeries, FigureSeries};
