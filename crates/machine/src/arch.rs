//! Architecture specifications — the paper's Table I, plus the calibrated
//! microarchitectural throughput constants the cost model charges.

/// Instruction issue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Issue {
    /// Aggressive out-of-order core (SNB-EP): dependency chains and extra
    /// instructions are largely hidden.
    OutOfOrder,
    /// In-order core (KNC): relies on 4-way SMT and unrolling to hide
    /// latency; instruction overhead hits throughput directly.
    InOrder,
}

/// One modeled architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchSpec {
    /// Display name.
    pub name: &'static str,
    /// Sockets × cores per socket.
    pub sockets: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core.
    pub smt: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Double-precision SIMD lanes (4 = 256-bit AVX, 8 = 512-bit).
    pub simd_width_dp: u32,
    /// Whether the vector unit fuses multiply-add (KNC) or issues one
    /// multiply and one add per cycle on separate ports (SNB-EP); both
    /// yield 2 flops/lane/cycle at peak.
    pub fma: bool,
    /// Issue discipline.
    pub issue: Issue,
    /// L1 data cache per core (KB).
    pub l1_kb: u32,
    /// L2 cache per core (KB).
    pub l2_kb: u32,
    /// Shared L3 per chip (KB), 0 if absent.
    pub l3_kb: u32,
    /// DRAM capacity (GB).
    pub dram_gb: u32,
    /// STREAM bandwidth (GB/s) — the paper's Table I row.
    pub stream_bw_gbs: f64,

    // --- Calibrated throughput constants (cycles per double-precision
    // element at full vector width; see DESIGN.md §"machine model"). ---
    /// Vectorized `exp` cost (SVML-class).
    pub exp_cpe: f64,
    /// Vectorized heavy transcendental (`erf`/`cnd`/`ln`, which carry a
    /// division) cost. Higher relative to `exp` on KNC because its
    /// in-order pipeline cannot hide the divide latency.
    pub heavy_cpe: f64,
    /// Cost of a standalone divide or square root per element (the
    /// unpipelined slow ops of both vector units).
    pub div_cpe: f64,
    /// Normally-distributed RNG cost (MT + inverse CDF), calibrated to
    /// Table II row 3.
    pub normal_rng_cpe: f64,
    /// Uniform RNG cost (MT + scale), calibrated to Table II row 4.
    pub uniform_rng_cpe: f64,
    /// Cycles per cache line touched by a gather/scatter.
    pub gather_cycles_per_line: f64,
}

impl ArchSpec {
    /// Total cores.
    pub fn cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Aggregate core-cycles per second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cores() as f64 * self.clock_ghz * 1e9
    }

    /// Peak double-precision Gflop/s: 2 flops/lane/cycle (mul+add or FMA)
    /// × lanes × cores × clock.
    pub fn peak_dp_gflops(&self) -> f64 {
        2.0 * self.simd_width_dp as f64 * self.cores() as f64 * self.clock_ghz
    }

    /// Peak single-precision Gflop/s (twice the lanes).
    pub fn peak_sp_gflops(&self) -> f64 {
        2.0 * self.peak_dp_gflops()
    }

    /// STREAM bandwidth in bytes/second.
    pub fn bw_bytes_per_sec(&self) -> f64 {
        self.stream_bw_gbs * 1e9
    }
}

/// The Intel Xeon E5-2680 node ("SNB-EP"): 2 × 8 out-of-order cores,
/// 2-way SMT, 2.7 GHz, 256-bit AVX.
pub const SNB_EP: ArchSpec = ArchSpec {
    name: "SNB-EP",
    sockets: 2,
    cores_per_socket: 8,
    smt: 2,
    clock_ghz: 2.7,
    simd_width_dp: 4,
    fma: false,
    issue: Issue::OutOfOrder,
    l1_kb: 32,
    l2_kb: 256,
    l3_kb: 20_480,
    dram_gb: 128,
    stream_bw_gbs: 76.0,
    exp_cpe: 4.0,
    heavy_cpe: 4.0,
    div_cpe: 3.5,
    normal_rng_cpe: 24.0,
    uniform_rng_cpe: 3.2,
    gather_cycles_per_line: 2.0,
};

/// A nominal approximation of the build host, for planning only: the core
/// count is real (`available_parallelism`), everything else is a generic
/// out-of-order AVX2-class core with SNB-EP's calibrated throughput
/// constants and ~12 GB/s of STREAM bandwidth per core. The planner only
/// needs the *relative* compute-vs-bandwidth classification, not absolute
/// rates, so a nominal spec is sufficient — and `FINBENCH_PLAN` overrides
/// it entirely when it guesses wrong.
pub fn host_spec() -> ArchSpec {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1);
    ArchSpec {
        name: "host",
        sockets: 1,
        cores_per_socket: cores,
        smt: 1,
        clock_ghz: 3.0,
        simd_width_dp: 4,
        fma: true,
        issue: Issue::OutOfOrder,
        l1_kb: 32,
        l2_kb: 512,
        l3_kb: 8_192,
        dram_gb: 16,
        stream_bw_gbs: (12.0 * cores as f64).min(80.0),
        exp_cpe: SNB_EP.exp_cpe,
        heavy_cpe: SNB_EP.heavy_cpe,
        div_cpe: SNB_EP.div_cpe,
        normal_rng_cpe: SNB_EP.normal_rng_cpe,
        uniform_rng_cpe: SNB_EP.uniform_rng_cpe,
        gather_cycles_per_line: SNB_EP.gather_cycles_per_line,
    }
}

/// The Intel Xeon Phi "Knights Corner" coprocessor ("KNC"): 60 in-order
/// cores, 4-way SMT, 1.09 GHz, 512-bit SIMD with FMA.
pub const KNC: ArchSpec = ArchSpec {
    name: "KNC",
    sockets: 1,
    cores_per_socket: 60,
    smt: 4,
    clock_ghz: 1.09,
    simd_width_dp: 8,
    fma: true,
    issue: Issue::InOrder,
    l1_kb: 32,
    l2_kb: 512,
    l3_kb: 0,
    dram_gb: 4,
    stream_bw_gbs: 150.0,
    exp_cpe: 2.2,
    heavy_cpe: 4.7,
    div_cpe: 4.0,
    normal_rng_cpe: 12.6,
    uniform_rng_cpe: 2.6,
    gather_cycles_per_line: 8.0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_peaks() {
        // Paper Table I: SNB-EP 346 DP Gflop/s, 691 SP; KNC 1063 DP,
        // 2127 SP. Our spec-derived peaks must land within 2% / 5%.
        let snb = SNB_EP.peak_dp_gflops();
        assert!((snb - 346.0).abs() / 346.0 < 0.02, "SNB DP {snb}");
        let knc = KNC.peak_dp_gflops();
        assert!((knc - 1063.0).abs() / 1063.0 < 0.05, "KNC DP {knc}");
        assert!((SNB_EP.peak_sp_gflops() - 691.0).abs() / 691.0 < 0.02);
        assert!((KNC.peak_sp_gflops() - 2127.0).abs() / 2127.0 < 0.05);
    }

    #[test]
    fn peak_ratio_as_reported() {
        // §III-A: "in terms of peak compute, KNC is 3.2x faster" —
        // computed as (60/16)·(512/256)·(1.09/2.7) ≈ 3.0; the spec ratio
        // must sit in [2.9, 3.3].
        let ratio = KNC.peak_dp_gflops() / SNB_EP.peak_dp_gflops();
        assert!((2.9..=3.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn bandwidth_ratio() {
        // 150/76 ≈ 2x — the factor the bandwidth-bound kernels inherit.
        let r = KNC.stream_bw_gbs / SNB_EP.stream_bw_gbs;
        assert!((1.9..=2.1).contains(&r));
    }

    #[test]
    fn core_counts() {
        assert_eq!(SNB_EP.cores(), 16);
        assert_eq!(KNC.cores(), 60);
        assert_eq!(SNB_EP.cores() * SNB_EP.smt, 32);
        assert_eq!(KNC.cores() * KNC.smt, 240);
    }

    #[test]
    fn cycles_per_sec() {
        assert!((SNB_EP.cycles_per_sec() - 43.2e9).abs() < 1e6);
        assert!((KNC.cycles_per_sec() - 65.4e9).abs() < 1e6);
    }

    #[test]
    fn host_spec_is_sane() {
        let h = host_spec();
        assert_eq!(h.name, "host");
        assert!(h.cores() >= 1);
        assert!(h.peak_dp_gflops() > 0.0);
        assert!(h.bw_bytes_per_sec() > 0.0);
    }

    #[test]
    fn rng_constants_reproduce_table2_rates() {
        // Table II rows 3-4: normal 1.79e9 / 5.21e9, uniform 13.31e9 /
        // 25.134e9 per second. rate = cycles_per_sec / cpe.
        let snb_n = SNB_EP.cycles_per_sec() / SNB_EP.normal_rng_cpe;
        assert!((snb_n - 1.79e9).abs() / 1.79e9 < 0.05, "{snb_n}");
        let knc_n = KNC.cycles_per_sec() / KNC.normal_rng_cpe;
        assert!((knc_n - 5.21e9).abs() / 5.21e9 < 0.05, "{knc_n}");
        let snb_u = SNB_EP.cycles_per_sec() / SNB_EP.uniform_rng_cpe;
        assert!((snb_u - 13.31e9).abs() / 13.31e9 < 0.05, "{snb_u}");
        let knc_u = KNC.cycles_per_sec() / KNC.uniform_rng_cpe;
        assert!((knc_u - 25.134e9).abs() / 25.134e9 < 0.05, "{knc_u}");
    }
}
