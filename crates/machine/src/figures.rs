//! Per-figure modeled series and the §V summary statistics.
//!
//! Each function returns plain data; `finbench-harness` renders the ASCII
//! bars/tables and the CSV files. Paper-reported reference values are
//! attached wherever the paper states them (Table II exactly; figure
//! anchors where the text gives numbers or ratios).

use crate::arch::{ArchSpec, KNC, SNB_EP};
use crate::kernels;

/// One architecture's stacked-bar series for a figure.
#[derive(Debug, Clone)]
pub struct ArchSeries {
    /// Architecture name.
    pub arch: &'static str,
    /// `(level label, modeled items/s)`, in the paper's stacking order.
    pub levels: Vec<(&'static str, f64)>,
    /// The binding roofline for the top level, if meaningful:
    /// `(label, items/s)`.
    pub bound: Option<(&'static str, f64)>,
}

/// A full modeled figure.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Identifier (`fig4`, ...).
    pub id: &'static str,
    /// Title as in the paper.
    pub title: String,
    /// Unit of the y axis.
    pub unit: &'static str,
    /// One series per architecture.
    pub series: Vec<ArchSeries>,
}

fn build_series(
    arch: &'static ArchSpec,
    levels: &[kernels::Level],
    scale: f64,
    bound: Option<(&'static str, f64)>,
) -> ArchSeries {
    ArchSeries {
        arch: arch.name,
        levels: levels
            .iter()
            .map(|l| (l.label, l.cost.throughput(arch) * scale))
            .collect(),
        bound,
    }
}

/// Fig. 4: Black-Scholes, millions of options per second.
pub fn fig4() -> FigureSeries {
    let mut series = Vec::new();
    for arch in [&SNB_EP, &KNC] {
        let levels = kernels::black_scholes(arch);
        let bound = levels[2].cost.bandwidth_bound(arch) * 1e-6;
        series.push(build_series(
            arch,
            &levels,
            1e-6,
            Some(("Bandwidth-bound", bound)),
        ));
    }
    FigureSeries {
        id: "fig4",
        title: "Performance of Black-Scholes".into(),
        unit: "Mopts/s",
        series,
    }
}

/// Fig. 5: binomial tree, thousands of options per second, at `n` steps.
pub fn fig5(n: usize) -> FigureSeries {
    let mut series = Vec::new();
    for arch in [&SNB_EP, &KNC] {
        let levels = kernels::binomial(arch, n);
        let bound = arch.peak_dp_gflops() * 1e9 / kernels::binomial_flops(n) * 1e-3;
        series.push(build_series(
            arch,
            &levels,
            1e-3,
            Some(("Compute-bound", bound)),
        ));
    }
    FigureSeries {
        id: "fig5",
        title: format!("Performance of Binomial Tree ({n} time steps)"),
        unit: "Kopts/s",
        series,
    }
}

/// Fig. 6: Brownian bridge, millions of 64-step simulation paths per
/// second.
pub fn fig6() -> FigureSeries {
    let mut series = Vec::new();
    for arch in [&SNB_EP, &KNC] {
        let levels = kernels::brownian_bridge(arch);
        series.push(build_series(arch, &levels, 1e-6, None));
    }
    FigureSeries {
        id: "fig6",
        title: "Performance of 64-step double-precision Brownian bridge".into(),
        unit: "Mpaths/s",
        series,
    }
}

/// Fig. 8: Crank-Nicolson American options, thousands of options per
/// second (256 prices × 1000 steps).
pub fn fig8() -> FigureSeries {
    let mut series = Vec::new();
    for arch in [&SNB_EP, &KNC] {
        let levels = kernels::crank_nicolson(arch, 256, 1000);
        series.push(build_series(arch, &levels, 1e-3, None));
    }
    FigureSeries {
        id: "fig8",
        title: "Performance of Crank-Nicolson American options (256 prices, 1000 steps)".into(),
        unit: "Kopts/s",
        series,
    }
}

/// One row of the modeled Table II, with the paper's measured value.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Row label.
    pub label: &'static str,
    /// Modeled SNB-EP value.
    pub snb_model: f64,
    /// Paper SNB-EP value.
    pub snb_paper: f64,
    /// Modeled KNC value.
    pub knc_model: f64,
    /// Paper KNC value.
    pub knc_paper: f64,
}

/// Table II: Monte-Carlo options/s (256k paths) and raw RNG rates.
pub fn table2() -> Vec<Table2Row> {
    let (snb_stream, snb_comp) = kernels::monte_carlo(&SNB_EP);
    let (knc_stream, knc_comp) = kernels::monte_carlo(&KNC);
    let per_opt = kernels::MC_PATHS_PER_OPTION;
    vec![
        Table2Row {
            label: "options/sec (stream RNG)",
            snb_model: snb_stream.throughput(&SNB_EP) / per_opt,
            snb_paper: 29_813.0,
            knc_model: knc_stream.throughput(&KNC) / per_opt,
            knc_paper: 92_722.0,
        },
        Table2Row {
            label: "options/sec (comp. RNG)",
            snb_model: snb_comp.throughput(&SNB_EP) / per_opt,
            snb_paper: 5_556.0,
            knc_model: knc_comp.throughput(&KNC) / per_opt,
            knc_paper: 16_366.0,
        },
        Table2Row {
            label: "normally-dist. DP RNG/sec",
            snb_model: SNB_EP.cycles_per_sec() / SNB_EP.normal_rng_cpe,
            snb_paper: 1.79e9,
            knc_model: KNC.cycles_per_sec() / KNC.normal_rng_cpe,
            knc_paper: 5.21e9,
        },
        Table2Row {
            label: "uniform DP RNG/sec",
            snb_model: SNB_EP.cycles_per_sec() / SNB_EP.uniform_rng_cpe,
            snb_paper: 13.31e9,
            knc_model: KNC.cycles_per_sec() / KNC.uniform_rng_cpe,
            knc_paper: 25.134e9,
        },
    ]
}

/// The §V conclusion statistics.
#[derive(Debug, Clone)]
pub struct NinjaSummary {
    /// Per-kernel `(name, snb gap, knc gap)` — advanced/basic throughput.
    pub gaps: Vec<(&'static str, f64, f64)>,
    /// Mean Ninja gap on SNB-EP (paper: ~1.9x).
    pub avg_snb: f64,
    /// Mean Ninja gap on KNC (paper: ~4x).
    pub avg_knc: f64,
    /// Mean best-optimized KNC/SNB ratio on compute-bound kernels
    /// (paper: ~2.5x).
    pub compute_bound_ratio: f64,
    /// Best-optimized KNC/SNB ratio on the bandwidth-bound kernel
    /// (paper: ~2x).
    pub bandwidth_bound_ratio: f64,
}

/// Compute the Ninja-gap summary across all five timed kernels.
pub fn ninja_summary() -> NinjaSummary {
    let tp = |levels: &[kernels::Level], i: usize, arch: &ArchSpec| levels[i].cost.throughput(arch);
    let mut gaps = Vec::new();

    let bs_s = kernels::black_scholes(&SNB_EP);
    let bs_k = kernels::black_scholes(&KNC);
    gaps.push((
        "Black-Scholes",
        tp(&bs_s, 2, &SNB_EP) / tp(&bs_s, 0, &SNB_EP),
        tp(&bs_k, 2, &KNC) / tp(&bs_k, 0, &KNC),
    ));

    let bin_s = kernels::binomial(&SNB_EP, 1024);
    let bin_k = kernels::binomial(&KNC, 1024);
    gaps.push((
        "Binomial tree",
        tp(&bin_s, 3, &SNB_EP) / tp(&bin_s, 0, &SNB_EP),
        tp(&bin_k, 3, &KNC) / tp(&bin_k, 0, &KNC),
    ));

    let bb_s = kernels::brownian_bridge(&SNB_EP);
    let bb_k = kernels::brownian_bridge(&KNC);
    gaps.push((
        "Brownian bridge",
        tp(&bb_s, 3, &SNB_EP) / tp(&bb_s, 0, &SNB_EP),
        tp(&bb_k, 3, &KNC) / tp(&bb_k, 0, &KNC),
    ));

    // Monte Carlo reaches peak with basic pragmas: gap 1 by construction.
    gaps.push(("Monte Carlo", 1.0, 1.0));

    let cn_s = kernels::crank_nicolson(&SNB_EP, 256, 1000);
    let cn_k = kernels::crank_nicolson(&KNC, 256, 1000);
    gaps.push((
        "Crank-Nicolson",
        tp(&cn_s, 2, &SNB_EP) / tp(&cn_s, 0, &SNB_EP),
        tp(&cn_k, 2, &KNC) / tp(&cn_k, 0, &KNC),
    ));

    let avg_snb = gaps.iter().map(|g| g.1).sum::<f64>() / gaps.len() as f64;
    let avg_knc = gaps.iter().map(|g| g.2).sum::<f64>() / gaps.len() as f64;

    // Best-optimized cross-architecture ratios.
    let (mc_s, _) = kernels::monte_carlo(&SNB_EP);
    let (mc_k, _) = kernels::monte_carlo(&KNC);
    let compute_ratios = [
        tp(&bin_k, 3, &KNC) / tp(&bin_s, 3, &SNB_EP),
        mc_k.throughput(&KNC) / mc_s.throughput(&SNB_EP),
        tp(&bb_k, 3, &KNC) / tp(&bb_s, 3, &SNB_EP),
        tp(&cn_k, 2, &KNC) / tp(&cn_s, 2, &SNB_EP),
    ];
    let compute_bound_ratio = compute_ratios.iter().sum::<f64>() / compute_ratios.len() as f64;
    let bandwidth_bound_ratio = tp(&bb_k, 1, &KNC) / tp(&bb_s, 1, &SNB_EP);

    NinjaSummary {
        gaps,
        avg_snb,
        avg_knc,
        compute_bound_ratio,
        bandwidth_bound_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_have_expected_shape() {
        for fig in [fig4(), fig5(1024), fig5(2048), fig6(), fig8()] {
            assert_eq!(fig.series.len(), 2, "{}", fig.id);
            assert_eq!(fig.series[0].arch, "SNB-EP");
            assert_eq!(fig.series[1].arch, "KNC");
            for s in &fig.series {
                assert!(!s.levels.is_empty());
                for (label, v) in &s.levels {
                    assert!(v.is_finite() && *v > 0.0, "{} {label}", fig.id);
                }
            }
        }
    }

    #[test]
    fn table2_model_within_ten_percent_of_paper() {
        for row in table2() {
            assert!(
                (row.snb_model - row.snb_paper).abs() / row.snb_paper < 0.10,
                "{}: SNB {} vs {}",
                row.label,
                row.snb_model,
                row.snb_paper
            );
            assert!(
                (row.knc_model - row.knc_paper).abs() / row.knc_paper < 0.10,
                "{}: KNC {} vs {}",
                row.label,
                row.knc_model,
                row.knc_paper
            );
        }
    }

    #[test]
    fn ninja_summary_matches_conclusion() {
        let s = ninja_summary();
        // §V: "On average, the Ninja gap is 1.9x for SNB-EP and 4x for
        // KNC". The model's Black-Scholes gap runs high on KNC (the
        // AOS->SOA jump alone is 10x), so the averages land somewhat
        // above; assert the bands and the qualitative claim.
        assert!((1.6..=2.6).contains(&s.avg_snb), "SNB avg {}", s.avg_snb);
        assert!((3.2..=6.5).contains(&s.avg_knc), "KNC avg {}", s.avg_knc);
        assert!(
            s.avg_knc > 1.7 * s.avg_snb,
            "in-order KNC must be less forgiving: {} vs {}",
            s.avg_knc,
            s.avg_snb
        );
        // "2.5x on compute bound kernels and 2x on bandwidth-bound".
        assert!(
            (2.0..=2.8).contains(&s.compute_bound_ratio),
            "compute ratio {}",
            s.compute_bound_ratio
        );
        assert!(
            (1.85..=2.15).contains(&s.bandwidth_bound_ratio),
            "bw ratio {}",
            s.bandwidth_bound_ratio
        );
        // Every kernel's gap is >= 1 on both machines.
        for (name, gs, gk) in &s.gaps {
            assert!(*gs >= 1.0 && *gk >= 1.0, "{name}");
        }
    }

    #[test]
    fn fig5_scales_inversely_with_steps() {
        let f1 = fig5(1024);
        let f2 = fig5(2048);
        // 4x the flops => ~1/4 the throughput at every level.
        for (s1, s2) in f1.series.iter().zip(&f2.series) {
            for ((_, v1), (_, v2)) in s1.levels.iter().zip(&s2.levels) {
                let ratio = v1 / v2;
                assert!((3.8..=4.2).contains(&ratio), "{ratio}");
            }
        }
    }
}
