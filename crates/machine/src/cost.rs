//! The per-item cycle cost model and bandwidth roofline.

use crate::arch::ArchSpec;

/// Cost descriptor of one kernel at one optimization level, per *item*
/// (option, path, ...). Structural fields (flops, transcendental mix,
//  bytes) come from the paper's own formulas; efficiency fields are the
/// calibrated part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelCost {
    /// Plain double-precision flops per item (the paper's flop formulas).
    pub flops: f64,
    /// `exp`-class transcendental calls per item.
    pub exps: f64,
    /// Heavy transcendental calls per item (`erf`, `cnd`, `ln` — carry a
    /// division).
    pub heavies: f64,
    /// Standalone divides/square roots per item.
    pub slow_ops: f64,
    /// Normal variates generated on the fly per item (0 when streamed).
    pub rng_normals: f64,
    /// DRAM bytes streamed per item (roofline input).
    pub bytes: f64,
    /// Effective SIMD lane utilization in (0, 1]: `1/width` for scalar
    /// code, 1.0 for perfectly vectorized code, in between for partially
    /// vectorized or ragged loops.
    pub width_frac: f64,
    /// Fraction of peak issue achieved by the flop stream (dependency
    /// chains, load/store pressure): the "achievable vs deliverable"
    /// efficiency of the paper's §III-B models.
    pub ilp: f64,
    /// Cache lines touched by gathers/scatters per item (AOS layouts).
    pub gather_lines: f64,
    /// Instruction-overhead multiplier (≥ 1) on the compute portion —
    /// loop control, address arithmetic, masking; the quantity the
    /// paper's "10x more instructions" observation lives in.
    pub overhead: f64,
}

impl LevelCost {
    /// A neutral descriptor (fully vectorized, no transcendentals).
    pub const fn flops_only(flops: f64, bytes: f64) -> Self {
        Self {
            flops,
            exps: 0.0,
            heavies: 0.0,
            slow_ops: 0.0,
            rng_normals: 0.0,
            bytes,
            width_frac: 1.0,
            ilp: 1.0,
            gather_lines: 0.0,
            overhead: 1.0,
        }
    }

    /// Core-cycles per item on `arch`.
    pub fn cycles_per_item(&self, arch: &ArchSpec) -> f64 {
        let width = arch.simd_width_dp as f64;
        let eff_lanes = (width * self.width_frac).max(1.0);
        // 2 flops/lane/cycle at peak (mul+add ports or FMA).
        let flop_cycles = self.flops / (2.0 * eff_lanes * self.ilp);
        // Transcendentals: `cpe` is the full-vector per-element cost;
        // partial vectorization scales it by 1/width_frac (scalar lanes
        // pay the whole polynomial per element).
        let transc_cycles = (self.exps * arch.exp_cpe
            + self.heavies * arch.heavy_cpe
            + self.slow_ops * arch.div_cpe)
            / self.width_frac;
        let gather_cycles = self.gather_lines * arch.gather_cycles_per_line;
        let rng_cycles = self.rng_normals * arch.normal_rng_cpe;
        (flop_cycles + transc_cycles + gather_cycles) * self.overhead + rng_cycles
    }

    /// Compute-bound throughput (items/s) on `arch`.
    pub fn compute_bound(&self, arch: &ArchSpec) -> f64 {
        arch.cycles_per_sec() / self.cycles_per_item(arch)
    }

    /// Bandwidth-bound throughput (items/s) on `arch`; infinite when the
    /// item streams no DRAM traffic.
    pub fn bandwidth_bound(&self, arch: &ArchSpec) -> f64 {
        if self.bytes <= 0.0 {
            f64::INFINITY
        } else {
            arch.bw_bytes_per_sec() / self.bytes
        }
    }

    /// Modeled throughput: the roofline minimum.
    pub fn throughput(&self, arch: &ArchSpec) -> f64 {
        self.compute_bound(arch).min(self.bandwidth_bound(arch))
    }

    /// True when the bandwidth roof binds on `arch`.
    pub fn is_bandwidth_bound(&self, arch: &ArchSpec) -> bool {
        self.bandwidth_bound(arch) < self.compute_bound(arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{KNC, SNB_EP};

    #[test]
    fn flops_only_at_full_efficiency_hits_peak() {
        let c = LevelCost::flops_only(1e6, 0.0);
        for arch in [&SNB_EP, &KNC] {
            let gflops = c.throughput(arch) * 1e6 / 1e9;
            assert!(
                (gflops - arch.peak_dp_gflops()).abs() / arch.peak_dp_gflops() < 1e-12,
                "{}: {gflops}",
                arch.name
            );
        }
    }

    #[test]
    fn bandwidth_roof_binds_for_streaming_kernels() {
        // 40 bytes/item, trivial compute: B/40 items per second — the
        // paper's Black-Scholes bound.
        let c = LevelCost::flops_only(10.0, 40.0);
        assert!(c.is_bandwidth_bound(&SNB_EP));
        let t = c.throughput(&SNB_EP);
        assert!((t - 76e9 / 40.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn scalar_code_pays_full_width() {
        let mut c = LevelCost::flops_only(1000.0, 0.0);
        c.width_frac = 1.0 / SNB_EP.simd_width_dp as f64;
        let scalar = c.throughput(&SNB_EP);
        c.width_frac = 1.0;
        let vector = c.throughput(&SNB_EP);
        assert!((vector / scalar - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_and_gathers_cost_knc_more() {
        let mut c = LevelCost::flops_only(100.0, 0.0);
        c.gather_lines = 5.0;
        let snb_pen =
            c.cycles_per_item(&SNB_EP) - LevelCost::flops_only(100.0, 0.0).cycles_per_item(&SNB_EP);
        let knc_pen =
            c.cycles_per_item(&KNC) - LevelCost::flops_only(100.0, 0.0).cycles_per_item(&KNC);
        assert!(knc_pen > 2.0 * snb_pen, "snb {snb_pen} knc {knc_pen}");
    }

    #[test]
    fn rng_term_not_multiplied_by_overhead() {
        let mut c = LevelCost::flops_only(0.0, 0.0);
        c.rng_normals = 1.0;
        c.overhead = 10.0;
        // Only the RNG term remains; overhead must not scale it (the RNG
        // is library code, already optimal).
        assert!((c.cycles_per_item(&SNB_EP) - SNB_EP.normal_rng_cpe).abs() < 1e-12);
    }

    #[test]
    fn monotonic_in_every_cost_field() {
        let base = LevelCost {
            flops: 100.0,
            exps: 1.0,
            heavies: 1.0,
            slow_ops: 1.0,
            rng_normals: 1.0,
            bytes: 16.0,
            width_frac: 0.5,
            ilp: 0.8,
            gather_lines: 1.0,
            overhead: 1.5,
        };
        let t0 = base.throughput(&KNC);
        for bump in [
            LevelCost {
                flops: 200.0,
                ..base
            },
            LevelCost { exps: 2.0, ..base },
            LevelCost {
                heavies: 2.0,
                ..base
            },
            LevelCost {
                slow_ops: 2.0,
                ..base
            },
            LevelCost {
                rng_normals: 2.0,
                ..base
            },
            LevelCost {
                gather_lines: 4.0,
                ..base
            },
            LevelCost {
                overhead: 3.0,
                ..base
            },
        ] {
            assert!(bump.throughput(&KNC) < t0, "{bump:?}");
        }
        // And improving efficiency helps.
        let better = LevelCost {
            width_frac: 1.0,
            ilp: 1.0,
            ..base
        };
        assert!(better.throughput(&KNC) > t0);
    }
}
