//! Batch-safe pricers: the bridge from the engine's optimization ladders
//! to the serving plane.
//!
//! ## Which rungs are servable
//!
//! A rung is *servable* only if each option's price is independent of its
//! batch neighbours — a micro-batch mixes unrelated requests, so any rung
//! that couples lanes (e.g. the binomial SIMD rungs, which share one
//! expiry grid per vector group) would change a request's answer based on
//! who it happened to be batched with. The servable set is a curated
//! allow-list over ladder slugs; [`resolve`] starts from the
//! [`Planner`](finbench_engine::Planner)'s chosen rung and walks *down*
//! the ladder to the most advanced servable one.
//!
//! ## Bit-exactness under batching
//!
//! The SIMD drivers fall back to a scalar tail for `len % W` leftovers,
//! and the scalar path rounds differently from the vector lanes. The
//! serving plane therefore **pads every batch to a multiple of the
//! rung's SIMD width** so every request is priced in a vector lane. The
//! vector math is lane-wise, so a request's price depends only on its own
//! `(s, x, t)` — never on batch size, position, or padding — which is
//! what makes micro-batching transparent (and is pinned down by the
//! property tests in `tests/batching_equivalence.rs`).

use crate::request::Rejected;
use finbench_core::binomial;
use finbench_core::black_scholes::{self, soa};
use finbench_core::{MarketParams, OptionBatchSoa};
use finbench_engine::Engine;

/// Serving-side pricer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricerConfig {
    /// Market parameters shared by all requests (the paper assumes r and
    /// sigma are batch-wide).
    pub market: MarketParams,
    /// Time steps for the binomial tree pricer.
    pub binomial_steps: usize,
    /// Per-task option count for the pool-threaded Black-Scholes rung
    /// (rounded up to the SIMD width so no chunk gets a scalar tail).
    pub pool_chunk: usize,
}

impl Default for PricerConfig {
    fn default() -> Self {
        Self {
            market: MarketParams::PAPER,
            binomial_steps: 256,
            pool_chunk: 4096,
        }
    }
}

type PriceFn = Box<dyn Fn(&mut OptionBatchSoa) + Send + Sync>;

/// A resolved batch-safe pricer: one ladder rung, ready to price padded
/// SOA batches.
pub struct ServingRung {
    /// Kernel the rung belongs to.
    pub kernel: String,
    /// Ladder slug of the rung (reported on every [`Priced`](crate::request::Priced)).
    pub slug: String,
    /// SIMD width: batches are padded to a multiple of this.
    pub width: usize,
    price: PriceFn,
}

impl ServingRung {
    /// Price `batch` in place. The caller guarantees `batch.len()` is a
    /// multiple of [`width`](Self::width) (use [`assemble`]).
    pub fn price(&self, batch: &mut OptionBatchSoa) {
        debug_assert_eq!(batch.len() % self.width, 0);
        (self.price)(batch);
    }

    /// Price one option alone — the oracle the batching property tests
    /// compare scattered batch results against. Pads a singleton batch to
    /// the rung's width so the option still rides a vector lane.
    pub fn price_one(&self, s: f64, x: f64, t: f64) -> (f64, f64) {
        let mut batch = OptionBatchSoa::zeroed(0);
        padded_batch_into(&mut batch, &[(s, x, t)], self.width);
        self.price(&mut batch);
        (batch.call[0], batch.put[0])
    }
}

/// Stage `(s, x, t)` triples into a caller-owned SOA batch, padded to a
/// multiple of `width` with benign dummy options (never surfaced to any
/// caller). The batch is resized in place — its capacity only ever
/// grows, so a lane reusing one batch across flushes stops allocating
/// once it has seen its largest flush. Outputs are zeroed for the live
/// prefix (stale padding lanes keep whatever the previous flush wrote;
/// they are never scattered back).
pub fn padded_batch_into(batch: &mut OptionBatchSoa, opts: &[(f64, f64, f64)], width: usize) {
    let width = width.max(1);
    let padded = (opts.len().div_ceil(width) * width).max(width);
    batch.resize(padded);
    for (i, &(s, x, t)) in opts.iter().enumerate() {
        batch.s[i] = s;
        batch.x[i] = x;
        batch.t[i] = t;
        batch.call[i] = 0.0;
        batch.put[i] = 0.0;
    }
    for i in opts.len()..padded {
        batch.s[i] = 1.0;
        batch.x[i] = 1.0;
        batch.t[i] = 1.0;
    }
}

/// The allow-list: a [`ServingRung`] for `slug` if that rung prices each
/// option independently of its batch neighbours. Public so the batching
/// property tests can sweep the whole servable set, not just the rung
/// the host planner picks.
pub fn servable(kernel: &str, slug: &str, cfg: &PricerConfig) -> Option<ServingRung> {
    let m = cfg.market;
    let (width, price): (usize, PriceFn) = match (kernel, slug) {
        ("black_scholes", "basic_scalar_aos_reference")
        | ("black_scholes", "intermediate_scalar_soa") => {
            (1, Box::new(move |b| soa::price_soa_scalar(b, m)))
        }
        ("black_scholes", "intermediate_simd_soa_w_4") => {
            (4, Box::new(move |b| soa::price_soa_simd::<4>(b, m)))
        }
        ("black_scholes", "intermediate_simd_soa_w_8") => {
            (8, Box::new(move |b| soa::price_soa_simd::<8>(b, m)))
        }
        ("black_scholes", "advanced_erf_parity_w_8") => (
            8,
            Box::new(move |b| soa::price_soa_simd_erf_parity::<8>(b, m)),
        ),
        ("black_scholes", "advanced_own_pool_threads") => {
            // Chunk must stay a multiple of the width so no worker sees a
            // scalar tail; lane-wise math then makes chunk boundaries
            // invisible in the bits.
            let chunk = cfg.pool_chunk.div_ceil(8).max(1) * 8;
            (8, Box::new(move |b| soa::par_price_soa::<8>(b, m, chunk)))
        }
        ("binomial", "basic_scalar_reference") => {
            let n = cfg.binomial_steps.max(1);
            (
                1,
                Box::new(move |b| binomial::reference::price_batch(b, m, n)),
            )
        }
        _ => return None,
    };
    Some(ServingRung {
        kernel: kernel.to_string(),
        slug: slug.to_string(),
        width,
        price,
    })
}

/// The full *degradation ladder* for `kernel`: every batch-safe rung at
/// or below the planner's chosen one, most advanced first. Index 0 is
/// the normal serving rung (what [`resolve`] returns); each subsequent
/// entry is the next cheaper fallback the lane supervisor degrades to
/// when the rung above keeps faulting, ending at the scalar reference.
/// Every entry prices bit-identically to pricing alone on that same
/// rung, so degradation trades throughput, never correctness.
pub fn servable_ladder(
    engine: &Engine,
    kernel: &str,
    cfg: &PricerConfig,
) -> Result<Vec<ServingRung>, Rejected> {
    let any = engine
        .registry()
        .resolve(kernel)
        .map_err(|e| Rejected::UnknownKernel {
            reason: e.to_string().into(),
        })?;
    let plan = engine.plan(kernel).map_err(|e| Rejected::UnknownKernel {
        reason: e.to_string().into(),
    })?;
    let rungs = any.rungs();
    let ladder: Vec<ServingRung> = (0..=plan.rung.min(rungs.len().saturating_sub(1)))
        .rev()
        .filter_map(|idx| servable(kernel, &rungs[idx].slug, cfg))
        .collect();
    if ladder.is_empty() {
        Err(Rejected::Unservable {
            kernel: kernel.to_string().into(),
        })
    } else {
        Ok(ladder)
    }
}

/// Resolve the serving rung for `kernel`: plan with the engine's cost
/// model, then walk down the ladder from the planned rung to the most
/// advanced batch-safe one. Engine errors map to typed rejections.
pub fn resolve(engine: &Engine, kernel: &str, cfg: &PricerConfig) -> Result<ServingRung, Rejected> {
    servable_ladder(engine, kernel, cfg).map(|mut l| l.remove(0))
}

/// `price_single` reference for one option — used by tests to pin the
/// scalar rung to the textbook closed form.
pub fn scalar_reference(s: f64, x: f64, t: f64, market: MarketParams) -> (f64, f64) {
    black_scholes::price_single(s, x, t, market)
}

#[cfg(test)]
mod tests {
    use super::*;
    use finbench_core::engine::registry;
    use finbench_engine::{Engine, Planner};
    use finbench_machine::SNB_EP;

    fn engine() -> Engine {
        Engine::with_planner(registry(), Planner::new(SNB_EP))
    }

    #[test]
    fn black_scholes_resolves_to_a_servable_rung_at_or_below_the_plan() {
        let e = engine();
        let cfg = PricerConfig::default();
        let rung = resolve(&e, "black_scholes", &cfg).unwrap();
        let plan = e.plan("black_scholes").unwrap();
        let rungs = e.registry().resolve("black_scholes").unwrap().rungs();
        let idx = rungs.iter().position(|r| r.slug == rung.slug).unwrap();
        assert!(idx <= plan.rung, "{} above plan {}", rung.slug, plan.slug);
        assert!(rung.width >= 1);
    }

    #[test]
    fn degradation_ladder_descends_to_the_scalar_reference() {
        let e = engine();
        let cfg = PricerConfig::default();
        let ladder = servable_ladder(&e, "black_scholes", &cfg).unwrap();
        assert!(ladder.len() >= 2, "need at least one fallback rung");
        // Index 0 is exactly what resolve() serves.
        assert_eq!(
            ladder[0].slug,
            resolve(&e, "black_scholes", &cfg).unwrap().slug
        );
        // The bottom is a scalar rung (width 1): the last-resort fallback.
        assert_eq!(ladder.last().unwrap().width, 1);
        // Monotonic descent: ladder indices strictly decrease.
        let rungs = e.registry().resolve("black_scholes").unwrap().rungs();
        let idx_of = |slug: &str| rungs.iter().position(|r| r.slug == slug).unwrap();
        for pair in ladder.windows(2) {
            assert!(
                idx_of(&pair[0].slug) > idx_of(&pair[1].slug),
                "{} should sit above {}",
                pair[0].slug,
                pair[1].slug
            );
        }
        // Every level prices the same option consistently with the
        // closed form (degradation preserves the equivalence contract).
        let (want_c, want_p) = scalar_reference(30.0, 35.0, 2.0, cfg.market);
        for rung in &ladder {
            let (c, p) = rung.price_one(30.0, 35.0, 2.0);
            assert!((c - want_c).abs() < 1e-9, "{}: {c} vs {want_c}", rung.slug);
            assert!((p - want_p).abs() < 1e-9, "{}: {p} vs {want_p}", rung.slug);
        }
    }

    #[test]
    fn binomial_resolves_to_the_scalar_reference() {
        let rung = resolve(&engine(), "binomial", &PricerConfig::default()).unwrap();
        assert_eq!(rung.slug, "basic_scalar_reference");
        assert_eq!(rung.width, 1);
    }

    #[test]
    fn unbatchable_kernels_are_typed_rejections() {
        let e = engine();
        let cfg = PricerConfig::default();
        for k in ["monte_carlo", "rng", "crank_nicolson", "brownian_bridge"] {
            match resolve(&e, k, &cfg) {
                Err(Rejected::Unservable { kernel }) => assert_eq!(kernel, k),
                other => panic!(
                    "{k}: expected Unservable, got {other:?}",
                    other = other.map(|r| r.slug)
                ),
            }
        }
        assert!(matches!(
            resolve(&e, "black_sholes", &cfg),
            Err(Rejected::UnknownKernel { .. })
        ));
    }

    #[test]
    fn padding_never_reaches_the_caller_and_lanes_are_position_independent() {
        let e = engine();
        let rung = resolve(&e, "black_scholes", &PricerConfig::default()).unwrap();
        let opts = [(30.0, 35.0, 1.0), (25.0, 20.0, 0.5), (10.0, 90.0, 7.5)];
        let mut batch = OptionBatchSoa::zeroed(0);
        padded_batch_into(&mut batch, &opts, rung.width);
        assert_eq!(batch.len() % rung.width, 0);
        rung.price(&mut batch);
        for (i, &(s, x, t)) in opts.iter().enumerate() {
            let (c1, p1) = rung.price_one(s, x, t);
            assert_eq!(batch.call[i].to_bits(), c1.to_bits(), "call {i}");
            assert_eq!(batch.put[i].to_bits(), p1.to_bits(), "put {i}");
        }
    }

    #[test]
    fn padded_batch_into_reuse_matches_a_fresh_batch() {
        let mut reused = OptionBatchSoa::zeroed(0);
        // Shrinks and regrowths across flushes must stage the same
        // inputs as a freshly allocated batch every time.
        for n in [5usize, 11, 2, 0, 16] {
            let opts: Vec<(f64, f64, f64)> = (0..n)
                .map(|i| (30.0 + i as f64, 35.0, 1.0 + i as f64))
                .collect();
            padded_batch_into(&mut reused, &opts, 8);
            let mut fresh = OptionBatchSoa::zeroed(0);
            padded_batch_into(&mut fresh, &opts, 8);
            assert_eq!(reused.len(), fresh.len(), "n={n}");
            assert_eq!(reused.s, fresh.s, "n={n}");
            assert_eq!(reused.x, fresh.x, "n={n}");
            assert_eq!(reused.t, fresh.t, "n={n}");
            assert_eq!(reused.call[..n], fresh.call[..n], "n={n}");
            assert_eq!(reused.put[..n], fresh.put[..n], "n={n}");
        }
    }

    #[test]
    fn every_servable_black_scholes_rung_agrees_with_the_closed_form() {
        let m = MarketParams::PAPER;
        let cfg = PricerConfig::default();
        let (s, x, t) = (30.0, 35.0, 2.0);
        let (want_c, want_p) = scalar_reference(s, x, t, m);
        for slug in [
            "intermediate_scalar_soa",
            "intermediate_simd_soa_w_4",
            "intermediate_simd_soa_w_8",
            "advanced_erf_parity_w_8",
            "advanced_own_pool_threads",
        ] {
            let rung = servable("black_scholes", slug, &cfg).unwrap();
            let (c, p) = rung.price_one(s, x, t);
            assert!((c - want_c).abs() < 1e-9, "{slug}: {c} vs {want_c}");
            assert!((p - want_p).abs() < 1e-9, "{slug}: {p} vs {want_p}");
        }
    }
}
