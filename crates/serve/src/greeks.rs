//! The greeks serving ladder: analytic full-sweep rungs ready to answer
//! [`GreeksRequest`](crate::request::GreeksRequest) micro-batches.
//!
//! Only the analytic closed-form rungs serve requests. The engine's
//! greeks ladder also carries bump-and-reprice and Monte-Carlo rungs, but
//! those are portfolio-risk *batch* estimators — hundreds of repricings
//! or path sweeps per option — with declared tolerances, not bit
//! contracts; a latency-bounded request plane wants the exact closed
//! form. The analytic sweep shares one lane block across every SIMD
//! width (width-1 tail included), so a request's greeks are bit-identical
//! whether it is computed alone or inside any micro-batch — the same
//! padding contract [`pricer`](crate::pricer) enforces for prices, pinned
//! down by `tests/batching_equivalence.rs`.

use crate::pricer::padded_batch_into;
use finbench_core::greeks::{greeks_batch_simd, Greeks, GreeksBatchSoa};
use finbench_core::{MarketParams, OptionBatchSoa};

type ComputeFn = Box<dyn Fn(&OptionBatchSoa, &mut GreeksBatchSoa) + Send + Sync>;

/// One batch-safe greeks rung: a full-sweep closed-form evaluator at a
/// fixed SIMD width.
pub struct GreeksRung {
    /// Ladder slug, reported on every
    /// [`GreeksOut`](crate::request::GreeksOut).
    pub slug: String,
    /// SIMD width: batches are padded to a multiple of this.
    pub width: usize,
    compute: ComputeFn,
}

impl GreeksRung {
    /// Compute all five greeks for both sides of every option in `batch`.
    /// The caller guarantees `batch.len()` is a multiple of
    /// [`width`](Self::width) (use [`padded_batch_into`]).
    pub fn compute(&self, batch: &OptionBatchSoa, out: &mut GreeksBatchSoa) {
        debug_assert_eq!(batch.len() % self.width, 0);
        (self.compute)(batch, out);
    }

    /// Compute one option alone — the oracle the batching property tests
    /// compare scattered batch results against. Pads a singleton batch to
    /// the rung's width so the option still rides a vector lane.
    pub fn compute_one(&self, s: f64, x: f64, t: f64) -> (Greeks, Greeks) {
        let mut batch = OptionBatchSoa::zeroed(0);
        padded_batch_into(&mut batch, &[(s, x, t)], self.width);
        let mut out = GreeksBatchSoa::zeroed(batch.len());
        self.compute(&batch, &mut out);
        (out.call.at(0), out.put.at(0))
    }
}

fn rung<const W: usize>(slug: &str, market: MarketParams) -> GreeksRung {
    GreeksRung {
        slug: slug.to_string(),
        width: W,
        compute: Box::new(move |b, out| greeks_batch_simd::<W>(b, market, out)),
    }
}

/// The greeks degradation ladder, most advanced first: W=8 → W=4 →
/// scalar. Every level computes bit-identically (shared lane block), so
/// lane degradation trades throughput, never answers.
pub fn greeks_ladder(market: MarketParams) -> Vec<GreeksRung> {
    vec![
        rung::<8>("intermediate_simd_soa_greeks_w_8", market),
        rung::<4>("intermediate_simd_soa_greeks_w_4", market),
        rung::<1>("basic_scalar_greeks_sweep", market),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use finbench_core::greeks::{greeks, OptionType};

    const M: MarketParams = MarketParams::PAPER;

    #[test]
    fn ladder_descends_to_a_scalar_rung() {
        let ladder = greeks_ladder(M);
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].width, 8);
        assert_eq!(ladder.last().unwrap().width, 1);
    }

    #[test]
    fn every_level_is_bit_identical_to_every_other() {
        let (s, x, t) = (30.0, 35.0, 2.0);
        let ladder = greeks_ladder(M);
        let (c0, p0) = ladder[0].compute_one(s, x, t);
        for r in &ladder[1..] {
            let (c, p) = r.compute_one(s, x, t);
            assert_eq!(c.delta.to_bits(), c0.delta.to_bits(), "{}", r.slug);
            assert_eq!(c.rho.to_bits(), c0.rho.to_bits(), "{}", r.slug);
            assert_eq!(p.theta.to_bits(), p0.theta.to_bits(), "{}", r.slug);
            assert_eq!(p.vega.to_bits(), p0.vega.to_bits(), "{}", r.slug);
        }
    }

    #[test]
    fn served_greeks_match_the_scalar_closed_form() {
        let (s, x, t) = (25.0, 20.0, 0.5);
        let want_c = greeks(OptionType::Call, s, x, t, M);
        let want_p = greeks(OptionType::Put, s, x, t, M);
        for r in greeks_ladder(M) {
            let (c, p) = r.compute_one(s, x, t);
            for (got, want) in [
                (c.delta, want_c.delta),
                (c.gamma, want_c.gamma),
                (c.vega, want_c.vega),
                (c.theta, want_c.theta),
                (c.rho, want_c.rho),
                (p.delta, want_p.delta),
                (p.theta, want_p.theta),
                (p.rho, want_p.rho),
            ] {
                assert!(
                    (got - want).abs() <= 1e-10 * want.abs().max(1.0),
                    "{}: {got} vs {want}",
                    r.slug
                );
            }
        }
    }

    #[test]
    fn padding_never_leaks_into_real_lanes() {
        let ladder = greeks_ladder(M);
        let rung = &ladder[0];
        let opts = [(30.0, 35.0, 1.0), (25.0, 20.0, 0.5), (10.0, 90.0, 7.5)];
        let mut batch = OptionBatchSoa::zeroed(0);
        padded_batch_into(&mut batch, &opts, rung.width);
        let mut out = GreeksBatchSoa::zeroed(batch.len());
        rung.compute(&batch, &mut out);
        for (i, &(s, x, t)) in opts.iter().enumerate() {
            let (c, p) = rung.compute_one(s, x, t);
            assert_eq!(out.call.at(i).delta.to_bits(), c.delta.to_bits(), "{i}");
            assert_eq!(out.put.at(i).rho.to_bits(), p.rho.to_bits(), "{i}");
        }
    }
}
