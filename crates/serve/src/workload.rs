//! The [`ServeWorkload`] seam: one trait describing everything the
//! sharded server needs to run a request plane — request/response types,
//! the servable degradation ladder, and how to execute a staged batch
//! into reusable scratch buffers.
//!
//! `server.rs` writes its lane plumbing (micro-batching, deadline
//! shedding, breaker supervision, degrade/promote, scatter-back) exactly
//! once, generically over this trait; the pricing, greeks, and portfolio
//! planes are the three implementations — the portfolio plane's unit of
//! work is a scenario-range *chunk* of a fanned-out market-risk request,
//! staged through [`ServeWorkload::stage_extra`] instead of the shared
//! option-contract triple.
//!
//! ## Buffer ownership
//!
//! Each lane owns one [`Scratch`]: the staged `(s, x, t)` triples, the
//! padded SOA batch, and the greeks output sweep. The lane stages into
//! it, the workload's [`compute`](ServeWorkload::compute) fills it, and
//! the lane scatters from it — buffers never cross threads and are
//! recycled across flushes (grown to the largest batch seen, never
//! shrunk), so steady-state batch execution allocates nothing.

use crate::portfolio::{PortfolioChunkOut, PortfolioChunkRequest, PortfolioChunkResponse};
use crate::pricer::{self, padded_batch_into, PricerConfig, ServingRung};
use crate::request::{
    GreeksOut, GreeksRequest, GreeksResponse, PriceRequest, PriceResponse, Priced, Rejected,
};
use finbench_core::greeks::GreeksBatchSoa;
use finbench_core::portfolio::{Book, RevalScratch, ScenarioConfig, ScenarioGrid};
use finbench_core::OptionBatchSoa;
use finbench_engine::Engine;
use std::time::{Duration, Instant};

/// Reusable per-lane batch buffers: staged inputs, the padded SOA batch
/// (inputs + price outputs), and the greeks output sweep. Capacities
/// only ever grow, so a lane that has seen its largest flush stops
/// allocating entirely — the zero-alloc steady state ci.sh gates.
#[derive(Default)]
pub struct Scratch {
    /// Staged `(s, x, t)` triples for the flush being executed.
    pub opts: Vec<(f64, f64, f64)>,
    /// Padded SOA staging and price outputs.
    pub soa: OptionBatchSoa,
    /// Greeks outputs (resized on demand by the greeks workload).
    pub greeks: GreeksBatchSoa,
    /// Portfolio chunk staging and revaluation buffers (used only by the
    /// portfolio lane; empty everywhere else).
    pub portfolio: PortfolioScratch,
}

impl Scratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset the per-flush staging (the contract triples and any
    /// plane-specific request state) before a new flush is staged.
    /// Capacities are kept — this is a `clear`, not a drop.
    pub fn begin_flush(&mut self) {
        self.opts.clear();
        self.portfolio.chunks.clear();
    }

    /// Pad the staged [`opts`](Self::opts) into the SOA batch at the
    /// given lane width. Allocation-free once the batch has grown.
    pub fn stage(&mut self, width: usize) {
        padded_batch_into(&mut self.soa, &self.opts, width);
    }
}

/// The portfolio lane's staging and revaluation state inside [`Scratch`]:
/// the chunk requests of the flush being executed (aligned index-for-index
/// with the lane's flush vector), the cached book, and the reusable grid
/// / revaluation / P&L buffers. The book cache is keyed by `(seed,
/// positions)` — consecutive chunks of the same request (the common case:
/// one fan-out fills a whole micro-batch) rebuild it once, and the other
/// buffers only ever grow, so a warm lane revalues without allocating.
#[derive(Default)]
pub struct PortfolioScratch {
    /// Chunk requests staged for this flush, in flush order.
    pub(crate) chunks: Vec<PortfolioChunkRequest>,
    /// `(seed, positions)` of the cached [`book`](Self::book).
    book_key: Option<(u64, usize)>,
    book: Book,
    grid: ScenarioGrid,
    reval: RevalScratch,
    /// Per-chunk revaluation output before it is appended to `pnl`.
    tmp: Vec<f64>,
    /// Concatenated per-scenario P&L across the flush's chunks.
    pnl: Vec<f64>,
    /// Per-chunk `(offset, len)` spans into [`pnl`](Self::pnl).
    spans: Vec<(usize, usize)>,
}

/// The telemetry counter names one request plane tallies under — static
/// so the hot path never formats a metric name.
pub struct LaneCounters {
    /// Requests answered with a result.
    pub served: &'static str,
    /// Requests shed at dispatch because their deadline passed.
    pub shed_deadline: &'static str,
    /// Requests whose deadline passed *after* a shard-loss redrive — the
    /// retry budget accounting that distinguishes first-attempt sheds
    /// from sheds of already-redriven work.
    pub shed_deadline_redrive: &'static str,
    /// Requests answered `Rejected::Internal`.
    pub internal: &'static str,
    /// Requests rejected for unknown/unservable kernels.
    pub rejected: &'static str,
    /// Batches executed below the planned rung.
    pub degraded_batches: &'static str,
    /// Ladder steps down after failures.
    pub degradations: &'static str,
    /// Ladder steps back up after sustained health.
    pub promotions: &'static str,
    /// Breaker open transitions.
    pub breaker_open: &'static str,
    /// Supervised lane restarts after cooldown.
    pub lane_restarts: &'static str,
}

/// One request plane the sharded server can run: how to key, ladder,
/// batch-execute, and answer its requests. Implementations are stateless
/// marker types; all state lives in the generic lane.
pub trait ServeWorkload: Sized + 'static {
    /// Validated request type carried through the admission queue.
    type Req: Send + 'static;
    /// Per-request success payload.
    type Out;
    /// Response message delivered on the envelope's channel.
    type Resp: Send + 'static;
    /// One rung of the servable degradation ladder.
    type Rung;

    /// Counter names for this plane's tallies.
    const COUNTERS: LaneCounters;

    /// The request's correlation id, echoed on every response.
    fn id(req: &Self::Req) -> u64;
    /// The request's optional completion deadline.
    fn deadline(req: &Self::Req) -> Option<Instant>;
    /// The option contract `(s, x, t)` to stage into the SOA batch.
    fn contract(req: &Self::Req) -> (f64, f64, f64);
    /// Stage any plane-specific per-request state into the scratch —
    /// called once per flushed request, in flush order, right after its
    /// [`contract`](Self::contract) is staged (the flush has already
    /// been deadline-shed, so staged state aligns index-for-index with
    /// the batch that executes). Default: nothing; the portfolio plane
    /// stages its chunk descriptors here.
    fn stage_extra(_req: &Self::Req, _scratch: &mut Scratch) {}
    /// Lane key for this request — also the engine registry kernel the
    /// planner sizes the batch trigger from, and the `<key>` in the
    /// `serve.batch.<key>` / `serve.breaker.<key>` telemetry names.
    fn lane_key(req: &Self::Req) -> &str;

    /// The servable degradation ladder for `key`, most advanced first;
    /// a typed rejection when the key names no servable ladder.
    fn ladder(
        engine: &Engine,
        key: &str,
        config: &PricerConfig,
    ) -> Result<Vec<Self::Rung>, Rejected>;
    /// The rung's ladder slug (reported on every response).
    fn slug(rung: &Self::Rung) -> &str;
    /// The rung's SIMD width (batches are padded to a multiple of it).
    fn width(rung: &Self::Rung) -> usize;

    /// Execute the staged batch in `scratch.soa`, writing results back
    /// into the scratch buffers. Must not allocate at steady state.
    fn compute(rung: &Self::Rung, scratch: &mut Scratch);
    /// The `i`-th staged request's success payload, read back out of the
    /// scratch buffers.
    fn payload(
        scratch: &Scratch,
        i: usize,
        slug: &str,
        batch_len: usize,
        latency: Duration,
    ) -> Self::Out;
    /// Wrap an outcome into this plane's response message.
    fn respond(id: u64, outcome: Result<Self::Out, Rejected>) -> Self::Resp;
}

/// One queued request of workload `W`, with its response channel.
pub(crate) struct Envelope<W: ServeWorkload> {
    pub(crate) req: W::Req,
    pub(crate) submitted: Instant,
    /// True once this request has been redriven off a killed shard to a
    /// live sibling. At most one redrive per request: a second shard
    /// loss rejects instead of re-routing again, so a request can never
    /// ping-pong between dying shards or be delivered twice.
    pub(crate) redriven: bool,
    pub(crate) tx: std::sync::mpsc::Sender<W::Resp>,
}

/// The batched pricing plane (`PriceRequest` → `Priced`).
pub struct PriceWorkload;

impl ServeWorkload for PriceWorkload {
    type Req = PriceRequest;
    type Out = Priced;
    type Resp = PriceResponse;
    type Rung = ServingRung;

    const COUNTERS: LaneCounters = LaneCounters {
        served: "serve.served",
        shed_deadline: "serve.shed.deadline",
        shed_deadline_redrive: "serve.shed.deadline_redrive",
        internal: "serve.internal",
        rejected: "serve.rejected",
        degraded_batches: "serve.degraded_batches",
        degradations: "serve.degradations",
        promotions: "serve.promotions",
        breaker_open: "serve.breaker_open",
        lane_restarts: "serve.lane_restarts",
    };

    fn id(req: &PriceRequest) -> u64 {
        req.id
    }
    fn deadline(req: &PriceRequest) -> Option<Instant> {
        req.deadline
    }
    fn contract(req: &PriceRequest) -> (f64, f64, f64) {
        (req.s, req.x, req.t)
    }
    fn lane_key(req: &PriceRequest) -> &str {
        &req.kernel
    }

    fn ladder(
        engine: &Engine,
        key: &str,
        config: &PricerConfig,
    ) -> Result<Vec<ServingRung>, Rejected> {
        pricer::servable_ladder(engine, key, config)
    }
    fn slug(rung: &ServingRung) -> &str {
        &rung.slug
    }
    fn width(rung: &ServingRung) -> usize {
        rung.width
    }

    fn compute(rung: &ServingRung, scratch: &mut Scratch) {
        rung.price(&mut scratch.soa);
    }
    fn payload(
        scratch: &Scratch,
        i: usize,
        slug: &str,
        batch_len: usize,
        latency: Duration,
    ) -> Priced {
        Priced {
            call: scratch.soa.call[i],
            put: scratch.soa.put[i],
            rung: slug.to_string(),
            batch_len,
            latency,
        }
    }
    fn respond(id: u64, outcome: Result<Priced, Rejected>) -> PriceResponse {
        PriceResponse { id, outcome }
    }
}

/// Stats/telemetry key for the greeks lane (also the registry kernel the
/// planner sizes its batch trigger from).
pub(crate) const GREEKS_LANE: &str = "greeks";

/// The greeks plane (`GreeksRequest` → `GreeksOut`): all ten
/// sensitivities per request, riding the same generic lane code.
pub struct GreeksWorkload;

impl ServeWorkload for GreeksWorkload {
    type Req = GreeksRequest;
    type Out = GreeksOut;
    type Resp = GreeksResponse;
    type Rung = crate::greeks::GreeksRung;

    const COUNTERS: LaneCounters = LaneCounters {
        served: "greeks.served",
        shed_deadline: "greeks.shed.deadline",
        shed_deadline_redrive: "greeks.shed.deadline_redrive",
        internal: "greeks.internal",
        rejected: "greeks.rejected",
        degraded_batches: "greeks.degraded_batches",
        degradations: "greeks.degradations",
        promotions: "greeks.promotions",
        breaker_open: "greeks.breaker_open",
        lane_restarts: "greeks.lane_restarts",
    };

    fn id(req: &GreeksRequest) -> u64 {
        req.id
    }
    fn deadline(req: &GreeksRequest) -> Option<Instant> {
        req.deadline
    }
    fn contract(req: &GreeksRequest) -> (f64, f64, f64) {
        (req.s, req.x, req.t)
    }
    fn lane_key(_req: &GreeksRequest) -> &str {
        GREEKS_LANE
    }

    fn ladder(
        _engine: &Engine,
        _key: &str,
        config: &PricerConfig,
    ) -> Result<Vec<crate::greeks::GreeksRung>, Rejected> {
        // The analytic sweep always serves; there is no unservable key.
        Ok(crate::greeks::greeks_ladder(config.market))
    }
    fn slug(rung: &crate::greeks::GreeksRung) -> &str {
        &rung.slug
    }
    fn width(rung: &crate::greeks::GreeksRung) -> usize {
        rung.width
    }

    fn compute(rung: &crate::greeks::GreeksRung, scratch: &mut Scratch) {
        scratch.greeks.resize(scratch.soa.len());
        rung.compute(&scratch.soa, &mut scratch.greeks);
    }
    fn payload(
        scratch: &Scratch,
        i: usize,
        slug: &str,
        batch_len: usize,
        latency: Duration,
    ) -> GreeksOut {
        GreeksOut {
            call: scratch.greeks.call.at(i),
            put: scratch.greeks.put.at(i),
            rung: slug.to_string(),
            batch_len,
            latency,
        }
    }
    fn respond(id: u64, outcome: Result<GreeksOut, Rejected>) -> GreeksResponse {
        GreeksResponse { id, outcome }
    }
}

/// Stats/telemetry key for the portfolio lane (also the registry kernel
/// the planner sizes its batch trigger from).
pub(crate) const PORTFOLIO_LANE: &str = "portfolio";

/// The portfolio plane ([`PortfolioChunkRequest`] →
/// [`PortfolioChunkOut`]): scenario-range chunks of fanned-out
/// market-risk requests, riding the same generic lane code. The staged
/// SOA batch carries benign placeholder contracts — a chunk's real
/// payload is its descriptor, staged through
/// [`stage_extra`](ServeWorkload::stage_extra) and reconstructed into
/// book + grid slice at compute time.
pub struct PortfolioWorkload;

impl ServeWorkload for PortfolioWorkload {
    type Req = PortfolioChunkRequest;
    type Out = PortfolioChunkOut;
    type Resp = PortfolioChunkResponse;
    type Rung = crate::portfolio::PortfolioRung;

    const COUNTERS: LaneCounters = LaneCounters {
        served: "portfolio.served",
        shed_deadline: "portfolio.shed.deadline",
        shed_deadline_redrive: "portfolio.shed.deadline_redrive",
        internal: "portfolio.internal",
        rejected: "portfolio.rejected",
        degraded_batches: "portfolio.degraded_batches",
        degradations: "portfolio.degradations",
        promotions: "portfolio.promotions",
        breaker_open: "portfolio.breaker_open",
        lane_restarts: "portfolio.lane_restarts",
    };

    fn id(req: &PortfolioChunkRequest) -> u64 {
        req.id
    }
    fn deadline(req: &PortfolioChunkRequest) -> Option<Instant> {
        req.deadline
    }
    fn contract(_req: &PortfolioChunkRequest) -> (f64, f64, f64) {
        // Placeholder lanes: the portfolio compute never reads the SOA
        // batch, but staging must stay uniform (and benign — never NaN)
        // for the generic lane code.
        (1.0, 1.0, 1.0)
    }
    fn stage_extra(req: &PortfolioChunkRequest, scratch: &mut Scratch) {
        scratch.portfolio.chunks.push(*req);
    }
    fn lane_key(_req: &PortfolioChunkRequest) -> &str {
        PORTFOLIO_LANE
    }

    fn ladder(
        _engine: &Engine,
        _key: &str,
        config: &PricerConfig,
    ) -> Result<Vec<crate::portfolio::PortfolioRung>, Rejected> {
        // Every rung revalues bit-identically; there is no unservable key.
        Ok(crate::portfolio::portfolio_ladder(config.market))
    }
    fn slug(rung: &crate::portfolio::PortfolioRung) -> &str {
        &rung.slug
    }
    fn width(rung: &crate::portfolio::PortfolioRung) -> usize {
        rung.width
    }

    fn compute(rung: &crate::portfolio::PortfolioRung, scratch: &mut Scratch) {
        let p = &mut scratch.portfolio;
        p.pnl.clear();
        p.spans.clear();
        for k in 0..p.chunks.len() {
            let c = p.chunks[k];
            if p.book_key != Some((c.seed, c.positions)) {
                p.book = Book::random(c.positions, c.seed);
                p.book_key = Some((c.seed, c.positions));
            }
            let cfg = ScenarioConfig::standard(c.scenarios, c.seed);
            cfg.fill_grid(c.lo, c.hi, &mut p.grid);
            rung.revalue(&p.book, &p.grid, &mut p.reval, &mut p.tmp);
            let off = p.pnl.len();
            p.pnl.extend_from_slice(&p.tmp);
            p.spans.push((off, p.tmp.len()));
        }
    }
    fn payload(
        scratch: &Scratch,
        i: usize,
        slug: &str,
        batch_len: usize,
        latency: Duration,
    ) -> PortfolioChunkOut {
        let p = &scratch.portfolio;
        let (off, len) = p.spans[i];
        PortfolioChunkOut {
            lo: p.chunks[i].lo,
            pnl: p.pnl[off..off + len].to_vec(),
            rung: slug.to_string(),
            batch_len,
            latency,
        }
    }
    fn respond(id: u64, outcome: Result<PortfolioChunkOut, Rejected>) -> PortfolioChunkResponse {
        PortfolioChunkResponse { id, outcome }
    }
}
