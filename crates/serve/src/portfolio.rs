//! The portfolio serving ladder and its chunk wire format: one
//! [`PortfolioRequest`](crate::request::PortfolioRequest) fans out into
//! [`PortfolioChunkRequest`]s — contiguous scenario ranges of the same
//! book — that ride the shared admission/shard plumbing like any other
//! work item, and merge back into one response.
//!
//! The chunk is the fan-out unit the router spills, siblings steal, and
//! a killed shard redrives; correctness survives all three because the
//! revaluation is bit-invariant to where a chunk executes:
//!
//! * scenario grids are **split-invariant** (scenario `j` draws from RNG
//!   stream `j` regardless of chunk bounds), so any chunking concatenates
//!   bit-identically to the native full-grid sweep;
//! * every ladder width revalues the same padded book with the same
//!   lane arithmetic, so W=8 / W=4 / scalar rungs are bit-identical —
//!   lane degradation trades throughput, never answers (the same
//!   contract the pricing and greeks ladders enforce).
//!
//! Chunks are self-describing (`seed`, `positions`, total `scenarios`,
//! `[lo, hi)`): the executing shard reconstructs the book and its grid
//! slice deterministically instead of shipping megabytes of state
//! through the queue — the admission seam stays cheap, owned messages.

use crate::request::Rejected;
use finbench_core::portfolio::{revalue_into, Book, RevalScratch, ScenarioGrid};
use finbench_core::MarketParams;
use std::time::{Duration, Instant};

type RevalFn = Box<dyn Fn(&Book, &ScenarioGrid, &mut RevalScratch, &mut Vec<f64>) + Send + Sync>;

/// One batch-safe portfolio rung: full-book revaluation over a scenario
/// grid at a fixed SIMD width.
pub struct PortfolioRung {
    /// Ladder slug, reported on every [`PortfolioChunkOut`].
    pub slug: String,
    /// SIMD width of the revaluation sweep.
    pub width: usize,
    reval: RevalFn,
}

impl PortfolioRung {
    /// Revalue `book` under every scenario in `grid`, one P&L value per
    /// scenario into `pnl` (cleared first).
    pub fn revalue(
        &self,
        book: &Book,
        grid: &ScenarioGrid,
        scratch: &mut RevalScratch,
        pnl: &mut Vec<f64>,
    ) {
        (self.reval)(book, grid, scratch, pnl);
    }
}

fn rung<const W: usize>(slug: &str, market: MarketParams) -> PortfolioRung {
    PortfolioRung {
        slug: slug.to_string(),
        width: W,
        reval: Box::new(move |book, grid, scratch, pnl| {
            revalue_into::<W>(book, market, grid, scratch, pnl)
        }),
    }
}

/// The portfolio degradation ladder, most advanced first: W=8 → W=4 →
/// scalar, every level bit-identical (the staged book is padded to the
/// widest lane count, so no width takes a scalar remainder path). Slugs
/// match the engine kernel's rung labels, so a served chunk names the
/// same rung `portfolio_bench` replays natively.
pub fn portfolio_ladder(market: MarketParams) -> Vec<PortfolioRung> {
    vec![
        rung::<8>("intermediate_simd_revaluation_w_8", market),
        rung::<4>("intermediate_simd_revaluation_w_4", market),
        rung::<1>("basic_scalar_revaluation_sweep", market),
    ]
}

/// One scenario-range chunk of a fanned-out portfolio request — the unit
/// of admission, spill, steal, and redrive. `Copy`: it is a handful of
/// integers, reconstructed into book + grid slice on the executing shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortfolioChunkRequest {
    /// The parent request's correlation id (shared by all its chunks).
    pub id: u64,
    /// Book + grid seed (the book is a pure function of `(positions,
    /// seed)`, the grid of `(scenarios, seed)`).
    pub seed: u64,
    /// Book size in positions.
    pub positions: usize,
    /// Total scenarios in the parent request's grid (chunk bounds index
    /// into this range).
    pub scenarios: usize,
    /// First scenario of this chunk (inclusive).
    pub lo: usize,
    /// One past the last scenario of this chunk.
    pub hi: usize,
    /// The parent request's absolute deadline, shared by every chunk.
    pub deadline: Option<Instant>,
}

/// One computed chunk: the partial P&L tally for scenarios `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioChunkOut {
    /// First scenario of the chunk — the merge key that restores
    /// scenario order however chunks were scheduled.
    pub lo: usize,
    /// One P&L value per scenario in the chunk.
    pub pnl: Vec<f64>,
    /// Slug of the portfolio rung that revalued the chunk.
    pub rung: String,
    /// How many chunks rode in the same micro-batch.
    pub batch_len: usize,
    /// Submit-to-scatter-back latency of this chunk.
    pub latency: Duration,
}

/// The answer to one [`PortfolioChunkRequest`], merged (never surfaced
/// to clients) by the parent request's merge task.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioChunkResponse {
    /// The parent request's id, echoed back.
    pub id: u64,
    /// Computed, or rejected with a typed reason.
    pub outcome: Result<PortfolioChunkOut, Rejected>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use finbench_core::portfolio::ScenarioConfig;

    const M: MarketParams = MarketParams::PAPER;

    #[test]
    fn ladder_descends_to_a_scalar_rung() {
        let ladder = portfolio_ladder(M);
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].width, 8);
        assert_eq!(ladder.last().unwrap().width, 1);
    }

    #[test]
    fn every_level_revalues_bit_identically() {
        let book = Book::random(21, 5);
        let grid = ScenarioConfig::standard(17, 5).grid();
        let ladder = portfolio_ladder(M);
        let mut scratch = RevalScratch::new();
        let mut base = Vec::new();
        ladder[0].revalue(&book, &grid, &mut scratch, &mut base);
        for r in &ladder[1..] {
            let mut pnl = Vec::new();
            r.revalue(&book, &grid, &mut scratch, &mut pnl);
            assert_eq!(pnl.len(), base.len(), "{}", r.slug);
            for j in 0..pnl.len() {
                assert_eq!(
                    pnl[j].to_bits(),
                    base[j].to_bits(),
                    "{} scenario {j}",
                    r.slug
                );
            }
        }
    }

    #[test]
    fn chunk_grid_slices_concatenate_to_the_full_sweep() {
        // The serve-side merge invariant: chunked revaluation at any
        // rung equals the native full-grid sweep bit-for-bit.
        let book = Book::random(12, 9);
        let cfg = ScenarioConfig::standard(40, 9);
        let ladder = portfolio_ladder(M);
        let mut scratch = RevalScratch::new();
        let mut whole = Vec::new();
        ladder[0].revalue(&book, &cfg.grid(), &mut scratch, &mut whole);
        let mut merged = Vec::new();
        let mut grid = ScenarioGrid::default();
        let mut part = Vec::new();
        for (lo, hi) in [(0, 13), (13, 32), (32, 40)] {
            cfg.fill_grid(lo, hi, &mut grid);
            ladder[0].revalue(&book, &grid, &mut scratch, &mut part);
            merged.extend_from_slice(&part);
        }
        assert_eq!(merged.len(), whole.len());
        for j in 0..whole.len() {
            assert_eq!(merged[j].to_bits(), whole[j].to_bits(), "scenario {j}");
        }
    }
}
