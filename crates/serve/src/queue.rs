//! The bounded admission queue: the per-shard backpressure point of the
//! serving plane.
//!
//! Capacity is fixed at construction; a full queue rejects the producer
//! *synchronously* (handing the item back) instead of blocking it or
//! dropping the item — the server turns that into a typed
//! [`Rejected::QueueFull`](crate::request::Rejected::QueueFull) response.
//! The consumer side supports timed pops so the dispatcher can wake up
//! for micro-batch flush deadlines even when no new work arrives.
//!
//! ## MPMC wakeup discipline
//!
//! The queue is multi-producer *and* multi-consumer: every shard worker
//! pops its own queue, and idle siblings [`steal_up_to`](AdmissionQueue::steal_up_to)
//! from it. `try_push` still issues a single `notify_one` (waking more
//! poppers than items would just burn wakeups), but a successful pop that
//! leaves items behind re-notifies — so a notification that landed on a
//! popper which was already awake (and therefore consumed two pushes'
//! worth of signal) cascades to the next sleeper instead of stranding an
//! item until some popper's timeout. [`close`](AdmissionQueue::close)
//! broadcasts so every popper observes shutdown promptly.

//!
//! ## Poison recovery
//!
//! The queue's `Mutex` is shared by every producer and the dispatcher; a
//! panic on *any* of those threads while holding the lock would poison it
//! and — with naive `lock().unwrap()` — cascade that one failure into a
//! panic on every thread that touches the queue afterwards. The state
//! behind the lock (a `VecDeque` and a flag) has no invariant a panicking
//! pusher can break mid-update, so every acquisition here recovers the
//! guard from a poisoned lock instead of propagating.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with reject-on-full semantics.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue holding at most `capacity` items (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lock the state, recovering from poison: a producer that panicked
    /// while holding the lock must not brick the whole serving plane.
    fn lock_state(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current depth (racy by nature; used for gauges and tests).
    pub fn len(&self) -> usize {
        self.lock_state().items.len()
    }

    /// True when empty at the instant of the call.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push without blocking. On a full or closed queue the item comes
    /// straight back so the caller owns the rejection.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut st = self.lock_state();
        if st.closed || st.items.len() >= self.capacity {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pop, waiting up to `timeout` for an item. `None` means either the
    /// timeout elapsed or the queue is closed *and* drained — callers
    /// distinguish the two via [`is_closed`](Self::is_closed).
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock_state();
        loop {
            if let Some(item) = st.items.pop_front() {
                // MPMC cascade: if items remain, another popper may be
                // asleep having missed its notification (it raced us to
                // the lock and lost). Pass the signal on.
                if !st.items.is_empty() {
                    self.not_empty.notify_one();
                }
                return Some(item);
            }
            if st.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, res) = self
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| {
                    // Poison from an unrelated panicked thread: take the
                    // guard back and keep serving.
                    let (g, r) = e.into_inner();
                    (g, r)
                });
            st = next;
            if res.timed_out() && st.items.is_empty() {
                return None;
            }
        }
    }

    /// Steal up to `max` items from the *back* of the queue (the newest
    /// work), leaving the front for the owning popper so the oldest
    /// requests — the ones closest to their deadlines — stay with the
    /// shard that admitted them. Returns the stolen items oldest-first.
    /// Never blocks; an empty or contended-empty queue yields `Vec::new()`.
    pub fn steal_up_to(&self, max: usize) -> Vec<T> {
        let mut st = self.lock_state();
        let take = st.items.len().min(max);
        if take == 0 {
            return Vec::new();
        }
        let mut stolen: Vec<T> = Vec::with_capacity(take);
        for _ in 0..take {
            if let Some(item) = st.items.pop_back() {
                stolen.push(item);
            }
        }
        stolen.reverse();
        stolen
    }

    /// Close the queue: producers get their items back from
    /// [`try_push`](Self::try_push), and consumers drain what remains.
    pub fn close(&self) {
        self.lock_state().closed = true;
        self.not_empty.notify_all();
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock_state().closed
    }

    /// Reopen a closed queue so producers are accepted again. The shard
    /// supervisor respawning a killed worker reuses the seat's queue:
    /// the kill path closed and drained it, so reopening hands a fresh
    /// worker an empty, accepting queue without reallocating it or
    /// re-plumbing the router.
    pub fn reopen(&self) {
        self.lock_state().closed = false;
    }

    /// Panic while holding the state lock, poisoning the `Mutex` — the
    /// test hook behind the poison-recovery tests (a real panicking
    /// producer is not constructible from safe queue operations).
    #[doc(hidden)]
    pub fn poison_for_test(&self) {
        let _guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        panic!("poison_for_test: panicking while holding the queue lock");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_hands_the_item_back() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn pop_times_out_on_an_empty_queue() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(1);
        let t0 = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn close_rejects_producers_and_drains_consumers() {
        let q = AdmissionQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
        assert!(q.is_closed());
    }

    #[test]
    fn reopen_accepts_producers_again_after_close() {
        let q = AdmissionQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(2));
        // Drain (the kill path does this before a respawn reopens).
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        q.reopen();
        assert!(!q.is_closed());
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(3));
    }

    #[test]
    fn a_panicked_producer_does_not_brick_the_queue() {
        let q = Arc::new(AdmissionQueue::new(4));
        q.try_push(1).unwrap();
        // A thread panics while holding the state lock, poisoning it.
        let q2 = Arc::clone(&q);
        let poisoner = std::thread::spawn(move || q2.poison_for_test());
        assert!(poisoner.join().is_err(), "the poisoner must have panicked");
        // Every operation still works: push, pop, len, close.
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Some(2));
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(3), Err(3));
    }

    #[test]
    fn a_poisoned_condvar_wait_recovers_too() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(2));
        // Block a consumer in wait_timeout, then poison the lock from
        // another thread; the consumer must still receive the item pushed
        // afterwards instead of panicking on the poisoned wait result.
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        let q3 = Arc::clone(&q);
        let _ = std::thread::spawn(move || q3.poison_for_test()).join();
        q.try_push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn wakes_a_blocked_consumer() {
        let q = Arc::new(AdmissionQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        // Give the consumer a moment to block, then feed it.
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42u32).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn a_burst_wakes_every_blocked_consumer_not_just_one() {
        // Two consumers block; one producer pushes two items back-to-back
        // while holding no lock between pushes. Under the old
        // single-`notify_one` discipline both notifications could land on
        // the same consumer, stranding the second item until the other
        // consumer's timeout. The pop-side cascade must deliver both well
        // before the 5 s deadline.
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(8));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop_timeout(Duration::from_secs(5)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let t0 = Instant::now();
        let mut got: Vec<u32> = consumers
            .into_iter()
            .map(|h| h.join().unwrap().expect("consumer starved"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "consumers only drained via timeout: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn steal_takes_newest_items_and_leaves_the_oldest() {
        let q = AdmissionQueue::new(8);
        for i in 1..=5 {
            q.try_push(i).unwrap();
        }
        // Stealing 2 of 5 takes the two newest, oldest-first.
        assert_eq!(q.steal_up_to(2), vec![4, 5]);
        // The owner still sees its oldest work in order.
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.steal_up_to(10), vec![2, 3]);
        assert_eq!(q.steal_up_to(10), Vec::<i32>::new());
    }

    #[test]
    fn mpmc_stress_concurrent_push_pop_steal_shutdown_with_poison() {
        // Satellite hardening test: N producers, M poppers, one thief,
        // one mid-flight poisoner, then shutdown. Every item pushed must
        // come out exactly once; nobody may panic or deadlock.
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 500;
        const POPPERS: usize = 3;
        let q: Arc<AdmissionQueue<u64>> = Arc::new(AdmissionQueue::new(64));
        let drained: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

        std::thread::scope(|scope| {
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        let mut accepted = Vec::new();
                        for i in 0..PER_PRODUCER {
                            let item = (p * PER_PRODUCER + i) as u64;
                            let mut v = item;
                            // Spin until accepted: full-queue rejections
                            // hand the item back and we retry.
                            loop {
                                match q.try_push(v) {
                                    Ok(()) => {
                                        accepted.push(item);
                                        break;
                                    }
                                    Err(back) => {
                                        v = back;
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                        accepted
                    })
                })
                .collect();

            let poppers: Vec<_> = (0..POPPERS)
                .map(|_| {
                    let q = Arc::clone(&q);
                    let drained = Arc::clone(&drained);
                    scope.spawn(move || loop {
                        match q.pop_timeout(Duration::from_millis(5)) {
                            Some(item) => {
                                drained.lock().unwrap_or_else(|e| e.into_inner()).push(item)
                            }
                            None if q.is_closed() => break,
                            None => {}
                        }
                    })
                })
                .collect();

            // A thief steals batches from the shared queue concurrently.
            let thief = {
                let q = Arc::clone(&q);
                let drained = Arc::clone(&drained);
                scope.spawn(move || {
                    while !q.is_closed() || !q.is_empty() {
                        let stolen = q.steal_up_to(8);
                        if stolen.is_empty() {
                            std::thread::yield_now();
                        } else {
                            drained
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .extend(stolen);
                        }
                    }
                })
            };

            // Poison the queue lock mid-flight; everyone must recover.
            std::thread::sleep(Duration::from_millis(5));
            let qp = Arc::clone(&q);
            let _ = std::thread::spawn(move || qp.poison_for_test()).join();

            let pushed: usize = producers.into_iter().map(|h| h.join().unwrap().len()).sum();
            assert_eq!(pushed, PRODUCERS * PER_PRODUCER);
            q.close();
            for h in poppers {
                h.join().unwrap();
            }
            thief.join().unwrap();
        });

        let mut got = drained.lock().unwrap_or_else(|e| e.into_inner()).clone();
        got.sort_unstable();
        let want: Vec<u64> = (0..(PRODUCERS * PER_PRODUCER) as u64).collect();
        assert_eq!(got, want, "every item must come out exactly once");
    }
}
