//! The sharded pricing service: a front-end **router** that validates
//! and distributes admission across `N` **worker shards**, each a thread
//! owning its own bounded admission queue, per-kernel micro-batcher
//! lanes, circuit breakers, and degradation ladders.
//!
//! ```text
//! submit() ──► validate ── invalid ⇒ Rejected::InvalidInput (synchronous)
//!                   │
//!                   ▼ route (round-robin over alive shards,
//!                   │        spill to least-loaded before QueueFull)
//!     ┌─────────────┼──────────────┐
//!     ▼             ▼              ▼
//!  shard 0       shard 1   …    shard N-1      (each: AdmissionQueue +
//!     │ pop         │ pop          │ pop        worker thread)
//!     ▼             ▼              ▼
//!  per-kernel MicroBatcher lanes, one set per shard
//!     │ padded SOA batch   idle shards steal queued work from the
//!     ▼                    busiest sibling (bit-invisible: any shard
//!  catch_unwind(rung.price)        prices the same rung identically)
//!     │ scatter-back │ panic ⇒ Rejected::Internal, breaker feeds back
//!     └────► PriceResponse per request (mpsc) ◄─────┘
//! ```
//!
//! ## The shard boundary is a message-passing seam
//!
//! The router talks to a shard **only** through its [`AdmissionQueue`]
//! (owned work messages in) and the per-request `mpsc` response channels
//! carried inside each envelope (results out); shared-memory state is
//! limited to monotonic telemetry tallies. A later PR can therefore move
//! shards behind a socket/IPC transport by serializing `Work` at this
//! seam without touching lane logic.
//!
//! ## Cross-shard backpressure and work stealing
//!
//! Admission round-robins over *alive* shards; when the chosen shard's
//! queue is full the router spills to the least-loaded alive shard and
//! only answers [`Rejected::QueueFull`] once every alive shard is full.
//! On the worker side an idle shard (its own queue empty at a pop
//! timeout) steals queued work from the back of the deepest sibling
//! queue into its own same-kernel lanes. Both mechanisms are
//! bit-invisible: batching is padded and lane-wise, so a request prices
//! identically on whichever shard executes it (property-tested in
//! `tests/batching_equivalence.rs`).
//!
//! ## Shard loss, redrive, and supervision
//!
//! A shard killed by the `serve.shard.<i>=kill` fault marks itself dead,
//! closes its queue, and exits; the router stops routing to it. Work
//! stranded in its lanes and queue is **redriven** once to a live
//! sibling — the response channel rides inside the envelope, and padded
//! lane-wise batching makes the move bit-invisible, exactly like a
//! steal. Each envelope carries a `redriven` flag, so a request caught
//! in a *second* shard loss is answered [`Rejected::Internal`] instead
//! of re-routed again: at most one redelivery per request, never a
//! ping-pong and never a duplicate response. Requests whose deadline
//! passed while stranded are shed (`shed_deadline` for first attempts,
//! `shed_deadline_redrive` for already-redriven work), so a retry never
//! serves a request its client has given up on.
//!
//! When [`SupervisorPolicy::respawn`] is on (the default), a monitor
//! thread owned by the [`Server`] detects the dead seat and **respawns**
//! a fresh worker in it: the old thread is joined, the seat's queue is
//! reopened, and the seat is marked alive again — full capacity comes
//! back instead of shrinking for the rest of the process. Respawn
//! backoff reuses the [`Breaker`] cooldown discipline (capped
//! exponential: a seat that keeps dying waits longer each time; a seat
//! that stays up past `heal_after` resets its backoff), and each
//! recovery is counted (`serve.shard.<i>.respawns`) with its MTTR
//! (kill → respawned-and-serving) recorded in the shard snapshot.
//! Availability degrades during the outage window, correctness never
//! does.
//!
//! ## Fault tolerance
//!
//! Every lane's batch execution runs under `catch_unwind`: a kernel
//! panic answers the in-flight batch with [`Rejected::Internal`] and
//! feeds the lane's [`Breaker`] instead of killing the dispatcher. A
//! failing lane first **degrades down its servable rung ladder** (the
//! paper's own equivalence ladder: a cheaper rung still prices
//! bit-identically to itself, so fidelity of the contract survives —
//! only throughput is sacrificed). Only when the bottom (scalar
//! reference) rung keeps failing does the breaker open; reopening uses
//! capped exponential backoff, and recovery probes half-open before
//! closing. Sustained success promotes the lane back up one level at a
//! time. Fault-injection hooks ([`finbench_faults`]) are compiled into
//! the admit, queue, and batch paths, armed only when a `FINBENCH_FAULTS`
//! plan is installed.
//!
//! Telemetry: `serve.queue_depth` gauge, `serve.batch.<kernel>` spans
//! with occupancy + degradation level, `serve.served` / `serve.shed.*` /
//! `serve.rejected` / `serve.invalid_input` / `serve.internal` /
//! `serve.lane_restarts` / `serve.breaker_open` / `serve.degraded_batches`
//! counters, `serve.breaker.<kernel>` + `serve.degradation.<kernel>`
//! gauges, and per-kernel latency + occupancy histograms surfaced through
//! [`ServeSnapshot`].

use crate::batcher::{target_batch, BatchPolicy, MicroBatcher};
use crate::breaker::{Breaker, BreakerPolicy, BreakerState, FailureAction, Gate};
use crate::portfolio::{PortfolioChunkOut, PortfolioChunkRequest, PortfolioChunkResponse};
use crate::pricer::PricerConfig;
use crate::queue::AdmissionQueue;
use crate::request::{
    GreeksRequest, GreeksResponse, PortfolioOut, PortfolioRequest, PortfolioResponse, PriceRequest,
    PriceResponse, Rejected,
};
use crate::workload::{
    Envelope, GreeksWorkload, PortfolioWorkload, PriceWorkload, Scratch, ServeWorkload,
};
use finbench_core::engine::registry;
use finbench_core::portfolio::var_es;
use finbench_engine::Engine;
use finbench_faults::{self as faults, FaultKind};
use finbench_telemetry::{self as telemetry, Histogram};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Admission queue capacity **per shard** — the backpressure bound.
    pub queue_capacity: usize,
    /// Micro-batch delay trigger: the longest a request waits for
    /// companions before its batch flushes anyway.
    pub max_delay: Duration,
    /// Upper clamp for the planner-derived size trigger.
    pub max_batch: usize,
    /// Worker shard count (`>= 1`; clamped up). One shard reproduces the
    /// original single-dispatcher plane exactly.
    pub shards: usize,
    /// Pricer configuration (market params, binomial steps, pool chunk).
    pub pricer: PricerConfig,
    /// Per-lane circuit-breaker tuning.
    pub breaker: BreakerPolicy,
    /// Shard supervision: dead-seat respawn and its backoff discipline.
    pub supervisor: SupervisorPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 4096,
            max_delay: Duration::from_millis(1),
            max_batch: 4096,
            shards: 1,
            pricer: PricerConfig::default(),
            breaker: BreakerPolicy::default(),
            supervisor: SupervisorPolicy::default(),
        }
    }
}

/// Supervision policy for the serving plane's worker shards: whether a
/// dead seat is respawned, and the backoff discipline when it is.
///
/// The supervisor reuses the [`Breaker`] cooldown state machine per
/// seat: a death opens the seat's breaker (respawn waits out the
/// cooldown), a respawned seat is half-open (on probation), surviving
/// `heal_after` closes it (backoff forgiven), and dying on probation
/// doubles the cooldown, capped at `max_cooldown` — a seat that is
/// killed as fast as it comes back converges to one respawn per
/// `max_cooldown` instead of a hot crash loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorPolicy {
    /// Respawn dead shards (`false` reproduces the terminal-loss
    /// behavior: a killed shard stays dead for the process lifetime).
    pub respawn: bool,
    /// Initial death → respawn cooldown.
    pub cooldown: Duration,
    /// Upper bound for the doubling cooldown.
    pub max_cooldown: Duration,
    /// Continuous alive time after which a respawned seat's backoff
    /// resets to `cooldown`.
    pub heal_after: Duration,
    /// Monitor thread poll interval (also bounds how long shutdown
    /// waits for the monitor to notice `closing`).
    pub poll: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            respawn: true,
            cooldown: Duration::from_millis(1),
            max_cooldown: Duration::from_millis(250),
            heal_after: Duration::from_millis(50),
            poll: Duration::from_micros(500),
        }
    }
}

/// One admitted unit of work: both request planes ride the same bounded
/// queue, so backpressure is shared and admission order is global.
enum Work {
    Price(Envelope<PriceWorkload>),
    Greeks(Envelope<GreeksWorkload>),
    Portfolio(Envelope<PortfolioWorkload>),
}

impl Work {
    /// The request's absolute deadline — the end-to-end budget every
    /// hop (admission wait, spill, steal, redrive, batch execution)
    /// draws from, because it never moves once the client set it.
    fn deadline(&self) -> Option<Instant> {
        match self {
            Work::Price(env) => PriceWorkload::deadline(&env.req),
            Work::Greeks(env) => GreeksWorkload::deadline(&env.req),
            Work::Portfolio(env) => PortfolioWorkload::deadline(&env.req),
        }
    }

    /// True once this item has burned its single shard-loss redrive.
    fn redriven(&self) -> bool {
        match self {
            Work::Price(env) => env.redriven,
            Work::Greeks(env) => env.redriven,
            Work::Portfolio(env) => env.redriven,
        }
    }

    fn mark_redriven(&mut self) {
        match self {
            Work::Price(env) => env.redriven = true,
            Work::Greeks(env) => env.redriven = true,
            Work::Portfolio(env) => env.redriven = true,
        }
    }

    /// Answer this item `Rejected::Internal` and tally it. The terminal
    /// path for stranded work that cannot be redriven.
    // `&str` would force an owned clone per item; `&Cow` keeps the
    // (common) borrowed reasons allocation-free.
    #[allow(clippy::ptr_arg)]
    fn reject_internal(self, reason: &Cow<'static, str>, stats: &Mutex<StatsInner>) {
        lock_stats(stats).internal += 1;
        match self {
            Work::Price(env) => {
                telemetry::counter_add(PriceWorkload::COUNTERS.internal, 1);
                let _ = env.tx.send(PriceWorkload::respond(
                    PriceWorkload::id(&env.req),
                    Err(Rejected::Internal {
                        reason: reason.clone(),
                    }),
                ));
            }
            Work::Greeks(env) => {
                telemetry::counter_add(GreeksWorkload::COUNTERS.internal, 1);
                let _ = env.tx.send(GreeksWorkload::respond(
                    GreeksWorkload::id(&env.req),
                    Err(Rejected::Internal {
                        reason: reason.clone(),
                    }),
                ));
            }
            Work::Portfolio(env) => {
                telemetry::counter_add(PortfolioWorkload::COUNTERS.internal, 1);
                let _ = env.tx.send(PortfolioWorkload::respond(
                    PortfolioWorkload::id(&env.req),
                    Err(Rejected::Internal {
                        reason: reason.clone(),
                    }),
                ));
            }
        }
    }

    /// Shed this item `Rejected::DeadlineExceeded`, tallying into the
    /// first-attempt or post-redrive bucket by its `redriven` flag.
    fn shed_deadline(self, late_by: Duration, stats: &Mutex<StatsInner>) {
        let redriven = self.redriven();
        {
            let mut st = lock_stats(stats);
            if redriven {
                st.shed_deadline_redrive += 1;
            } else {
                st.shed_deadline += 1;
            }
        }
        match self {
            Work::Price(env) => {
                let c = PriceWorkload::COUNTERS;
                telemetry::counter_add(
                    if redriven {
                        c.shed_deadline_redrive
                    } else {
                        c.shed_deadline
                    },
                    1,
                );
                let _ = env.tx.send(PriceWorkload::respond(
                    PriceWorkload::id(&env.req),
                    Err(Rejected::DeadlineExceeded { late_by }),
                ));
            }
            Work::Greeks(env) => {
                let c = GreeksWorkload::COUNTERS;
                telemetry::counter_add(
                    if redriven {
                        c.shed_deadline_redrive
                    } else {
                        c.shed_deadline
                    },
                    1,
                );
                let _ = env.tx.send(GreeksWorkload::respond(
                    GreeksWorkload::id(&env.req),
                    Err(Rejected::DeadlineExceeded { late_by }),
                ));
            }
            Work::Portfolio(env) => {
                let c = PortfolioWorkload::COUNTERS;
                telemetry::counter_add(
                    if redriven {
                        c.shed_deadline_redrive
                    } else {
                        c.shed_deadline
                    },
                    1,
                );
                let _ = env.tx.send(PortfolioWorkload::respond(
                    PortfolioWorkload::id(&env.req),
                    Err(Rejected::DeadlineExceeded { late_by }),
                ));
            }
        }
    }
}

/// One lane's serving state inside the dispatcher, generic over the
/// request plane it runs ([`ServeWorkload`]): its degradation ladder
/// (index 0 = planned serving rung, last = scalar reference), the level
/// it currently serves at, its supervising breaker, and its reusable
/// batch buffers. The flush target and [`Scratch`] are recycled across
/// batches — grown to the largest flush seen, never shrunk — so
/// steady-state batch execution allocates nothing.
struct Lane<W: ServeWorkload> {
    /// Lane key: the kernel name (stats map key, telemetry `<key>`).
    key: String,
    ladder: Vec<W::Rung>,
    level: usize,
    breaker: Breaker,
    batcher: MicroBatcher<Envelope<W>>,
    target: usize,
    /// The flushed batch being executed, reused across flushes.
    flush: Vec<Envelope<W>>,
    /// Reusable staging + output buffers for batch execution.
    scratch: Scratch,
    /// Telemetry names, formatted once at lane construction so the hot
    /// path never builds a metric name.
    span_name: String,
    fault_site: String,
    breaker_gauge: String,
    degradation_gauge: String,
}

impl<W: ServeWorkload> Lane<W> {
    fn active_slug(&self) -> &str {
        W::slug(&self.ladder[self.level])
    }

    fn at_bottom(&self) -> bool {
        self.level + 1 >= self.ladder.len()
    }
}

#[derive(Default)]
struct KernelStats {
    rung: String,
    target_batch: usize,
    served: u64,
    batches: u64,
    degraded_batches: u64,
    restarts: u64,
    breaker_open: u64,
    degradation_level: usize,
    breaker: BreakerSnapshotState,
    latency_us: Histogram,
    occupancy: Histogram,
}

/// Default-able stand-in so `KernelStats: Default` keeps working.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BreakerSnapshotState(BreakerState);

impl Default for BreakerSnapshotState {
    fn default() -> Self {
        Self(BreakerState::Closed)
    }
}

#[derive(Default)]
struct StatsInner {
    kernels: BTreeMap<String, KernelStats>,
    shed_queue_full: u64,
    shed_deadline: u64,
    shed_deadline_redrive: u64,
    rejected: u64,
    invalid_input: u64,
    internal: u64,
}

/// Per-shard tallies shared between the router, one worker thread, and
/// the supervisor. All monotonic counters plus the liveness flag — the
/// only shared-memory state crossing the router/shard seam besides the
/// queue itself.
#[derive(Default)]
struct ShardSeat {
    /// False once the shard has been killed (fault) or exited.
    dead: AtomicBool,
    /// Work items the router successfully pushed to this shard.
    submitted: AtomicU64,
    /// Requests this shard answered with a priced/computed result.
    served: AtomicU64,
    /// Work items this shard stole from sibling queues while idle.
    stolen: AtomicU64,
    /// Times the supervisor respawned a fresh worker in this seat.
    respawns: AtomicU64,
    /// Stranded work items this seat's kill path redrove to siblings.
    redriven: AtomicU64,
    /// Cumulative kill → respawned-and-serving time, nanoseconds
    /// (divide by `respawns` for mean MTTR).
    mttr_nanos: AtomicU64,
    /// When the seat's worker died; taken by the respawn path to record
    /// MTTR. A `Mutex` (not an atomic) because `Instant` is opaque.
    killed_at: Mutex<Option<Instant>>,
}

impl ShardSeat {
    fn alive(&self) -> bool {
        !self.dead.load(Ordering::Acquire)
    }

    fn lock_killed_at(&self) -> MutexGuard<'_, Option<Instant>> {
        self.killed_at.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Point-in-time statistics for one worker shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard index (stable; `serve.shard.<index>.*` telemetry names).
    pub index: usize,
    /// False once the shard was killed by a fault or has exited.
    pub alive: bool,
    /// Work items routed to this shard.
    pub submitted: u64,
    /// Requests this shard served.
    pub served: u64,
    /// Work items this shard stole from siblings while idle.
    pub stolen: u64,
    /// Times the supervisor respawned a fresh worker in this seat.
    pub respawns: u64,
    /// Stranded work items this seat redrove to live siblings on kill.
    pub redriven: u64,
    /// Cumulative kill → respawned-and-serving time across this seat's
    /// respawns (divide by `respawns` for the seat's mean MTTR).
    pub mttr: Duration,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
}

impl ShardSnapshot {
    /// Served / submitted for this shard (1.0 when it saw no work —
    /// an idle shard is healthy, not unavailable). Stolen work is served
    /// here but submitted elsewhere, so per-shard availability can
    /// exceed 1; clamp when aggregating.
    pub fn availability(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.served as f64 / self.submitted as f64
        }
    }
}

/// Point-in-time statistics for one kernel lane.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSnapshot {
    /// Kernel name.
    pub kernel: String,
    /// Slug of the rung the lane is serving on *right now* (reflects
    /// degradation).
    pub rung: String,
    /// Planner-derived size trigger.
    pub target_batch: usize,
    /// Requests priced.
    pub served: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches priced below the planned rung (degraded mode).
    pub degraded_batches: u64,
    /// Current degradation level (0 = planned serving rung).
    pub degradation_level: usize,
    /// Supervised lane restarts (breaker Open → HalfOpen transitions).
    pub restarts: u64,
    /// Times the lane's breaker opened.
    pub breaker_open: u64,
    /// Breaker state at snapshot time (`closed`/`half-open`/`open`).
    pub breaker: String,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Mean batch occupancy (requests per dispatched batch).
    pub mean_occupancy: f64,
    /// Largest batch dispatched.
    pub max_occupancy: f64,
}

/// Point-in-time server statistics, merged across every shard (kernel
/// stats are shared tallies; `shards` carries the per-shard split).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Per-kernel lane statistics, kernel-name order, summed over shards.
    pub kernels: Vec<KernelSnapshot>,
    /// Per-shard statistics, shard-index order.
    pub shards: Vec<ShardSnapshot>,
    /// Requests shed at admission (every alive shard's queue full).
    pub shed_queue_full: u64,
    /// Requests shed at dispatch (deadline already blown), first
    /// attempt — the request had not been redriven.
    pub shed_deadline: u64,
    /// Requests shed on a blown deadline *after* a shard-loss redrive:
    /// the retry reached a live sibling but its end-to-end budget ran
    /// out first.
    pub shed_deadline_redrive: u64,
    /// Requests rejected for unknown/unservable kernels.
    pub rejected: u64,
    /// Requests rejected by admission-side input validation.
    pub invalid_input: u64,
    /// Requests answered `Rejected::Internal` (caught panic, open
    /// breaker, or killed shard).
    pub internal: u64,
}

impl ServeSnapshot {
    /// Total load-shedding rejections (excludes bad-kernel and
    /// bad-input rejections, which are caller errors, not overload).
    pub fn total_shed(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline + self.shed_deadline_redrive
    }

    /// Total supervised lane restarts across kernels.
    pub fn total_restarts(&self) -> u64 {
        self.kernels.iter().map(|k| k.restarts).sum()
    }

    /// Total degraded batches across kernels.
    pub fn total_degraded(&self) -> u64 {
        self.kernels.iter().map(|k| k.degraded_batches).sum()
    }

    /// Total work items stolen between shards.
    pub fn total_stolen(&self) -> u64 {
        self.shards.iter().map(|s| s.stolen).sum()
    }

    /// Shards still alive at snapshot time.
    pub fn alive_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.alive).count()
    }

    /// Total supervised shard respawns across seats.
    pub fn total_respawns(&self) -> u64 {
        self.shards.iter().map(|s| s.respawns).sum()
    }

    /// Total stranded work items redriven to live siblings on kill.
    pub fn total_redriven(&self) -> u64 {
        self.shards.iter().map(|s| s.redriven).sum()
    }

    /// Mean time-to-recovery across every respawn (kill →
    /// respawned-and-serving); `None` when nothing has respawned.
    pub fn mean_mttr(&self) -> Option<Duration> {
        let respawns = self.total_respawns();
        if respawns == 0 {
            return None;
        }
        let total: Duration = self.shards.iter().map(|s| s.mttr).sum();
        Some(total / respawns as u32)
    }
}

/// The batched pricing service: the front-end router, its worker
/// shards, and (when respawn is on) the supervising monitor thread.
/// Dropping it shuts every shard down (pending work is still flushed
/// and answered).
pub struct Server {
    /// Per-seat admission queues (the message seam), seat-index order.
    queues: Vec<Arc<AdmissionQueue<Work>>>,
    /// Per-seat shared tallies + liveness, seat-index order.
    seats: Vec<Arc<ShardSeat>>,
    /// Per-seat worker handles. Behind an `Arc<Mutex>` because the
    /// supervisor swaps handles in and out when it respawns a seat.
    workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    /// The supervising monitor thread (`None` when respawn is off).
    monitor: Option<JoinHandle<()>>,
    stats: Arc<Mutex<StatsInner>>,
    /// Round-robin admission cursor.
    rr: AtomicUsize,
    /// Per-shard queue capacity, echoed in `Rejected::QueueFull`.
    capacity: usize,
    /// True once shutdown started (distinguishes `ShuttingDown` from a
    /// dead-shard rejection; also stops the supervisor from respawning
    /// into a closing server). Shared with the monitor thread.
    closing: Arc<AtomicBool>,
}

fn lock_workers(
    workers: &Mutex<Vec<Option<JoinHandle<()>>>>,
) -> MutexGuard<'_, Vec<Option<JoinHandle<()>>>> {
    workers.lock().unwrap_or_else(|e| e.into_inner())
}

/// Lock the stats, recovering from poison: statistics are monotonic
/// tallies with no cross-field invariant a panicking thread can break.
fn lock_stats(stats: &Mutex<StatsInner>) -> MutexGuard<'_, StatsInner> {
    stats.lock().unwrap_or_else(|e| e.into_inner())
}

impl Server {
    /// Start a server over the workspace's kernel registry, planning
    /// rungs for the build host: `config.shards` worker shards behind
    /// one router.
    pub fn start(config: ServeConfig) -> Self {
        let n = config.shards.max(1);
        let stats = Arc::new(Mutex::new(StatsInner::default()));
        let queues: Vec<Arc<AdmissionQueue<Work>>> = (0..n)
            .map(|_| Arc::new(AdmissionQueue::new(config.queue_capacity)))
            .collect();
        let seats: Vec<Arc<ShardSeat>> = (0..n).map(|_| Arc::new(ShardSeat::default())).collect();
        let workers: Vec<Option<JoinHandle<()>>> = (0..n)
            .map(|i| Some(spawn_worker(i, &queues, &seats, &stats, config)))
            .collect();
        let workers = Arc::new(Mutex::new(workers));
        let closing = Arc::new(AtomicBool::new(false));
        let monitor = config.supervisor.respawn.then(|| {
            let ctx = SupervisorCtx {
                queues: queues.clone(),
                seats: seats.clone(),
                stats: Arc::clone(&stats),
                workers: Arc::clone(&workers),
                closing: Arc::clone(&closing),
                config,
            };
            std::thread::Builder::new()
                .name("finbench-serve-supervisor".into())
                .spawn(move || supervisor_loop(ctx))
                .expect("spawn shard supervisor")
        });
        Self {
            queues,
            seats,
            workers,
            monitor,
            stats,
            rr: AtomicUsize::new(0),
            capacity: config.queue_capacity.max(1),
            closing,
        }
    }

    /// Route one admitted work item: round-robin over alive shards, then
    /// spill to the least-loaded alive shard before giving up. Returns
    /// the item with a typed rejection when no shard can take it.
    // The Err carries the Work back by value so the caller can scatter
    // the rejection without a clone; the size is fine off the hot path.
    #[allow(clippy::result_large_err)]
    fn route(&self, work: Work) -> Result<(), (Work, Rejected)> {
        let n = self.queues.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        let mut work = work;
        // Pass 1: the round-robin pick — the first alive shard at or
        // after the cursor.
        let Some(primary) = (0..n)
            .map(|k| (start + k) % n)
            .find(|&i| self.seats[i].alive())
        else {
            let reason = if self.closing.load(Ordering::Acquire) {
                Rejected::ShuttingDown
            } else {
                // `Cow::Borrowed`: rejecting under total shard loss must
                // not allocate on the submit path.
                Rejected::Internal {
                    reason: "no alive shards".into(),
                }
            };
            return Err((work, reason));
        };
        match self.queues[primary].try_push(work) {
            Ok(()) => {
                self.seats[primary]
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Err(back) => work = back,
        }
        // Pass 2 (cross-shard backpressure): spill to alive shards in
        // ascending queue-depth order before rejecting QueueFull.
        let mut full = !self.queues[primary].is_closed();
        let mut by_depth: Vec<usize> = (0..n)
            .filter(|&i| i != primary && self.seats[i].alive())
            .collect();
        by_depth.sort_by_key(|&i| self.queues[i].len());
        for i in by_depth {
            match self.queues[i].try_push(work) {
                Ok(()) => {
                    self.seats[i].submitted.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter_add("serve.spills", 1);
                    return Ok(());
                }
                Err(back) => {
                    work = back;
                    full = full || !self.queues[i].is_closed();
                }
            }
        }
        let reason = if self.closing.load(Ordering::Acquire) {
            Rejected::ShuttingDown
        } else if full {
            // At least one alive shard rejected on capacity, not closure.
            Rejected::QueueFull {
                capacity: self.capacity,
            }
        } else {
            Rejected::Internal {
                reason: "no alive shards".into(),
            }
        };
        Err((work, reason))
    }

    /// Submit one request; the response arrives on the returned channel.
    pub fn submit(&self, req: PriceRequest) -> Receiver<PriceResponse> {
        let (tx, rx) = mpsc::channel();
        self.submit_with(req, &tx);
        rx
    }

    /// Submit one request, delivering the response on `tx` (load
    /// generators fan many requests into one channel). Backpressure and
    /// validation are synchronous: a full queue answers
    /// `Rejected::QueueFull` and a domain-invalid request answers
    /// `Rejected::InvalidInput` right here, on the caller's thread —
    /// invalid parameters never reach a batch.
    pub fn submit_with(&self, req: PriceRequest, tx: &Sender<PriceResponse>) {
        let id = req.id;
        let mut req = req;
        // Fault injection (armed only under a FINBENCH_FAULTS plan):
        // corrupt the request's inputs *before* validation, so chaos runs
        // exercise the admission filter, never the kernels.
        if faults::armed() {
            for kind in faults::fire(&format!("admit.{}", req.kernel)) {
                if let FaultKind::CorruptInput(c) = kind {
                    match c {
                        finbench_faults::Corruption::NaN => req.s = c.apply(req.s),
                        finbench_faults::Corruption::Inf => req.x = c.apply(req.x),
                        finbench_faults::Corruption::Negative => req.t = c.apply(req.t),
                    }
                }
            }
        }
        if let Err(reason) = req.validate() {
            lock_stats(&self.stats).invalid_input += 1;
            telemetry::counter_add("serve.invalid_input", 1);
            let _ = tx.send(PriceResponse {
                id,
                outcome: Err(reason),
            });
            return;
        }
        let env = Envelope {
            req,
            submitted: Instant::now(),
            redriven: false,
            tx: tx.clone(),
        };
        if let Err((Work::Price(env), reason)) = self.route(Work::Price(env)) {
            if matches!(reason, Rejected::QueueFull { .. }) {
                lock_stats(&self.stats).shed_queue_full += 1;
                telemetry::counter_add("serve.shed.queue_full", 1);
            }
            let _ = env.tx.send(PriceResponse {
                id,
                outcome: Err(reason),
            });
        }
    }

    /// Submit one greeks request; the response arrives on the returned
    /// channel.
    pub fn submit_greeks(&self, req: GreeksRequest) -> Receiver<GreeksResponse> {
        let (tx, rx) = mpsc::channel();
        self.submit_greeks_with(req, &tx);
        rx
    }

    /// Submit one greeks request, delivering the response on `tx`. Same
    /// synchronous backpressure and validation contract as
    /// [`submit_with`](Self::submit_with): the shared admission queue
    /// answers `Rejected::QueueFull`, and domain-invalid parameters
    /// answer `Rejected::InvalidInput` on the caller's thread.
    pub fn submit_greeks_with(&self, req: GreeksRequest, tx: &Sender<GreeksResponse>) {
        let id = req.id;
        let mut req = req;
        // Fault injection mirrors the pricing plane: corrupt inputs
        // *before* validation so chaos runs exercise the admission
        // filter, never the greeks kernels.
        if faults::armed() {
            for kind in faults::fire("admit.greeks") {
                if let FaultKind::CorruptInput(c) = kind {
                    match c {
                        finbench_faults::Corruption::NaN => req.s = c.apply(req.s),
                        finbench_faults::Corruption::Inf => req.x = c.apply(req.x),
                        finbench_faults::Corruption::Negative => req.t = c.apply(req.t),
                    }
                }
            }
        }
        if let Err(reason) = req.validate() {
            lock_stats(&self.stats).invalid_input += 1;
            telemetry::counter_add("greeks.invalid_input", 1);
            let _ = tx.send(GreeksResponse {
                id,
                outcome: Err(reason),
            });
            return;
        }
        let env = Envelope {
            req,
            submitted: Instant::now(),
            redriven: false,
            tx: tx.clone(),
        };
        if let Err((Work::Greeks(env), reason)) = self.route(Work::Greeks(env)) {
            if matches!(reason, Rejected::QueueFull { .. }) {
                lock_stats(&self.stats).shed_queue_full += 1;
                telemetry::counter_add("greeks.shed.queue_full", 1);
            }
            let _ = env.tx.send(GreeksResponse {
                id,
                outcome: Err(reason),
            });
        }
    }

    /// Submit one portfolio market-risk request; the merged response
    /// arrives on the returned channel.
    pub fn submit_portfolio(&self, req: PortfolioRequest) -> Receiver<PortfolioResponse> {
        let (tx, rx) = mpsc::channel();
        self.submit_portfolio_with(req, &tx);
        rx
    }

    /// Submit one portfolio request, delivering the merged response on
    /// `tx`. Validation is synchronous, like the other planes; the
    /// fan-out is not — the scenario range is split into chunks routed
    /// across the live shards (each chunk spills, is stolen, and is
    /// redriven like any work item), and a merge task stitches the
    /// partial P&L tallies back into scenario order, aggregates VaR/ES,
    /// and answers exactly once. Any chunk-level rejection fails the
    /// whole request with the first failure's typed reason — partial
    /// P&L distributions are never surfaced.
    pub fn submit_portfolio_with(&self, req: PortfolioRequest, tx: &Sender<PortfolioResponse>) {
        let id = req.id;
        if let Err(reason) = req.validate() {
            lock_stats(&self.stats).invalid_input += 1;
            telemetry::counter_add("portfolio.invalid_input", 1);
            let _ = tx.send(PortfolioResponse {
                id,
                outcome: Err(reason),
            });
            return;
        }
        telemetry::counter_add("portfolio.requests", 1);
        let submitted = Instant::now();
        // Chunk size: explicit, or a few chunks per shard so every live
        // worker sees fan-out (and work stealing has grains to move).
        let chunk = if req.chunk > 0 {
            req.chunk
        } else {
            req.scenarios.div_ceil(self.queues.len() * 4).max(16)
        }
        .min(req.scenarios)
        .max(1);
        let (ctx_tx, ctx_rx) = mpsc::channel();
        let mut expected = 0usize;
        let mut route_err: Option<Rejected> = None;
        let mut lo = 0;
        while lo < req.scenarios {
            let hi = (lo + chunk).min(req.scenarios);
            let env = Envelope {
                req: PortfolioChunkRequest {
                    id,
                    seed: req.seed,
                    positions: req.positions,
                    scenarios: req.scenarios,
                    lo,
                    hi,
                    deadline: req.deadline,
                },
                submitted,
                redriven: false,
                tx: ctx_tx.clone(),
            };
            match self.route(Work::Portfolio(env)) {
                Ok(()) => expected += 1,
                // Dropping the returned envelope drops its channel clone;
                // the merger only waits for successfully routed chunks.
                Err((_env, reason)) => {
                    if matches!(reason, Rejected::QueueFull { .. }) {
                        lock_stats(&self.stats).shed_queue_full += 1;
                        telemetry::counter_add("portfolio.shed.queue_full", 1);
                    }
                    route_err.get_or_insert(reason);
                }
            }
            lo = hi;
        }
        drop(ctx_tx);
        let tx = tx.clone();
        let confidence = req.confidence;
        let scenarios = req.scenarios;
        // The merge runs on its own short-lived thread so submit returns
        // immediately: the fan-out's latency belongs to the server, not
        // the caller's submit path.
        std::thread::Builder::new()
            .name("finbench-portfolio-merge".into())
            .spawn(move || {
                merge_portfolio(
                    id, scenarios, confidence, expected, route_err, ctx_rx, tx, submitted,
                )
            })
            .expect("spawn portfolio merge task");
    }

    /// Current admission-queue depth, summed over all shards.
    pub fn queue_depth(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Number of worker shards (alive or not).
    pub fn shard_count(&self) -> usize {
        self.queues.len()
    }

    /// Point-in-time statistics, merged across shards.
    pub fn snapshot(&self) -> ServeSnapshot {
        let snap = snapshot(&lock_stats(&self.stats));
        ServeSnapshot {
            shards: self.shard_snapshots(),
            ..snap
        }
    }

    fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.seats
            .iter()
            .enumerate()
            .map(|(i, seat)| ShardSnapshot {
                index: i,
                alive: seat.alive(),
                submitted: seat.submitted.load(Ordering::Relaxed),
                served: seat.served.load(Ordering::Relaxed),
                stolen: seat.stolen.load(Ordering::Relaxed),
                respawns: seat.respawns.load(Ordering::Relaxed),
                redriven: seat.redriven.load(Ordering::Relaxed),
                mttr: Duration::from_nanos(seat.mttr_nanos.load(Ordering::Relaxed)),
                queue_depth: self.queues[i].len(),
            })
            .collect()
    }

    /// Stop the plane: monitor first, then queues, then workers.
    /// Idempotent (`shutdown` runs it, then `Drop` runs it again on the
    /// same instance).
    fn stop(&mut self) {
        self.closing.store(true, Ordering::Release);
        // Join the supervisor BEFORE closing queues: a respawn racing
        // shutdown could otherwise reopen a queue after we closed it,
        // leaving a fresh worker blocked on a queue nobody will close
        // again. The monitor checks `closing` every poll, so this join
        // is bounded by the poll interval plus one respawn.
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
        for q in &self.queues {
            q.close();
        }
        let mut workers = lock_workers(&self.workers);
        for slot in workers.iter_mut() {
            if let Some(h) = slot.take() {
                let _ = h.join();
            }
        }
    }

    /// Stop accepting work, drain and answer everything pending, and
    /// return the final statistics.
    pub fn shutdown(mut self) -> ServeSnapshot {
        self.stop();
        let snap = snapshot(&lock_stats(&self.stats));
        ServeSnapshot {
            shards: self.shard_snapshots(),
            ..snap
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Merge one portfolio fan-out: collect every routed chunk's response,
/// stitch partial P&L tallies back into scenario order, aggregate
/// VaR/ES, and answer exactly once.
///
/// All `expected` chunk responses are drained even after a failure is
/// seen — a merge task must never abandon a channel a shard is still
/// scattering into — and the final outcome is either the full merged
/// distribution or the *first* failure's typed reason.
#[allow(clippy::too_many_arguments)]
fn merge_portfolio(
    id: u64,
    scenarios: usize,
    confidence: Vec<f64>,
    expected: usize,
    route_err: Option<Rejected>,
    rx: Receiver<PortfolioChunkResponse>,
    tx: Sender<PortfolioResponse>,
    submitted: Instant,
) {
    let mut parts: Vec<PortfolioChunkOut> = Vec::with_capacity(expected);
    let mut first_err = route_err;
    for _ in 0..expected {
        match rx.recv() {
            Ok(resp) => match resp.outcome {
                Ok(part) => parts.push(part),
                Err(reason) => {
                    first_err.get_or_insert(reason);
                }
            },
            Err(_) => {
                // Every server path answers each envelope exactly once,
                // so a closed channel with responses still owed is a bug
                // upstream — fail the request instead of hanging forever.
                first_err.get_or_insert(Rejected::Internal {
                    reason: "portfolio chunk response channel closed early".into(),
                });
                break;
            }
        }
    }
    if let Some(reason) = first_err {
        telemetry::counter_add("portfolio.failed", 1);
        let _ = tx.send(PortfolioResponse {
            id,
            outcome: Err(reason),
        });
        return;
    }
    // Scenario order is the merge contract: chunks may have executed on
    // any shard in any order, but `lo` restores the native sweep's
    // layout, making the concatenation bit-identical to it.
    parts.sort_by_key(|p| p.lo);
    let mut pnl = Vec::with_capacity(scenarios);
    for p in &parts {
        pnl.extend_from_slice(&p.pnl);
    }
    debug_assert_eq!(pnl.len(), scenarios, "chunks must tile the grid");
    let risk = var_es(&pnl, &confidence);
    let mut rungs: Vec<String> = parts.iter().map(|p| p.rung.clone()).collect();
    rungs.sort();
    rungs.dedup();
    telemetry::counter_add("portfolio.merged", 1);
    let _ = tx.send(PortfolioResponse {
        id,
        outcome: Ok(PortfolioOut {
            pnl,
            risk,
            scenarios,
            chunks: parts.len(),
            rungs,
            latency: submitted.elapsed(),
        }),
    });
}

/// Spawn one worker thread into seat `i`.
fn spawn_worker(
    i: usize,
    queues: &[Arc<AdmissionQueue<Work>>],
    seats: &[Arc<ShardSeat>],
    stats: &Arc<Mutex<StatsInner>>,
    config: ServeConfig,
) -> JoinHandle<()> {
    let ctx = ShardCtx {
        index: i,
        queues: queues.to_vec(),
        seats: seats.to_vec(),
        stats: Arc::clone(stats),
        config,
    };
    std::thread::Builder::new()
        .name(format!("finbench-serve-{i}"))
        .spawn(move || shard_loop(ctx))
        .expect("spawn shard worker")
}

fn snapshot(st: &StatsInner) -> ServeSnapshot {
    ServeSnapshot {
        kernels: st
            .kernels
            .iter()
            .map(|(name, k)| KernelSnapshot {
                kernel: name.clone(),
                rung: k.rung.clone(),
                target_batch: k.target_batch,
                served: k.served,
                batches: k.batches,
                degraded_batches: k.degraded_batches,
                degradation_level: k.degradation_level,
                restarts: k.restarts,
                breaker_open: k.breaker_open,
                breaker: k.breaker.0.as_str().to_string(),
                p50_us: k.latency_us.median(),
                p95_us: k.latency_us.p95(),
                p99_us: k.latency_us.quantile(0.99),
                mean_occupancy: k.occupancy.mean(),
                max_occupancy: k.occupancy.max(),
            })
            .collect(),
        shards: Vec::new(),
        shed_queue_full: st.shed_queue_full,
        shed_deadline: st.shed_deadline,
        shed_deadline_redrive: st.shed_deadline_redrive,
        rejected: st.rejected,
        invalid_input: st.invalid_input,
        internal: st.internal,
    }
}

/// Everything the supervising monitor thread needs to detect dead seats
/// and respawn workers into them.
struct SupervisorCtx {
    queues: Vec<Arc<AdmissionQueue<Work>>>,
    seats: Vec<Arc<ShardSeat>>,
    stats: Arc<Mutex<StatsInner>>,
    workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    closing: Arc<AtomicBool>,
    config: ServeConfig,
}

/// Per-seat supervisor state: one [`Breaker`] carrying the respawn
/// backoff (`open_after: 1` — a single death opens it), plus edge
/// detection and the probation clock.
struct SeatSupervision {
    breaker: Breaker,
    /// Liveness observed on the previous scan (edge-detects deaths).
    was_alive: bool,
    /// When the seat was last respawned; sustained life past
    /// `heal_after` closes the breaker and forgives the backoff.
    respawned_at: Option<Instant>,
}

/// The monitor loop: scan every seat each `poll` interval.
///
/// State machine per seat (mirrors the lane breaker's):
/// * alive, on probation, `heal_after` elapsed → `on_success` (backoff
///   forgiven);
/// * freshly dead → `on_failure` (Closed→Open immediately, or
///   HalfOpen→Open with a doubled, capped cooldown when it died on
///   probation);
/// * dead, cooldown elapsed → respawn (the Open→HalfOpen edge), seat
///   back on probation.
fn supervisor_loop(ctx: SupervisorCtx) {
    let policy = ctx.config.supervisor;
    let breaker_policy = BreakerPolicy {
        open_after: 1,
        cooldown: policy.cooldown,
        max_cooldown: policy.max_cooldown,
        promote_after: 1,
    };
    let mut sups: Vec<SeatSupervision> = ctx
        .seats
        .iter()
        .map(|_| SeatSupervision {
            breaker: Breaker::new(breaker_policy),
            was_alive: true,
            respawned_at: None,
        })
        .collect();
    loop {
        if ctx.closing.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        for (i, sup) in sups.iter_mut().enumerate() {
            if ctx.seats[i].alive() {
                sup.was_alive = true;
                if let Some(since) = sup.respawned_at {
                    if now.duration_since(since) >= policy.heal_after {
                        // Survived probation: backoff resets to the
                        // initial cooldown.
                        sup.breaker.on_success();
                        sup.respawned_at = None;
                    }
                }
                continue;
            }
            if sup.was_alive {
                // Freshly observed death. `at_bottom: true` — there is
                // no ladder to degrade down, the seat just opens
                // (doubling the cooldown if it died on probation).
                sup.breaker.on_failure(now, true);
                sup.was_alive = false;
            }
            if sup.breaker.allow(now).is_ok() {
                respawn(&ctx, i);
                sup.was_alive = true;
                sup.respawned_at = Some(Instant::now());
            }
        }
        std::thread::sleep(policy.poll);
    }
}

/// Respawn a fresh worker into dead seat `i`: join the exited thread,
/// reopen the seat's (drained) queue, spawn, record MTTR, and mark the
/// seat alive so the router routes here again.
fn respawn(ctx: &SupervisorCtx, i: usize) {
    // Join the dead worker outside the workers lock: the kill path has
    // already run (or is finishing), so this is bounded.
    let old = lock_workers(&ctx.workers)[i].take();
    if let Some(h) = old {
        let _ = h.join();
    }
    if ctx.closing.load(Ordering::Acquire) {
        // Shutdown raced in while we joined; leave the seat dead — the
        // loop observes `closing` next iteration and exits.
        return;
    }
    let seat = &ctx.seats[i];
    // The kill path closed and drained the queue; reopen it before the
    // fresh worker starts so nothing it pops was meant for the corpse.
    ctx.queues[i].reopen();
    let worker = spawn_worker(i, &ctx.queues, &ctx.seats, &ctx.stats, ctx.config);
    lock_workers(&ctx.workers)[i] = Some(worker);
    // MTTR: kill instant → the seat marked alive below.
    if let Some(killed_at) = seat.lock_killed_at().take() {
        let nanos = Instant::now().duration_since(killed_at).as_nanos() as u64;
        seat.mttr_nanos.fetch_add(nanos, Ordering::Relaxed);
        telemetry::gauge_set(&format!("serve.shard.{i}.mttr_ms"), nanos as f64 / 1e6);
    }
    seat.respawns.fetch_add(1, Ordering::Relaxed);
    telemetry::counter_add("serve.respawns", 1);
    telemetry::counter_add(&format!("serve.shard.{i}.respawns"), 1);
    telemetry::gauge_set(&format!("serve.shard.{i}.alive"), 1.0);
    // Last: flipping liveness publishes the seat to the router.
    seat.dead.store(false, Ordering::Release);
}

/// Everything one worker shard needs: its index, the full queue list
/// (its own plus siblings, for stealing), the shared per-shard seats,
/// the merged stats, and the config. Moved into the worker thread.
struct ShardCtx {
    index: usize,
    queues: Vec<Arc<AdmissionQueue<Work>>>,
    seats: Vec<Arc<ShardSeat>>,
    stats: Arc<Mutex<StatsInner>>,
    config: ServeConfig,
}

/// Most work items an idle shard steals from one sibling in one pass —
/// enough to refill a micro-batch, small enough to keep the victim warm.
const STEAL_MAX: usize = 64;

fn shard_loop(ctx: ShardCtx) {
    let engine = Engine::new(registry());
    let mut price_lanes: BTreeMap<String, Lane<PriceWorkload>> = BTreeMap::new();
    let mut greeks_lanes: BTreeMap<String, Lane<GreeksWorkload>> = BTreeMap::new();
    let mut portfolio_lanes: BTreeMap<String, Lane<PortfolioWorkload>> = BTreeMap::new();
    let queue = Arc::clone(&ctx.queues[ctx.index]);
    let seat = Arc::clone(&ctx.seats[ctx.index]);
    let stats = &*ctx.stats;
    let config = &ctx.config;
    let depth_gauge = format!("serve.shard.{}.queue_depth", ctx.index);
    let kill_site = format!("serve.shard.{}", ctx.index);
    loop {
        // Fault injection: a stalled (or slowed) worker — its queue backs
        // up and spill/steal/shedding take over.
        if faults::armed() {
            for kind in faults::fire("queue") {
                match kind {
                    FaultKind::StallQueue => {
                        std::thread::sleep(config.max_delay.max(Duration::from_micros(200)));
                    }
                    FaultKind::Latency(d) => std::thread::sleep(d),
                    _ => {}
                }
            }
            // Shard-kill fault: this worker dies. Stranded work is
            // redriven once to live siblings (or answered with typed
            // rejections when it can't be); the supervisor respawns the
            // seat when respawn is on. Availability degrades;
            // correctness and the rest of the fleet do not.
            if faults::fire(&kill_site)
                .iter()
                .any(|k| matches!(k, FaultKind::Kill))
            {
                kill_shard(&ctx, price_lanes, greeks_lanes, portfolio_lanes);
                return;
            }
        }
        // Sleep until new work or the earliest lane flush deadline.
        let now = Instant::now();
        let wait = price_lanes
            .values()
            .filter_map(|l| l.batcher.next_deadline())
            .chain(
                greeks_lanes
                    .values()
                    .filter_map(|l| l.batcher.next_deadline()),
            )
            .chain(
                portfolio_lanes
                    .values()
                    .filter_map(|l| l.batcher.next_deadline()),
            )
            .min()
            .map(|d| d.saturating_duration_since(now))
            .unwrap_or(config.max_delay)
            .min(config.max_delay);
        match queue.pop_timeout(wait.max(Duration::from_micros(50))) {
            Some(work) => {
                telemetry::gauge_set(&depth_gauge, queue.len() as f64);
                let total: usize = ctx.queues.iter().map(|q| q.len()).sum();
                telemetry::gauge_set("serve.queue_depth", total as f64);
                match work {
                    Work::Price(env) => {
                        admit(env, &engine, &mut price_lanes, stats, config, &seat);
                    }
                    Work::Greeks(env) => {
                        admit(env, &engine, &mut greeks_lanes, stats, config, &seat);
                    }
                    Work::Portfolio(env) => {
                        admit(env, &engine, &mut portfolio_lanes, stats, config, &seat);
                    }
                }
            }
            None => {
                if queue.is_closed() && queue.is_empty() {
                    break;
                }
                // Idle with nothing batched locally: steal queued work
                // from the deepest sibling queue (newest items, so the
                // victim keeps its oldest, deadline-critical work).
                if ctx.queues.len() > 1 && queue.is_empty() {
                    for work in steal_from_siblings(&ctx, &seat) {
                        match work {
                            Work::Price(env) => {
                                admit(env, &engine, &mut price_lanes, stats, config, &seat);
                            }
                            Work::Greeks(env) => {
                                admit(env, &engine, &mut greeks_lanes, stats, config, &seat);
                            }
                            Work::Portfolio(env) => {
                                admit(env, &engine, &mut portfolio_lanes, stats, config, &seat);
                            }
                        }
                    }
                }
            }
        }
        // Fire every lane whose delay trigger has passed.
        let now = Instant::now();
        for lane in price_lanes.values_mut() {
            if lane.batcher.due(now) {
                execute(lane, stats, &seat);
            }
        }
        for lane in greeks_lanes.values_mut() {
            if lane.batcher.due(now) {
                execute(lane, stats, &seat);
            }
        }
        for lane in portfolio_lanes.values_mut() {
            if lane.batcher.due(now) {
                execute(lane, stats, &seat);
            }
        }
    }
    // Drain: answer everything still pending in the batchers.
    for lane in price_lanes.values_mut() {
        if !lane.batcher.is_empty() {
            execute(lane, stats, &seat);
        }
    }
    for lane in greeks_lanes.values_mut() {
        if !lane.batcher.is_empty() {
            execute(lane, stats, &seat);
        }
    }
    for lane in portfolio_lanes.values_mut() {
        if !lane.batcher.is_empty() {
            execute(lane, stats, &seat);
        }
    }
}

/// Steal up to [`STEAL_MAX`] work items from the deepest sibling queue.
/// Stolen items land in this shard's own same-kernel lanes; padding and
/// lane-wise rungs make the move bit-invisible to every response.
fn steal_from_siblings(ctx: &ShardCtx, seat: &ShardSeat) -> Vec<Work> {
    let victim = (0..ctx.queues.len())
        .filter(|&i| i != ctx.index)
        .max_by_key(|&i| ctx.queues[i].len());
    let Some(victim) = victim else {
        return Vec::new();
    };
    let depth = ctx.queues[victim].len();
    if depth < 2 {
        // Leave a lone item with its owner: the wakeup it already
        // triggered there is about to consume it.
        return Vec::new();
    }
    let stolen = ctx.queues[victim].steal_up_to((depth / 2).min(STEAL_MAX));
    if !stolen.is_empty() {
        seat.stolen
            .fetch_add(stolen.len() as u64, Ordering::Relaxed);
        telemetry::counter_add("serve.steals", stolen.len() as u64);
    }
    stolen
}

/// Tear one shard down under the kill fault: mark it dead (the router
/// stops routing here), record the kill instant for MTTR, close its
/// queue, and redrive everything pending — batched in lanes or still
/// queued — to live siblings (see [`redrive_stranded`]).
fn kill_shard(
    ctx: &ShardCtx,
    mut price_lanes: BTreeMap<String, Lane<PriceWorkload>>,
    mut greeks_lanes: BTreeMap<String, Lane<GreeksWorkload>>,
    mut portfolio_lanes: BTreeMap<String, Lane<PortfolioWorkload>>,
) {
    let index = ctx.index;
    let queue = &ctx.queues[index];
    let seat = &ctx.seats[index];
    *seat.lock_killed_at() = Some(Instant::now());
    seat.dead.store(true, Ordering::Release);
    queue.close();
    telemetry::counter_add("serve.shard_kills", 1);
    telemetry::gauge_set(&format!("serve.shard.{index}.alive"), 0.0);
    // Collect strandees oldest-first: lane batchers hold work admitted
    // before anything still in the queue.
    let mut stranded: Vec<Work> = Vec::new();
    for lane in price_lanes.values_mut() {
        let Lane { batcher, flush, .. } = lane;
        batcher.flush_into(flush);
        stranded.extend(flush.drain(..).map(Work::Price));
    }
    for lane in greeks_lanes.values_mut() {
        let Lane { batcher, flush, .. } = lane;
        batcher.flush_into(flush);
        stranded.extend(flush.drain(..).map(Work::Greeks));
    }
    for lane in portfolio_lanes.values_mut() {
        let Lane { batcher, flush, .. } = lane;
        batcher.flush_into(flush);
        stranded.extend(flush.drain(..).map(Work::Portfolio));
    }
    stranded.extend(queue.steal_up_to(usize::MAX));
    redrive_stranded(ctx, stranded);
}

/// Redrive the stranded work of a killed shard to live siblings —
/// response channels ride inside the envelopes, and padded lane-wise
/// batching makes execution on the sibling bit-identical, so the move
/// is invisible to clients.
///
/// At-most-once: every redriven envelope is flagged, and a flagged item
/// stranded by a *second* kill is answered `Rejected::Internal` here
/// instead of re-routed — no request is ever delivered to a worker more
/// than twice, and since delivery consumes the envelope, each gets
/// exactly one terminal response. Items whose end-to-end deadline has
/// already passed are shed rather than retried (the budget spans
/// admission wait, spill, steal, redrive, and execution because the
/// deadline is one absolute instant). Like stolen work, redriven items
/// do not bump the sibling's `submitted` tally — they were already
/// counted against this seat.
fn redrive_stranded(ctx: &ShardCtx, stranded: Vec<Work>) {
    if stranded.is_empty() {
        return;
    }
    let index = ctx.index;
    let seat = &ctx.seats[index];
    let stats = &*ctx.stats;
    // Live siblings in ascending queue-depth order, recomputed once per
    // kill (not per item: the kill path should finish fast so the
    // supervisor can respawn the seat).
    let mut order: Vec<usize> = (0..ctx.queues.len())
        .filter(|&i| i != index && ctx.seats[i].alive())
        .collect();
    order.sort_by_key(|&i| ctx.queues[i].len());
    let now = Instant::now();
    for mut work in stranded {
        if let Some(d) = work.deadline() {
            if now > d {
                work.shed_deadline(now.duration_since(d), stats);
                continue;
            }
        }
        if work.redriven() {
            work.reject_internal(
                &Cow::Borrowed("shard killed; redrive budget exhausted"),
                stats,
            );
            continue;
        }
        work.mark_redriven();
        let mut item = Some(work);
        for &i in &order {
            match ctx.queues[i].try_push(item.take().expect("item present until placed")) {
                Ok(()) => {
                    seat.redriven.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter_add("serve.redriven", 1);
                    break;
                }
                Err(back) => item = Some(back),
            }
        }
        if let Some(unplaced) = item {
            unplaced.reject_internal(
                &Cow::Borrowed("shard killed; no live sibling to redrive to"),
                stats,
            );
        }
    }
}

/// Route one admitted envelope into its lane, resolving the lane on
/// first use; bad kernels answer immediately with a typed rejection.
fn admit<W: ServeWorkload>(
    env: Envelope<W>,
    engine: &Engine,
    lanes: &mut BTreeMap<String, Lane<W>>,
    stats: &Mutex<StatsInner>,
    config: &ServeConfig,
    seat: &ShardSeat,
) {
    if !lanes.contains_key(W::lane_key(&env.req)) {
        let key = W::lane_key(&env.req).to_string();
        match make_lane::<W>(engine, &key, config) {
            Ok(lane) => {
                let mut st = lock_stats(stats);
                let ks = st.kernels.entry(key.clone()).or_default();
                ks.rung = lane.active_slug().to_string();
                ks.target_batch = lane.target;
                drop(st);
                lanes.insert(key, lane);
            }
            Err(reason) => {
                lock_stats(stats).rejected += 1;
                telemetry::counter_add(W::COUNTERS.rejected, 1);
                let _ = env.tx.send(W::respond(W::id(&env.req), Err(reason)));
                return;
            }
        }
    }
    let lane = lanes
        .get_mut(W::lane_key(&env.req))
        .expect("lane just ensured");
    lane.batcher.push(env, Instant::now());
    if lane.batcher.full() {
        execute(lane, stats, seat);
    }
}

fn make_lane<W: ServeWorkload>(
    engine: &Engine,
    key: &str,
    config: &ServeConfig,
) -> Result<Lane<W>, Rejected> {
    let ladder = W::ladder(engine, key, &config.pricer)?;
    // Size the batch to what the planned rung can chew through in one
    // delay window; the planner's predicted rate is per-item. A batch can
    // never hold more than the queue can admit, so the cap is the tighter
    // of `max_batch` and the queue capacity.
    let predicted = engine
        .plan(key)
        .map(|p| p.predicted_rate)
        .unwrap_or(f64::NAN);
    let target = target_batch(
        predicted,
        config.max_delay,
        W::width(&ladder[0]),
        config.max_batch.min(config.queue_capacity),
    );
    Ok(Lane {
        batcher: MicroBatcher::new(BatchPolicy {
            max_batch: target,
            max_delay: config.max_delay,
        }),
        ladder,
        level: 0,
        breaker: Breaker::new(config.breaker),
        target,
        flush: Vec::new(),
        scratch: Scratch::new(),
        span_name: format!("serve.batch.{key}"),
        fault_site: format!("batch.{key}"),
        breaker_gauge: format!("serve.breaker.{key}"),
        degradation_gauge: format!("serve.degradation.{key}"),
        key: key.to_string(),
    })
}

/// Answer (and drain) every envelope in `live` with `Rejected::Internal`.
/// Borrowed reasons are cloned for free; owned (formatted) reasons pay
/// one clone per envelope, same as before the `Cow` migration.
// `&str` would defeat exactly that: it forces an owned clone per envelope.
#[allow(clippy::ptr_arg)]
fn reject_internal<W: ServeWorkload>(
    live: &mut Vec<Envelope<W>>,
    reason: &Cow<'static, str>,
    stats: &Mutex<StatsInner>,
) {
    let n = live.len() as u64;
    if n == 0 {
        return;
    }
    lock_stats(stats).internal += n;
    telemetry::counter_add(W::COUNTERS.internal, n);
    for env in live.drain(..) {
        let _ = env.tx.send(W::respond(
            W::id(&env.req),
            Err(Rejected::Internal {
                reason: reason.clone(),
            }),
        ));
    }
}

/// Render a caught panic payload for the `Rejected::Internal` reason.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Flush the lane's micro-batch and execute it: shed blown deadlines,
/// gate on the breaker, stage the batch into the lane's reusable
/// [`Scratch`], run the workload's kernel under `catch_unwind`, and
/// scatter results back. Panics reject the in-flight batch and
/// degrade/open the breaker; successes climb back. Written once,
/// generically — the pricing and greeks planes both run through here.
///
/// The flush target, staging triples, padded SOA batch, and output
/// sweep are all lane-owned and recycled, so a lane at steady state
/// executes whole batches without allocating (the per-response channel
/// sends are the callers' buffers, not the lane's).
fn execute<W: ServeWorkload>(lane: &mut Lane<W>, stats: &Mutex<StatsInner>, seat: &ShardSeat) {
    {
        let Lane { batcher, flush, .. } = lane;
        batcher.flush_into(flush);
    }
    let now = Instant::now();
    lane.flush.retain(|env| match W::deadline(&env.req) {
        Some(d) if now > d => {
            // The deadline is absolute, so this one check enforces the
            // end-to-end budget across admission wait, spill, steal,
            // and redrive. Sheds of redriven work land in their own
            // bucket: they tell the operator the retry arrived but the
            // client's budget had already run out.
            let late_by = now.duration_since(d);
            {
                let mut st = lock_stats(stats);
                if env.redriven {
                    st.shed_deadline_redrive += 1;
                } else {
                    st.shed_deadline += 1;
                }
            }
            telemetry::counter_add(
                if env.redriven {
                    W::COUNTERS.shed_deadline_redrive
                } else {
                    W::COUNTERS.shed_deadline
                },
                1,
            );
            let _ = env.tx.send(W::respond(
                W::id(&env.req),
                Err(Rejected::DeadlineExceeded { late_by }),
            ));
            false
        }
        _ => true,
    });
    if lane.flush.is_empty() {
        return;
    }

    // The breaker gates the batch before any kernel work happens.
    match lane.breaker.allow(now) {
        Err(remaining) => {
            let reason = format!("circuit open for {} (retry in {remaining:?})", lane.key);
            reject_internal(&mut lane.flush, &Cow::Owned(reason), stats);
            publish_lane_health(lane, stats);
            return;
        }
        Ok(Gate::Restarted) => {
            // Supervised restart after the cooldown: count it and probe.
            telemetry::counter_add(W::COUNTERS.lane_restarts, 1);
            lock_stats(stats)
                .kernels
                .entry(lane.key.clone())
                .or_default()
                .restarts += 1;
        }
        Ok(Gate::Proceed | Gate::Probe) => {}
    }

    let level = lane.level;
    let width = W::width(&lane.ladder[level]);

    let _g = telemetry::span(lane.span_name.as_str());
    telemetry::set_attr("rung", W::slug(&lane.ladder[level]));
    telemetry::set_attr("occupancy", lane.flush.len());
    telemetry::set_attr("target", lane.target);
    telemetry::set_attr("degradation_level", level);

    lane.scratch.begin_flush();
    for env in &lane.flush {
        lane.scratch.opts.push(W::contract(&env.req));
        W::stage_extra(&env.req, &mut lane.scratch);
    }
    lane.scratch.stage(width);
    telemetry::set_attr("padded", lane.scratch.soa.len());

    let outcome = {
        let Lane {
            ladder,
            scratch,
            fault_site,
            ..
        } = lane;
        let rung = &ladder[level];
        catch_unwind(AssertUnwindSafe(|| {
            // Fault injection for this batch: added latency and/or a
            // panic, inside the unwind boundary so it exercises the real
            // supervisor.
            if faults::armed() {
                faults::fire_compute(fault_site);
            }
            W::compute(rung, scratch);
        }))
    };
    let done = Instant::now();

    match outcome {
        Ok(()) => {
            if lane.breaker.on_success() && lane.level > 0 {
                // Sustained health: promote one level back toward the
                // planned rung.
                lane.level -= 1;
                telemetry::counter_add(W::COUNTERS.promotions, 1);
            }
            let degraded = level > 0;
            if degraded {
                telemetry::counter_add(W::COUNTERS.degraded_batches, 1);
            }
            let slug = W::slug(&lane.ladder[level]);
            let batch_len = lane.flush.len();
            let mut st = lock_stats(stats);
            let ks = st.kernels.entry(lane.key.clone()).or_default();
            ks.batches += 1;
            if degraded {
                ks.degraded_batches += 1;
            }
            ks.occupancy.record(batch_len as f64);
            // Tally before scattering: a client that holds its response
            // must see it in the next snapshot (loadgen deltas rely on
            // this ordering).
            seat.served.fetch_add(batch_len as u64, Ordering::Relaxed);
            telemetry::counter_add(W::COUNTERS.served, batch_len as u64);
            for (i, env) in lane.flush.iter().enumerate() {
                let latency = done.duration_since(env.submitted);
                ks.served += 1;
                ks.latency_us.record(latency.as_secs_f64() * 1e6);
                let _ = env.tx.send(W::respond(
                    W::id(&env.req),
                    Ok(W::payload(&lane.scratch, i, slug, batch_len, latency)),
                ));
            }
            drop(st);
            lane.flush.clear();
        }
        Err(payload) => {
            let reason = panic_reason(payload.as_ref());
            telemetry::set_attr("panic", reason.as_str());
            let at_bottom = lane.at_bottom();
            match lane.breaker.on_failure(Instant::now(), at_bottom) {
                FailureAction::Degrade => {
                    lane.level += 1;
                    telemetry::counter_add(W::COUNTERS.degradations, 1);
                }
                FailureAction::Opened => {
                    telemetry::counter_add(W::COUNTERS.breaker_open, 1);
                    lock_stats(stats)
                        .kernels
                        .entry(lane.key.clone())
                        .or_default()
                        .breaker_open += 1;
                }
                FailureAction::Tolerate => {}
            }
            reject_internal(
                &mut lane.flush,
                &Cow::Owned(format!("kernel panic: {reason}")),
                stats,
            );
        }
    }
    publish_lane_health(lane, stats);
}

/// Push the lane's breaker state and degradation level into the stats
/// map and the telemetry gauges.
fn publish_lane_health<W: ServeWorkload>(lane: &Lane<W>, stats: &Mutex<StatsInner>) {
    let state = lane.breaker.state();
    let mut st = lock_stats(stats);
    let ks = st.kernels.entry(lane.key.clone()).or_default();
    ks.breaker = BreakerSnapshotState(state);
    ks.degradation_level = lane.level;
    ks.rung = lane.active_slug().to_string();
    drop(st);
    telemetry::gauge_set(&lane.breaker_gauge, state.as_gauge());
    telemetry::gauge_set(&lane.degradation_gauge, lane.level as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricer;
    use finbench_faults::{FaultPlan, FaultSpec, PlanGuard};

    /// Fault-registry state is process-global; tests that arm it
    /// serialize here (other tests in this module don't touch it).
    fn faults_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            queue_capacity: 64,
            max_delay: Duration::from_micros(200),
            max_batch: 64,
            shards: 1,
            pricer: PricerConfig {
                binomial_steps: 32,
                ..PricerConfig::default()
            },
            breaker: BreakerPolicy::default(),
            supervisor: SupervisorPolicy::default(),
        }
    }

    #[test]
    fn prices_requests_and_echoes_ids() {
        let server = Server::start(quick_config());
        let rx1 = server.submit(PriceRequest::new(1, "black_scholes", 30.0, 35.0, 1.0));
        let rx2 = server.submit(PriceRequest::new(2, "binomial", 30.0, 35.0, 1.0));
        let r1 = rx1.recv_timeout(Duration::from_secs(10)).unwrap();
        let r2 = rx2.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(r1.id, 1);
        assert_eq!(r2.id, 2);
        let p1 = r1.outcome.unwrap();
        let p2 = r2.outcome.unwrap();
        assert!(p1.call > 0.0 && p1.put > 0.0, "{p1:?}");
        assert!(p2.call > 0.0 && p2.put > 0.0, "{p2:?}");
        // Different engines, same option: prices agree loosely (binomial
        // converges to Black-Scholes).
        assert!((p1.call - p2.call).abs() < 0.5, "{p1:?} vs {p2:?}");
        let snap = server.shutdown();
        assert_eq!(snap.total_shed(), 0);
        assert_eq!(snap.kernels.len(), 2);
        // Healthy run: breakers closed, nothing degraded or restarted.
        for k in &snap.kernels {
            assert_eq!(k.breaker, "closed");
            assert_eq!(k.degradation_level, 0);
            assert_eq!(k.degraded_batches, 0);
            assert_eq!(k.restarts, 0);
        }
        assert_eq!(snap.internal, 0);
        assert_eq!(snap.invalid_input, 0);
    }

    #[test]
    fn portfolio_fan_out_merges_bit_identically_to_native() {
        use finbench_core::portfolio::{revalue_into, Book, RevalScratch, ScenarioConfig};
        let mut config = quick_config();
        config.shards = 2;
        let server = Server::start(config);
        let rx = server.submit_portfolio(PortfolioRequest::new(9, 42, 24, 96).with_chunk(16));
        let resp = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(resp.id, 9);
        let out = resp.outcome.unwrap();
        assert_eq!(out.scenarios, 96);
        assert_eq!(out.pnl.len(), 96);
        assert_eq!(out.chunks, 6);
        // Served on the planned (W=8) rung only — no degradation here.
        assert_eq!(out.rungs, ["intermediate_simd_revaluation_w_8"]);
        // Native replay of the same book + grid at the same rung.
        let book = Book::random(24, 42);
        let grid = ScenarioConfig::standard(96, 42).grid();
        let mut scratch = RevalScratch::new();
        let mut want = Vec::new();
        revalue_into::<8>(&book, config.pricer.market, &grid, &mut scratch, &mut want);
        for (j, (got, native)) in out.pnl.iter().zip(&want).enumerate() {
            assert_eq!(got.to_bits(), native.to_bits(), "scenario {j}");
        }
        // Default confidences, losses ordering: VaR99 >= VaR95, ES >= VaR.
        assert_eq!(out.risk.len(), 2);
        assert_eq!(out.risk[0].confidence, 0.95);
        assert!(out.risk[1].var >= out.risk[0].var, "{:?}", out.risk);
        assert!(out.risk[0].es >= out.risk[0].var, "{:?}", out.risk);
        let snap = server.shutdown();
        assert_eq!(snap.total_shed(), 0);
        assert_eq!(snap.internal, 0);
        assert!(snap.kernels.iter().any(|k| k.kernel == "portfolio"));
    }

    #[test]
    fn portfolio_rejects_invalid_requests_synchronously() {
        let server = Server::start(quick_config());
        let rx = server.submit_portfolio(PortfolioRequest::new(1, 7, 0, 64));
        match rx.recv_timeout(Duration::from_secs(5)).unwrap().outcome {
            Err(Rejected::InvalidInput { reason }) => {
                assert!(reason.contains("non-empty"), "{reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        let rx =
            server.submit_portfolio(PortfolioRequest::new(2, 7, 16, 32).with_confidence(vec![2.0]));
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().outcome,
            Err(Rejected::InvalidInput { .. })
        ));
        let snap = server.shutdown();
        assert_eq!(snap.invalid_input, 2);
    }

    #[test]
    fn portfolio_requests_are_deterministic_across_chunkings() {
        // Different fan-out shapes (chunk sizes, shard counts) must merge
        // to bit-identical P&L — the split-invariance contract end to end.
        let run = |shards: usize, chunk: usize| {
            let mut config = quick_config();
            config.shards = shards;
            let server = Server::start(config);
            let rx =
                server.submit_portfolio(PortfolioRequest::new(1, 11, 16, 80).with_chunk(chunk));
            let out = rx
                .recv_timeout(Duration::from_secs(30))
                .unwrap()
                .outcome
                .unwrap();
            server.shutdown();
            out.pnl
        };
        let a = run(1, 80);
        let b = run(2, 13);
        let c = run(3, 7);
        assert_eq!(a.len(), 80);
        for j in 0..80 {
            assert_eq!(a[j].to_bits(), b[j].to_bits(), "scenario {j}");
            assert_eq!(a[j].to_bits(), c[j].to_bits(), "scenario {j}");
        }
    }

    #[test]
    fn greeks_requests_ride_the_same_plane() {
        use crate::request::GreeksRequest;
        let server = Server::start(quick_config());
        let rx = server.submit_greeks(GreeksRequest::new(11, 30.0, 35.0, 1.0));
        let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(resp.id, 11);
        let out = resp.outcome.unwrap();
        // Call delta in (0,1), put delta = call delta − 1, shared gamma.
        assert!(out.call.delta > 0.0 && out.call.delta < 1.0, "{out:?}");
        assert!((out.put.delta - (out.call.delta - 1.0)).abs() < 1e-15);
        assert_eq!(out.call.gamma.to_bits(), out.put.gamma.to_bits());
        assert_eq!(out.rung, "intermediate_simd_soa_greeks_w_8");
        let snap = server.shutdown();
        let k = snap.kernels.iter().find(|k| k.kernel == "greeks").unwrap();
        assert_eq!(k.served, 1);
        assert_eq!(k.breaker, "closed");
        assert_eq!(snap.total_shed(), 0);
    }

    #[test]
    fn greeks_invalid_inputs_and_deadlines_get_typed_answers() {
        use crate::request::GreeksRequest;
        let server = Server::start(quick_config());
        let rx = server.submit_greeks(GreeksRequest::new(1, f64::NAN, 35.0, 1.0));
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome,
            Err(Rejected::InvalidInput { .. })
        ));
        let mut req = GreeksRequest::new(2, 30.0, 35.0, 1.0);
        req.deadline = Some(Instant::now() - Duration::from_millis(1));
        let rx = server.submit_greeks(req);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome,
            Err(Rejected::DeadlineExceeded { .. })
        ));
        let snap = server.shutdown();
        assert_eq!(snap.invalid_input, 1);
        assert_eq!(snap.shed_deadline, 1);
    }

    #[test]
    fn greeks_lane_survives_an_injected_panic_and_degrades() {
        use crate::request::GreeksRequest;
        let _l = faults_lock();
        faults::silence_injected_panics();
        let _g = PlanGuard::install(
            FaultPlan::new().with(FaultSpec::always("batch.greeks", FaultKind::Panic)),
        );
        let server = Server::start(quick_config());
        let rx = server.submit_greeks(GreeksRequest::new(1, 30.0, 35.0, 1.0));
        match rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome {
            Err(Rejected::Internal { reason }) => {
                assert!(reason.contains("injected panic"), "{reason}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        drop(_g);
        // Still alive; the next request is served on a degraded rung that
        // answers bit-identically to the planned one.
        let rx = server.submit_greeks(GreeksRequest::new(2, 30.0, 35.0, 1.0));
        let out = rx
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
            .outcome
            .expect("greeks lane must keep serving after a caught panic");
        let (want_c, _) = crate::greeks::greeks_ladder(quick_config().pricer.market)[0]
            .compute_one(30.0, 35.0, 1.0);
        assert_eq!(out.call.delta.to_bits(), want_c.delta.to_bits());
        let snap = server.shutdown();
        let k = snap.kernels.iter().find(|k| k.kernel == "greeks").unwrap();
        assert!(k.degradation_level >= 1, "{k:?}");
        assert_eq!(snap.internal, 1);
    }

    #[test]
    fn mixed_price_and_greeks_load_shares_the_queue_without_cross_talk() {
        use crate::request::GreeksRequest;
        let server = Server::start(quick_config());
        let (ptx, prx) = mpsc::channel();
        let (gtx, grx) = mpsc::channel();
        for i in 0..20u64 {
            server.submit_with(PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0), &ptx);
            server.submit_greeks_with(GreeksRequest::new(i, 25.0, 20.0, 0.5), &gtx);
        }
        drop(ptx);
        drop(gtx);
        let priced: Vec<PriceResponse> = prx.iter().collect();
        let greeked: Vec<crate::request::GreeksResponse> = grx.iter().collect();
        let snap = server.shutdown();
        assert_eq!(priced.len(), 20);
        assert_eq!(greeked.len(), 20);
        assert!(priced.iter().all(PriceResponse::is_priced));
        assert!(greeked.iter().all(|g| g.is_computed()));
        assert_eq!(snap.total_shed(), 0);
        let names: Vec<&str> = snap.kernels.iter().map(|k| k.kernel.as_str()).collect();
        assert!(names.contains(&"black_scholes") && names.contains(&"greeks"));
    }

    #[test]
    fn bad_kernels_get_typed_rejections_not_panics() {
        let server = Server::start(quick_config());
        let rx = server.submit(PriceRequest::new(9, "black_sholes", 30.0, 35.0, 1.0));
        match rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome {
            Err(Rejected::UnknownKernel { reason }) => {
                assert!(reason.contains("black_sholes"), "{reason}");
            }
            other => panic!("expected UnknownKernel, got {other:?}"),
        }
        let rx = server.submit(PriceRequest::new(10, "rng", 30.0, 35.0, 1.0));
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome,
            Err(Rejected::Unservable { .. })
        ));
        assert_eq!(server.shutdown().rejected, 2);
    }

    #[test]
    fn invalid_inputs_are_rejected_synchronously_before_any_batch() {
        let server = Server::start(quick_config());
        for (id, s, x, t) in [
            (1u64, f64::NAN, 35.0, 1.0),
            (2, 30.0, f64::INFINITY, 1.0),
            (3, 30.0, 35.0, -1.0),
            (4, 0.0, 35.0, 1.0),
        ] {
            let rx = server.submit(PriceRequest::new(id, "black_scholes", s, x, t));
            match rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome {
                Err(Rejected::InvalidInput { .. }) => {}
                other => panic!("request {id}: expected InvalidInput, got {other:?}"),
            }
        }
        let snap = server.shutdown();
        assert_eq!(snap.invalid_input, 4);
        // No lane was ever created for them: nothing served or batched.
        assert!(snap.kernels.is_empty(), "{:?}", snap.kernels);
    }

    #[test]
    fn queue_overflow_is_a_synchronous_typed_rejection() {
        // Capacity 1 and a server whose dispatcher is effectively stalled
        // by a huge binomial batch, so pushes pile up.
        let server = Server::start(ServeConfig {
            queue_capacity: 1,
            max_delay: Duration::from_millis(50),
            ..quick_config()
        });
        let (tx, rx) = mpsc::channel();
        // Flood: with capacity 1, at least one of these must be rejected
        // synchronously (the dispatcher can't drain instantly).
        for i in 0..200 {
            server.submit_with(PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0), &tx);
        }
        drop(tx);
        let outcomes: Vec<PriceResponse> = rx.iter().collect();
        assert_eq!(outcomes.len(), 200, "every request got exactly one answer");
        let full = outcomes
            .iter()
            .filter(|r| matches!(r.outcome, Err(Rejected::QueueFull { capacity: 1 })))
            .count();
        assert!(full > 0, "expected at least one QueueFull");
        let snap = server.shutdown();
        assert_eq!(snap.shed_queue_full as usize, full);
    }

    #[test]
    fn expired_deadlines_shed_instead_of_pricing_late() {
        let server = Server::start(quick_config());
        let mut req = PriceRequest::new(5, "black_scholes", 30.0, 35.0, 1.0);
        // A deadline in the past: the dispatcher must shed it.
        req.deadline = Some(Instant::now() - Duration::from_millis(1));
        let rx = server.submit(req);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome,
            Err(Rejected::DeadlineExceeded { .. })
        ));
        let snap = server.shutdown();
        assert_eq!(snap.shed_deadline, 1);
    }

    #[test]
    fn shutdown_answers_everything_pending() {
        let server = Server::start(ServeConfig {
            // Batch target far above what we submit, long delay: requests
            // sit in the batcher until shutdown drains them.
            max_delay: Duration::from_secs(60),
            ..quick_config()
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            server.submit_with(PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0), &tx);
        }
        let snap = server.shutdown();
        drop(tx);
        let got: Vec<PriceResponse> = rx.iter().collect();
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(PriceResponse::is_priced));
        assert_eq!(snap.kernels[0].served, 10);
    }

    #[test]
    fn a_kernel_panic_rejects_the_batch_and_degrades_instead_of_crashing() {
        let _l = faults_lock();
        faults::silence_injected_panics();
        // Panic on the first black_scholes batch only: seed a spec with
        // rate 1 then disarm after the first response arrives.
        let _g = PlanGuard::install(
            FaultPlan::new().with(FaultSpec::always("batch.black_scholes", FaultKind::Panic)),
        );
        let server = Server::start(quick_config());
        let rx = server.submit(PriceRequest::new(1, "black_scholes", 30.0, 35.0, 1.0));
        match rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome {
            Err(Rejected::Internal { reason }) => {
                assert!(reason.contains("injected panic"), "{reason}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        drop(_g);
        // The server is still alive and prices the next request — on a
        // degraded rung (the panic pushed the lane one level down).
        let rx = server.submit(PriceRequest::new(2, "black_scholes", 30.0, 35.0, 1.0));
        let priced = rx
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
            .outcome
            .expect("server must keep serving after a caught panic");
        assert!(priced.call > 0.0);
        let snap = server.shutdown();
        let k = &snap.kernels[0];
        assert_eq!(snap.internal, 1);
        assert!(k.degradation_level >= 1, "{k:?}");
        assert!(k.degraded_batches >= 1, "{k:?}");
        assert_eq!(k.breaker, "closed");
    }

    #[test]
    fn persistent_panics_walk_the_ladder_down_then_open_the_breaker() {
        let _l = faults_lock();
        faults::silence_injected_panics();
        let _g = PlanGuard::install(
            FaultPlan::new().with(FaultSpec::always("batch.black_scholes", FaultKind::Panic)),
        );
        let server = Server::start(ServeConfig {
            breaker: BreakerPolicy {
                open_after: 2,
                cooldown: Duration::from_secs(30),
                ..BreakerPolicy::default()
            },
            ..quick_config()
        });
        // Enough sequential batches to fall through every ladder level
        // and trip the breaker at the bottom: levels + open_after.
        let ladder_len = {
            let engine = Engine::new(registry());
            pricer::servable_ladder(&engine, "black_scholes", &quick_config().pricer)
                .unwrap()
                .len()
        };
        let batches = ladder_len + 3;
        for i in 0..batches {
            let rx = server.submit(PriceRequest::new(
                i as u64,
                "black_scholes",
                30.0,
                35.0,
                1.0,
            ));
            let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert!(
                matches!(resp.outcome, Err(Rejected::Internal { .. })),
                "batch {i} should be rejected"
            );
        }
        let snap = server.shutdown();
        let k = &snap.kernels[0];
        assert_eq!(k.breaker, "open", "{k:?}");
        assert_eq!(k.degradation_level, ladder_len - 1, "bottom of the ladder");
        assert!(k.breaker_open >= 1);
        assert_eq!(snap.internal, batches as u64);
    }

    #[test]
    fn lane_restarts_after_cooldown_and_recovers_when_faults_stop() {
        let _l = faults_lock();
        faults::silence_injected_panics();
        let _g = PlanGuard::install(
            FaultPlan::new().with(FaultSpec::always("batch.black_scholes", FaultKind::Panic)),
        );
        let server = Server::start(ServeConfig {
            breaker: BreakerPolicy {
                open_after: 1,
                cooldown: Duration::from_millis(5),
                promote_after: 2,
                ..BreakerPolicy::default()
            },
            ..quick_config()
        });
        // Fall to the bottom and open the breaker.
        let ladder_len = {
            let engine = Engine::new(registry());
            pricer::servable_ladder(&engine, "black_scholes", &quick_config().pricer)
                .unwrap()
                .len()
        };
        for i in 0..ladder_len as u64 {
            let rx = server.submit(PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0));
            let _ = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        // Stop injecting and wait out the cooldown: the next batch is the
        // half-open probe, which succeeds, closes the breaker, and serves.
        drop(_g);
        std::thread::sleep(Duration::from_millis(10));
        let rx = server.submit(PriceRequest::new(99, "black_scholes", 30.0, 35.0, 1.0));
        let priced = rx
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
            .outcome
            .expect("probe batch should be served");
        assert!(priced.call > 0.0);
        let snap = server.shutdown();
        let k = &snap.kernels[0];
        assert!(k.restarts >= 1, "{k:?}");
        assert_eq!(k.breaker, "closed");
        assert!(snap.total_restarts() >= 1);
    }

    #[test]
    fn corrupt_input_faults_are_caught_by_validation_not_priced() {
        let _l = faults_lock();
        let _g = PlanGuard::install(FaultPlan::new().with(FaultSpec::always(
            "admit.black_scholes",
            FaultKind::CorruptInput(finbench_faults::Corruption::NaN),
        )));
        let server = Server::start(quick_config());
        let rx = server.submit(PriceRequest::new(7, "black_scholes", 30.0, 35.0, 1.0));
        match rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome {
            Err(Rejected::InvalidInput { reason }) => {
                assert!(reason.contains("spot"), "{reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        let snap = server.shutdown();
        assert_eq!(snap.invalid_input, 1);
    }

    #[test]
    fn multi_shard_server_serves_everything_and_merges_telemetry() {
        use crate::request::GreeksRequest;
        let server = Server::start(ServeConfig {
            shards: 4,
            ..quick_config()
        });
        assert_eq!(server.shard_count(), 4);
        let (ptx, prx) = mpsc::channel();
        let (gtx, grx) = mpsc::channel();
        for i in 0..100u64 {
            server.submit_with(PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0), &ptx);
            server.submit_greeks_with(GreeksRequest::new(i, 25.0, 20.0, 0.5), &gtx);
        }
        drop(ptx);
        drop(gtx);
        let priced: Vec<PriceResponse> = prx.iter().collect();
        let greeked: Vec<crate::request::GreeksResponse> = grx.iter().collect();
        assert_eq!(priced.len(), 100);
        assert_eq!(greeked.len(), 100);
        assert!(priced.iter().all(PriceResponse::is_priced));
        assert!(greeked.iter().all(|g| g.is_computed()));
        let snap = server.shutdown();
        assert_eq!(snap.shards.len(), 4);
        assert_eq!(snap.alive_shards(), 4);
        assert_eq!(snap.total_shed(), 0);
        // Every admitted request was routed to exactly one shard and
        // answered by exactly one shard (possibly a thief).
        let submitted: u64 = snap.shards.iter().map(|s| s.submitted).sum();
        let served: u64 = snap.shards.iter().map(|s| s.served).sum();
        assert_eq!(submitted, 200);
        assert_eq!(served, 200);
        // Round-robin admission: no shard was starved of submissions.
        assert!(snap.shards.iter().all(|s| s.submitted > 0), "{snap:?}");
    }

    #[test]
    fn router_spills_to_a_less_loaded_sibling_before_rejecting() {
        let _l = faults_lock();
        // Stall both workers so pushed work stays queued long enough to
        // observe routing decisions deterministically.
        let _g = PlanGuard::install(
            FaultPlan::new().with(FaultSpec::always("queue", FaultKind::StallQueue)),
        );
        let server = Server::start(ServeConfig {
            shards: 2,
            queue_capacity: 1,
            max_delay: Duration::from_millis(300),
            ..quick_config()
        });
        // Occupy shard 0's queue directly (in-module backdoor), so the
        // round-robin primary is full while shard 1 has room.
        let (otx, orx) = mpsc::channel();
        server.queues[0]
            .try_push(Work::Price(Envelope {
                req: PriceRequest::new(0, "black_scholes", 30.0, 35.0, 1.0),
                submitted: Instant::now(),
                redriven: false,
                tx: otx,
            }))
            .unwrap_or_else(|_| panic!("occupant push must succeed"));
        server.rr.store(0, Ordering::Relaxed);
        // The router's primary (shard 0) is full: this must spill to
        // shard 1 and be served, not answer QueueFull.
        let rx = server.submit(PriceRequest::new(1, "black_scholes", 30.0, 35.0, 1.0));
        let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(resp.is_priced(), "{:?}", resp.outcome);
        let occupant = orx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(occupant.is_priced(), "{:?}", occupant.outcome);
        let snap = server.shutdown();
        // The spilled request is the only *routed* submission; the
        // occupant bypassed the router.
        assert_eq!(snap.shards[1].submitted, 1, "{snap:?}");
        assert_eq!(snap.shed_queue_full, 0);
    }

    #[test]
    fn idle_shards_steal_queued_work_from_the_deepest_sibling() {
        let _l = faults_lock();
        // Stall shard 0's loop so its queue stays deep; idle shard 1
        // must steal from it.
        let _g = PlanGuard::install(
            FaultPlan::new().with(FaultSpec::always("queue", FaultKind::StallQueue)),
        );
        let server = Server::start(ServeConfig {
            shards: 2,
            max_delay: Duration::from_millis(100),
            ..quick_config()
        });
        // Load shard 0's queue directly so all depth sits on one shard.
        let (tx, rx) = mpsc::channel();
        for i in 0..20u64 {
            server.queues[0]
                .try_push(Work::Price(Envelope {
                    req: PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0),
                    submitted: Instant::now(),
                    redriven: false,
                    tx: tx.clone(),
                }))
                .unwrap_or_else(|_| panic!("direct push must succeed"));
        }
        drop(tx);
        let got: Vec<PriceResponse> = rx.iter().collect();
        assert_eq!(got.len(), 20, "every request got exactly one answer");
        assert!(got.iter().all(PriceResponse::is_priced));
        let snap = server.shutdown();
        assert!(
            snap.total_stolen() > 0,
            "idle shard 1 should have stolen from stalled shard 0: {snap:?}"
        );
        assert_eq!(snap.shards[1].stolen, snap.total_stolen());
        let served: u64 = snap.shards.iter().map(|s| s.served).sum();
        assert_eq!(served, 20);
    }

    #[test]
    fn a_killed_shard_degrades_availability_never_correctness() {
        let _l = faults_lock();
        let _g = PlanGuard::install(
            FaultPlan::new().with(FaultSpec::always("serve.shard.0", FaultKind::Kill)),
        );
        // Respawn off: this test pins down the *terminal* loss behavior
        // (the supervisor would otherwise put shard 0 back in service).
        let server = Server::start(ServeConfig {
            shards: 2,
            supervisor: SupervisorPolicy {
                respawn: false,
                ..SupervisorPolicy::default()
            },
            ..quick_config()
        });
        // Shard 0 dies on its first loop iteration; wait for the router
        // to see it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.snapshot().shards[0].alive {
            assert!(Instant::now() < deadline, "shard 0 never died");
            std::thread::sleep(Duration::from_millis(1));
        }
        let (tx, rx) = mpsc::channel();
        for i in 0..40u64 {
            server.submit_with(PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0), &tx);
        }
        drop(tx);
        let got: Vec<PriceResponse> = rx.iter().collect();
        assert_eq!(got.len(), 40);
        // Correctness never degrades: everything routed to the surviving
        // shard is served, nothing answers corrupt prices.
        assert!(got.iter().all(PriceResponse::is_priced));
        let snap = server.shutdown();
        assert_eq!(snap.alive_shards(), 1);
        assert!(!snap.shards[0].alive);
        assert_eq!(snap.shards[1].submitted, 40);
        assert_eq!(snap.shards[1].served, 40);
        assert!((snap.shards[1].availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn a_killed_shard_is_respawned_and_serves_again() {
        let _l = faults_lock();
        // Kill shard 0 exactly once; the supervisor (respawn on by
        // default) must put a fresh worker back in the same seat.
        let _g = PlanGuard::install(
            FaultPlan::new().with(FaultSpec::always("serve.shard.0", FaultKind::Kill).limited(1)),
        );
        let server = Server::start(ServeConfig {
            shards: 2,
            ..quick_config()
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snap = server.snapshot();
            if snap.shards[0].alive && snap.shards[0].respawns >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "shard 0 never respawned: {snap:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Full capacity is restored: the router round-robins across both
        // seats again and everything is served.
        let (tx, rx) = mpsc::channel();
        for i in 0..40u64 {
            server.submit_with(PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0), &tx);
        }
        drop(tx);
        let got: Vec<PriceResponse> = rx.iter().collect();
        assert_eq!(got.len(), 40);
        assert!(got.iter().all(PriceResponse::is_priced));
        let snap = server.shutdown();
        assert_eq!(snap.alive_shards(), 2);
        assert_eq!(snap.total_respawns(), 1);
        assert_eq!(snap.shards[0].respawns, 1);
        assert!(snap.shards[0].submitted > 0, "{snap:?}");
        let mttr = snap.mean_mttr().expect("a respawn must record MTTR");
        assert!(mttr > Duration::ZERO, "{mttr:?}");
        assert_eq!(snap.shards[0].mttr, mttr);
    }

    #[test]
    fn stranded_work_is_redriven_to_a_live_sibling_with_its_channel_intact() {
        let _l = faults_lock();
        // Stall runs *before* the kill check in each loop iteration, so
        // both workers sleep through a max_delay-long window first. That
        // window is the deterministic part: we push into shard 0's queue
        // while it sleeps, it wakes, dies, and must redrive the queued
        // work to shard 1 — which was also asleep, so it cannot have
        // stolen anything first.
        let _g = PlanGuard::install(
            FaultPlan::new()
                .with(FaultSpec::always("queue", FaultKind::StallQueue))
                .with(FaultSpec::always("serve.shard.0", FaultKind::Kill)),
        );
        let server = Server::start(ServeConfig {
            shards: 2,
            max_delay: Duration::from_millis(200),
            supervisor: SupervisorPolicy {
                respawn: false,
                ..SupervisorPolicy::default()
            },
            ..quick_config()
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..4u64 {
            server.queues[0]
                .try_push(Work::Price(Envelope {
                    req: PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0),
                    submitted: Instant::now(),
                    redriven: false,
                    tx: tx.clone(),
                }))
                .unwrap_or_else(|_| panic!("direct push must succeed"));
        }
        drop(tx);
        // The original response channels must survive the redrive: every
        // request is priced by shard 1 and answered exactly once.
        let got: Vec<PriceResponse> = rx.iter().collect();
        assert_eq!(
            got.len(),
            4,
            "every stranded request got exactly one answer"
        );
        assert!(got.iter().all(PriceResponse::is_priced), "{got:?}");
        let mut ids: Vec<u64> = got.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let snap = server.shutdown();
        assert_eq!(snap.alive_shards(), 1);
        assert_eq!(snap.total_redriven(), 4, "{snap:?}");
        // Redrives are attributed to the seat that lost them.
        assert_eq!(snap.shards[0].redriven, 4);
        assert_eq!(snap.shards[1].redriven, 0);
        assert_eq!(snap.internal, 0);
        assert_eq!(snap.shed_deadline_redrive, 0);
    }

    #[test]
    fn stranded_work_with_no_live_sibling_is_rejected_not_dropped() {
        let _l = faults_lock();
        let _g = PlanGuard::install(
            FaultPlan::new()
                .with(FaultSpec::always("queue", FaultKind::StallQueue))
                .with(FaultSpec::always("serve.shard.0", FaultKind::Kill)),
        );
        let server = Server::start(ServeConfig {
            shards: 1,
            max_delay: Duration::from_millis(200),
            supervisor: SupervisorPolicy {
                respawn: false,
                ..SupervisorPolicy::default()
            },
            ..quick_config()
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..4u64 {
            server.queues[0]
                .try_push(Work::Price(Envelope {
                    req: PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0),
                    submitted: Instant::now(),
                    redriven: false,
                    tx: tx.clone(),
                }))
                .unwrap_or_else(|_| panic!("direct push must succeed"));
        }
        drop(tx);
        let got: Vec<PriceResponse> = rx.iter().collect();
        assert_eq!(got.len(), 4, "no silent drops even with nowhere to redrive");
        for r in &got {
            match &r.outcome {
                Err(Rejected::Internal { reason }) => {
                    assert!(reason.contains("no live sibling"), "{reason}");
                }
                other => panic!("expected Internal, got {other:?}"),
            }
        }
        // The router also answers (never hangs) once the fleet is empty.
        let rx = server.submit(PriceRequest::new(99, "black_scholes", 30.0, 35.0, 1.0));
        match rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome {
            Err(Rejected::Internal { reason }) => {
                assert!(reason.contains("no alive shards"), "{reason}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        let snap = server.shutdown();
        assert_eq!(snap.alive_shards(), 0);
        // The 4 stranded rejections are worker-side and tallied; the
        // router's answer is synchronous on the caller's thread.
        assert_eq!(snap.internal, 4);
        assert_eq!(snap.total_redriven(), 0);
    }
}
