//! The pricing server: one dispatcher thread pulling from the bounded
//! admission queue, micro-batching per kernel, dispatching batches onto
//! the resolved ladder rung, and scattering results back per request.
//!
//! ```text
//! submit() ──► AdmissionQueue (bounded; full ⇒ Rejected::QueueFull)
//!                   │ pop
//!                   ▼
//!             dispatcher thread
//!     ┌── MicroBatcher per kernel ──┐   size/delay trigger
//!     ▼                             ▼
//!  black_scholes lane           binomial lane
//!     │ padded SOA batch            │
//!     ▼                             ▼
//!  ServingRung::price           ServingRung::price
//!     │ scatter-back                │
//!     └────► PriceResponse per request (mpsc) ◄─────┘
//! ```
//!
//! Telemetry: `serve.queue_depth` gauge, `serve.batch.<kernel>` spans
//! with occupancy, `serve.served` / `serve.shed.queue_full` /
//! `serve.shed.deadline` / `serve.rejected` counters, and per-kernel
//! latency + occupancy histograms surfaced through [`ServeSnapshot`].

use crate::batcher::{target_batch, BatchPolicy, MicroBatcher};
use crate::pricer::{self, padded_batch, PricerConfig, ServingRung};
use crate::queue::AdmissionQueue;
use crate::request::{PriceRequest, PriceResponse, Priced, Rejected};
use finbench_core::engine::registry;
use finbench_engine::Engine;
use finbench_telemetry::{self as telemetry, Histogram};
use std::collections::BTreeMap;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Admission queue capacity — the backpressure bound.
    pub queue_capacity: usize,
    /// Micro-batch delay trigger: the longest a request waits for
    /// companions before its batch flushes anyway.
    pub max_delay: Duration,
    /// Upper clamp for the planner-derived size trigger.
    pub max_batch: usize,
    /// Pricer configuration (market params, binomial steps, pool chunk).
    pub pricer: PricerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 4096,
            max_delay: Duration::from_millis(1),
            max_batch: 4096,
            pricer: PricerConfig::default(),
        }
    }
}

struct Envelope {
    req: PriceRequest,
    submitted: Instant,
    tx: Sender<PriceResponse>,
}

/// One kernel's serving state inside the dispatcher.
struct Lane {
    rung: ServingRung,
    batcher: MicroBatcher<Envelope>,
    target: usize,
}

#[derive(Default)]
struct KernelStats {
    rung: String,
    target_batch: usize,
    served: u64,
    batches: u64,
    latency_us: Histogram,
    occupancy: Histogram,
}

#[derive(Default)]
struct StatsInner {
    kernels: BTreeMap<String, KernelStats>,
    shed_queue_full: u64,
    shed_deadline: u64,
    rejected: u64,
}

/// Point-in-time statistics for one kernel lane.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSnapshot {
    /// Kernel name.
    pub kernel: String,
    /// Slug of the serving rung.
    pub rung: String,
    /// Planner-derived size trigger.
    pub target_batch: usize,
    /// Requests priced.
    pub served: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Mean batch occupancy (requests per dispatched batch).
    pub mean_occupancy: f64,
    /// Largest batch dispatched.
    pub max_occupancy: f64,
}

/// Point-in-time server statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Per-kernel lane statistics, kernel-name order.
    pub kernels: Vec<KernelSnapshot>,
    /// Requests shed at admission (queue full).
    pub shed_queue_full: u64,
    /// Requests shed at dispatch (deadline already blown).
    pub shed_deadline: u64,
    /// Requests rejected for unknown/unservable kernels.
    pub rejected: u64,
}

impl ServeSnapshot {
    /// Total load-shedding rejections (excludes bad-kernel rejections,
    /// which are caller errors, not overload).
    pub fn total_shed(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline
    }
}

/// The batched pricing server. Dropping it shuts the dispatcher down
/// (pending work is still flushed and answered).
pub struct Server {
    queue: Arc<AdmissionQueue<Envelope>>,
    stats: Arc<Mutex<StatsInner>>,
    worker: Option<JoinHandle<()>>,
}

impl Server {
    /// Start a server over the workspace's six-kernel registry, planning
    /// rungs for the build host.
    pub fn start(config: ServeConfig) -> Self {
        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity));
        let stats = Arc::new(Mutex::new(StatsInner::default()));
        let q = Arc::clone(&queue);
        let s = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("finbench-serve".into())
            .spawn(move || dispatch_loop(&q, &s, &config))
            .expect("spawn dispatcher");
        Self {
            queue,
            stats,
            worker: Some(worker),
        }
    }

    /// Submit one request; the response arrives on the returned channel.
    pub fn submit(&self, req: PriceRequest) -> Receiver<PriceResponse> {
        let (tx, rx) = mpsc::channel();
        self.submit_with(req, &tx);
        rx
    }

    /// Submit one request, delivering the response on `tx` (load
    /// generators fan many requests into one channel). Backpressure is
    /// synchronous: a full queue answers `Rejected::QueueFull` right
    /// here, on the caller's thread.
    pub fn submit_with(&self, req: PriceRequest, tx: &Sender<PriceResponse>) {
        let id = req.id;
        let env = Envelope {
            req,
            submitted: Instant::now(),
            tx: tx.clone(),
        };
        if let Err(env) = self.queue.try_push(env) {
            let reason = if self.queue.is_closed() {
                Rejected::ShuttingDown
            } else {
                self.stats.lock().unwrap().shed_queue_full += 1;
                telemetry::counter_add("serve.shed.queue_full", 1);
                Rejected::QueueFull {
                    capacity: self.queue.capacity(),
                }
            };
            let _ = env.tx.send(PriceResponse {
                id,
                outcome: Err(reason),
            });
        }
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Point-in-time statistics.
    pub fn snapshot(&self) -> ServeSnapshot {
        snapshot(&self.stats.lock().unwrap())
    }

    /// Stop accepting work, drain and answer everything pending, and
    /// return the final statistics.
    pub fn shutdown(mut self) -> ServeSnapshot {
        self.queue.close();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
        snapshot(&self.stats.lock().unwrap())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

fn snapshot(st: &StatsInner) -> ServeSnapshot {
    ServeSnapshot {
        kernels: st
            .kernels
            .iter()
            .map(|(name, k)| KernelSnapshot {
                kernel: name.clone(),
                rung: k.rung.clone(),
                target_batch: k.target_batch,
                served: k.served,
                batches: k.batches,
                p50_us: k.latency_us.median(),
                p95_us: k.latency_us.p95(),
                p99_us: k.latency_us.quantile(0.99),
                mean_occupancy: k.occupancy.mean(),
                max_occupancy: k.occupancy.max(),
            })
            .collect(),
        shed_queue_full: st.shed_queue_full,
        shed_deadline: st.shed_deadline,
        rejected: st.rejected,
    }
}

fn dispatch_loop(
    queue: &AdmissionQueue<Envelope>,
    stats: &Mutex<StatsInner>,
    config: &ServeConfig,
) {
    let engine = Engine::new(registry());
    let mut lanes: BTreeMap<String, Lane> = BTreeMap::new();
    loop {
        // Sleep until new work or the earliest lane flush deadline.
        let now = Instant::now();
        let wait = lanes
            .values()
            .filter_map(|l| l.batcher.next_deadline())
            .min()
            .map(|d| d.saturating_duration_since(now))
            .unwrap_or(config.max_delay)
            .min(config.max_delay);
        match queue.pop_timeout(wait.max(Duration::from_micros(50))) {
            Some(env) => {
                telemetry::gauge_set("serve.queue_depth", queue.len() as f64);
                admit(env, &engine, &mut lanes, stats, config);
            }
            None => {
                if queue.is_closed() && queue.is_empty() {
                    break;
                }
            }
        }
        // Fire every lane whose delay trigger has passed.
        let now = Instant::now();
        for (kernel, lane) in lanes.iter_mut() {
            if lane.batcher.due(now) {
                let batch = lane.batcher.flush();
                execute(kernel, lane, batch, stats);
            }
        }
    }
    // Drain: answer everything still pending in the batchers.
    for (kernel, lane) in lanes.iter_mut() {
        let batch = lane.batcher.flush();
        if !batch.is_empty() {
            execute(kernel, lane, batch, stats);
        }
    }
}

/// Route one admitted envelope into its kernel lane, resolving the lane
/// on first use; bad kernels answer immediately with a typed rejection.
fn admit(
    env: Envelope,
    engine: &Engine,
    lanes: &mut BTreeMap<String, Lane>,
    stats: &Mutex<StatsInner>,
    config: &ServeConfig,
) {
    let kernel = env.req.kernel.clone();
    if !lanes.contains_key(&kernel) {
        match make_lane(engine, &kernel, config) {
            Ok(lane) => {
                let mut st = stats.lock().unwrap();
                let ks = st.kernels.entry(kernel.clone()).or_default();
                ks.rung = lane.rung.slug.clone();
                ks.target_batch = lane.target;
                lanes.insert(kernel.clone(), lane);
            }
            Err(reason) => {
                stats.lock().unwrap().rejected += 1;
                telemetry::counter_add("serve.rejected", 1);
                let _ = env.tx.send(PriceResponse {
                    id: env.req.id,
                    outcome: Err(reason),
                });
                return;
            }
        }
    }
    let lane = lanes.get_mut(&kernel).expect("lane just ensured");
    if let Some(batch) = lane.batcher.offer(env, Instant::now()) {
        execute(&kernel, lane, batch, stats);
    }
}

fn make_lane(engine: &Engine, kernel: &str, config: &ServeConfig) -> Result<Lane, Rejected> {
    let rung = pricer::resolve(engine, kernel, &config.pricer)?;
    // Size the batch to what the planned rung can chew through in one
    // delay window; the planner's predicted rate is per-item.
    let predicted = engine
        .plan(kernel)
        .map(|p| p.predicted_rate)
        .unwrap_or(f64::NAN);
    let target = target_batch(predicted, config.max_delay, rung.width, config.max_batch);
    Ok(Lane {
        batcher: MicroBatcher::new(BatchPolicy {
            max_batch: target,
            max_delay: config.max_delay,
        }),
        rung,
        target,
    })
}

/// Price one flushed batch and scatter results back, shedding any
/// request whose deadline passed while it waited.
fn execute(kernel: &str, lane: &mut Lane, batch: Vec<Envelope>, stats: &Mutex<StatsInner>) {
    let now = Instant::now();
    let mut live: Vec<Envelope> = Vec::with_capacity(batch.len());
    for env in batch {
        match env.req.deadline {
            Some(d) if now > d => {
                let late_by = now.duration_since(d);
                stats.lock().unwrap().shed_deadline += 1;
                telemetry::counter_add("serve.shed.deadline", 1);
                let _ = env.tx.send(PriceResponse {
                    id: env.req.id,
                    outcome: Err(Rejected::DeadlineExceeded { late_by }),
                });
            }
            _ => live.push(env),
        }
    }
    if live.is_empty() {
        return;
    }

    let _g = telemetry::span(format!("serve.batch.{kernel}"));
    telemetry::set_attr("rung", lane.rung.slug.as_str());
    telemetry::set_attr("occupancy", live.len());
    telemetry::set_attr("target", lane.target);

    let opts: Vec<(f64, f64, f64)> = live.iter().map(|e| (e.req.s, e.req.x, e.req.t)).collect();
    let mut soa = padded_batch(&opts, lane.rung.width);
    telemetry::set_attr("padded", soa.len());
    lane.rung.price(&mut soa);
    let done = Instant::now();

    let mut st = stats.lock().unwrap();
    let ks = st.kernels.entry(kernel.to_string()).or_default();
    ks.batches += 1;
    ks.occupancy.record(live.len() as f64);
    for (i, env) in live.iter().enumerate() {
        let latency = done.duration_since(env.submitted);
        ks.served += 1;
        ks.latency_us.record(latency.as_secs_f64() * 1e6);
        let _ = env.tx.send(PriceResponse {
            id: env.req.id,
            outcome: Ok(Priced {
                call: soa.call[i],
                put: soa.put[i],
                rung: lane.rung.slug.clone(),
                batch_len: live.len(),
                latency,
            }),
        });
    }
    telemetry::counter_add("serve.served", live.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ServeConfig {
        ServeConfig {
            queue_capacity: 64,
            max_delay: Duration::from_micros(200),
            max_batch: 64,
            pricer: PricerConfig {
                binomial_steps: 32,
                ..PricerConfig::default()
            },
        }
    }

    #[test]
    fn prices_requests_and_echoes_ids() {
        let server = Server::start(quick_config());
        let rx1 = server.submit(PriceRequest::new(1, "black_scholes", 30.0, 35.0, 1.0));
        let rx2 = server.submit(PriceRequest::new(2, "binomial", 30.0, 35.0, 1.0));
        let r1 = rx1.recv_timeout(Duration::from_secs(10)).unwrap();
        let r2 = rx2.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(r1.id, 1);
        assert_eq!(r2.id, 2);
        let p1 = r1.outcome.unwrap();
        let p2 = r2.outcome.unwrap();
        assert!(p1.call > 0.0 && p1.put > 0.0, "{p1:?}");
        assert!(p2.call > 0.0 && p2.put > 0.0, "{p2:?}");
        // Different engines, same option: prices agree loosely (binomial
        // converges to Black-Scholes).
        assert!((p1.call - p2.call).abs() < 0.5, "{p1:?} vs {p2:?}");
        let snap = server.shutdown();
        assert_eq!(snap.total_shed(), 0);
        assert_eq!(snap.kernels.len(), 2);
    }

    #[test]
    fn bad_kernels_get_typed_rejections_not_panics() {
        let server = Server::start(quick_config());
        let rx = server.submit(PriceRequest::new(9, "black_sholes", 30.0, 35.0, 1.0));
        match rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome {
            Err(Rejected::UnknownKernel { reason }) => {
                assert!(reason.contains("black_sholes"), "{reason}");
            }
            other => panic!("expected UnknownKernel, got {other:?}"),
        }
        let rx = server.submit(PriceRequest::new(10, "rng", 30.0, 35.0, 1.0));
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome,
            Err(Rejected::Unservable { .. })
        ));
        assert_eq!(server.shutdown().rejected, 2);
    }

    #[test]
    fn queue_overflow_is_a_synchronous_typed_rejection() {
        // Capacity 1 and a server whose dispatcher is effectively stalled
        // by a huge binomial batch, so pushes pile up.
        let server = Server::start(ServeConfig {
            queue_capacity: 1,
            max_delay: Duration::from_millis(50),
            ..quick_config()
        });
        let (tx, rx) = mpsc::channel();
        // Flood: with capacity 1, at least one of these must be rejected
        // synchronously (the dispatcher can't drain instantly).
        for i in 0..200 {
            server.submit_with(PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0), &tx);
        }
        drop(tx);
        let outcomes: Vec<PriceResponse> = rx.iter().collect();
        assert_eq!(outcomes.len(), 200, "every request got exactly one answer");
        let full = outcomes
            .iter()
            .filter(|r| matches!(r.outcome, Err(Rejected::QueueFull { capacity: 1 })))
            .count();
        assert!(full > 0, "expected at least one QueueFull");
        let snap = server.shutdown();
        assert_eq!(snap.shed_queue_full as usize, full);
    }

    #[test]
    fn expired_deadlines_shed_instead_of_pricing_late() {
        let server = Server::start(quick_config());
        let mut req = PriceRequest::new(5, "black_scholes", 30.0, 35.0, 1.0);
        // A deadline in the past: the dispatcher must shed it.
        req.deadline = Some(Instant::now() - Duration::from_millis(1));
        let rx = server.submit(req);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap().outcome,
            Err(Rejected::DeadlineExceeded { .. })
        ));
        let snap = server.shutdown();
        assert_eq!(snap.shed_deadline, 1);
    }

    #[test]
    fn shutdown_answers_everything_pending() {
        let server = Server::start(ServeConfig {
            // Batch target far above what we submit, long delay: requests
            // sit in the batcher until shutdown drains them.
            max_delay: Duration::from_secs(60),
            ..quick_config()
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            server.submit_with(PriceRequest::new(i, "black_scholes", 30.0, 35.0, 1.0), &tx);
        }
        let snap = server.shutdown();
        drop(tx);
        let got: Vec<PriceResponse> = rx.iter().collect();
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(PriceResponse::is_priced));
        assert_eq!(snap.kernels[0].served, 10);
    }
}
