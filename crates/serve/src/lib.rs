//! # finbench-serve — the batched pricing-request plane
//!
//! Turns the workspace's batch-oriented pricing engine into a
//! request-oriented service: callers submit typed [`PriceRequest`]s one
//! option at a time; the server gathers them into dynamic micro-batches
//! shaped like the SOA workloads the paper's kernels want, prices each
//! batch on the [`Planner`](finbench_engine::Planner)-chosen ladder rung,
//! and scatters per-request [`PriceResponse`]s back.
//!
//! The pipeline, stage by stage:
//!
//! 1. **Admission** ([`queue`]) — a bounded queue; overflow answers a
//!    typed [`Rejected::QueueFull`] synchronously. Backpressure is
//!    explicit, never a silent drop.
//! 2. **Micro-batching** ([`batcher`]) — per-kernel accumulation with a
//!    size trigger derived from the planner's predicted throughput and a
//!    `max_delay` bound on added latency.
//! 3. **Pricing** ([`pricer`]) — the most advanced *batch-safe* rung at
//!    or below the planned one, with batches padded to the SIMD width so
//!    every request's price is bit-identical to pricing it alone
//!    (verified by property tests).
//! 4. **Scatter-back** ([`server`]) — one response per request, with
//!    latency SLO enforcement ([`Rejected::DeadlineExceeded`]) and full
//!    telemetry (queue-depth gauge, occupancy + latency histograms, shed
//!    counters).
//!
//! The same plane also serves risk: [`GreeksRequest`]s ride the shared
//! admission queue into a dedicated [`greeks`] lane that computes all
//! five sensitivities for both contract sides on the analytic SIMD sweep
//! (W=8 → W=4 → scalar degradation ladder, every level bit-identical).
//! [`PortfolioRequest`]s go further: one request **fans out** scenario
//! chunks of a full-book revaluation across the live shards (riding
//! spill, steal, and redrive like any work item) and a merge task
//! stitches the partial P&L tallies back into VaR / expected-shortfall
//! summaries — bit-identical to a native single-threaded sweep, because
//! scenario grids are split-invariant and revaluation is padded
//! lane-wise ([`portfolio`]).
//!
//! [`loadgen`] adds closed- and open-loop synthetic load; the harness
//! exposes it as the `serve_bench` experiment (`finbench serve-bench`),
//! with the greeks lane measured by `greeks_bench`.
//!
//! ## Fault tolerance
//!
//! The server survives its own kernels: batch execution runs under
//! `catch_unwind` with a per-lane [`Breaker`] supervising. Failures
//! first **degrade down the rung ladder** (serving a cheaper but still
//! bit-exact rung), and only open the breaker once the scalar reference
//! rung itself keeps failing; restarts probe half-open with capped
//! exponential backoff. Admission validates every request
//! ([`Rejected::InvalidInput`]) so NaN/Inf/negative parameters never
//! reach a SIMD lane, and the queue/stats mutexes recover from poison
//! instead of cascading one panic across threads. The
//! [`finbench_faults`] registry injects panics, latency, corruption, and
//! queue stalls at compiled-in hook sites for chaos testing
//! (`FINBENCH_FAULTS`).
//!
//! The plane also survives losing whole workers: a supervisor thread
//! ([`SupervisorPolicy`]) respawns killed shard seats in place with
//! breaker-paced backoff and reports per-seat MTTR; a kill's stranded
//! work is redriven at-most-once to a live sibling with its response
//! channel intact; deadline sheds are split first-attempt vs
//! post-redrive; and [`loadgen`] can hedge slow closed-loop requests
//! client-side ([`HedgePolicy`], first-response-wins on [`HEDGE_BIT`]).

pub mod batcher;
pub mod breaker;
pub mod greeks;
pub mod loadgen;
pub mod portfolio;
pub mod pricer;
pub mod queue;
pub mod request;
pub mod server;
pub mod workload;

pub use batcher::{target_batch, BatchPolicy, MicroBatcher};
pub use breaker::{Breaker, BreakerPolicy, BreakerState, FailureAction, Gate};
pub use greeks::{greeks_ladder, GreeksRung};
pub use loadgen::{
    find_peak_sustained, last_sustained_hz, mix_seed, run_load, run_load_hedged, search_peak,
    window_total, HedgePolicy, LoadMode, LoadReport, OptionStream, PeakReport, PeakSearchConfig,
    PeakStep, ShardLoad, HEDGE_BIT, MAX_WINDOW_TOTAL,
};
pub use portfolio::{
    portfolio_ladder, PortfolioChunkOut, PortfolioChunkRequest, PortfolioChunkResponse,
    PortfolioRung,
};
pub use pricer::{padded_batch_into, servable_ladder, PricerConfig, ServingRung};
pub use queue::AdmissionQueue;
pub use request::{
    GreeksOut, GreeksRequest, GreeksResponse, PortfolioOut, PortfolioRequest, PortfolioResponse,
    PriceRequest, PriceResponse, Priced, Rejected, MAX_PORTFOLIO_PRICINGS,
};
pub use server::{
    KernelSnapshot, ServeConfig, ServeSnapshot, Server, ShardSnapshot, SupervisorPolicy,
};
pub use workload::{
    GreeksWorkload, LaneCounters, PortfolioWorkload, PriceWorkload, Scratch, ServeWorkload,
};
