//! The per-lane circuit breaker: Closed → Open → HalfOpen, with the rung
//! ladder as an intermediate stage *before* opening.
//!
//! A classic breaker trips straight from "failing" to "unavailable". The
//! serving plane has something better in between: the paper's ladder of
//! progressively cheaper rungs with declared equivalence. The supervisor
//! therefore degrades a faulting lane *down* its servable ladder first —
//! serving the scalar reference rung is strictly better than shedding,
//! and bit-exactness per rung means degraded answers are still exactly
//! the answers that rung gives when healthy. Only when the **bottom**
//! rung keeps failing does the breaker open.
//!
//! State machine (driven by the lane's batch outcomes; all transitions
//! take `now` so tests replay them with synthetic clocks):
//!
//! ```text
//!           failure && !at_bottom ──────────► Degrade (one ladder level)
//!           failure && at_bottom, streak < N ► Tolerate
//! Closed ── failure && at_bottom, streak ≥ N ► Open(cooldown)
//!   ▲                                            │ cooldown elapses
//!   │ probe batch succeeds                       ▼ (lane restart)
//!   └───────────────────────────────────── HalfOpen ── probe fails ──►
//!                                                Open(2x cooldown, capped)
//! ```
//!
//! Successes climb back: `promote_after` consecutive successful batches
//! promote the lane one ladder level toward the planned rung (degrade
//! fast, recover slowly — the asymmetry that keeps a flapping kernel from
//! oscillating at full speed).

use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures *at the bottom ladder level* before the
    /// breaker opens (failures above the bottom degrade instead).
    pub open_after: u32,
    /// Initial Open → HalfOpen cooldown; doubles on every failed probe.
    pub cooldown: Duration,
    /// Upper bound for the doubling cooldown.
    pub max_cooldown: Duration,
    /// Consecutive successful batches before the lane promotes one
    /// ladder level back toward the planned rung.
    pub promote_after: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            open_after: 3,
            cooldown: Duration::from_millis(25),
            max_cooldown: Duration::from_secs(2),
            promote_after: 32,
        }
    }
}

/// The breaker's public state (surfaced as a gauge/snapshot field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: batches flow.
    Closed,
    /// Tripped: batches are rejected until the cooldown elapses.
    Open,
    /// Post-cooldown trial: batches flow as probes; one failure reopens.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (snapshot/telemetry).
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Numeric encoding for the breaker-state gauge (0/1/2).
    pub fn as_gauge(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What the lane may do with a flushed batch right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Closed: price normally.
    Proceed,
    /// Just restarted (Open → HalfOpen edge): this batch is the probe,
    /// and the caller should count a lane restart.
    Restarted,
    /// Already HalfOpen: further probe batches.
    Probe,
}

/// What a failure means for the lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureAction {
    /// Stay at the current level (streak below the open threshold).
    Tolerate,
    /// Move one ladder level down and keep serving.
    Degrade,
    /// The breaker opened; reject batches until the cooldown elapses.
    Opened,
}

/// One lane's breaker.
#[derive(Debug, Clone)]
pub struct Breaker {
    policy: BreakerPolicy,
    state: BreakerState,
    failures: u32,
    successes: u32,
    cooldown: Duration,
    open_until: Option<Instant>,
    opened_total: u64,
    restarts_total: u64,
}

impl Breaker {
    /// A closed breaker with the given policy.
    pub fn new(policy: BreakerPolicy) -> Self {
        Self {
            policy,
            state: BreakerState::Closed,
            failures: 0,
            successes: 0,
            cooldown: policy.cooldown,
            open_until: None,
            opened_total: 0,
            restarts_total: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened.
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }

    /// Times the lane restarted (Open → HalfOpen transitions).
    pub fn restarts_total(&self) -> u64 {
        self.restarts_total
    }

    /// The cooldown the *next* opening would use (tests pin the capped
    /// exponential backoff through this).
    pub fn current_cooldown(&self) -> Duration {
        self.cooldown
    }

    /// May a batch be dispatched at `now`? `Err(remaining)` while open.
    pub fn allow(&mut self, now: Instant) -> Result<Gate, Duration> {
        match self.state {
            BreakerState::Closed => Ok(Gate::Proceed),
            BreakerState::HalfOpen => Ok(Gate::Probe),
            BreakerState::Open => {
                let until = self.open_until.expect("open breaker has a deadline");
                if now >= until {
                    // Supervised restart: the lane comes back half-open
                    // and the next batch probes it.
                    self.state = BreakerState::HalfOpen;
                    self.open_until = None;
                    self.restarts_total += 1;
                    Ok(Gate::Restarted)
                } else {
                    Err(until - now)
                }
            }
        }
    }

    /// Record a successful batch. Returns `true` when the success streak
    /// says the lane should promote one ladder level up (the caller
    /// ignores it at level 0).
    pub fn on_success(&mut self) -> bool {
        self.failures = 0;
        if self.state == BreakerState::HalfOpen {
            // Probe passed: close, and forgive the backoff history.
            self.state = BreakerState::Closed;
            self.cooldown = self.policy.cooldown;
        }
        self.successes += 1;
        if self.successes >= self.policy.promote_after {
            self.successes = 0;
            true
        } else {
            false
        }
    }

    /// Record a failed batch. `at_bottom` tells the breaker whether the
    /// lane has a cheaper rung left to degrade to.
    pub fn on_failure(&mut self, now: Instant, at_bottom: bool) -> FailureAction {
        self.successes = 0;
        if self.state == BreakerState::HalfOpen {
            // Failed probe: reopen with doubled (capped) cooldown.
            return self.open(now);
        }
        self.failures += 1;
        if !at_bottom {
            // Degrade fast: any failure with a fallback available moves
            // the lane down one level; the streak restarts there.
            self.failures = 0;
            return FailureAction::Degrade;
        }
        if self.failures >= self.policy.open_after {
            self.open(now)
        } else {
            FailureAction::Tolerate
        }
    }

    fn open(&mut self, now: Instant) -> FailureAction {
        self.state = BreakerState::Open;
        self.open_until = Some(now + self.cooldown);
        self.cooldown = (self.cooldown * 2).min(self.policy.max_cooldown);
        self.failures = 0;
        self.opened_total += 1;
        FailureAction::Opened
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BreakerPolicy {
        BreakerPolicy {
            open_after: 3,
            cooldown: Duration::from_millis(10),
            max_cooldown: Duration::from_millis(40),
            promote_after: 4,
        }
    }

    #[test]
    fn failures_above_the_bottom_degrade_immediately() {
        let mut b = Breaker::new(policy());
        let now = Instant::now();
        assert_eq!(b.on_failure(now, false), FailureAction::Degrade);
        assert_eq!(b.state(), BreakerState::Closed);
        // Streak reset: the next bottom failure starts from one.
        assert_eq!(b.on_failure(now, true), FailureAction::Tolerate);
    }

    #[test]
    fn bottom_failures_open_after_the_threshold() {
        let mut b = Breaker::new(policy());
        let now = Instant::now();
        assert_eq!(b.on_failure(now, true), FailureAction::Tolerate);
        assert_eq!(b.on_failure(now, true), FailureAction::Tolerate);
        assert_eq!(b.on_failure(now, true), FailureAction::Opened);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opened_total(), 1);
        // While open, batches are rejected with the remaining cooldown.
        let rem = b.allow(now).unwrap_err();
        assert!(rem <= Duration::from_millis(10));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = Breaker::new(policy());
        let now = Instant::now();
        b.on_failure(now, true);
        b.on_failure(now, true);
        b.on_success();
        assert_eq!(b.on_failure(now, true), FailureAction::Tolerate);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_transitions_to_half_open_after_cooldown_and_counts_a_restart() {
        let mut b = Breaker::new(policy());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0, true);
        }
        assert!(b.allow(t0).is_err());
        let later = t0 + Duration::from_millis(11);
        assert_eq!(b.allow(later), Ok(Gate::Restarted));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.restarts_total(), 1);
        // Further batches while half-open are probes, not restarts.
        assert_eq!(b.allow(later), Ok(Gate::Probe));
    }

    #[test]
    fn failed_probe_reopens_with_doubled_capped_cooldown() {
        let mut b = Breaker::new(policy());
        let mut now = Instant::now();
        // Trip, restart, fail the probe — three times; cooldown 10 → 20
        // → 40 → capped at 40.
        let mut seen = Vec::new();
        for _ in 0..3 {
            for _ in 0..3 {
                b.on_failure(now, true);
            }
            let rem = b.allow(now).unwrap_err();
            seen.push(rem);
            now += rem + Duration::from_millis(1);
            assert_eq!(b.allow(now), Ok(Gate::Restarted));
            assert_eq!(b.on_failure(now, true), FailureAction::Opened);
            now += Duration::from_millis(1);
        }
        assert!(seen[0] <= Duration::from_millis(10));
        // After the first failed probe the cooldown has doubled twice
        // (trip + probe failure), capped at max_cooldown.
        assert_eq!(b.current_cooldown(), Duration::from_millis(40));
    }

    #[test]
    fn successful_probe_closes_and_resets_the_backoff() {
        let mut b = Breaker::new(policy());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0, true);
        }
        let later = t0 + Duration::from_millis(11);
        assert_eq!(b.allow(later), Ok(Gate::Restarted));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.current_cooldown(), Duration::from_millis(10));
    }

    #[test]
    fn promotion_fires_every_promote_after_successes() {
        let mut b = Breaker::new(policy());
        let mut promotions = 0;
        for _ in 0..12 {
            if b.on_success() {
                promotions += 1;
            }
        }
        assert_eq!(promotions, 3);
    }

    #[test]
    fn concurrent_post_cooldown_probes_count_exactly_one_restart() {
        use std::sync::{Arc, Barrier, Mutex};
        // The Open → HalfOpen edge must be observed by exactly one
        // caller no matter how many threads race `allow` after the
        // cooldown: `Restarted` is what the lane counts as a restart, so
        // a duplicate would double-count supervision telemetry (and a
        // miss would lose the probe batch). Deterministic stress: each
        // round seeds a different racer count.
        for round in 0..32u64 {
            let threads = 2 + (round % 6) as usize;
            let mut b = Breaker::new(policy());
            let t0 = Instant::now();
            for _ in 0..3 {
                b.on_failure(t0, true);
            }
            assert!(b.allow(t0).is_err(), "round {round}: must start open");
            let after = t0 + Duration::from_millis(11);
            let b = Arc::new(Mutex::new(b));
            let barrier = Arc::new(Barrier::new(threads));
            let gates: Vec<Gate> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let b = Arc::clone(&b);
                        let barrier = Arc::clone(&barrier);
                        scope.spawn(move || {
                            barrier.wait();
                            b.lock().unwrap().allow(after).expect("cooldown elapsed")
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("probe thread"))
                    .collect()
            });
            let restarted = gates
                .iter()
                .filter(|g| matches!(g, Gate::Restarted))
                .count();
            assert_eq!(restarted, 1, "round {round}: {gates:?}");
            assert!(
                gates
                    .iter()
                    .all(|g| matches!(g, Gate::Restarted | Gate::Probe)),
                "round {round}: {gates:?}"
            );
            let b = b.lock().unwrap();
            assert_eq!(b.restarts_total(), 1, "round {round}");
            assert_eq!(b.state(), BreakerState::HalfOpen);
        }
    }

    #[test]
    fn state_names_and_gauges_are_stable() {
        assert_eq!(BreakerState::Closed.as_str(), "closed");
        assert_eq!(BreakerState::Open.to_string(), "open");
        assert_eq!(BreakerState::HalfOpen.as_str(), "half-open");
        assert_eq!(BreakerState::Closed.as_gauge(), 0.0);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 1.0);
        assert_eq!(BreakerState::Open.as_gauge(), 2.0);
    }
}
