//! The dynamic micro-batcher: pure accumulation logic, no threads, no
//! clocks of its own.
//!
//! The dispatcher owns one [`MicroBatcher`] per kernel and feeds it
//! admitted requests. A batch flushes on whichever trigger fires first:
//!
//! * **size** — the pending set reaches the target batch size (chosen
//!   from the planner's predicted rate, see
//!   [`target_batch`]), or
//! * **delay** — the oldest pending request has waited `max_delay`.
//!
//! Every time decision takes `now` as an argument, so the flush logic is
//! deterministic and the batching property tests can replay arbitrary
//! interleavings without real sleeps.

use std::time::{Duration, Instant};

/// Size/delay policy for one kernel's batcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush once the oldest pending request has waited this long.
    pub max_delay: Duration,
}

/// Pick the size trigger from the planner's predicted throughput: the
/// batch a rung can chew through in one `max_delay` window, clamped to
/// `[width, cap]` and rounded up to a multiple of the SIMD width (so a
/// size-triggered flush needs no padding at all).
pub fn target_batch(predicted_rate: f64, max_delay: Duration, width: usize, cap: usize) -> usize {
    let width = width.max(1);
    let cap = cap.max(width);
    let ideal = predicted_rate * max_delay.as_secs_f64();
    let ideal = if ideal.is_nan() {
        // A broken prediction (0/0, uninitialized model): the smallest
        // legal batch keeps latency bounded while the planner recovers.
        width
    } else if ideal >= cap as f64 {
        // Covers +inf: an absurdly fast prediction saturates at the cap
        // instead of falling through a finiteness check to `width`.
        cap
    } else if ideal < 1.0 {
        width
    } else {
        ideal.ceil() as usize
    };
    let clamped = ideal.clamp(width, cap);
    let rounded = clamped.div_ceil(width) * width;
    // Rounding up to a lane multiple must never exceed the cap (the
    // queue could not hold the batch); round down to the largest
    // multiple that fits instead.
    if rounded <= cap {
        rounded
    } else {
        (cap / width) * width
    }
}

/// One kernel's pending micro-batch. Generic over the queued item so
/// the server can batch request envelopes while the property tests batch
/// bare requests.
#[derive(Debug)]
pub struct MicroBatcher<T> {
    policy: BatchPolicy,
    pending: Vec<T>,
    /// Arrival time of the oldest pending request.
    oldest: Option<Instant>,
}

impl<T> MicroBatcher<T> {
    /// An empty batcher with the given policy (`max_batch >= 1`).
    pub fn new(policy: BatchPolicy) -> Self {
        Self {
            policy: BatchPolicy {
                max_batch: policy.max_batch.max(1),
                max_delay: policy.max_delay,
            },
            pending: Vec::new(),
            oldest: None,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Accept one request at time `now` without flushing — the
    /// allocation-free half of [`offer`](Self::offer). Pair with
    /// [`full`](Self::full) and [`flush_into`](Self::flush_into) so the
    /// flushed batch lands in a reused buffer.
    pub fn push(&mut self, req: T, now: Instant) {
        if self.pending.is_empty() {
            self.oldest = Some(now);
        }
        self.pending.push(req);
    }

    /// True when the size trigger has fired.
    pub fn full(&self) -> bool {
        self.pending.len() >= self.policy.max_batch
    }

    /// Accept one request at time `now`. Returns the full batch when this
    /// arrival fires the size trigger.
    pub fn offer(&mut self, req: T, now: Instant) -> Option<Vec<T>> {
        self.push(req, now);
        self.full().then(|| self.flush())
    }

    /// True when the delay trigger has fired at `now`.
    pub fn due(&self, now: Instant) -> bool {
        match self.oldest {
            Some(t0) => !self.pending.is_empty() && now.duration_since(t0) >= self.policy.max_delay,
            None => false,
        }
    }

    /// When the delay trigger will fire (None when empty) — the
    /// dispatcher sleeps until the earliest of these across kernels.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.oldest
            .filter(|_| !self.pending.is_empty())
            .map(|t0| t0 + self.policy.max_delay)
    }

    /// Drain everything pending (possibly empty) into `out`, which is
    /// cleared first. Neither the pending buffer nor `out` give up their
    /// capacity, so a lane flushing into its reusable scratch allocates
    /// nothing once both have grown to the largest batch seen.
    pub fn flush_into(&mut self, out: &mut Vec<T>) {
        self.oldest = None;
        out.clear();
        out.append(&mut self.pending);
    }

    /// Take everything pending (possibly empty).
    pub fn flush(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.pending.len());
        self.flush_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> u64 {
        id
    }

    fn policy(max_batch: usize, max_delay_ms: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_delay: Duration::from_millis(max_delay_ms),
        }
    }

    #[test]
    fn size_trigger_fires_exactly_at_max_batch() {
        let mut b = MicroBatcher::new(policy(3, 1000));
        let now = Instant::now();
        assert!(b.offer(req(1), now).is_none());
        assert!(b.offer(req(2), now).is_none());
        let batch = b.offer(req(3), now).unwrap();
        assert_eq!(batch, [1, 2, 3]);
        assert!(b.is_empty());
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn delay_trigger_counts_from_the_oldest_request() {
        let mut b = MicroBatcher::new(policy(100, 10));
        let t0 = Instant::now();
        b.offer(req(1), t0);
        // A later arrival must not push the deadline out.
        b.offer(req(2), t0 + Duration::from_millis(9));
        assert!(!b.due(t0 + Duration::from_millis(9)));
        assert!(b.due(t0 + Duration::from_millis(10)));
        assert_eq!(b.next_deadline(), Some(t0 + Duration::from_millis(10)));
        assert_eq!(b.flush().len(), 2);
        assert!(!b.due(t0 + Duration::from_secs(1)));
    }

    #[test]
    fn flush_into_drains_in_place_and_keeps_capacity() {
        let mut b = MicroBatcher::new(policy(100, 10));
        let mut out: Vec<u64> = Vec::new();
        let t0 = Instant::now();
        for round in 0..3u64 {
            for i in 0..10 {
                b.push(req(round * 10 + i), t0);
            }
            assert!(!b.full());
            b.flush_into(&mut out);
            assert_eq!(out.len(), 10, "round {round}");
            assert_eq!(out[0], round * 10, "round {round}");
            assert!(b.is_empty());
            assert_eq!(b.next_deadline(), None);
        }
        // Steady state: neither the pending buffer nor the flush target
        // reallocates once both have grown.
        let cap = out.capacity();
        for i in 0..10 {
            b.push(req(i), t0);
        }
        b.flush_into(&mut out);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn push_full_flush_into_agrees_with_offer() {
        let mut a = MicroBatcher::new(policy(3, 1000));
        let mut b = MicroBatcher::new(policy(3, 1000));
        let now = Instant::now();
        let mut flushed = Vec::new();
        for i in 1..=3 {
            let via_offer = a.offer(req(i), now);
            b.push(req(i), now);
            if b.full() {
                b.flush_into(&mut flushed);
                let via_offer = via_offer.expect("offer flushes at max_batch");
                assert_eq!(flushed, via_offer);
            } else {
                assert!(via_offer.is_none());
            }
        }
    }

    #[test]
    fn target_batch_scales_with_rate_and_rounds_to_width() {
        let d = Duration::from_millis(1);
        // 1e6 items/s * 1ms = 1000 → rounded up to a multiple of 8.
        assert_eq!(target_batch(1.0e6, d, 8, 4096), 1000usize.div_ceil(8) * 8);
        // Slow rung: clamps up to the width.
        assert_eq!(target_batch(100.0, d, 8, 4096), 8);
        // Fast rung: clamps down to the cap (already a multiple).
        assert_eq!(target_batch(1.0e12, d, 8, 4096), 4096);
        // Degenerate inputs stay sane.
        assert_eq!(target_batch(f64::NAN, d, 4, 64), 4);
        assert_eq!(target_batch(0.0, d, 1, 1), 1);
    }

    #[test]
    fn target_batch_survives_degenerate_predictions() {
        let d = Duration::from_millis(1);
        // An infinite prediction saturates at the cap instead of
        // collapsing to a single lane's width.
        assert_eq!(target_batch(f64::INFINITY, d, 8, 4096), 4096);
        // Negative or -inf predictions clamp up to one full lane.
        assert_eq!(target_batch(f64::NEG_INFINITY, d, 8, 4096), 8);
        assert_eq!(target_batch(-5.0e6, d, 8, 4096), 8);
        // A zero-length delay window still yields a non-empty batch.
        assert_eq!(target_batch(1.0e6, Duration::ZERO, 8, 4096), 8);
        assert!(target_batch(f64::NAN, d, 8, 4096) >= 1);
    }

    #[test]
    fn target_batch_never_exceeds_the_cap() {
        let d = Duration::from_millis(1);
        // cap = 10 is not a lane multiple: rounding 10 up to 16 would
        // overflow the queue, so the target rounds down to 8 instead.
        assert_eq!(target_batch(9.0e3, d, 8, 10), 8);
        assert_eq!(target_batch(1.0e12, d, 8, 10), 8);
        for rate in [0.0, 1.0, 1.0e3, 1.0e6, 1.0e9, f64::INFINITY] {
            let t = target_batch(rate, d, 8, 100);
            assert!((1..=100).contains(&t), "rate={rate}: target {t}");
            assert_eq!(t % 8, 0, "rate={rate}: target {t} not a lane multiple");
        }
    }
}
