//! Synthetic load generation for the serving plane.
//!
//! Two canonical load models:
//!
//! * **closed-loop** — `clients` threads, each with one outstanding
//!   request: submit, wait for the response, repeat. Throughput is
//!   self-limiting, so this traces out the latency floor at increasing
//!   concurrency.
//! * **open-loop** — arrivals paced at a fixed rate regardless of
//!   completions (the standard model for SLO studies: queueing delay and
//!   shedding appear once the offered rate exceeds capacity).
//!
//! Option parameters are drawn from the workspace's seeded RNG-free
//! SplitMix-style stream so every run is reproducible.
//!
//! ## Hedged requests
//!
//! Closed-loop clients can optionally **hedge**: if a response hasn't
//! arrived within [`HedgePolicy::delay`], the client submits a second
//! copy of the request (same parameters, same absolute deadline, id
//! tagged with [`HEDGE_BIT`]) and takes whichever response arrives
//! first. The loser is simply dropped client-side — the server still
//! answers both copies, so hedging trades duplicated work for tail
//! latency, exactly the classic tail-at-scale tradeoff. Open-loop runs
//! are never hedged: an injector paced on arrivals has no per-request
//! wait in which to detect a slow response.

use crate::request::{PriceRequest, PriceResponse, Rejected};
use crate::server::Server;
use finbench_telemetry as telemetry;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// High bit of the request-id space, reserved to tag hedge copies. The
/// load generators assign dense ids well below it, and the winner's id
/// is masked back before reporting, so the tag never leaks into latency
/// matching or summaries.
pub const HEDGE_BIT: u64 = 1 << 63;

/// Client-side hedging policy for closed-loop load (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// How long a client waits for a response before submitting the
    /// hedge copy. Pick this near the expected tail (e.g. observed p99):
    /// too short duplicates most requests, too long never fires.
    pub delay: Duration,
}

/// The offered-load model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// `clients` concurrent clients, each issuing `requests_per_client`
    /// back-to-back requests.
    Closed {
        /// Concurrent clients.
        clients: usize,
        /// Requests per client.
        requests_per_client: usize,
    },
    /// `total` arrivals paced at `rate_hz` from one injector thread.
    Open {
        /// Offered arrival rate, requests/second.
        rate_hz: f64,
        /// Total arrivals.
        total: usize,
    },
}

/// What one load run observed, measured at the *client* side.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Kernel driven.
    pub kernel: String,
    /// Requests submitted.
    pub offered: usize,
    /// Requests priced.
    pub served: usize,
    /// Requests shed for backpressure (queue full) at submit.
    pub shed_queue_full: usize,
    /// Requests shed for a blown deadline at dispatch.
    pub shed_deadline: usize,
    /// Requests rejected because the kernel name failed registry
    /// resolution ([`Rejected::UnknownKernel`]).
    pub rejected_unknown_kernel: usize,
    /// Requests rejected because the kernel has no batch-safe serving
    /// rung ([`Rejected::Unservable`]).
    pub rejected_unservable: usize,
    /// Requests rejected because the server was shutting down
    /// ([`Rejected::ShuttingDown`]).
    pub rejected_shutdown: usize,
    /// Requests rejected by admission-side input validation.
    pub invalid_input: usize,
    /// Requests answered [`Rejected::Internal`] (caught kernel panic or
    /// open circuit breaker).
    pub internal: usize,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Served throughput, requests/second.
    pub throughput: f64,
    /// Client-observed latency percentiles, microseconds (p50, p95,
    /// p99); zeros when nothing was served.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Hedge copies submitted (0 unless hedging was enabled).
    pub hedges: usize,
    /// Logical requests whose *hedge* copy answered first.
    pub hedge_wins: usize,
    /// Per-shard activity over this run (snapshot deltas): what each
    /// worker shard admitted, served, and stole while the load ran.
    pub shards: Vec<ShardLoad>,
}

impl LoadReport {
    /// Queue-full + deadline sheds.
    pub fn total_shed(&self) -> usize {
        self.shed_queue_full + self.shed_deadline
    }

    /// All "other" rejections: unknown kernel + unservable + shutdown.
    /// These used to be one collapsed counter, which made a misspelled
    /// kernel name in a sweep indistinguishable from a mid-run shutdown.
    pub fn rejected_total(&self) -> usize {
        self.rejected_unknown_kernel + self.rejected_unservable + self.rejected_shutdown
    }

    /// Fraction of offered requests that were answered with a price
    /// (the availability number chaos runs report).
    pub fn availability(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.served as f64 / self.offered as f64
        }
    }
}

/// One worker shard's activity over a load run, measured as the delta of
/// its [`ShardSnapshot`](crate::server::ShardSnapshot) tallies between
/// run start and run end.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardLoad {
    /// Shard index (stable over the server's lifetime).
    pub index: usize,
    /// Whether the shard was still alive at the end of the run.
    pub alive: bool,
    /// Work items the router pushed to this shard during the run.
    pub submitted: u64,
    /// Requests this shard answered with a result during the run.
    pub served: u64,
    /// Work items this shard stole from siblings during the run.
    pub stolen: u64,
}

impl ShardLoad {
    /// Served-over-submitted for this shard (1.0 when it was never
    /// routed to). Stolen work is served here but submitted elsewhere,
    /// so a busy thief can exceed 1.
    pub fn availability(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.served as f64 / self.submitted as f64
        }
    }
}

/// Derive the `index`-th child seed of `seed` through a SplitMix64
/// finalizer. The load generators used to derive per-client and
/// per-step seeds additively (`seed + index`), which collides across a
/// sweep: client `i` of step seeded `s + 1` replayed client `i + 1` of
/// step seeded `s`, so "independent" streams shared every draw. The
/// finalizer's avalanche decorrelates neighbouring `(seed, index)`
/// pairs instead.
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic option-parameter stream (SplitMix64 under the hood) in
/// the paper's workload ranges: s ∈ [5, 30), x ∈ [1, 100), t ∈ [0.25, 10).
#[derive(Debug, Clone)]
pub struct OptionStream {
    state: u64,
}

impl OptionStream {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    /// The next `(s, x, t)` triple.
    pub fn next_option(&mut self) -> (f64, f64, f64) {
        (
            self.uniform(5.0, 30.0),
            self.uniform(1.0, 100.0),
            self.uniform(0.25, 10.0),
        )
    }
}

/// Drive `server` with synthetic load against one kernel and report
/// client-side latency/throughput. `slo` attaches a deadline to every
/// request (None = no deadline, nothing can be shed for lateness).
pub fn run_load(
    server: &Server,
    kernel: &str,
    mode: LoadMode,
    seed: u64,
    slo: Option<Duration>,
) -> LoadReport {
    run_load_hedged(server, kernel, mode, seed, slo, None)
}

/// [`run_load`] with optional client-side hedging. Hedging applies only
/// to closed-loop load (see the module docs); an open-loop run ignores
/// the policy and reports zero hedges.
pub fn run_load_hedged(
    server: &Server,
    kernel: &str,
    mode: LoadMode,
    seed: u64,
    slo: Option<Duration>,
    hedge: Option<HedgePolicy>,
) -> LoadReport {
    let before = server.snapshot().shards;
    let t0 = Instant::now();
    let (responses, hedges, hedge_wins) = match mode {
        LoadMode::Closed {
            clients,
            requests_per_client,
        } => closed_loop(
            server,
            kernel,
            clients,
            requests_per_client,
            seed,
            slo,
            hedge,
        ),
        LoadMode::Open { rate_hz, total } => {
            (open_loop(server, kernel, rate_hz, total, seed, slo), 0, 0)
        }
    };
    let wall = t0.elapsed();
    let mut report = summarize(kernel, responses, wall);
    report.hedges = hedges;
    report.hedge_wins = hedge_wins;
    report.shards = shard_deltas(&before, &server.snapshot().shards);
    report
}

/// Per-shard activity between two snapshots (same server, so shards are
/// index-aligned; a shard killed mid-run shows `alive: false`).
fn shard_deltas(
    before: &[crate::server::ShardSnapshot],
    after: &[crate::server::ShardSnapshot],
) -> Vec<ShardLoad> {
    after
        .iter()
        .map(|a| {
            let b = before.iter().find(|b| b.index == a.index);
            let base =
                |f: fn(&crate::server::ShardSnapshot) -> u64| a_minus(f(a), b.map(f).unwrap_or(0));
            ShardLoad {
                index: a.index,
                alive: a.alive,
                submitted: base(|s| s.submitted),
                served: base(|s| s.served),
                stolen: base(|s| s.stolen),
            }
        })
        .collect()
}

fn a_minus(a: u64, b: u64) -> u64 {
    a.saturating_sub(b)
}

fn closed_loop(
    server: &Server,
    kernel: &str,
    clients: usize,
    requests_per_client: usize,
    seed: u64,
    slo: Option<Duration>,
    hedge: Option<HedgePolicy>,
) -> (Vec<(PriceResponse, Duration)>, usize, usize) {
    let per_client = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|c| {
                scope.spawn(move || {
                    let mut stream = OptionStream::new(mix_seed(seed, c as u64));
                    let mut out = Vec::with_capacity(requests_per_client);
                    let mut hedges = 0usize;
                    let mut wins = 0usize;
                    for i in 0..requests_per_client {
                        let (s, x, t) = stream.next_option();
                        let id = (c * requests_per_client + i) as u64;
                        // Dense ids stay far below the reserved hedge
                        // tag; a generator change that grows into bit 63
                        // would silently corrupt hedge dedup.
                        debug_assert_eq!(id & HEDGE_BIT, 0, "request id collides with HEDGE_BIT");
                        let mut req = PriceRequest::new(id, kernel, s, x, t);
                        if let Some(d) = slo {
                            req = req.with_slo(d);
                        }
                        let sent = Instant::now();
                        match one_hedged(server, req, hedge, &mut hedges, &mut wins) {
                            Some(resp) => out.push((resp, sent.elapsed())),
                            None => break,
                        }
                    }
                    (out, hedges, wins)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    let mut responses = Vec::new();
    let (mut hedges, mut wins) = (0usize, 0usize);
    for (out, h, w) in per_client {
        responses.extend(out);
        hedges += h;
        wins += w;
    }
    (responses, hedges, wins)
}

/// Issue one closed-loop request, optionally hedging it, and return the
/// winning response with its id normalized (hedge tag masked off).
///
/// First-response-wins dedup: both copies answer on the same channel and
/// only the first receive is taken, so each logical request contributes
/// exactly one entry to the report no matter which copy the server
/// answers first. The hedge copy shares the original's absolute
/// deadline — hedging never extends the end-to-end budget the server
/// enforces, it only races a second attempt inside it.
fn one_hedged(
    server: &Server,
    req: PriceRequest,
    hedge: Option<HedgePolicy>,
    hedges: &mut usize,
    wins: &mut usize,
) -> Option<PriceResponse> {
    // Bit 63 is the hedge tag (see [`HEDGE_BIT`]). A caller-supplied id
    // already carrying it would make the original indistinguishable from
    // its own hedge copy — dedup would mask the "win" back onto a
    // different logical request. Reject at submission with a typed
    // error instead of submitting a request we could never account for.
    if hedge.is_some() && req.id & HEDGE_BIT != 0 {
        return Some(PriceResponse {
            id: req.id,
            outcome: Err(Rejected::InvalidInput {
                reason: "request id uses bit 63, reserved for hedge tagging".into(),
            }),
        });
    }
    let (tx, rx) = mpsc::channel();
    let hedge_copy = hedge.map(|_| {
        let mut copy = req.clone();
        copy.id |= HEDGE_BIT;
        copy
    });
    server.submit_with(req, &tx);
    let first = match hedge {
        None => {
            // Our sender must not keep the channel open: the server's
            // clone is the only live producer while we wait.
            drop(tx);
            rx.recv().ok()
        }
        Some(policy) => match rx.recv_timeout(policy.delay) {
            Ok(resp) => Some(resp),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                *hedges += 1;
                telemetry::counter_add("loadgen.hedges", 1);
                server.submit_with(hedge_copy.expect("hedge copy built"), &tx);
                // Drop our sender so the receive below can't hang if
                // (impossibly) neither copy were answered.
                drop(tx);
                rx.recv().ok()
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => None,
        },
    };
    let mut resp = first?;
    if resp.id & HEDGE_BIT != 0 {
        *wins += 1;
        telemetry::counter_add("loadgen.hedge_wins", 1);
        resp.id &= !HEDGE_BIT;
    }
    // The losing copy's response (if any) dies with `rx` here.
    Some(resp)
}

fn open_loop(
    server: &Server,
    kernel: &str,
    rate_hz: f64,
    total: usize,
    seed: u64,
    slo: Option<Duration>,
) -> Vec<(PriceResponse, Duration)> {
    let gap = Duration::from_secs_f64(1.0 / rate_hz.max(1.0));
    let mut stream = OptionStream::new(seed);
    let (tx, rx) = mpsc::channel::<PriceResponse>();
    // Responses must be timestamped as they *arrive*, not when the
    // injector finishes, so a collector thread drains concurrently.
    let collector = std::thread::spawn(move || {
        rx.iter()
            .map(|resp| (resp, Instant::now()))
            .collect::<Vec<_>>()
    });
    let t0 = Instant::now();
    let mut sent_at = Vec::with_capacity(total);
    for i in 0..total {
        // Pace against the schedule, not the previous send, so a slow
        // submit doesn't silently lower the offered rate.
        let due = t0 + gap.mul_f64(i as f64);
        if let Some(sleep) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        let (s, x, t) = stream.next_option();
        let mut req = PriceRequest::new(i as u64, kernel, s, x, t);
        if let Some(d) = slo {
            req = req.with_slo(d);
        }
        sent_at.push(Instant::now());
        server.submit_with(req, &tx);
    }
    drop(tx);
    // Every submitted request gets exactly one response (priced or
    // rejected), so the collector terminates once the server drains.
    match_sent(&sent_at, collector.join().expect("collector thread"))
}

/// Pair each collected response with its send timestamp by id. A
/// response whose id falls outside the dense `sent_at` range (a replayed
/// id after a lane restart, or a foreign stream sharing the channel) is
/// dropped from the report and counted on `loadgen.unmatched_response`
/// instead of panicking or misattributing another request's latency.
fn match_sent(
    sent_at: &[Instant],
    collected: Vec<(PriceResponse, Instant)>,
) -> Vec<(PriceResponse, Duration)> {
    let mut matched = Vec::with_capacity(collected.len());
    for (resp, arrived) in collected {
        match sent_at.get(resp.id as usize) {
            Some(&sent) => matched.push((resp, arrived.saturating_duration_since(sent))),
            None => telemetry::counter_add("loadgen.unmatched_response", 1),
        }
    }
    matched
}

fn summarize(
    kernel: &str,
    responses: Vec<(PriceResponse, Duration)>,
    wall: Duration,
) -> LoadReport {
    let offered = responses.len();
    let mut served = 0usize;
    let mut shed_queue_full = 0usize;
    let mut shed_deadline = 0usize;
    let mut rejected_unknown_kernel = 0usize;
    let mut rejected_unservable = 0usize;
    let mut rejected_shutdown = 0usize;
    let mut invalid_input = 0usize;
    let mut internal = 0usize;
    let mut lat_us: Vec<f64> = Vec::with_capacity(offered);
    for (resp, rtt) in &responses {
        // Exhaustive on purpose: a catch-all `Err(_)` arm here once
        // collapsed UnknownKernel, Unservable, and ShuttingDown into one
        // opaque count, and a new Rejected variant would silently join
        // them. Now adding a variant fails to compile until the report
        // accounts for it.
        match &resp.outcome {
            Ok(_) => {
                served += 1;
                let us = rtt.as_secs_f64() * 1e6;
                // A Duration cannot produce NaN/Inf microseconds; catch it
                // at sample time if that ever changes.
                debug_assert!(us.is_finite(), "non-finite latency sample: {us}");
                lat_us.push(us);
            }
            Err(Rejected::QueueFull { .. }) => shed_queue_full += 1,
            Err(Rejected::DeadlineExceeded { .. }) => shed_deadline += 1,
            Err(Rejected::InvalidInput { .. }) => invalid_input += 1,
            Err(Rejected::Internal { .. }) => internal += 1,
            Err(Rejected::UnknownKernel { .. }) => rejected_unknown_kernel += 1,
            Err(Rejected::Unservable { .. }) => rejected_unservable += 1,
            Err(Rejected::ShuttingDown) => rejected_shutdown += 1,
        }
    }
    // Total order even in release builds where the debug_assert above is
    // compiled out: NaN sorts last instead of panicking the summary.
    lat_us.sort_by(f64::total_cmp);
    // Shared nearest-rank convention (empty → 0.0 sentinel for reports).
    let pct = |q: f64| -> f64 {
        if lat_us.is_empty() {
            0.0
        } else {
            telemetry::nearest_rank(&lat_us, q)
        }
    };
    LoadReport {
        kernel: kernel.to_string(),
        offered,
        served,
        shed_queue_full,
        shed_deadline,
        rejected_unknown_kernel,
        rejected_unservable,
        rejected_shutdown,
        invalid_input,
        internal,
        wall,
        throughput: served as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        hedges: 0,
        hedge_wins: 0,
        shards: Vec::new(),
    }
}

/// One step of a peak-sustainable-load search: the offered open-loop
/// rate and what the serving plane did with it.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakStep {
    /// Offered arrival rate, requests/second.
    pub rate_hz: f64,
    /// Requests injected over the window.
    pub offered: usize,
    /// Requests priced.
    pub served: usize,
    /// Requests shed (queue-full + deadline).
    pub shed: usize,
    /// Requests answered with any other rejection (invalid input,
    /// internal, shutdown).
    pub other_rejected: usize,
}

impl PeakStep {
    /// A step is *sustained* when every offered request was priced:
    /// zero shed, zero other rejections, over the full window.
    pub fn sustained(&self) -> bool {
        self.shed == 0 && self.other_rejected == 0 && self.served == self.offered
    }
}

/// The highest *sustained* rate among `steps` (0.0 when no step was
/// sustained). This is what "peak sustainable load" means in
/// `BENCH_<n>.json`: the last zero-shed step, **not** the last attempted
/// one — a search that stops on its first shedding step would otherwise
/// report a rate it just proved unsustainable.
pub fn last_sustained_hz(steps: &[PeakStep]) -> f64 {
    steps
        .iter()
        .rev()
        .find(|s| s.sustained())
        .map(|s| s.rate_hz)
        .unwrap_or(0.0)
}

/// Peak-search schedule: geometric rate steps over fixed windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakSearchConfig {
    /// First offered rate, requests/second.
    pub start_hz: f64,
    /// Per-step rate multiplier (> 1).
    pub growth: f64,
    /// Maximum number of steps.
    pub max_steps: usize,
    /// Window length per step, seconds (arrivals = rate × window).
    pub window_secs: f64,
    /// Seed for the option-parameter stream (stepped per step).
    pub seed: u64,
}

impl Default for PeakSearchConfig {
    fn default() -> Self {
        Self {
            start_hz: 500.0,
            growth: 1.6,
            max_steps: 8,
            window_secs: 0.2,
            seed: 0xBEA7,
        }
    }
}

/// A finished peak search.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakReport {
    /// Every step attempted, in order.
    pub steps: Vec<PeakStep>,
    /// The last rate the search offered (may well have shed).
    pub last_attempted_hz: f64,
}

impl PeakReport {
    /// Peak sustainable load: see [`last_sustained_hz`].
    pub fn sustained_hz(&self) -> f64 {
        last_sustained_hz(&self.steps)
    }
}

/// Hard cap on arrivals per peak-search window. A degenerate config
/// (`rate * window` overflowing, or non-finite) used to convert straight
/// through `as usize`, allocating a send-timestamp vector for billions
/// of arrivals; any window that would exceed this cap is almost
/// certainly a config bug, not a real measurement.
pub const MAX_WINDOW_TOTAL: usize = 1_000_000;

/// Arrivals for one peak-search window: `rate_hz * window_secs`, clamped
/// to `[32, MAX_WINDOW_TOTAL]`. Non-finite or non-positive products
/// (NaN rate, infinite window, negative either) fall back to the floor
/// instead of whatever `as usize` saturates them to.
pub fn window_total(rate_hz: f64, window_secs: f64) -> usize {
    let product = rate_hz * window_secs;
    if !product.is_finite() || product <= 0.0 {
        return 32;
    }
    if product >= MAX_WINDOW_TOTAL as f64 {
        return MAX_WINDOW_TOTAL;
    }
    (product as usize).clamp(32, MAX_WINDOW_TOTAL)
}

/// Generic peak search: step the offered rate geometrically per
/// [`PeakSearchConfig`], driving each step through `step(rate_hz, total,
/// seed)`, stopping at the first step that wasn't sustained (or at
/// `max_steps`). The greeks lane reuses this with its own request type.
pub fn search_peak(
    cfg: &PeakSearchConfig,
    mut step: impl FnMut(f64, usize, u64) -> PeakStep,
) -> PeakReport {
    let mut steps = Vec::new();
    let mut rate = cfg.start_hz.max(1.0);
    let growth = cfg.growth.max(1.01);
    let mut last_attempted_hz = 0.0;
    for i in 0..cfg.max_steps {
        let total = window_total(rate, cfg.window_secs);
        let s = step(rate, total, mix_seed(cfg.seed, i as u64));
        last_attempted_hz = rate;
        let sustained = s.sustained();
        steps.push(s);
        if !sustained {
            break;
        }
        rate *= growth;
    }
    PeakReport {
        steps,
        last_attempted_hz,
    }
}

/// Search for the peak sustainable open-loop load on `kernel`.
/// `make_server` builds a fresh server per step so queue state, breaker
/// state, and latency histograms never leak across steps.
pub fn find_peak_sustained(
    mut make_server: impl FnMut() -> Server,
    kernel: &str,
    cfg: &PeakSearchConfig,
) -> PeakReport {
    search_peak(cfg, |rate_hz, total, seed| {
        let server = make_server();
        let r = run_load(
            &server,
            kernel,
            LoadMode::Open { rate_hz, total },
            seed,
            None,
        );
        server.shutdown();
        PeakStep {
            rate_hz,
            offered: r.offered,
            served: r.served,
            shed: r.total_shed(),
            other_rejected: r.rejected_total() + r.invalid_input + r.internal,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricer::PricerConfig;
    use crate::server::ServeConfig;

    fn quick_server(capacity: usize) -> Server {
        Server::start(ServeConfig {
            queue_capacity: capacity,
            max_delay: Duration::from_micros(200),
            max_batch: 256,
            pricer: PricerConfig {
                binomial_steps: 16,
                ..PricerConfig::default()
            },
            ..ServeConfig::default()
        })
    }

    #[test]
    fn option_stream_is_deterministic_and_in_range() {
        let mut a = OptionStream::new(42);
        let mut b = OptionStream::new(42);
        for _ in 0..100 {
            let (s, x, t) = a.next_option();
            assert_eq!((s, x, t), b.next_option());
            assert!((5.0..30.0).contains(&s), "{s}");
            assert!((1.0..100.0).contains(&x), "{x}");
            assert!((0.25..10.0).contains(&t), "{t}");
        }
        assert_ne!(
            OptionStream::new(1).next_option(),
            OptionStream::new(2).next_option()
        );
    }

    #[test]
    fn closed_loop_serves_every_request_with_ample_capacity() {
        let server = quick_server(1024);
        let report = run_load(
            &server,
            "black_scholes",
            LoadMode::Closed {
                clients: 3,
                requests_per_client: 40,
            },
            7,
            None,
        );
        assert_eq!(report.offered, 120);
        assert_eq!(report.served, 120);
        assert_eq!(report.total_shed(), 0);
        assert!(report.throughput > 0.0);
        assert!(report.p50_us > 0.0 && report.p50_us <= report.p99_us);
        assert_eq!(server.shutdown().total_shed(), 0);
    }

    #[test]
    fn load_reports_carry_per_shard_activity_deltas_not_totals() {
        let server = Server::start(ServeConfig {
            queue_capacity: 1024,
            max_delay: Duration::from_micros(200),
            shards: 2,
            ..ServeConfig::default()
        });
        let mode = |n: usize| LoadMode::Closed {
            clients: 2,
            requests_per_client: n,
        };
        let report = run_load(&server, "black_scholes", mode(30), 3, None);
        assert_eq!(report.offered, 60);
        assert_eq!(report.shards.len(), 2);
        assert!(report.shards.iter().all(|s| s.alive));
        let submitted: u64 = report.shards.iter().map(|s| s.submitted).sum();
        let served: u64 = report.shards.iter().map(|s| s.served).sum();
        assert_eq!(submitted, 60);
        assert_eq!(served, 60);
        // A second run reports only its own delta, not cumulative
        // totals, so per-run availability stays meaningful.
        let again = run_load(&server, "black_scholes", mode(5), 4, None);
        let submitted2: u64 = again.shards.iter().map(|s| s.submitted).sum();
        let served2: u64 = again.shards.iter().map(|s| s.served).sum();
        assert_eq!(submitted2, 10);
        // Stolen work serves at the thief, so a single shard's
        // availability may sit either side of 1.0 — the deltas still
        // account for every request of *this* run exactly once.
        assert_eq!(served2, 10);
        server.shutdown();
    }

    #[test]
    fn hedged_closed_loop_dedups_to_one_response_per_request() {
        // A long batching delay holds every response back far past the
        // hedge delay, so every request hedges — and each logical
        // request must still appear exactly once in the report.
        let server = Server::start(ServeConfig {
            queue_capacity: 1024,
            max_delay: Duration::from_millis(40),
            max_batch: 256,
            ..ServeConfig::default()
        });
        let before_h = telemetry::counter_value("loadgen.hedges");
        let report = run_load_hedged(
            &server,
            "black_scholes",
            LoadMode::Closed {
                clients: 2,
                requests_per_client: 4,
            },
            21,
            None,
            Some(HedgePolicy {
                delay: Duration::from_millis(1),
            }),
        );
        assert_eq!(report.offered, 8, "{report:?}");
        assert_eq!(report.served, 8, "{report:?}");
        assert_eq!(report.hedges, 8, "every request outlived the hedge delay");
        assert!(report.hedge_wins <= report.hedges);
        assert_eq!(telemetry::counter_value("loadgen.hedges"), before_h + 8);
        server.shutdown();
    }

    #[test]
    fn unhedged_and_open_loop_runs_report_zero_hedges() {
        let server = quick_server(1024);
        let closed = run_load(
            &server,
            "black_scholes",
            LoadMode::Closed {
                clients: 1,
                requests_per_client: 5,
            },
            3,
            None,
        );
        assert_eq!((closed.hedges, closed.hedge_wins), (0, 0));
        // Open-loop ignores the policy by design (module docs).
        let open = run_load_hedged(
            &server,
            "black_scholes",
            LoadMode::Open {
                rate_hz: 5_000.0,
                total: 50,
            },
            4,
            None,
            Some(HedgePolicy {
                delay: Duration::from_micros(1),
            }),
        );
        assert_eq!((open.hedges, open.hedge_wins), (0, 0));
        server.shutdown();
    }

    #[test]
    fn out_of_range_response_ids_are_dropped_and_counted() {
        let resp = |id: u64| PriceResponse {
            id,
            outcome: Err(Rejected::ShuttingDown),
        };
        let before = telemetry::counter_value("loadgen.unmatched_response");
        let now = Instant::now();
        let sent_at = vec![now, now];
        // id 7 is outside the dense [0, 2) range the injector assigned —
        // pre-fix this indexed out of bounds and panicked the report.
        let collected = vec![(resp(0), now), (resp(7), now), (resp(1), now)];
        let matched = match_sent(&sent_at, collected);
        assert_eq!(matched.len(), 2);
        assert_eq!(matched[0].0.id, 0);
        assert_eq!(matched[1].0.id, 1);
        assert_eq!(
            telemetry::counter_value("loadgen.unmatched_response"),
            before + 1
        );
    }

    fn step(rate_hz: f64, offered: usize, served: usize) -> PeakStep {
        PeakStep {
            rate_hz,
            offered,
            served,
            shed: offered - served,
            other_rejected: 0,
        }
    }

    #[test]
    fn peak_reports_last_sustained_not_last_attempted() {
        // The classic off-by-one this fixes: search stops at 400/s
        // because 400/s shed, so the peak is 200/s.
        let steps = vec![
            step(100.0, 20, 20),
            step(200.0, 40, 40),
            step(400.0, 80, 61),
        ];
        assert_eq!(last_sustained_hz(&steps), 200.0);
        let report = PeakReport {
            steps,
            last_attempted_hz: 400.0,
        };
        assert_eq!(report.sustained_hz(), 200.0);
        assert_ne!(report.sustained_hz(), report.last_attempted_hz);
    }

    #[test]
    fn peak_is_zero_when_nothing_was_sustained() {
        assert_eq!(last_sustained_hz(&[]), 0.0);
        assert_eq!(last_sustained_hz(&[step(100.0, 20, 10)]), 0.0);
    }

    #[test]
    fn a_fully_served_window_with_other_rejections_is_not_sustained() {
        let mut s = step(100.0, 20, 20);
        s.other_rejected = 1;
        assert!(!s.sustained());
    }

    #[test]
    fn peak_search_stops_on_first_shedding_step() {
        // A 1-slot queue with a long batching delay sheds almost
        // immediately at any real rate, so the search terminates fast.
        let cfg = PeakSearchConfig {
            start_hz: 2_000.0,
            growth: 2.0,
            max_steps: 4,
            window_secs: 0.05,
            seed: 3,
        };
        let report = find_peak_sustained(|| quick_server(1), "black_scholes", &cfg);
        assert!(!report.steps.is_empty());
        assert!(report.last_attempted_hz > 0.0);
        assert!(report.sustained_hz() <= report.last_attempted_hz);
        // Every step before the last was sustained; the last either shed
        // or the search ran out of steps.
        for s in &report.steps[..report.steps.len() - 1] {
            assert!(s.sustained(), "{s:?}");
        }
        if let Some(last) = report.steps.last() {
            assert_eq!(
                last.offered,
                last.served + last.shed + last.other_rejected,
                "{last:?}"
            );
        }
    }

    #[test]
    fn peak_search_with_ample_capacity_sustains_every_step() {
        let cfg = PeakSearchConfig {
            start_hz: 100.0,
            growth: 1.5,
            max_steps: 2,
            window_secs: 0.05,
            seed: 5,
        };
        let report = find_peak_sustained(|| quick_server(4096), "black_scholes", &cfg);
        assert_eq!(report.steps.len(), 2);
        assert!(report.steps.iter().all(PeakStep::sustained), "{report:?}");
        assert_eq!(report.sustained_hz(), report.last_attempted_hz);
    }

    #[test]
    fn open_loop_accounts_for_every_arrival() {
        let server = quick_server(1024);
        let report = run_load(
            &server,
            "binomial",
            LoadMode::Open {
                rate_hz: 5_000.0,
                total: 100,
            },
            11,
            None,
        );
        assert_eq!(report.offered, 100);
        assert_eq!(
            report.served + report.total_shed() + report.rejected_total(),
            report.offered,
            "{report:?}"
        );
        assert_eq!(report.rejected_total(), 0);
        server.shutdown();
    }

    #[test]
    fn window_total_clamps_degenerate_rates_and_windows() {
        // The happy path rounds down and respects the floor.
        assert_eq!(window_total(500.0, 0.2), 100);
        assert_eq!(window_total(10.0, 0.2), 32, "floor at tiny products");
        // Pre-fix, `(rate * window) as usize` at these inputs saturated
        // to usize::MAX (or 0 for NaN), sizing a send-timestamp vector
        // for billions of arrivals before the first request went out.
        // Non-finite products fall to the floor (a config bug, not a
        // measurement); huge-but-finite ones hit the explicit cap.
        assert_eq!(window_total(f64::INFINITY, 0.2), 32);
        assert_eq!(window_total(1e18, 1e18), MAX_WINDOW_TOTAL);
        assert_eq!(window_total(1e9, 1.0), MAX_WINDOW_TOTAL);
        assert_eq!(window_total(f64::NAN, 0.2), 32);
        assert_eq!(window_total(500.0, f64::NAN), 32);
        assert_eq!(window_total(-500.0, 0.2), 32);
        assert_eq!(window_total(500.0, -0.2), 32);
        assert_eq!(window_total(0.0, 0.0), 32);
    }

    #[test]
    fn peak_search_survives_a_non_finite_schedule() {
        // End-to-end regression for the search itself: an infinite
        // window used to blow up sizing the arrival vector before any
        // step ran. Now a non-finite schedule degrades to floor-sized
        // windows and a huge finite one to the cap.
        let run = |window_secs: f64| {
            let cfg = PeakSearchConfig {
                start_hz: 100.0,
                growth: 1.5,
                max_steps: 2,
                window_secs,
                seed: 9,
            };
            let mut totals = Vec::new();
            let report = search_peak(&cfg, |rate_hz, total, _seed| {
                totals.push(total);
                step(rate_hz, total, total)
            });
            assert_eq!(report.steps.len(), 2);
            totals
        };
        assert!(run(f64::INFINITY).iter().all(|&t| t == 32));
        assert!(run(1e18).iter().all(|&t| t == MAX_WINDOW_TOTAL));
    }

    #[test]
    fn hedged_submission_rejects_ids_carrying_the_reserved_bit() {
        let server = quick_server(64);
        let req = PriceRequest::new(HEDGE_BIT | 3, "black_scholes", 20.0, 21.0, 1.0);
        let (mut hedges, mut wins) = (0, 0);
        let resp = one_hedged(
            &server,
            req,
            Some(HedgePolicy {
                delay: Duration::from_millis(1),
            }),
            &mut hedges,
            &mut wins,
        )
        .expect("typed rejection, not a dropped channel");
        assert_eq!(resp.id, HEDGE_BIT | 3, "id echoed unmasked");
        assert!(
            matches!(resp.outcome, Err(Rejected::InvalidInput { ref reason }) if reason.contains("bit 63")),
            "{resp:?}"
        );
        assert_eq!((hedges, wins), (0, 0), "nothing was submitted");
        // Un-hedged submission does not interpret the id: the same
        // request goes through and prices normally.
        let unhedged = one_hedged(
            &server,
            PriceRequest::new(HEDGE_BIT | 3, "black_scholes", 20.0, 21.0, 1.0),
            None,
            &mut hedges,
            &mut wins,
        )
        .expect("response");
        // The winner-dedup path masks bit 63 off even for the un-hedged
        // case (it cannot tell a caller tag from a hedge tag — that is
        // exactly why hedged submission rejects such ids).
        assert!(unhedged.outcome.is_ok(), "{unhedged:?}");
        server.shutdown();
    }

    #[test]
    fn mixed_seeds_do_not_collide_where_additive_seeds_did() {
        // The additive scheme's collision: seed s, index i and seed
        // s+1, index i-1 derived the *same* stream, so neighbouring
        // sweep steps replayed each other's clients shifted by one.
        let (s, i) = (0xBEA7u64, 5u64);
        assert_eq!(s.wrapping_add(i), (s + 1).wrapping_add(i - 1));
        assert_ne!(mix_seed(s, i), mix_seed(s + 1, i - 1));
        // No two derived streams across a whole sweep grid share a seed
        // (64 steps × 64 clients, two-level derivation as closed-loop
        // steps would use it).
        let mut seen = std::collections::HashSet::new();
        for step_idx in 0..64u64 {
            let step_seed = mix_seed(0xBEA7, step_idx);
            for client in 0..64u64 {
                assert!(
                    seen.insert(mix_seed(step_seed, client)),
                    "seed collision at step {step_idx}, client {client}"
                );
            }
        }
        // And the streams themselves diverge immediately.
        let a = OptionStream::new(mix_seed(s, i)).next_option();
        let b = OptionStream::new(mix_seed(s + 1, i - 1)).next_option();
        assert_ne!(a, b);
    }

    #[test]
    fn rejection_reasons_are_reported_separately() {
        let server = quick_server(64);
        // "nope" fails registry resolution; "rng" is registered but has
        // no batch-safe serving rung.
        let unknown = run_load(
            &server,
            "nope",
            LoadMode::Closed {
                clients: 1,
                requests_per_client: 3,
            },
            1,
            None,
        );
        assert_eq!(unknown.rejected_unknown_kernel, 3, "{unknown:?}");
        assert_eq!(unknown.rejected_unservable, 0);
        assert_eq!(unknown.rejected_shutdown, 0);
        assert_eq!(unknown.rejected_total(), 3);
        let unservable = run_load(
            &server,
            "rng",
            LoadMode::Closed {
                clients: 1,
                requests_per_client: 2,
            },
            2,
            None,
        );
        assert_eq!(unservable.rejected_unservable, 2, "{unservable:?}");
        assert_eq!(unservable.rejected_unknown_kernel, 0);
        server.shutdown();
    }
}
