//! The typed request/response surface of the serving plane.
//!
//! A [`PriceRequest`] names a registry kernel and carries one option's
//! scalar parameters plus an optional deadline; the server answers every
//! request with exactly one [`PriceResponse`] — priced or rejected with a
//! typed [`Rejected`] reason. A [`GreeksRequest`] rides the same
//! admission queue and micro-batcher but lands on the greeks lane, which
//! answers with both contract sides' full sensitivity vectors
//! ([`GreeksResponse`]). There are no silent drops anywhere on the path:
//! queue overflow, blown deadlines, and bad kernel names all come back as
//! responses.

use finbench_core::greeks::Greeks;
use std::borrow::Cow;
use std::time::{Duration, Instant};

/// Admission-side domain validation shared by every request type: spot,
/// strike, and expiry must be finite and strictly positive before they
/// are allowed anywhere near a SIMD kernel (NaN/Inf propagate silently
/// through vector math, and the closed forms take `ln(s/x)` and
/// `sqrt(t)`). Returns the typed rejection for the first violation.
fn validate_params(s: f64, x: f64, t: f64) -> Result<(), Rejected> {
    for (name, v) in [("spot", s), ("strike", x), ("expiry", t)] {
        if !v.is_finite() {
            return Err(Rejected::InvalidInput {
                reason: format!("{name} is not finite ({v})").into(),
            });
        }
        if v <= 0.0 {
            return Err(Rejected::InvalidInput {
                reason: format!("{name} must be positive (got {v})").into(),
            });
        }
    }
    Ok(())
}

/// One pricing request: a single option against a named kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceRequest {
    /// Caller-chosen correlation id, echoed back on the response.
    ///
    /// Bit 63 ([`HEDGE_BIT`](crate::loadgen::HEDGE_BIT)) is **reserved**
    /// for the client-side hedging protocol: the hedged load generator
    /// tags duplicate submissions by setting it, and first-response-wins
    /// dedup masks it back off. Hedged submission paths reject ids with
    /// the bit already set ([`Rejected::InvalidInput`]); un-hedged
    /// submission does not interpret the id and accepts any value.
    pub id: u64,
    /// Registry kernel name (e.g. `black_scholes`, `binomial`).
    pub kernel: String,
    /// Spot price of the underlying.
    pub s: f64,
    /// Strike price.
    pub x: f64,
    /// Time to expiry in years.
    pub t: f64,
    /// Absolute latency SLO: if the request has not been *dispatched*
    /// into a batch by this instant, it is shed with
    /// [`Rejected::DeadlineExceeded`] instead of priced late.
    pub deadline: Option<Instant>,
}

impl PriceRequest {
    /// A request with no deadline.
    pub fn new(id: u64, kernel: impl Into<String>, s: f64, x: f64, t: f64) -> Self {
        Self {
            id,
            kernel: kernel.into(),
            s,
            x,
            t,
            deadline: None,
        }
    }

    /// Attach a deadline `slo` from now.
    pub fn with_slo(mut self, slo: Duration) -> Self {
        self.deadline = Some(Instant::now() + slo);
        self
    }

    /// Admission-side domain validation (see [`validate_params`]).
    pub fn validate(&self) -> Result<(), Rejected> {
        validate_params(self.s, self.x, self.t)
    }
}

/// One risk request: all five greeks for both sides of a single option,
/// computed on the analytic greeks lane.
#[derive(Debug, Clone, PartialEq)]
pub struct GreeksRequest {
    /// Caller-chosen correlation id, echoed back on the response.
    pub id: u64,
    /// Spot price of the underlying.
    pub s: f64,
    /// Strike price.
    pub x: f64,
    /// Time to expiry in years.
    pub t: f64,
    /// Absolute latency SLO, enforced exactly like
    /// [`PriceRequest::deadline`].
    pub deadline: Option<Instant>,
}

impl GreeksRequest {
    /// A request with no deadline.
    pub fn new(id: u64, s: f64, x: f64, t: f64) -> Self {
        Self {
            id,
            s,
            x,
            t,
            deadline: None,
        }
    }

    /// Attach a deadline `slo` from now.
    pub fn with_slo(mut self, slo: Duration) -> Self {
        self.deadline = Some(Instant::now() + slo);
        self
    }

    /// Admission-side domain validation (see [`validate_params`]).
    pub fn validate(&self) -> Result<(), Rejected> {
        validate_params(self.s, self.x, self.t)
    }
}

/// One portfolio market-risk request: a whole deterministic book
/// repriced under a shocked scenario grid, aggregated into VaR and
/// expected shortfall.
///
/// The book and grid are pure functions of `(positions, scenarios,
/// seed)` — the request ships parameters, not megabytes of positions,
/// and the server fans the scenario range out across its shards in
/// chunks ([`PortfolioChunkRequest`](crate::portfolio::PortfolioChunkRequest)),
/// merging partial P&L tallies back in scenario order. Split-invariant
/// grid generation and padded lane-wise revaluation make the fan-out
/// bit-invisible: the merged P&L vector is bit-identical to a native
/// single-threaded sweep on the same rung.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioRequest {
    /// Caller-chosen correlation id, echoed back on the response.
    pub id: u64,
    /// Book + grid seed (determinism contract: same `(positions,
    /// scenarios, seed)` → bit-identical P&L).
    pub seed: u64,
    /// Book size in positions.
    pub positions: usize,
    /// Scenario-grid size.
    pub scenarios: usize,
    /// Fan-out chunk size in scenarios; `0` sizes chunks automatically
    /// from the shard count.
    pub chunk: usize,
    /// Confidence levels for the VaR/ES summaries, each in `(0, 1)`.
    pub confidence: Vec<f64>,
    /// Absolute latency SLO shared by every chunk of the fan-out.
    pub deadline: Option<Instant>,
}

/// Ceiling on `positions × scenarios` per request — a misconfigured
/// load generator should get a typed rejection, not a shard pinned on a
/// multi-hour revaluation.
pub const MAX_PORTFOLIO_PRICINGS: usize = 1 << 26;

impl PortfolioRequest {
    /// A request with the default 95%/99% confidence levels, automatic
    /// chunking, and no deadline.
    pub fn new(id: u64, seed: u64, positions: usize, scenarios: usize) -> Self {
        Self {
            id,
            seed,
            positions,
            scenarios,
            chunk: 0,
            confidence: vec![0.95, 0.99],
            deadline: None,
        }
    }

    /// Set an explicit fan-out chunk size (scenarios per chunk).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Replace the confidence levels.
    pub fn with_confidence(mut self, confidence: Vec<f64>) -> Self {
        self.confidence = confidence;
        self
    }

    /// Attach a deadline `slo` from now.
    pub fn with_slo(mut self, slo: Duration) -> Self {
        self.deadline = Some(Instant::now() + slo);
        self
    }

    /// Admission-side domain validation: a non-empty book and grid, a
    /// bounded total pricing count, and confidence levels strictly
    /// inside `(0, 1)`.
    pub fn validate(&self) -> Result<(), Rejected> {
        if self.positions == 0 || self.scenarios == 0 {
            return Err(Rejected::InvalidInput {
                reason: format!(
                    "book and grid must be non-empty (positions {}, scenarios {})",
                    self.positions, self.scenarios
                )
                .into(),
            });
        }
        match self.positions.checked_mul(self.scenarios) {
            Some(total) if total <= MAX_PORTFOLIO_PRICINGS => {}
            _ => {
                return Err(Rejected::InvalidInput {
                    reason: format!(
                        "positions x scenarios exceeds {MAX_PORTFOLIO_PRICINGS} pricings"
                    )
                    .into(),
                })
            }
        }
        if self.confidence.is_empty() {
            return Err(Rejected::InvalidInput {
                reason: "at least one confidence level is required".into(),
            });
        }
        for &c in &self.confidence {
            if !c.is_finite() || c <= 0.0 || c >= 1.0 {
                return Err(Rejected::InvalidInput {
                    reason: format!("confidence must be in (0, 1) (got {c})").into(),
                });
            }
        }
        Ok(())
    }
}

/// A successfully priced request.
#[derive(Debug, Clone, PartialEq)]
pub struct Priced {
    /// Call price.
    pub call: f64,
    /// Put price.
    pub put: f64,
    /// Slug of the ladder rung that priced the batch.
    pub rung: String,
    /// How many requests rode in the same micro-batch (before padding).
    pub batch_len: usize,
    /// Submit-to-scatter-back latency.
    pub latency: Duration,
}

/// Why a request was not priced. Every variant is a *response*, never a
/// silent drop.
///
/// Reason strings are `Cow<'static, str>`: the hot rejection paths
/// (router finding no alive shard, shard-loss redrive exhaustion) carry
/// static messages without allocating, while dynamic reasons (panic
/// payloads, validation details) still own their formatted text.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejected {
    /// The bounded admission queue was full at submit time.
    QueueFull {
        /// The queue's capacity, so callers can size their backoff.
        capacity: usize,
    },
    /// The request's deadline passed before it could be dispatched.
    DeadlineExceeded {
        /// How far past the deadline it was when shed.
        late_by: Duration,
    },
    /// The kernel name failed registry resolution ([`finbench_engine::EngineError`]
    /// rendered through `Display`).
    UnknownKernel {
        /// The full engine error message (names the valid kernels).
        reason: Cow<'static, str>,
    },
    /// The kernel is registered but has no batch-safe serving rung (its
    /// rungs couple requests within a batch, e.g. shared expiry grids).
    Unservable {
        /// The kernel that cannot be served.
        kernel: Cow<'static, str>,
    },
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// A request parameter failed admission-side domain validation
    /// (non-finite or non-positive spot/strike/expiry). Checked before
    /// the request can reach a batch, so invalid inputs never touch the
    /// SIMD kernels.
    InvalidInput {
        /// Which parameter failed and why.
        reason: Cow<'static, str>,
    },
    /// The batch this request rode in failed inside the server — a
    /// kernel panic caught by the lane supervisor, a lane whose circuit
    /// breaker is open, or a killed shard whose stranded work could not
    /// be redriven. The request was *not* priced; retrying is safe.
    Internal {
        /// What failed (panic payload, breaker state, or shard loss).
        reason: Cow<'static, str>,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            Rejected::DeadlineExceeded { late_by } => {
                write!(f, "deadline exceeded by {late_by:?}")
            }
            Rejected::UnknownKernel { reason } => write!(f, "{reason}"),
            Rejected::Unservable { kernel } => {
                write!(f, "kernel {kernel} has no batch-safe serving rung")
            }
            Rejected::ShuttingDown => write!(f, "server is shutting down"),
            Rejected::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            Rejected::Internal { reason } => write!(f, "internal failure: {reason}"),
        }
    }
}

/// The answer to one [`PriceRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct PriceResponse {
    /// The request's id, echoed back.
    pub id: u64,
    /// Priced, or rejected with a typed reason.
    pub outcome: Result<Priced, Rejected>,
}

impl PriceResponse {
    /// True when the request was priced.
    pub fn is_priced(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// A successfully computed [`GreeksRequest`]: both contract sides' full
/// sensitivity vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct GreeksOut {
    /// Call-side greeks.
    pub call: Greeks,
    /// Put-side greeks.
    pub put: Greeks,
    /// Slug of the greeks rung that computed the batch.
    pub rung: String,
    /// How many requests rode in the same micro-batch (before padding).
    pub batch_len: usize,
    /// Submit-to-scatter-back latency.
    pub latency: Duration,
}

/// The answer to one [`GreeksRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct GreeksResponse {
    /// The request's id, echoed back.
    pub id: u64,
    /// Computed, or rejected with a typed reason.
    pub outcome: Result<GreeksOut, Rejected>,
}

impl GreeksResponse {
    /// True when the request was computed.
    pub fn is_computed(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// A successfully computed [`PortfolioRequest`]: the full scenario-order
/// P&L distribution and its risk summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioOut {
    /// Per-scenario P&L in scenario order, merged across chunks —
    /// bit-identical to a native full-grid sweep on the same rung.
    pub pnl: Vec<f64>,
    /// One VaR/ES summary per requested confidence level, in request
    /// order.
    pub risk: Vec<finbench_core::portfolio::RiskSummary>,
    /// Scenario count (echoes the request; `pnl.len()`).
    pub scenarios: usize,
    /// How many chunks the request fanned out into.
    pub chunks: usize,
    /// Distinct ladder-rung slugs the chunks were revalued on (sorted;
    /// more than one means some chunks were served degraded — still
    /// bit-identical, every rung computes the same bits).
    pub rungs: Vec<String>,
    /// Submit-to-merged latency of the whole fan-out.
    pub latency: Duration,
}

/// The answer to one [`PortfolioRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioResponse {
    /// The request's id, echoed back.
    pub id: u64,
    /// Computed, or rejected with a typed reason (the first failing
    /// chunk's rejection — partial results are never surfaced).
    pub outcome: Result<PortfolioOut, Rejected>,
}

impl PortfolioResponse {
    /// True when the request was computed.
    pub fn is_computed(&self) -> bool {
        self.outcome.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_sets_a_future_deadline() {
        let r = PriceRequest::new(7, "black_scholes", 30.0, 35.0, 1.0)
            .with_slo(Duration::from_secs(3600));
        assert!(r.deadline.unwrap() > Instant::now());
        assert_eq!(r.id, 7);
    }

    #[test]
    fn rejections_render_their_reason() {
        let msgs = [
            Rejected::QueueFull { capacity: 8 }.to_string(),
            Rejected::DeadlineExceeded {
                late_by: Duration::from_millis(5),
            }
            .to_string(),
            Rejected::Unservable {
                kernel: "rng".into(),
            }
            .to_string(),
            Rejected::ShuttingDown.to_string(),
            Rejected::InvalidInput {
                reason: "spot is not finite (NaN)".into(),
            }
            .to_string(),
            Rejected::Internal {
                reason: "injected panic".into(),
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("capacity 8"), "{}", msgs[0]);
        assert!(msgs[1].contains("deadline"), "{}", msgs[1]);
        assert!(msgs[2].contains("rng"), "{}", msgs[2]);
        assert!(msgs[3].contains("shutting down"), "{}", msgs[3]);
        assert!(msgs[4].contains("invalid input"), "{}", msgs[4]);
        assert!(msgs[5].contains("internal failure"), "{}", msgs[5]);
    }

    #[test]
    fn validation_accepts_the_paper_domain() {
        assert!(PriceRequest::new(1, "black_scholes", 30.0, 35.0, 1.0)
            .validate()
            .is_ok());
        assert!(PriceRequest::new(1, "black_scholes", 5.0, 1.0, 0.25)
            .validate()
            .is_ok());
    }

    #[test]
    fn greeks_requests_validate_like_price_requests() {
        assert!(GreeksRequest::new(1, 30.0, 35.0, 1.0).validate().is_ok());
        for (s, x, t, needle) in [
            (f64::NAN, 35.0, 1.0, "spot"),
            (30.0, -1.0, 1.0, "strike"),
            (30.0, 35.0, 0.0, "expiry"),
        ] {
            match GreeksRequest::new(1, s, x, t).validate() {
                Err(Rejected::InvalidInput { reason }) => {
                    assert!(reason.contains(needle), "{reason} should name {needle}");
                }
                other => panic!("expected InvalidInput, got {other:?}"),
            }
        }
        let r = GreeksRequest::new(3, 30.0, 35.0, 1.0).with_slo(Duration::from_secs(3600));
        assert!(r.deadline.unwrap() > Instant::now());
    }

    #[test]
    fn portfolio_requests_validate_their_shape() {
        assert!(PortfolioRequest::new(1, 7, 64, 256).validate().is_ok());
        for (req, needle) in [
            (PortfolioRequest::new(1, 7, 0, 256), "non-empty"),
            (PortfolioRequest::new(1, 7, 64, 0), "non-empty"),
            (PortfolioRequest::new(1, 7, 1 << 20, 1 << 20), "exceeds"),
            (
                PortfolioRequest::new(1, 7, usize::MAX, usize::MAX),
                "exceeds",
            ),
            (
                PortfolioRequest::new(1, 7, 64, 256).with_confidence(vec![]),
                "at least one",
            ),
            (
                PortfolioRequest::new(1, 7, 64, 256).with_confidence(vec![1.0]),
                "(0, 1)",
            ),
            (
                PortfolioRequest::new(1, 7, 64, 256).with_confidence(vec![0.95, f64::NAN]),
                "(0, 1)",
            ),
        ] {
            match req.validate() {
                Err(Rejected::InvalidInput { reason }) => {
                    assert!(reason.contains(needle), "{reason} should contain {needle}");
                }
                other => panic!("expected InvalidInput, got {other:?}"),
            }
        }
        let r = PortfolioRequest::new(3, 7, 64, 256)
            .with_chunk(32)
            .with_slo(Duration::from_secs(3600));
        assert_eq!(r.chunk, 32);
        assert!(r.deadline.unwrap() > Instant::now());
    }

    #[test]
    fn validation_rejects_nonfinite_and_nonpositive_parameters() {
        let base = |s, x, t| PriceRequest::new(1, "black_scholes", s, x, t);
        for (req, needle) in [
            (base(f64::NAN, 35.0, 1.0), "spot"),
            (base(30.0, f64::INFINITY, 1.0), "strike"),
            (base(30.0, 35.0, f64::NEG_INFINITY), "expiry"),
            (base(-30.0, 35.0, 1.0), "spot"),
            (base(30.0, 0.0, 1.0), "strike"),
            (base(30.0, 35.0, -0.5), "expiry"),
        ] {
            match req.validate() {
                Err(Rejected::InvalidInput { reason }) => {
                    assert!(reason.contains(needle), "{reason} should name {needle}");
                }
                other => panic!("expected InvalidInput, got {other:?}"),
            }
        }
    }
}
