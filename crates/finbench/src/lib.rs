//! # finbench
//!
//! A Rust reproduction of the SC 2012 financial-analytics benchmark
//! *"Analysis and Optimization of Financial Analytics Benchmark on Modern
//! Multi- and Many-core IA-Based Architectures"* (Smelyanskiy et al.):
//! six derivative-pricing kernels, each implemented at the paper's
//! basic/intermediate/advanced optimization levels, plus the architecture
//! models that regenerate every figure and table.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`math`] — scalar special functions (`exp`, `ln`, `erf`, normal CDF
//!   and its inverse) built from scratch, plus op-counting audit types.
//! * [`simd`] — the `F64vec4`/`F64vec8` vector classes and vectorized
//!   (SVML-style) + batch (VML-style) math.
//! * [`rng`] — MT19937(-64) and Philox4x32 generators, uniform/normal
//!   transforms, independent parallel streams.
//! * [`parallel`] — the chunk-dispenser thread pool.
//! * [`core`] — the kernels: Black-Scholes, binomial tree, Brownian
//!   bridge, Monte Carlo, Crank-Nicolson, and greeks/implied vol.
//! * [`machine`] — SNB-EP/KNC architecture models and the figure
//!   regeneration.
//! * [`engine`] — the unified pricing-engine plane: the `Kernel` trait,
//!   the type-erased registry, the generic measure/validate loops, and
//!   the cost-model-driven rung planner.
//! * [`serve`] — the batched pricing-request plane: typed requests, a
//!   bounded admission queue, dynamic micro-batching onto planner-chosen
//!   rungs, latency SLOs, synthetic load generation, and fault-tolerant
//!   lane supervision (circuit breakers + graceful rung degradation).
//! * [`faults`] — the deterministic fault-injection registry behind the
//!   chaos experiments (`FINBENCH_FAULTS` plans: panics, latency, input
//!   corruption, queue stalls).
//! * [`harness`] — the experiment drivers behind the `finbench` CLI.
//! * [`telemetry`] — zero-dependency spans, counters, and histograms
//!   wired through the pool, RNG, and harness (`FINBENCH_LOG` filter).
//!
//! ## Quickstart
//!
//! ```
//! use finbench::core::black_scholes::price_single;
//! use finbench::core::workload::MarketParams;
//!
//! let market = MarketParams { r: 0.05, sigma: 0.2 };
//! let (call, put) = price_single(100.0, 100.0, 1.0, market);
//! assert!((call - 10.4505835).abs() < 1e-6);
//! assert!((put - 5.5735260).abs() < 1e-6);
//! ```

pub use finbench_core as core;
pub use finbench_engine as engine;
pub use finbench_faults as faults;
pub use finbench_harness as harness;
pub use finbench_machine as machine;
pub use finbench_math as math;
pub use finbench_parallel as parallel;
pub use finbench_rng as rng;
pub use finbench_serve as serve;
pub use finbench_simd as simd;
pub use finbench_telemetry as telemetry;
