//! Argument parsing for the `finbench` binary, split out of `main` so the
//! flag grammar is unit-testable.

use crate::{RunOptions, EXPERIMENTS};

/// A fully parsed command line: which experiments to run and with what
/// options.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// Experiment ids, deduplicated, in first-mention order.
    pub ids: Vec<String>,
    /// Run options threaded through every experiment.
    pub opts: RunOptions,
}

/// What the binary should do, as decided by the arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum CliAction {
    /// Run the given experiments.
    Run(ParsedArgs),
    /// Print the experiment ids and exit.
    List,
    /// Print usage and exit.
    Help,
}

/// One-line usage string (the error path points people here).
pub fn usage_line() -> String {
    format!(
        "usage: finbench [EXPERIMENT ...] [--quick] [--only KERNEL[,KERNEL...]] [--csv DIR] [--json FILE] [--report] [--list]\n\
         experiments: {} | all\n\
         kernels: {}",
        EXPERIMENTS.join(" | "),
        crate::native::kernel_names().join(" | ")
    )
}

/// Parse a `--only` operand: comma-separated registry kernel names,
/// deduplicated, validated against the engine registry.
fn parse_only(operand: &str) -> Result<Vec<String>, String> {
    let known = crate::native::kernel_names();
    let mut out: Vec<String> = Vec::new();
    for name in operand.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return Err("--only requires a comma-separated list of kernel names".into());
        }
        if !known.contains(&name) {
            return Err(format!(
                "unknown kernel in --only: {name} (kernels: {})",
                known.join(", ")
            ));
        }
        if !out.iter().any(|n| n == name) {
            out.push(name.to_string());
        }
    }
    Ok(out)
}

/// Parse the argument list (without the program name).
///
/// Rules:
/// - `--help`/`-h` and `--list` short-circuit to [`CliAction::Help`] /
///   [`CliAction::List`] regardless of other arguments.
/// - `all` expands to every experiment id in paper order.
/// - Duplicate ids are dropped, keeping the first mention's position.
/// - Unknown flags and unknown experiment ids are errors, as is an empty
///   experiment list.
pub fn parse_args<I, S>(args: I) -> Result<CliAction, String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut opts = RunOptions::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = args.into_iter().map(Into::into);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => opts.quick = true,
            "--csv" => match args.next() {
                Some(dir) => opts.csv_dir = Some(dir),
                None => return Err("--csv requires a directory argument".into()),
            },
            "--json" => match args.next() {
                Some(file) => opts.json = Some(file),
                None => return Err("--json requires a file argument".into()),
            },
            "--only" => match args.next() {
                Some(list) => opts.only = Some(parse_only(&list)?),
                None => return Err("--only requires a kernel list argument".into()),
            },
            "--report" => opts.report = true,
            "--list" => return Ok(CliAction::List),
            "--help" | "-h" => return Ok(CliAction::Help),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag: {other}"));
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return Err("no experiments given".into());
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    } else {
        for id in &ids {
            if !EXPERIMENTS.contains(&id.as_str()) {
                return Err(format!("unknown experiment: {id}"));
            }
        }
    }
    // Dedupe preserving first-mention order, so `finbench fig4 fig5 fig4`
    // runs fig4 once.
    let mut seen = std::collections::HashSet::new();
    ids.retain(|id| seen.insert(id.clone()));
    Ok(CliAction::Run(ParsedArgs { ids, opts }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> ParsedArgs {
        match parse_args(args.iter().copied()).unwrap() {
            CliAction::Run(p) => p,
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn parses_ids_and_flags() {
        let p = run(&["fig4", "--quick", "table2", "--csv", "out"]);
        assert_eq!(p.ids, ["fig4", "table2"]);
        assert!(p.opts.quick);
        assert_eq!(p.opts.csv_dir.as_deref(), Some("out"));
        assert_eq!(p.opts.json, None);
        assert!(!p.opts.report);
    }

    #[test]
    fn json_and_report_flags() {
        let p = run(&["native", "--json", "out.jsonl", "--report"]);
        assert_eq!(p.opts.json.as_deref(), Some("out.jsonl"));
        assert!(p.opts.report);
    }

    #[test]
    fn dedupes_preserving_first_mention_order() {
        let p = run(&["fig5", "fig4", "fig5", "fig4", "fig5"]);
        assert_eq!(p.ids, ["fig5", "fig4"]);
    }

    #[test]
    fn all_expands_in_paper_order() {
        let p = run(&["all", "--quick"]);
        assert_eq!(p.ids, EXPERIMENTS);
    }

    #[test]
    fn list_and_help_short_circuit() {
        assert_eq!(parse_args(["--list"]), Ok(CliAction::List));
        assert_eq!(parse_args(["--help"]), Ok(CliAction::Help));
        assert_eq!(parse_args(["-h"]), Ok(CliAction::Help));
        // Even with other junk present.
        assert_eq!(parse_args(["bogus", "--list"]), Ok(CliAction::List));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(["--csv"]).is_err());
        assert!(parse_args(["--json"]).is_err());
        assert!(parse_args(["--frobnicate"]).is_err());
        assert!(parse_args(["nosuch"]).is_err());
        assert!(parse_args(Vec::<String>::new()).is_err());
    }

    #[test]
    fn audit_is_a_known_experiment() {
        let p = run(&["audit"]);
        assert_eq!(p.ids, ["audit"]);
    }

    #[test]
    fn only_parses_a_single_kernel() {
        let p = run(&["native", "--only", "rng"]);
        assert_eq!(p.opts.only, Some(vec!["rng".to_string()]));
    }

    #[test]
    fn only_parses_a_comma_list_deduplicated() {
        let p = run(&["native", "--only", "black_scholes,rng,black_scholes"]);
        assert_eq!(
            p.opts.only,
            Some(vec!["black_scholes".to_string(), "rng".to_string()])
        );
    }

    #[test]
    fn only_rejects_unknown_kernels() {
        // main() turns this Err into exit code 2 — the same path as every
        // other parse error.
        let err = parse_args(["native", "--only", "black_sholes"]).unwrap_err();
        assert!(err.contains("unknown kernel"), "{err}");
        assert!(parse_args(["native", "--only"]).is_err());
        assert!(parse_args(["native", "--only", ""]).is_err());
        assert!(parse_args(["native", "--only", "rng,,"]).is_err());
    }
}
