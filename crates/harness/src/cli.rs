//! Argument parsing for the `finbench` binary, split out of `main` so the
//! flag grammar is unit-testable.
//!
//! The grammar is subcommand-first:
//!
//! ```text
//! finbench run [EXPERIMENT ...] [FLAGS]   # run experiments
//! finbench list                           # print experiment ids
//! finbench serve-bench [FLAGS]            # serving-plane load benchmark
//! ```
//!
//! The original flat forms (`finbench [EXPERIMENT ...]`, `--list`) still
//! parse as deprecated aliases for `run` / `list`, so existing scripts
//! keep working.

use crate::report::{BenchCompareArgs, BenchReportOptions, CompareMode, DEFAULT_THRESHOLD_PCT};
use crate::{RunOptions, EXPERIMENTS};

/// A fully parsed command line: which experiments to run and with what
/// options.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// Experiment ids, deduplicated, in first-mention order.
    pub ids: Vec<String>,
    /// Run options threaded through every experiment.
    pub opts: RunOptions,
}

/// What the binary should do, as decided by the arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum CliAction {
    /// Run the given experiments.
    Run(ParsedArgs),
    /// Print the experiment ids and exit.
    List,
    /// Print usage and exit.
    Help,
    /// Run the full bench sweep and write a `BENCH_<n>.json` snapshot.
    BenchReport(BenchReportOptions),
    /// Compare two snapshots (or self-test the gate on one).
    BenchCompare(BenchCompareArgs),
    /// Render the gated-metric trajectory across every committed
    /// `BENCH_<n>.json` in a directory.
    BenchTrend {
        /// Directory holding the `BENCH_<n>.json` snapshots.
        dir: String,
    },
}

/// Multi-line usage string (the error path points people here).
pub fn usage_line() -> String {
    format!(
        "usage: finbench <COMMAND> [FLAGS]\n\
         \x20 finbench run [EXPERIMENT ...]  run experiments (`all` = every one)\n\
         \x20 finbench list                  print experiment ids\n\
         \x20 finbench serve-bench           serving-plane load benchmark (alias for `run serve_bench`)\n\
         \x20 finbench chaos-bench           fault-injection chaos benchmark (alias for `run chaos_bench`)\n\
         \x20 finbench greeks-bench          greeks/risk workload benchmark (alias for `run greeks_bench`)\n\
         \x20 finbench portfolio-bench       portfolio market-risk benchmark (alias for `run portfolio_bench`)\n\
         \x20 finbench bench-report [--quick] [--trials N] [--out FILE]\n\
         \x20     run every kernel ladder + serve/greeks sweep, write BENCH_<n>.json\n\
         \x20 finbench bench-compare OLD.json NEW.json [--threshold PCT]\n\
         \x20 finbench bench-compare --self-test SNAP.json [--threshold PCT]\n\
         \x20     delta table between two snapshots; exit 1 on gated regressions\n\
         \x20 finbench bench-trend [DIR]\n\
         \x20     gated-metric trajectory across every BENCH_<n>.json in DIR (default .)\n\
         flags: [--quick] [--only KERNEL[,KERNEL...]] [--shards N] [--csv DIR] [--json FILE] [--report]\n\
         note: the flat forms `finbench [EXPERIMENT ...]` and `--list` are deprecated\n\
         \x20     aliases for `run` / `list`; prefer the subcommands.\n\
         experiments: {} | all\n\
         kernels: {}",
        EXPERIMENTS.join(" | "),
        crate::native::kernel_names().join(" | ")
    )
}

/// Parse a `--only` operand: comma-separated registry kernel names,
/// deduplicated and validated by the engine registry (the same helper the
/// serving plane uses to admit requests).
fn parse_only(operand: &str) -> Result<Vec<String>, String> {
    crate::native::engine()
        .registry()
        .parse_kernel_list(operand)
        .map_err(|e| format!("--only: {e}"))
}

/// Flags and positional operands collected from one token stream, before
/// any per-subcommand validation.
enum Collected {
    /// `--help` / `--list` short-circuit regardless of other arguments.
    Short(CliAction),
    /// Positional operands (in order) plus the parsed flags.
    Items(Vec<String>, RunOptions),
}

fn collect(args: &[String]) -> Result<Collected, String> {
    let mut opts = RunOptions::default();
    let mut operands: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "-q" => opts.quick = true,
            "--csv" => match it.next() {
                Some(dir) => opts.csv_dir = Some(dir.clone()),
                None => return Err("--csv requires a directory argument".into()),
            },
            "--json" => match it.next() {
                Some(file) => opts.json = Some(file.clone()),
                None => return Err("--json requires a file argument".into()),
            },
            "--only" => match it.next() {
                Some(list) => opts.only = Some(parse_only(list)?),
                None => return Err("--only requires a kernel list argument".into()),
            },
            "--shards" => match it.next().map(|s| s.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.shards = Some(n),
                Some(_) => return Err("--shards requires a positive integer".into()),
                None => return Err("--shards requires a count argument".into()),
            },
            "--report" => opts.report = true,
            "--list" => return Ok(Collected::Short(CliAction::List)),
            "--help" | "-h" => return Ok(Collected::Short(CliAction::Help)),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag: {other}"));
            }
            other => operands.push(other.to_string()),
        }
    }
    Ok(Collected::Items(operands, opts))
}

/// Validate experiment operands: non-empty, `all` expands in paper order,
/// unknown ids are errors, duplicates keep the first mention's position.
fn validate_ids(mut ids: Vec<String>) -> Result<Vec<String>, String> {
    if ids.is_empty() {
        return Err("no experiments given".into());
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    } else {
        for id in &ids {
            if !EXPERIMENTS.contains(&id.as_str()) {
                return Err(format!("unknown experiment: {id}"));
            }
        }
    }
    // Dedupe preserving first-mention order, so `finbench run fig4 fig5
    // fig4` runs fig4 once.
    let mut seen = std::collections::HashSet::new();
    ids.retain(|id| seen.insert(id.clone()));
    Ok(ids)
}

/// Parse the argument list (without the program name).
///
/// Rules:
/// - The first token selects a subcommand (`run`, `list`, `serve-bench`);
///   anything else falls back to the deprecated flat grammar, which is
///   `run` without the keyword.
/// - `--help`/`-h` and `--list` short-circuit to [`CliAction::Help`] /
///   [`CliAction::List`] regardless of other arguments.
/// - `all` expands to every experiment id in paper order.
/// - Duplicate ids are dropped, keeping the first mention's position.
/// - Unknown flags and unknown experiment ids are errors, as is an empty
///   experiment list.
pub fn parse_args<I, S>(args: I) -> Result<CliAction, String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args: Vec<String> = args.into_iter().map(Into::into).collect();
    match args.first().map(String::as_str) {
        Some("run") => parse_run(&args[1..]),
        Some("list") => {
            if args.len() > 1 {
                Err(format!(
                    "list takes no arguments (got: {})",
                    args[1..].join(" ")
                ))
            } else {
                Ok(CliAction::List)
            }
        }
        Some("serve-bench") => parse_experiment_alias("serve-bench", "serve_bench", &args[1..]),
        Some("chaos-bench") => parse_experiment_alias("chaos-bench", "chaos_bench", &args[1..]),
        Some("greeks-bench") => parse_experiment_alias("greeks-bench", "greeks_bench", &args[1..]),
        Some("portfolio-bench") => {
            parse_experiment_alias("portfolio-bench", "portfolio_bench", &args[1..])
        }
        Some("bench-report") => parse_bench_report(&args[1..]),
        Some("bench-compare") => parse_bench_compare(&args[1..]),
        Some("bench-trend") => parse_bench_trend(&args[1..]),
        // Deprecated flat grammar: `finbench [EXPERIMENT ...] [FLAGS]`.
        _ => parse_run(&args),
    }
}

/// Shared grammar of the `serve-bench`/`chaos-bench` subcommands: flags
/// only, mapping to a single fixed experiment id.
fn parse_experiment_alias(sub: &str, id: &str, args: &[String]) -> Result<CliAction, String> {
    match collect(args)? {
        Collected::Short(a) => Ok(a),
        Collected::Items(operands, opts) => {
            if let Some(extra) = operands.first() {
                return Err(format!("{sub} takes no experiment operands (got: {extra})"));
            }
            Ok(CliAction::Run(ParsedArgs {
                ids: vec![id.to_string()],
                opts,
            }))
        }
    }
}

/// `bench-report [--quick] [--trials N] [--out FILE]` — its flag set is
/// disjoint from the experiment flags, so it has its own tiny loop.
fn parse_bench_report(args: &[String]) -> Result<CliAction, String> {
    let mut opts = BenchReportOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "-q" => opts.quick = true,
            "--trials" => match it.next().map(|s| s.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.trials = n,
                Some(_) => return Err("--trials requires a positive integer".into()),
                None => return Err("--trials requires a count argument".into()),
            },
            "--out" => match it.next() {
                Some(f) => opts.out = Some(f.clone()),
                None => return Err("--out requires a file argument".into()),
            },
            "--help" | "-h" => return Ok(CliAction::Help),
            other => return Err(format!("bench-report: unexpected argument: {other}")),
        }
    }
    Ok(CliAction::BenchReport(opts))
}

/// `bench-compare OLD NEW [--threshold PCT]` or
/// `bench-compare --self-test SNAP [--threshold PCT]`.
fn parse_bench_compare(args: &[String]) -> Result<CliAction, String> {
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    let mut self_test = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().map(|s| s.parse::<f64>()) {
                Some(Ok(t)) if t.is_finite() && t >= 0.0 => threshold_pct = t,
                Some(_) => return Err("--threshold requires a non-negative percent".into()),
                None => return Err("--threshold requires a percent argument".into()),
            },
            "--self-test" => self_test = true,
            "--help" | "-h" => return Ok(CliAction::Help),
            other if other.starts_with('-') => {
                return Err(format!("bench-compare: unknown flag: {other}"));
            }
            other => files.push(other.to_string()),
        }
    }
    let mode = match (self_test, files.as_slice()) {
        (true, [snap]) => CompareMode::SelfTest {
            snapshot: snap.clone(),
        },
        (false, [old, new]) => CompareMode::Files {
            old: old.clone(),
            new: new.clone(),
        },
        (true, _) => return Err("bench-compare --self-test takes exactly one snapshot file".into()),
        (false, _) => return Err("bench-compare takes exactly two snapshot files".into()),
    };
    Ok(CliAction::BenchCompare(BenchCompareArgs {
        mode,
        threshold_pct,
    }))
}

/// `bench-trend [DIR]` — one optional directory operand (default `.`).
fn parse_bench_trend(args: &[String]) -> Result<CliAction, String> {
    let mut dir: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => return Ok(CliAction::Help),
            other if other.starts_with('-') => {
                return Err(format!("bench-trend: unknown flag: {other}"));
            }
            other => {
                if dir.is_some() {
                    return Err("bench-trend takes at most one directory operand".into());
                }
                dir = Some(other.to_string());
            }
        }
    }
    Ok(CliAction::BenchTrend {
        dir: dir.unwrap_or_else(|| ".".to_string()),
    })
}

fn parse_run(args: &[String]) -> Result<CliAction, String> {
    match collect(args)? {
        Collected::Short(a) => Ok(a),
        Collected::Items(ids, opts) => Ok(CliAction::Run(ParsedArgs {
            ids: validate_ids(ids)?,
            opts,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> ParsedArgs {
        match parse_args(args.iter().copied()).unwrap() {
            CliAction::Run(p) => p,
            other => panic!("expected Run, got {other:?}"),
        }
    }

    // ---- subcommand grammar ----

    #[test]
    fn run_subcommand_parses_ids_and_flags() {
        let p = run(&["run", "fig4", "--quick", "table2", "--csv", "out"]);
        assert_eq!(p.ids, ["fig4", "table2"]);
        assert!(p.opts.quick);
        assert_eq!(p.opts.csv_dir.as_deref(), Some("out"));
    }

    #[test]
    fn run_subcommand_expands_all_and_dedupes() {
        assert_eq!(run(&["run", "all"]).ids, EXPERIMENTS);
        assert_eq!(run(&["run", "fig5", "fig4", "fig5"]).ids, ["fig5", "fig4"]);
    }

    #[test]
    fn run_subcommand_rejects_bad_input() {
        assert!(parse_args(["run"]).is_err());
        assert!(parse_args(["run", "nosuch"]).is_err());
        assert!(parse_args(["run", "--frobnicate"]).is_err());
    }

    #[test]
    fn list_subcommand() {
        assert_eq!(parse_args(["list"]), Ok(CliAction::List));
        assert!(parse_args(["list", "fig4"]).is_err());
    }

    #[test]
    fn serve_bench_subcommand_maps_to_the_serve_bench_experiment() {
        let p = run(&["serve-bench", "--quick"]);
        assert_eq!(p.ids, ["serve_bench"]);
        assert!(p.opts.quick);
        // It takes flags, not experiment operands.
        assert!(parse_args(["serve-bench", "fig4"]).is_err());
    }

    #[test]
    fn chaos_bench_subcommand_maps_to_the_chaos_bench_experiment() {
        let p = run(&["chaos-bench", "--quick"]);
        assert_eq!(p.ids, ["chaos_bench"]);
        assert!(p.opts.quick);
        assert!(parse_args(["chaos-bench", "fig4"]).is_err());
        // Also reachable through the plain run grammar.
        assert_eq!(run(&["run", "chaos_bench"]).ids, ["chaos_bench"]);
    }

    #[test]
    fn greeks_bench_subcommand_maps_to_the_greeks_bench_experiment() {
        let p = run(&["greeks-bench", "--quick"]);
        assert_eq!(p.ids, ["greeks_bench"]);
        assert!(p.opts.quick);
        assert!(parse_args(["greeks-bench", "fig4"]).is_err());
        // Also reachable through the plain run grammar.
        assert_eq!(run(&["run", "greeks_bench"]).ids, ["greeks_bench"]);
    }

    #[test]
    fn portfolio_bench_subcommand_maps_to_the_portfolio_bench_experiment() {
        let p = run(&["portfolio-bench", "--quick"]);
        assert_eq!(p.ids, ["portfolio_bench"]);
        assert!(p.opts.quick);
        assert!(parse_args(["portfolio-bench", "fig4"]).is_err());
        // Also reachable through the plain run grammar.
        assert_eq!(run(&["run", "portfolio_bench"]).ids, ["portfolio_bench"]);
    }

    #[test]
    fn serve_bench_accepts_only_and_json() {
        let p = run(&["serve-bench", "--only", "rng", "--json", "t.jsonl"]);
        assert_eq!(p.ids, ["serve_bench"]);
        assert_eq!(p.opts.only, Some(vec!["rng".to_string()]));
        assert_eq!(p.opts.json.as_deref(), Some("t.jsonl"));
    }

    // ---- bench-report / bench-compare ----

    #[test]
    fn bench_report_parses_flags() {
        let a = parse_args([
            "bench-report",
            "--quick",
            "--trials",
            "2",
            "--out",
            "b.json",
        ]);
        assert_eq!(
            a,
            Ok(CliAction::BenchReport(BenchReportOptions {
                quick: true,
                trials: 2,
                out: Some("b.json".into()),
            }))
        );
        // Defaults: full mode, auto trials, auto-numbered output path.
        assert_eq!(
            parse_args(["bench-report"]),
            Ok(CliAction::BenchReport(BenchReportOptions::default()))
        );
    }

    #[test]
    fn bench_report_rejects_bad_input() {
        assert!(parse_args(["bench-report", "fig4"]).is_err());
        assert!(parse_args(["bench-report", "--trials"]).is_err());
        assert!(parse_args(["bench-report", "--trials", "0"]).is_err());
        assert!(parse_args(["bench-report", "--trials", "many"]).is_err());
        assert!(parse_args(["bench-report", "--out"]).is_err());
    }

    #[test]
    fn bench_compare_parses_two_files_and_threshold() {
        let a = parse_args(["bench-compare", "old.json", "new.json", "--threshold", "5"]);
        assert_eq!(
            a,
            Ok(CliAction::BenchCompare(BenchCompareArgs {
                mode: CompareMode::Files {
                    old: "old.json".into(),
                    new: "new.json".into(),
                },
                threshold_pct: 5.0,
            }))
        );
    }

    #[test]
    fn bench_compare_self_test_takes_one_file() {
        let a = parse_args(["bench-compare", "--self-test", "snap.json"]);
        assert_eq!(
            a,
            Ok(CliAction::BenchCompare(BenchCompareArgs {
                mode: CompareMode::SelfTest {
                    snapshot: "snap.json".into(),
                },
                threshold_pct: DEFAULT_THRESHOLD_PCT,
            }))
        );
        assert!(parse_args(["bench-compare", "--self-test"]).is_err());
        assert!(parse_args(["bench-compare", "--self-test", "a.json", "b.json"]).is_err());
    }

    #[test]
    fn bench_compare_rejects_bad_input() {
        assert!(parse_args(["bench-compare"]).is_err());
        assert!(parse_args(["bench-compare", "only_one.json"]).is_err());
        assert!(parse_args(["bench-compare", "a.json", "b.json", "c.json"]).is_err());
        assert!(parse_args(["bench-compare", "a.json", "b.json", "--threshold"]).is_err());
        assert!(parse_args(["bench-compare", "a.json", "b.json", "--threshold", "-3"]).is_err());
        assert!(parse_args(["bench-compare", "a.json", "b.json", "--frob"]).is_err());
    }

    #[test]
    fn usage_mentions_the_bench_subcommands() {
        let u = usage_line();
        assert!(u.contains("bench-report"), "{u}");
        assert!(u.contains("bench-compare"), "{u}");
        assert!(u.contains("bench-trend"), "{u}");
        assert!(u.contains("--shards"), "{u}");
    }

    #[test]
    fn bench_trend_takes_an_optional_directory() {
        assert_eq!(
            parse_args(["bench-trend"]),
            Ok(CliAction::BenchTrend { dir: ".".into() })
        );
        assert_eq!(
            parse_args(["bench-trend", "snaps"]),
            Ok(CliAction::BenchTrend {
                dir: "snaps".into()
            })
        );
        assert!(parse_args(["bench-trend", "a", "b"]).is_err());
        assert!(parse_args(["bench-trend", "--frob"]).is_err());
        assert_eq!(parse_args(["bench-trend", "-h"]), Ok(CliAction::Help));
    }

    #[test]
    fn shards_flag_parses_on_serve_bench() {
        let p = run(&["serve-bench", "--shards", "4"]);
        assert_eq!(p.ids, ["serve_bench"]);
        assert_eq!(p.opts.shards, Some(4));
        // Default: mode decides the sweep top.
        assert_eq!(run(&["serve-bench"]).opts.shards, None);
        assert!(parse_args(["serve-bench", "--shards"]).is_err());
        assert!(parse_args(["serve-bench", "--shards", "0"]).is_err());
        assert!(parse_args(["serve-bench", "--shards", "lots"]).is_err());
    }

    // ---- deprecated flat grammar (aliases for `run` / `list`) ----

    #[test]
    fn legacy_parses_ids_and_flags() {
        let p = run(&["fig4", "--quick", "table2", "--csv", "out"]);
        assert_eq!(p.ids, ["fig4", "table2"]);
        assert!(p.opts.quick);
        assert_eq!(p.opts.csv_dir.as_deref(), Some("out"));
        assert_eq!(p.opts.json, None);
        assert!(!p.opts.report);
    }

    #[test]
    fn legacy_and_subcommand_forms_agree() {
        for tail in [
            vec!["fig4", "--quick"],
            vec!["all"],
            vec!["native", "--only", "rng", "--report"],
        ] {
            let mut sub = vec!["run"];
            sub.extend(&tail);
            assert_eq!(run(&sub), run(&tail), "{tail:?}");
        }
    }

    #[test]
    fn json_and_report_flags() {
        let p = run(&["native", "--json", "out.jsonl", "--report"]);
        assert_eq!(p.opts.json.as_deref(), Some("out.jsonl"));
        assert!(p.opts.report);
    }

    #[test]
    fn dedupes_preserving_first_mention_order() {
        let p = run(&["fig5", "fig4", "fig5", "fig4", "fig5"]);
        assert_eq!(p.ids, ["fig5", "fig4"]);
    }

    #[test]
    fn all_expands_in_paper_order() {
        let p = run(&["all", "--quick"]);
        assert_eq!(p.ids, EXPERIMENTS);
    }

    #[test]
    fn list_and_help_short_circuit() {
        assert_eq!(parse_args(["--list"]), Ok(CliAction::List));
        assert_eq!(parse_args(["--help"]), Ok(CliAction::Help));
        assert_eq!(parse_args(["-h"]), Ok(CliAction::Help));
        // Even with other junk present, and under the subcommands too.
        assert_eq!(parse_args(["bogus", "--list"]), Ok(CliAction::List));
        assert_eq!(parse_args(["run", "--help"]), Ok(CliAction::Help));
        assert_eq!(parse_args(["serve-bench", "-h"]), Ok(CliAction::Help));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(["--csv"]).is_err());
        assert!(parse_args(["--json"]).is_err());
        assert!(parse_args(["--frobnicate"]).is_err());
        assert!(parse_args(["nosuch"]).is_err());
        assert!(parse_args(Vec::<String>::new()).is_err());
    }

    #[test]
    fn audit_is_a_known_experiment() {
        let p = run(&["audit"]);
        assert_eq!(p.ids, ["audit"]);
    }

    #[test]
    fn usage_mentions_the_deprecation() {
        let u = usage_line();
        assert!(u.contains("deprecated"), "{u}");
        assert!(u.contains("serve-bench"), "{u}");
    }

    // ---- --only, validated by the engine registry ----

    #[test]
    fn only_parses_a_single_kernel() {
        let p = run(&["native", "--only", "rng"]);
        assert_eq!(p.opts.only, Some(vec!["rng".to_string()]));
    }

    #[test]
    fn only_parses_a_comma_list_deduplicated() {
        let p = run(&["native", "--only", "black_scholes,rng,black_scholes"]);
        assert_eq!(
            p.opts.only,
            Some(vec!["black_scholes".to_string(), "rng".to_string()])
        );
    }

    #[test]
    fn only_rejects_unknown_kernels() {
        // main() turns this Err into exit code 2 — the same path as every
        // other parse error.
        let err = parse_args(["native", "--only", "black_sholes"]).unwrap_err();
        assert!(err.contains("unknown kernel"), "{err}");
        assert!(parse_args(["native", "--only"]).is_err());
        assert!(parse_args(["native", "--only", ""]).is_err());
        assert!(parse_args(["native", "--only", "rng,,"]).is_err());
    }
}
