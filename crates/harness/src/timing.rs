//! Wall-clock throughput measurement for the native runs.

use std::time::Instant;

/// Measure `items/second` for `body`, which processes `items` work units
/// per call. The body is repeated until at least `min_secs` of wall time
/// accumulates (with one untimed warmup call), and the best per-call rate
/// is reported — the usual defense against scheduler noise on a shared
/// host.
pub fn throughput(items: usize, min_secs: f64, mut body: impl FnMut()) -> f64 {
    body(); // warmup
    let mut best = 0.0f64;
    let mut spent = 0.0;
    let mut reps = 0u32;
    while spent < min_secs || reps < 2 {
        let t0 = Instant::now();
        body();
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        best = best.max(items as f64 / dt);
        spent += dt;
        reps += 1;
        if reps > 1000 {
            break;
        }
    }
    best
}

/// Measure a one-shot duration in seconds.
pub fn time_once(body: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    body();
    t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_positive_and_sane() {
        let mut acc = 0u64;
        let rate = throughput(1000, 0.01, || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
        });
        assert!(rate > 0.0);
        std::hint::black_box(acc);
    }

    #[test]
    fn time_once_measures_something() {
        let t = time_once(|| std::thread::sleep(std::time::Duration::from_millis(5)));
        assert!(t >= 0.004, "{t}");
    }

    #[test]
    fn throughput_runs_at_least_twice() {
        let mut count = 0;
        throughput(1, 0.0, || count += 1);
        assert!(count >= 3); // warmup + >= 2 timed
    }
}
