//! # finbench-harness
//!
//! The experiment driver: one experiment per table/figure of the paper,
//! each rendering (a) the machine-model regeneration of the paper's bars
//! and (b) native measurements of this crate's real Rust kernels on the
//! build host.
//!
//! Run via the `finbench` binary:
//!
//! ```text
//! finbench all            # every experiment
//! finbench fig4 fig5      # specific artifacts
//! finbench table2 --quick # reduced native workload sizes
//! finbench native         # native kernel ladders only
//! finbench --csv out/     # also write CSV series
//! ```

pub mod experiments;
pub mod native;
pub mod render;
pub mod timing;

/// Global run options.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Shrink native workloads (CI-friendly).
    pub quick: bool,
    /// Directory for CSV exports (none = skip).
    pub csv_dir: Option<String>,
}

/// All experiment ids, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "table1", "fig4", "fig5", "fig6", "table2", "fig8", "ninja", "qmc", "native",
];

/// Run one experiment by id; returns false for an unknown id.
pub fn run_experiment(id: &str, opts: &RunOptions) -> bool {
    match id {
        "table1" => experiments::table1(opts),
        "fig4" => experiments::fig4(opts),
        "fig5" => experiments::fig5(opts),
        "fig6" => experiments::fig6(opts),
        "table2" => experiments::table2(opts),
        "fig8" => experiments::fig8(opts),
        "ninja" => experiments::ninja(opts),
        "qmc" => experiments::qmc(opts),
        "native" => experiments::native_all(opts),
        _ => return false,
    }
    true
}
