//! # finbench-harness
//!
//! The experiment driver: one experiment per table/figure of the paper,
//! each rendering (a) the machine-model regeneration of the paper's bars
//! and (b) native measurements of this crate's real Rust kernels on the
//! build host.
//!
//! Run via the `finbench` binary:
//!
//! ```text
//! finbench all                # every experiment
//! finbench fig4 fig5          # specific artifacts
//! finbench table2 --quick     # reduced native workload sizes
//! finbench native             # native kernel ladders only
//! finbench native --only rng  # just some kernels' ladders
//! finbench audit              # dynamic op-count audit (paper Table III)
//! finbench --csv out/         # also write CSV series
//! finbench --json t.jsonl     # export the telemetry trace as JSON lines
//! finbench --report           # print the telemetry span tree after the run
//! ```
//!
//! Every experiment runs inside a telemetry span (`experiment.<id>`), and
//! the native ladders open one child span per rung carrying the per-rep
//! throughput distribution — see `finbench_telemetry` and the `--json` /
//! `--report` flags. The native ladders themselves are driven by the
//! engine plane (`finbench_engine`): the kernel registry lives in
//! `finbench_core::engine`, and this crate contains no per-kernel rung
//! drivers.

pub mod cli;
pub mod experiments;
pub mod native;
pub mod render;
pub mod report;

use finbench_telemetry as telemetry;

/// Every harness process (the `finbench` binary and this crate's tests)
/// allocates through the counting allocator, so `bench-report` can put
/// allocations-per-batch numbers in the snapshot. The counters are two
/// relaxed atomics per call — noise next to a real `malloc`.
#[global_allocator]
static COUNTING_ALLOC: telemetry::CountingAlloc = telemetry::CountingAlloc;

/// Global run options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOptions {
    /// Shrink native workloads (CI-friendly).
    pub quick: bool,
    /// Directory for CSV exports (none = skip).
    pub csv_dir: Option<String>,
    /// File for the JSON-lines telemetry export (none = skip).
    pub json: Option<String>,
    /// Print the telemetry span tree after the run.
    pub report: bool,
    /// Restrict `native` to these registry kernels (none = all).
    pub only: Option<Vec<String>>,
    /// Top of the serving-plane shard sweep (`serve_bench`): shard counts
    /// double 1, 2, … up to this value (none = mode default).
    pub shards: Option<usize>,
}

/// All experiment ids, in paper order (plus the op-count audit).
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig4",
    "fig5",
    "fig6",
    "table2",
    "fig8",
    "ninja",
    "qmc",
    "audit",
    "native",
    "serve_bench",
    "chaos_bench",
    "greeks_bench",
    "portfolio_bench",
];

/// Run one experiment by id; returns false for an unknown id.
///
/// Each run is wrapped in a telemetry span named `experiment.<id>`, so
/// ladder rungs executed inside nest under it in `--report` / `--json`
/// output.
pub fn run_experiment(id: &str, opts: &RunOptions) -> bool {
    if !EXPERIMENTS.contains(&id) {
        return false;
    }
    let _g = telemetry::span(format!("experiment.{id}"));
    match id {
        "table1" => experiments::table1(opts),
        "fig4" => experiments::fig4(opts),
        "fig5" => experiments::fig5(opts),
        "fig6" => experiments::fig6(opts),
        "table2" => experiments::table2(opts),
        "fig8" => experiments::fig8(opts),
        "ninja" => experiments::ninja(opts),
        "qmc" => experiments::qmc(opts),
        "audit" => experiments::audit(opts),
        "native" => experiments::native_all(opts),
        "serve_bench" => experiments::serve_bench(opts),
        "chaos_bench" => experiments::chaos_bench(opts),
        "greeks_bench" => experiments::greeks_bench(opts),
        "portfolio_bench" => experiments::portfolio_bench(opts),
        _ => unreachable!("id validated against EXPERIMENTS"),
    }
    true
}
