//! One experiment per paper artifact: modeled SNB-EP/KNC bars plus native
//! host measurements.

use crate::native;
use crate::render::{bar_chart, fmt_num, maybe_write_csv, section, table, to_csv};
use crate::RunOptions;
use finbench_machine::{figures, KNC, SNB_EP};

fn print_figure(fig: &figures::FigureSeries, opts: &RunOptions) {
    println!(
        "{}",
        section(&format!("{} — {} [{}]", fig.id, fig.title, fig.unit))
    );
    // Shared scale across both architectures, like the paper's y axis.
    let max = fig
        .series
        .iter()
        .flat_map(|s| s.levels.iter().map(|l| l.1).chain(s.bound.map(|b| b.1)))
        .fold(0.0f64, f64::max);
    for s in &fig.series {
        println!("  [{}] (modeled)", s.arch);
        let mut rows: Vec<(String, f64)> =
            s.levels.iter().map(|(l, v)| (l.to_string(), *v)).collect();
        if let Some((bl, bv)) = s.bound {
            rows.push((format!("({bl})"), bv));
        }
        print!("{}", bar_chart(&rows, fig.unit, Some(max)));
        maybe_write_csv(
            &opts.csv_dir,
            &format!("{}_{}.csv", fig.id, s.arch.to_lowercase().replace('-', "_")),
            &to_csv(fig.unit, &rows),
        );
        println!();
    }
}

fn print_native(title: &str, ladder: &[(String, f64)], unit: &str, opts: &RunOptions, csv: &str) {
    println!("  [native host] {title}");
    print!("{}", bar_chart(ladder, unit, None));
    maybe_write_csv(&opts.csv_dir, csv, &to_csv(unit, ladder));
    println!();
}

/// Measure and print the native ladder of every registered kernel whose
/// paper artifact is `artifact` — the registry is the single source of
/// truth for which kernels belong to which figure/table.
fn print_native_for_artifact(artifact: &str, opts: &RunOptions) {
    let engine = native::engine();
    for k in engine.registry().kernels() {
        if k.artifact() != artifact {
            continue;
        }
        print_native(
            k.title(),
            &engine.run_ladder(k, opts.quick),
            k.unit(),
            opts,
            &format!("native_{}.csv", k.name()),
        );
    }
}

/// Table I: system configuration and derived peaks.
pub fn table1(opts: &RunOptions) {
    println!("{}", section("Table I — System configuration (modeled)"));
    let rows: Vec<Vec<String>> = vec![
        vec![
            "Sockets x Cores x SMT".into(),
            format!(
                "{}x{}x{}",
                SNB_EP.sockets, SNB_EP.cores_per_socket, SNB_EP.smt
            ),
            format!("{}x{}x{}", KNC.sockets, KNC.cores_per_socket, KNC.smt),
        ],
        vec![
            "Clock (GHz)".into(),
            format!("{}", SNB_EP.clock_ghz),
            format!("{}", KNC.clock_ghz),
        ],
        vec![
            "SP GFLOP/s (derived)".into(),
            format!("{:.0}", SNB_EP.peak_sp_gflops()),
            format!("{:.0}", KNC.peak_sp_gflops()),
        ],
        vec![
            "DP GFLOP/s (derived)".into(),
            format!("{:.0}", SNB_EP.peak_dp_gflops()),
            format!("{:.0}", KNC.peak_dp_gflops()),
        ],
        vec![
            "L1/L2/L3 (KB)".into(),
            format!("{}/{}/{}", SNB_EP.l1_kb, SNB_EP.l2_kb, SNB_EP.l3_kb),
            format!("{}/{}/-", KNC.l1_kb, KNC.l2_kb),
        ],
        vec![
            "DRAM (GB)".into(),
            format!("{}", SNB_EP.dram_gb),
            format!("{} GDDR", KNC.dram_gb),
        ],
        vec![
            "STREAM bandwidth (GB/s)".into(),
            format!("{}", SNB_EP.stream_bw_gbs),
            format!("{}", KNC.stream_bw_gbs),
        ],
        vec![
            "SIMD DP lanes".into(),
            format!("{}", SNB_EP.simd_width_dp),
            format!("{}", KNC.simd_width_dp),
        ],
    ];
    println!("{}", table(&["", "SNB-EP", "KNC"], &rows));
    println!(
        "  Peak DP ratio KNC/SNB-EP: {:.2}x (paper: ~3.2x as (60/16)*(512/256)*(1.09/2.7))",
        KNC.peak_dp_gflops() / SNB_EP.peak_dp_gflops()
    );
    println!(
        "  STREAM bandwidth ratio:   {:.2}x",
        KNC.stream_bw_gbs / SNB_EP.stream_bw_gbs
    );
    let _ = opts;
}

/// Fig. 4: Black-Scholes.
pub fn fig4(opts: &RunOptions) {
    print_figure(&figures::fig4(), opts);
    println!("  Paper checks: KNC reference 3x slower than SNB-EP; AOS->SOA");
    println!("  gives ~10x on KNC; advanced reaches 84% (SNB-EP) / 60% (KNC)");
    println!("  of the B/40 bandwidth bound.");
    println!();
    print_native_for_artifact("fig4", opts);
}

/// Fig. 5: binomial tree at 1024 and 2048 steps.
pub fn fig5(opts: &RunOptions) {
    for n in [1024, 2048] {
        print_figure(&figures::fig5(n), opts);
    }
    println!("  Paper checks: basic KNC 1.4x SNB-EP; SIMD-only barely helps;");
    println!("  register tiling >2x; unroll +1.4x on KNC only; best KNC/SNB =");
    println!("  2.6x; SNB-EP within 10% / KNC within 30% of compute bound.");
    println!();
    print_native_for_artifact("fig5", opts);
}

/// Fig. 6: Brownian bridge.
pub fn fig6(opts: &RunOptions) {
    print_figure(&figures::fig6(), opts);
    println!("  Paper checks: basic KNC 25% slower; intermediate bandwidth-");
    println!("  bound (KNC/SNB = BW ratio ~2x); advanced compute-bound with");
    println!("  KNC 2x (no FMA in the midpoint op).");
    println!();
    print_native_for_artifact("fig6", opts);
}

/// Table II: Monte-Carlo pricing and RNG rates.
pub fn table2(opts: &RunOptions) {
    println!("{}", section("Table II — Monte-Carlo pricing & RNG rates"));
    let rows: Vec<Vec<String>> = figures::table2()
        .into_iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                fmt_num(r.snb_model),
                fmt_num(r.snb_paper),
                fmt_num(r.knc_model),
                fmt_num(r.knc_paper),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["", "SNB model", "SNB paper", "KNC model", "KNC paper"],
            &rows
        )
    );
    print_native_for_artifact("table2", opts);
}

/// Fig. 8: Crank-Nicolson.
pub fn fig8(opts: &RunOptions) {
    print_figure(&figures::fig8(), opts);
    println!("  Paper checks: reference KNC only 1.3x faster; manual SIMD");
    println!("  4.4K/7.3K opts/s; +layout transform 6.4K/11.4K; net SIMD");
    println!("  gain 3.1x (SNB-EP) / 4.1x (KNC).");
    println!();
    print_native_for_artifact("fig8", opts);
}

/// §V: Ninja-gap summary.
pub fn ninja(opts: &RunOptions) {
    println!("{}", section("Ninja gap summary (paper §V)"));
    let s = figures::ninja_summary();
    let rows: Vec<Vec<String>> = s
        .gaps
        .iter()
        .map(|(name, snb, knc)| vec![name.to_string(), format!("{snb:.2}x"), format!("{knc:.2}x")])
        .collect();
    println!("{}", table(&["Kernel", "SNB-EP gap", "KNC gap"], &rows));
    println!(
        "  Average Ninja gap: SNB-EP {:.2}x (paper ~1.9x), KNC {:.2}x (paper ~4x)",
        s.avg_snb, s.avg_knc
    );
    println!(
        "  Best-optimized KNC/SNB-EP: {:.2}x compute-bound (paper ~2.5x), {:.2}x bandwidth-bound (paper ~2x)",
        s.compute_bound_ratio, s.bandwidth_bound_ratio
    );
    let _ = opts;
}

/// Extension: quasi-Monte-Carlo convergence through the Brownian bridge
/// (geometric Asian call with a known closed form).
pub fn qmc(opts: &RunOptions) {
    use finbench_core::black_scholes::price_single;
    use finbench_core::brownian_bridge::{qmc::build_paths_qmc, BridgePlan};
    use finbench_core::workload::MarketParams;
    use finbench_math::{exp, ln};
    use finbench_rng::{normal::fill_standard_normal_icdf, Mt19937_64};

    const M: MarketParams = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };
    let (s0, k, t) = (100.0, 100.0, 1.0);
    let plan = BridgePlan::new(6, t);
    let steps = plan.steps();

    let exact = {
        let nf = steps as f64;
        let sig_g = M.sigma * ((nf + 1.0) * (2.0 * nf + 1.0) / (6.0 * nf * nf)).sqrt();
        let mu_g = 0.5 * (M.r - 0.5 * M.sigma * M.sigma) * (nf + 1.0) / nf + 0.5 * sig_g * sig_g;
        let (raw, _) = price_single(
            s0,
            k,
            t,
            MarketParams {
                r: mu_g,
                sigma: sig_g,
            },
        );
        raw * exp((mu_g - M.r) * t)
    };

    let price_paths = |paths: &[f64]| {
        let points = plan.points();
        let dt = t / steps as f64;
        let drift = M.r - 0.5 * M.sigma * M.sigma;
        let n = paths.len() / points;
        let mut sum = 0.0;
        for p in 0..n {
            let row = &paths[p * points..(p + 1) * points];
            let mut mean_log = 0.0;
            for (kk, w) in row[1..].iter().enumerate() {
                mean_log += drift * ((kk + 1) as f64 * dt) + M.sigma * w;
            }
            mean_log = mean_log / steps as f64 + ln(s0);
            sum += (exp(mean_log) - k).max(0.0);
        }
        exp(-M.r * t) * sum / n as f64
    };

    println!(
        "{}",
        section("QMC convergence (extension): geometric Asian, 64 dates")
    );
    println!("  exact price {exact:.6}\n");
    let budgets: &[usize] = if opts.quick {
        &[512, 2048]
    } else {
        &[512, 2048, 8192, 32768]
    };
    let mut rows = Vec::new();
    for &n in budgets {
        let mut qmc_paths = vec![0.0; n * plan.points()];
        build_paths_qmc(&plan, 0, &mut qmc_paths, n);
        let qmc_err = (price_paths(&qmc_paths) - exact).abs();

        let per = plan.randoms_per_path();
        let mut mc_err = 0.0;
        for seed in 1..=3u64 {
            let mut rng = Mt19937_64::new(seed);
            let mut randoms = vec![0.0; n * per];
            fill_standard_normal_icdf(&mut rng, &mut randoms);
            let mut paths = vec![0.0; n * plan.points()];
            finbench_core::brownian_bridge::reference::build_paths::<f64>(
                &plan, &randoms, &mut paths, n,
            );
            mc_err += (price_paths(&paths) - exact).abs();
        }
        mc_err /= 3.0;
        rows.push(vec![
            format!("{n}"),
            format!("{qmc_err:.6}"),
            format!("{mc_err:.6}"),
            format!("{:.1}x", mc_err / qmc_err.max(1e-12)),
        ]);
    }
    println!(
        "{}",
        table(&["paths", "|QMC err|", "|MC err|", "MC/QMC"], &rows)
    );
}

/// Dynamic per-option operation mix of the basic Black-Scholes kernel,
/// measured by pricing `n_options` moderate options with
/// [`finbench_math::CountedF64`]. Returns `(plain, expanded)` tallies
/// summed over the batch: `plain` charges each transcendental as one
/// call; `expanded` also tallies the interior polynomial arithmetic of
/// each transcendental (one level deep), which is the convention behind
/// the paper's "~200 operations per option" figure (§IV-A).
pub fn black_scholes_op_mix(
    n_options: usize,
) -> (finbench_math::OpCounts, finbench_math::OpCounts) {
    use finbench_core::black_scholes::price_single;
    use finbench_core::workload::MarketParams;
    use finbench_math::{counting, counting_expanded, CountedF64, Real};

    let m = MarketParams::PAPER;
    // Moderate moneyness and maturity keep |d1| small, so norm_cdf takes
    // the paper-relevant Hart rational path, not the far-tail branch.
    let run = || {
        for i in 0..n_options {
            let s = 90.0 + 20.0 * (i as f64 + 0.5) / n_options as f64;
            let (c, p) = price_single(
                CountedF64::of(s),
                CountedF64::of(100.0),
                CountedF64::of(1.0),
                m,
            );
            std::hint::black_box((c.into_f64(), p.into_f64()));
        }
    };
    let ((), plain) = counting(run);
    let ((), expanded) = counting_expanded(run);
    (plain, expanded)
}

/// Extension: dynamic op-count audit of the Black-Scholes kernel
/// (the counted-arithmetic check behind the paper's flop estimates).
pub fn audit(opts: &RunOptions) {
    println!(
        "{}",
        section("Op-count audit — basic Black-Scholes kernel (counted arithmetic)")
    );
    let n = 64usize;
    let (plain, expanded) = black_scholes_op_mix(n);
    let per = |v: u64| format!("{:.2}", v as f64 / n as f64);
    let rows: Vec<Vec<String>> = vec![
        vec!["add/sub".into(), per(plain.adds), per(expanded.adds)],
        vec!["mul".into(), per(plain.muls), per(expanded.muls)],
        vec!["div".into(), per(plain.divs), per(expanded.divs)],
        vec!["sqrt".into(), per(plain.sqrts), per(expanded.sqrts)],
        vec!["max/cmp".into(), per(plain.maxs), per(expanded.maxs)],
        vec!["exp calls".into(), per(plain.exps), per(expanded.exps)],
        vec!["ln calls".into(), per(plain.logs), per(expanded.logs)],
        vec!["erf calls".into(), per(plain.erfs), per(expanded.erfs)],
        vec!["cnd calls".into(), per(plain.cnds), per(expanded.cnds)],
        vec![
            "total (calls as 1 op)".into(),
            per(plain.total_with_transcendentals()),
            per(expanded.total_with_transcendentals()),
        ],
    ];
    println!("{}", table(&["per option", "plain", "expanded"], &rows));
    println!(
        "  Expanded total: ~{:.0} ops/option — paper §IV-A estimates ~200",
        expanded.total_with_transcendentals() as f64 / n as f64
    );
    // Surface the mix through telemetry too: attributes on the enclosing
    // experiment.audit span, per-op-class counters for the exporters.
    let per_opt = |v: u64| v as f64 / n as f64;
    finbench_telemetry::set_attr("options_priced", n);
    finbench_telemetry::set_attr(
        "ops_per_option_plain",
        per_opt(plain.total_with_transcendentals()),
    );
    finbench_telemetry::set_attr(
        "ops_per_option_expanded",
        per_opt(expanded.total_with_transcendentals()),
    );
    finbench_telemetry::counter_add("audit.bs.flops_expanded", expanded.flops());
    finbench_telemetry::counter_add("audit.bs.transcendentals", expanded.transcendentals());
    finbench_telemetry::counter_add(
        "audit.bs.total_ops_expanded",
        expanded.total_with_transcendentals(),
    );
    println!("  (expansion tallies each transcendental's interior polynomial once,");
    println!("  nested calls charged as single ops; see finbench-math::counting_expanded)");
    let _ = opts;
}

/// All native ladders in one run (restricted by `--only`, when given).
pub fn native_all(opts: &RunOptions) {
    println!("{}", section("Native host measurements (all kernels)"));
    let engine = native::engine();
    for k in engine.registry().kernels() {
        if let Some(only) = &opts.only {
            if !only.iter().any(|n| n == k.name()) {
                continue;
            }
        }
        print_native(
            k.title(),
            &engine.run_ladder(k, opts.quick),
            k.unit(),
            opts,
            &format!("native_{}.csv", k.name()),
        );
    }
}

/// The `serve_bench` experiment: drive the `finbench-serve` batched
/// pricing plane with synthetic closed- and open-loop load and report
/// throughput-vs-latency curves per servable kernel.
///
/// Closed-loop points sweep client concurrency (latency floor);
/// open-loop points pace arrivals at fractions of the measured
/// closed-loop peak (SLO territory). Queue capacity covers the full
/// offered load and no deadlines are attached, so a healthy serving
/// plane sheds nothing — `ci.sh` greps the final `total shed:` line as
/// its smoke gate.
///
/// A shard-scaling sweep closes the run: the same closed-loop drive
/// against 1, 2, … worker shards (`--shards N` sets the top; default 2
/// quick / 4 full), printing a `shard scaling 1->2:` speedup line that
/// `ci.sh` gates at ≥ 1.3×.
pub fn serve_bench(opts: &RunOptions) {
    use finbench_serve::{
        run_load, run_load_hedged, HedgePolicy, LoadMode, LoadReport, PricerConfig, ServeConfig,
        Server,
    };
    use std::time::Duration;

    println!(
        "{}",
        section("serve-bench — batched pricing-request plane (dynamic micro-batching)")
    );
    let default_kernels = ["black_scholes", "binomial"];
    let kernels: Vec<String> = match &opts.only {
        Some(list) => list.clone(),
        None => default_kernels.iter().map(|s| s.to_string()).collect(),
    };
    let pricer = PricerConfig {
        binomial_steps: if opts.quick { 64 } else { 256 },
        ..PricerConfig::default()
    };
    let per_client = if opts.quick { 150 } else { 1500 };
    let client_points: &[usize] = if opts.quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let open_fractions: &[f64] = if opts.quick {
        &[0.25, 0.5]
    } else {
        &[0.25, 0.5, 0.9]
    };
    let open_secs = if opts.quick { 0.1 } else { 0.5 };

    let engine = native::engine();
    let mut total_shed = 0usize;
    let mut total_unknown_kernel = 0usize;
    let mut total_unservable = 0usize;
    let mut total_shutdown = 0usize;
    let mut total_invalid = 0usize;
    let mut total_internal = 0usize;
    for kernel in &kernels {
        // Resolve the serving rung up front so unservable kernels are a
        // printed note, not a storm of per-request rejections.
        let rung = match finbench_serve::pricer::resolve(engine, kernel, &pricer) {
            Ok(r) => r,
            Err(reason) => {
                println!("  {kernel}: not servable ({reason}); skipping");
                continue;
            }
        };
        let plan = engine.plan(kernel).expect("kernel resolved above");
        println!(
            "  [{kernel}] serving rung: {} (plan: {}, width {})",
            rung.slug, plan.slug, rung.width
        );

        let config_for = |capacity: usize| ServeConfig {
            queue_capacity: capacity,
            max_delay: Duration::from_micros(500),
            max_batch: 4096,
            pricer,
            ..ServeConfig::default()
        };
        let run = |mode: LoadMode, capacity: usize, seed: u64, hedge: Option<HedgePolicy>| {
            // A fresh server per load point keeps the latency histograms
            // and shed counters scoped to that point.
            let server = Server::start(config_for(capacity));
            let report: LoadReport = run_load_hedged(&server, kernel, mode, seed, None, hedge);
            server.shutdown();
            report
        };

        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut curve =
            String::from("mode,offered,served,shed,throughput_rps,p50_us,p95_us,p99_us\n");
        let push =
            |label: String, r: &LoadReport, rows: &mut Vec<Vec<String>>, curve: &mut String| {
                rows.push(vec![
                    label.clone(),
                    r.offered.to_string(),
                    r.served.to_string(),
                    r.total_shed().to_string(),
                    fmt_num(r.throughput),
                    format!("{:.0}", r.p50_us),
                    format!("{:.0}", r.p95_us),
                    format!("{:.0}", r.p99_us),
                ]);
                curve.push_str(&format!(
                    "{label},{},{},{},{:.1},{:.1},{:.1},{:.1}\n",
                    r.offered,
                    r.served,
                    r.total_shed(),
                    r.throughput,
                    r.p50_us,
                    r.p95_us,
                    r.p99_us
                ));
            };

        let mut closed_peak = 0.0f64;
        for (i, &clients) in client_points.iter().enumerate() {
            let total = clients * per_client;
            let r = run(
                LoadMode::Closed {
                    clients,
                    requests_per_client: per_client,
                },
                total.max(16),
                0xC0FFEE + i as u64,
                None,
            );
            closed_peak = closed_peak.max(r.throughput);
            total_shed += r.total_shed();
            total_unknown_kernel += r.rejected_unknown_kernel;
            total_unservable += r.rejected_unservable;
            total_shutdown += r.rejected_shutdown;
            total_invalid += r.invalid_input;
            total_internal += r.internal;
            push(format!("closed x{clients}"), &r, &mut rows, &mut curve);
        }
        // One hedged closed-loop point at the largest client count: the
        // tail-at-scale tradeoff in numbers — duplicated work (hedges)
        // bought against the p99 column. Open-loop runs never hedge (no
        // per-request wait to hedge from), so this is the only hedged row.
        let hedge_line = {
            let clients = *client_points.last().unwrap();
            let total = clients * per_client;
            let r = run(
                LoadMode::Closed {
                    clients,
                    requests_per_client: per_client,
                },
                total.max(16),
                0x4ED6ED,
                Some(HedgePolicy {
                    delay: Duration::from_micros(300),
                }),
            );
            total_shed += r.total_shed();
            total_unknown_kernel += r.rejected_unknown_kernel;
            total_unservable += r.rejected_unservable;
            total_shutdown += r.rejected_shutdown;
            total_invalid += r.invalid_input;
            total_internal += r.internal;
            push(
                format!("closed x{clients} hedged"),
                &r,
                &mut rows,
                &mut curve,
            );
            (r.hedges, r.hedge_wins)
        };
        for (i, &frac) in open_fractions.iter().enumerate() {
            let rate = (closed_peak * frac).max(100.0);
            let total = ((rate * open_secs) as usize).clamp(50, 20_000);
            let r = run(
                LoadMode::Open {
                    rate_hz: rate,
                    total,
                },
                total,
                0xFEED + i as u64,
                None,
            );
            total_shed += r.total_shed();
            total_unknown_kernel += r.rejected_unknown_kernel;
            total_unservable += r.rejected_unservable;
            total_shutdown += r.rejected_shutdown;
            total_invalid += r.invalid_input;
            total_internal += r.internal;
            push(format!("open {:.0}/s", rate), &r, &mut rows, &mut curve);
        }
        println!(
            "{}",
            table(
                &["load", "offered", "served", "shed", "req/s", "p50 µs", "p95 µs", "p99 µs"],
                &rows
            )
        );
        println!(
            "  hedged row: {} hedges issued, {} hedge wins",
            hedge_line.0, hedge_line.1
        );
        maybe_write_csv(&opts.csv_dir, &format!("serve_bench_{kernel}.csv"), &curve);
    }

    // Shard-scaling sweep: the same closed-loop drive against a router
    // with 1, 2, … worker shards on the analytic kernel. `ci.sh` greps
    // the `shard scaling 1->2:` line as its scaling smoke gate.
    {
        let top = opts.shards.unwrap_or(if opts.quick { 2 } else { 4 }).max(1);
        let mut shard_counts = vec![1usize];
        while shard_counts.last().unwrap() * 2 <= top {
            shard_counts.push(shard_counts.last().unwrap() * 2);
        }
        if *shard_counts.last().unwrap() < top {
            shard_counts.push(top);
        }
        let clients = 8;
        let per_client = if opts.quick { 250 } else { 1200 };
        println!(
            "  [shard scaling] black_scholes, closed loop x{clients}, {per_client} req/client"
        );
        let mut scale_rows: Vec<Vec<String>> = Vec::new();
        let mut scale_csv = String::from("shards,served,shed,throughput_rps,speedup\n");
        let mut base_rps = 0.0f64;
        for (i, &n) in shard_counts.iter().enumerate() {
            let server = Server::start(ServeConfig {
                queue_capacity: 4096,
                max_delay: Duration::from_micros(200),
                max_batch: 512,
                shards: n,
                pricer,
                ..ServeConfig::default()
            });
            let r = run_load(
                &server,
                "black_scholes",
                LoadMode::Closed {
                    clients,
                    requests_per_client: per_client,
                },
                0x5CA1E + i as u64,
                None,
            );
            server.shutdown();
            total_shed += r.total_shed();
            total_unknown_kernel += r.rejected_unknown_kernel;
            total_unservable += r.rejected_unservable;
            total_shutdown += r.rejected_shutdown;
            total_invalid += r.invalid_input;
            total_internal += r.internal;
            if n == 1 {
                base_rps = r.throughput;
            }
            // A collapsed baseline (e.g. an armed kill plan took out the
            // single shard) makes the ratio meaningless — say so instead
            // of printing an astronomically large number.
            let speedup = (base_rps > 1.0).then(|| r.throughput / base_rps);
            let speedup_str = speedup.map_or_else(|| "n/a".to_string(), |s| format!("{s:.2}x"));
            let shard_avail: Vec<String> = r
                .shards
                .iter()
                .map(|s| format!("{:.2}", s.availability()))
                .collect();
            scale_rows.push(vec![
                n.to_string(),
                r.served.to_string(),
                r.total_shed().to_string(),
                fmt_num(r.throughput),
                speedup_str.clone(),
                shard_avail.join("/"),
            ]);
            scale_csv.push_str(&format!(
                "{n},{},{},{:.1},{}\n",
                r.served,
                r.total_shed(),
                r.throughput,
                speedup.map_or_else(|| "n/a".to_string(), |s| format!("{s:.3}")),
            ));
            if n > 1 {
                println!("  shard scaling 1->{n}: {speedup_str}");
            }
        }
        println!(
            "{}",
            table(
                &[
                    "shards",
                    "served",
                    "shed",
                    "req/s",
                    "speedup",
                    "shard avail"
                ],
                &scale_rows
            )
        );
        maybe_write_csv(&opts.csv_dir, "serve_bench_shard_scaling.csv", &scale_csv);
    }

    let total_rejected = total_unknown_kernel + total_unservable + total_shutdown;
    println!("  total shed: {total_shed}");
    println!(
        "  total rejected: {total_rejected} \
         (unknown kernel {total_unknown_kernel}, unservable {total_unservable}, \
         shutdown {total_shutdown})"
    );
    if total_invalid + total_internal > 0 {
        println!("  total invalid input: {total_invalid}");
        println!("  total internal (faults absorbed): {total_internal}");
    }
    println!("  (shed = queue_full + deadline_exceeded; every shed is a typed response)");
}

/// The `chaos_bench` experiment: closed-loop load against the serving
/// plane under a matrix of fault plans (injected panics, latency, input
/// corruption, queue stalls), reporting availability and degradation per
/// plan — and verifying the invariant that makes degradation safe:
/// **every `Priced` response is bit-identical to pricing that option
/// alone on the rung that served it.** Faults may shed or degrade,
/// never corrupt.
///
/// `ci.sh` greps the final `corrupted prices:` / `degraded batches:`
/// lines: corruption must be zero and the panic plans must actually
/// exercise the degradation ladder (non-zero degraded batches). The
/// server runs two worker shards, and a `shard kill` plan kills one
/// mid-run — the `shard-kill availability:` line must stay above the CI
/// floor while the surviving shard keeps serving.
pub fn chaos_bench(opts: &RunOptions) {
    use finbench_faults::{self as faults, FaultPlan, PlanGuard};
    use finbench_serve::{
        pricer, BreakerPolicy, PriceRequest, PriceResponse, PricerConfig, Rejected, ServeConfig,
        Server, ServingRung, SupervisorPolicy, HEDGE_BIT,
    };
    use std::collections::BTreeMap as Map;
    use std::time::Duration;

    println!(
        "{}",
        section("chaos-bench — fault-tolerant serving under injected faults")
    );
    let kernel = "black_scholes";
    let clients = 3usize;
    let per_client = if opts.quick { 150 } else { 800 };

    // The fault-plan matrix, in the FINBENCH_FAULTS grammar itself so the
    // printed plans double as copy-paste chaos recipes.
    let plans: &[(&str, &str)] = &[
        ("baseline", ""),
        ("panic 10%", "batch.black_scholes=panic@0.1"),
        ("latency 250us/20%", "batch.black_scholes=latency:250us@0.2"),
        ("corrupt 5%", "admit.black_scholes=corrupt:nan@0.05"),
        ("queue stall 2%", "queue=stall@0.02"),
        (
            "combined",
            "batch.black_scholes=panic@0.1,admit.black_scholes=corrupt:inf@0.05,queue=stall@0.01",
        ),
        // Kill one of the two worker shards mid-run: the router stops
        // routing there, in-flight work on the dead shard answers
        // `Rejected::Internal`, and the surviving shard keeps serving.
        ("shard kill", "serve.shard.1=kill@0.05#7"),
    ];

    let pricer_cfg = PricerConfig::default();
    // The bit-exactness oracle: every servable rung by slug, so a response
    // served on a *degraded* rung is checked against that rung, solo.
    let rungs: Map<String, ServingRung> = {
        let engine = native::engine();
        pricer::servable_ladder(engine, kernel, &pricer_cfg)
            .expect("black_scholes is servable")
            .into_iter()
            .map(|r| (r.slug.clone(), r))
            .collect()
    };

    // Injected panics at 10% of batches would otherwise spray backtraces
    // over the report.
    faults::silence_injected_panics();

    let mut total_corrupted = 0usize;
    let mut total_degraded = 0u64;
    let mut kill_stats: Option<(f64, usize, usize, u64)> = None;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv = String::from(
        "plan,offered,served,availability,invalid,internal,shed,degraded_batches,restarts,breaker_open,corrupted\n",
    );
    for (label, plan_str) in plans {
        let plan = FaultPlan::parse(plan_str).expect("matrix plans parse");
        let _guard = PlanGuard::install(plan);
        let server = Server::start(ServeConfig {
            queue_capacity: 4096,
            max_delay: Duration::from_micros(300),
            max_batch: 512,
            // Two worker shards: every plan exercises the sharded router,
            // and the shard-kill plan has a survivor to fail over to.
            shards: 2,
            pricer: pricer_cfg,
            breaker: BreakerPolicy {
                // Short cooldown so an opened breaker restarts within the
                // run; quick promotion keeps the ladder exercised both ways.
                cooldown: Duration::from_millis(2),
                promote_after: 16,
                ..BreakerPolicy::default()
            },
            // The matrix pins down *terminal* shard loss (the shard-kill
            // plan's `survivors: 1/2` line); the rolling-kill panel below
            // is where supervised respawn is measured.
            supervisor: SupervisorPolicy {
                respawn: false,
                ..SupervisorPolicy::default()
            },
        });
        // Closed-loop drive, keeping each request's parameters so priced
        // responses can be replayed against the solo oracle.
        let responses: Vec<((f64, f64, f64), PriceResponse)> = std::thread::scope(|scope| {
            let server = &server;
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        let mut stream =
                            finbench_serve::OptionStream::new(0xC4A05u64.wrapping_add(c as u64));
                        let mut out = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            let (s, x, t) = stream.next_option();
                            let id = (c * per_client + i) as u64;
                            let rx = server.submit(PriceRequest::new(id, kernel, s, x, t));
                            match rx.recv() {
                                Ok(resp) => out.push(((s, x, t), resp)),
                                Err(_) => break,
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("chaos client thread"))
                .collect()
        });
        let snap = server.shutdown();

        let offered = responses.len();
        let mut served = 0usize;
        let mut invalid = 0usize;
        let mut internal = 0usize;
        let mut shed = 0usize;
        let mut corrupted = 0usize;
        for ((s, x, t), resp) in &responses {
            match &resp.outcome {
                Ok(p) => {
                    served += 1;
                    let rung = rungs
                        .get(&p.rung)
                        .unwrap_or_else(|| panic!("response served on unknown rung {}", p.rung));
                    let (call, put) = rung.price_one(*s, *x, *t);
                    if call.to_bits() != p.call.to_bits() || put.to_bits() != p.put.to_bits() {
                        corrupted += 1;
                    }
                }
                Err(Rejected::InvalidInput { .. }) => invalid += 1,
                Err(Rejected::Internal { .. }) => internal += 1,
                Err(_) => shed += 1,
            }
        }
        let degraded = snap.total_degraded();
        let restarts = snap.total_restarts();
        let opened: u64 = snap.kernels.iter().map(|k| k.breaker_open).sum();
        let avail = if offered == 0 {
            0.0
        } else {
            served as f64 / offered as f64
        };
        total_corrupted += corrupted;
        total_degraded += degraded;
        if *label == "shard kill" {
            kill_stats = Some((
                avail,
                snap.alive_shards(),
                snap.shards.len(),
                snap.shards
                    .iter()
                    .filter(|s| s.alive)
                    .map(|s| s.served)
                    .sum(),
            ));
        }
        rows.push(vec![
            label.to_string(),
            offered.to_string(),
            served.to_string(),
            format!("{:.1}%", 100.0 * avail),
            invalid.to_string(),
            internal.to_string(),
            shed.to_string(),
            degraded.to_string(),
            restarts.to_string(),
            opened.to_string(),
            corrupted.to_string(),
        ]);
        csv.push_str(&format!(
            "{label},{offered},{served},{avail:.4},{invalid},{internal},{shed},{degraded},{restarts},{opened},{corrupted}\n"
        ));
    }
    println!(
        "{}",
        table(
            &[
                "fault plan",
                "offered",
                "served",
                "avail",
                "invalid",
                "internal",
                "shed",
                "degraded",
                "restarts",
                "opened",
                "corrupt",
            ],
            &rows
        )
    );
    maybe_write_csv(&opts.csv_dir, "chaos_bench.csv", &csv);

    // ---- rolling-kill panel: supervised respawn, redrive, and hedging.
    // Every shard of a 3-shard fleet is killed exactly once (`*1` caps
    // the fault budget; staggered rates and seeds roll the kills through
    // the run instead of firing together). The supervisor must respawn
    // each seat — MTTR is kill → respawned-and-serving — and a second,
    // fault-free drive afterwards proves the recovered fleet serves at
    // full availability. Phase 1 clients hedge: a request caught in a
    // kill/redrive window races a tagged second copy after 2ms.
    let rolling_plan =
        "serve.shard.0=kill@0.05*1#11,serve.shard.1=kill@0.01*1#12,serve.shard.2=kill@0.002*1#13";
    let rolling_shards = 3usize;
    {
        let plan = FaultPlan::parse(rolling_plan).expect("rolling-kill plan parses");
        let guard = PlanGuard::install(plan);
        let server = Server::start(ServeConfig {
            queue_capacity: 4096,
            max_delay: Duration::from_micros(300),
            max_batch: 512,
            shards: rolling_shards,
            pricer: pricer_cfg,
            breaker: BreakerPolicy {
                cooldown: Duration::from_millis(2),
                promote_after: 16,
                ..BreakerPolicy::default()
            },
            supervisor: SupervisorPolicy::default(),
        });
        let hedge_delay = Duration::from_millis(2);
        // Closed-loop drive keeping each request's parameters for the
        // bit-exactness oracle; `hedged` adds the client-side race.
        type Driven = Vec<((f64, f64, f64), PriceResponse)>;
        let drive = |hedged: bool, seed: u64| -> (Driven, usize, usize) {
            std::thread::scope(|scope| {
                let server = &server;
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        scope.spawn(move || {
                            let mut stream =
                                finbench_serve::OptionStream::new(seed.wrapping_add(c as u64));
                            let mut out = Vec::with_capacity(per_client);
                            let (mut hedges, mut wins) = (0usize, 0usize);
                            for i in 0..per_client {
                                let (s, x, t) = stream.next_option();
                                let id = (c * per_client + i) as u64;
                                let (tx, rx) = std::sync::mpsc::channel();
                                server.submit_with(PriceRequest::new(id, kernel, s, x, t), &tx);
                                let resp = if hedged {
                                    match rx.recv_timeout(hedge_delay) {
                                        Ok(r) => Some(r),
                                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                                            hedges += 1;
                                            server.submit_with(
                                                PriceRequest::new(id | HEDGE_BIT, kernel, s, x, t),
                                                &tx,
                                            );
                                            drop(tx);
                                            rx.recv().ok()
                                        }
                                        Err(_) => None,
                                    }
                                } else {
                                    drop(tx);
                                    rx.recv().ok()
                                };
                                match resp {
                                    Some(mut r) => {
                                        if r.id & HEDGE_BIT != 0 {
                                            wins += 1;
                                            r.id &= !HEDGE_BIT;
                                        }
                                        out.push(((s, x, t), r));
                                    }
                                    None => break,
                                }
                            }
                            (out, hedges, wins)
                        })
                    })
                    .collect();
                let mut all = Vec::new();
                let (mut th, mut tw) = (0usize, 0usize);
                for h in handles {
                    let (o, hh, ww) = h.join().expect("rolling-kill client thread");
                    all.extend(o);
                    th += hh;
                    tw += ww;
                }
                (all, th, tw)
            })
        };
        // The same oracle the matrix uses: every Priced response must be
        // bit-identical to solo pricing on its serving rung.
        let oracle = |rs: &[((f64, f64, f64), PriceResponse)]| -> (usize, usize) {
            let mut served = 0usize;
            let mut corrupted = 0usize;
            for ((s, x, t), resp) in rs {
                if let Ok(p) = &resp.outcome {
                    served += 1;
                    let rung = rungs
                        .get(&p.rung)
                        .unwrap_or_else(|| panic!("response served on unknown rung {}", p.rung));
                    let (call, put) = rung.price_one(*s, *x, *t);
                    if call.to_bits() != p.call.to_bits() || put.to_bits() != p.put.to_bits() {
                        corrupted += 1;
                    }
                }
            }
            (served, corrupted)
        };

        let (phase1, hedges, hedge_wins) = drive(true, 0x9011);
        let (_, corrupted1) = oracle(&phase1);
        // Idle shard loops keep checking their kill sites, so any kill
        // that didn't fire under load fires here; wait until every seat
        // has died once and been respawned.
        let recovery_deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let snap = server.snapshot();
            if snap.alive_shards() == rolling_shards
                && snap.total_respawns() >= rolling_shards as u64
            {
                break;
            }
            assert!(
                std::time::Instant::now() < recovery_deadline,
                "rolling-kill fleet never recovered: {snap:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(guard);
        // Phase 2, faults disarmed: the respawned fleet at full strength.
        let (phase2, _, _) = drive(false, 0xA077);
        let (served2, corrupted2) = oracle(&phase2);
        let avail2 = if phase2.is_empty() {
            0.0
        } else {
            served2 as f64 / phase2.len() as f64
        };
        total_corrupted += corrupted1 + corrupted2;
        let snap = server.shutdown();
        println!("  rolling-kill plan: {rolling_plan}");
        println!(
            "  rolling-kill respawns: {} (MTTR mean {:.2}ms)",
            snap.total_respawns(),
            snap.mean_mttr().map_or(0.0, |d| d.as_secs_f64() * 1e3)
        );
        println!("  rolling-kill hedges: {hedges} (wins {hedge_wins})");
        println!(
            "  rolling-kill redriven: {} (deadline sheds after redrive: {})",
            snap.total_redriven(),
            snap.shed_deadline_redrive
        );
        println!(
            "  rolling-kill post-recovery availability: {:.1}%",
            100.0 * avail2
        );
    }

    println!("  corrupted prices: {total_corrupted}");
    println!("  degraded batches: {total_degraded}");
    if let Some((avail, alive, shards, survivor_served)) = kill_stats {
        println!("  shard-kill availability: {:.1}%", 100.0 * avail);
        println!("  shard-kill survivors: {alive}/{shards} shards alive, served {survivor_served}");
    }
    println!("  (corrupted compares every Priced response bit-for-bit against solo");
    println!("  pricing on the rung that served it — faults shed or degrade, never corrupt)");
}

/// The `greeks_bench` experiment: the risk workload plane end to end.
///
/// Four panels: (a) native ladder throughput of the `greeks` kernel's
/// seven rungs (analytic scalar/SIMD, bump-and-reprice, Monte-Carlo);
/// (b) the accuracy-vs-bump-size error curve of the finite-difference
/// estimators against the analytic closed form, including the lattice
/// and PDE repricers at their node-spanning bumps; (c) Monte-Carlo
/// estimator agreement (pathwise and CRN finite differences) with
/// standard errors; (d) `GreeksRequest`s driven through the serving
/// plane, every computed response replayed bit-for-bit against solo
/// computation on the rung that served it.
///
/// `ci.sh` greps the final `bump agreement:` and `total shed:` lines:
/// the default bump sizes must reproduce the analytic greeks to 1e-5,
/// and a healthy greeks lane under covered load sheds nothing.
pub fn greeks_bench(opts: &RunOptions) {
    use finbench_core::greeks::bump::{
        binomial_bump_greeks, bs_bump_greeks, cn_put_bump_greeks, BumpSizes,
    };
    use finbench_core::greeks::mc::{crn_fd_delta, crn_fd_vega, crn_normals, pathwise_greeks};
    use finbench_core::greeks::{greeks, Greeks, OptionType};
    use finbench_core::workload::MarketParams;
    use finbench_rng::StreamFamily;
    use finbench_serve::{greeks_ladder, GreeksRequest, GreeksResponse, ServeConfig, Server};
    use std::collections::BTreeMap as Map;
    use std::time::Duration;

    println!(
        "{}",
        section("greeks-bench — risk workload plane (analytic / bump / Monte-Carlo)")
    );

    // (a) Native ladder throughput: all three estimator families, driven
    // through the same engine plane as every other kernel.
    print_native_for_artifact("greeks_bench", opts);

    const M: MarketParams = MarketParams::PAPER;
    let max_rel_err = |got: Greeks, want: Greeks| -> f64 {
        [
            (got.delta, want.delta),
            (got.gamma, want.gamma),
            (got.vega, want.vega),
            (got.theta, want.theta),
            (got.rho, want.rho),
        ]
        .iter()
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0, f64::max)
    };

    // (b) Accuracy vs bump size: the closed form is its own truth, so the
    // sweep shows the classic truncation/roundoff valley directly.
    let (s, x, t) = (30.0, 35.0, 1.0);
    let want = greeks(OptionType::Call, s, x, t, M);
    println!("  [accuracy] bump-and-reprice vs analytic (call s={s} x={x} t={t})");
    let h_grid: &[f64] = if opts.quick {
        &[1e-1, 1e-3, 1e-4, 1e-6, 1e-10]
    } else {
        &[1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10]
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv = String::from("h,delta_err,gamma_err,vega_err,theta_err,rho_err,max_err\n");
    for &h in h_grid {
        let g = bs_bump_greeks(OptionType::Call, s, x, t, M, BumpSizes::uniform(h));
        let errs = [
            (g.delta, want.delta),
            (g.gamma, want.gamma),
            (g.vega, want.vega),
            (g.theta, want.theta),
            (g.rho, want.rho),
        ]
        .map(|(got, w)| (got - w).abs() / w.abs().max(1.0));
        let max = errs.iter().fold(0.0f64, |a, &e| a.max(e));
        rows.push(
            std::iter::once(format!("{h:.0e}"))
                .chain(errs.iter().map(|e| format!("{e:.1e}")))
                .chain(std::iter::once(format!("{max:.1e}")))
                .collect(),
        );
        csv.push_str(&format!(
            "{h:e},{:e},{:e},{:e},{:e},{:e},{max:e}\n",
            errs[0], errs[1], errs[2], errs[3], errs[4]
        ));
    }
    println!(
        "{}",
        table(
            &["h", "delta", "gamma", "vega", "theta", "rho", "max rel err"],
            &rows
        )
    );
    maybe_write_csv(&opts.csv_dir, "greeks_bump_sweep.csv", &csv);
    println!("  (error valley: O(h^2) truncation left of the minimum, O(eps/h) roundoff right)");
    println!();

    // Lattice/PDE repricers at their node-spanning bumps, against the
    // analytic greeks of the matching contract.
    let n_tree = if opts.quick { 64 } else { 512 };
    let (cn_pts, cn_steps) = if opts.quick { (128, 120) } else { (192, 200) };
    let lattice_rows: Vec<Vec<String>> = vec![
        vec![
            format!("binomial CRR ({n_tree} steps), call"),
            "lattice".into(),
            format!(
                "{:.1e}",
                max_rel_err(
                    binomial_bump_greeks(
                        OptionType::Call,
                        s,
                        x,
                        t,
                        M,
                        n_tree,
                        BumpSizes::lattice()
                    ),
                    want
                )
            ),
        ],
        vec![
            format!("Crank-Nicolson ({cn_pts}x{cn_steps} grid), put"),
            "lattice".into(),
            format!(
                "{:.1e}",
                max_rel_err(
                    cn_put_bump_greeks(s, x, t, M, cn_pts, cn_steps, false, BumpSizes::lattice()),
                    greeks(OptionType::Put, s, x, t, M)
                )
            ),
        ],
    ];
    println!(
        "{}",
        table(&["repricer", "bumps", "max rel err"], &lattice_rows)
    );
    println!();

    // (c) Monte-Carlo estimators: pathwise (no bumps at all) and CRN
    // finite differences, each with its standard error against the
    // analytic truth.
    let n_paths = if opts.quick { 1 << 14 } else { 1 << 16 };
    let randoms = crn_normals(&StreamFamily::new(0x6EEC5), 0, n_paths);
    let pw = pathwise_greeks(OptionType::Call, s, x, t, M, &randoms);
    let fd_d = crn_fd_delta(OptionType::Call, s, x, t, M, &randoms, 1e-3);
    let fd_v = crn_fd_vega(OptionType::Call, s, x, t, M, &randoms, 1e-3);
    println!("  [monte-carlo] {n_paths} CRN paths, call s={s} x={x} t={t}");
    let mc_rows: Vec<Vec<String>> = [
        ("pathwise delta", pw.delta, want.delta),
        ("pathwise vega", pw.vega, want.vega),
        ("CRN-FD delta", fd_d, want.delta),
        ("CRN-FD vega", fd_v, want.vega),
    ]
    .iter()
    .map(|(label, est, truth)| {
        vec![
            label.to_string(),
            format!("{:.6}", est.mean()),
            format!("{truth:.6}"),
            format!("{:.1e}", est.std_error()),
            format!("{:.2}", (est.mean() - truth).abs() / est.std_error()),
        ]
    })
    .collect();
    println!(
        "{}",
        table(
            &["estimator", "mean", "analytic", "std err", "|z|"],
            &mc_rows
        )
    );
    println!();

    // (d) GreeksRequests through the serving plane: closed-loop clients,
    // queue sized to cover the offered load, no deadlines — so a healthy
    // lane sheds nothing. Every computed response is replayed against
    // solo computation on the rung that served it.
    let clients = 4usize;
    let per_client = if opts.quick { 150 } else { 1500 };
    let cfg = ServeConfig {
        queue_capacity: (clients * per_client).max(16),
        max_delay: Duration::from_micros(200),
        max_batch: 4096,
        ..ServeConfig::default()
    };
    let oracle: Map<String, finbench_serve::GreeksRung> = greeks_ladder(cfg.pricer.market)
        .into_iter()
        .map(|r| (r.slug.clone(), r))
        .collect();
    let server = Server::start(cfg);
    let responses: Vec<((f64, f64, f64), GreeksResponse)> = std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut stream =
                        finbench_serve::OptionStream::new(0x62EE5u64.wrapping_add(c as u64));
                    let mut out = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let (s, x, t) = stream.next_option();
                        let id = (c * per_client + i) as u64;
                        let rx = server.submit_greeks(GreeksRequest::new(id, s, x, t));
                        match rx.recv() {
                            Ok(resp) => out.push(((s, x, t), resp)),
                            Err(_) => break,
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("greeks client thread"))
            .collect()
    });
    server.shutdown();

    let mut served = 0usize;
    let mut shed = 0usize;
    let mut mismatches = 0usize;
    let mut batch_sum = 0usize;
    let mut lat_us: Vec<f64> = Vec::with_capacity(responses.len());
    for ((s, x, t), resp) in &responses {
        match &resp.outcome {
            Ok(out) => {
                served += 1;
                batch_sum += out.batch_len;
                lat_us.push(out.latency.as_secs_f64() * 1e6);
                let rung = oracle
                    .get(&out.rung)
                    .unwrap_or_else(|| panic!("response served on unknown rung {}", out.rung));
                let (call, put) = rung.compute_one(*s, *x, *t);
                if call != out.call || put != out.put {
                    mismatches += 1;
                }
            }
            Err(_) => shed += 1,
        }
    }
    let mean_batch = batch_sum as f64 / served.max(1) as f64;
    println!(
        "  [serve] {served}/{} computed on the greeks lane (mean batch {mean_batch:.1}, \
         p50 {:.0} us, p99 {:.0} us)",
        responses.len(),
        finbench_telemetry::stats::nearest_rank_unsorted(&lat_us, 0.50),
        finbench_telemetry::stats::nearest_rank_unsorted(&lat_us, 0.99),
    );
    println!("  batched vs solo mismatches: {mismatches}");
    println!();

    // Gate lines (grepped by ci.sh): default-bump agreement across a
    // spread of random contracts, and zero shed under covered load.
    let mut stream = finbench_serve::OptionStream::new(0xA6EE);
    let mut worst = 0.0f64;
    for _ in 0..64 {
        let (s, x, t) = stream.next_option();
        for kind in [OptionType::Call, OptionType::Put] {
            let got = bs_bump_greeks(kind, s, x, t, M, BumpSizes::default());
            worst = worst.max(max_rel_err(got, greeks(kind, s, x, t, M)));
        }
    }
    let tol = 1e-5;
    println!(
        "  bump agreement: {} (max rel err {worst:.1e} <= {tol:.0e})",
        if worst <= tol && mismatches == 0 {
            "OK"
        } else {
            "FAIL"
        }
    );
    println!("  total shed: {shed}");
}

/// The `portfolio_bench` experiment: the market-risk plane end to end.
///
/// Three panels: (a) native ladder throughput of the `portfolio`
/// kernel's rungs (scalar/SIMD full-book revaluation, chunk-parallel
/// scenarios); (b) VaR / expected-shortfall convergence over growing
/// scenario grids, each estimate with its order-statistic confidence
/// interval, checked for coverage against a much finer reference grid;
/// (c) one `PortfolioRequest` fanned out across a sharded server and the
/// merged P&L replayed bit-for-bit against the native single-threaded
/// sweep of the same book and grid.
///
/// `ci.sh` greps the `portfolio replay:` and `portfolio var check:`
/// lines: served fan-out must merge bit-identically to native, and the
/// finest grid's VaR must land inside the reference run's neighborhood.
pub fn portfolio_bench(opts: &RunOptions) {
    use finbench_core::portfolio::{par_revalue, revalue_into, Book, RevalScratch, ScenarioConfig};
    use finbench_core::workload::MarketParams;
    use finbench_serve::{PortfolioRequest, ServeConfig, Server};
    use std::time::Duration;

    println!(
        "{}",
        section("portfolio-bench — market-risk plane (scenario grids -> VaR/ES)")
    );

    // (a) Native ladder throughput: full-book revaluation driven through
    // the same engine plane as every other kernel.
    print_native_for_artifact("portfolio_bench", opts);

    const M: MarketParams = MarketParams::PAPER;
    const SEED: u64 = 0x9F0C; // book + grid seed shared by every panel

    // (b) VaR/ES convergence: one fixed book revalued over growing
    // scenario grids. Estimates carry order-statistic CIs; the reference
    // grid is 4x the finest sweep point, so coverage is checkable.
    let positions = if opts.quick { 64 } else { 128 };
    let grids: &[usize] = if opts.quick {
        &[128, 512, 2048]
    } else {
        &[512, 2048, 8192, 32768]
    };
    let book = Book::random(positions, SEED);
    let reference_scenarios = grids.last().unwrap() * 4;
    println!(
        "  [convergence] {positions} positions, grids {grids:?}, \
         reference {reference_scenarios} scenarios"
    );
    let sweep = |scenarios: usize| {
        let cfg = ScenarioConfig::standard(scenarios, SEED);
        let mut pnl = Vec::new();
        par_revalue(&book, M, &cfg, 256, &mut pnl);
        finbench_core::portfolio::var_es(&pnl, &[0.95, 0.99])
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv = String::from(
        "scenarios,var95,var95_lo,var95_hi,es95,es95_se,var99,var99_lo,var99_hi,es99,es99_se\n",
    );
    let mut push =
        |label: String, scenarios: usize, risk: &[finbench_core::portfolio::RiskSummary]| {
            let (r95, r99) = (&risk[0], &risk[1]);
            rows.push(vec![
                label,
                format!("{:.3}", r95.var),
                format!("[{:.3}, {:.3}]", r95.var_ci.0, r95.var_ci.1),
                format!("{:.3} ± {:.3}", r95.es, r95.es_se),
                format!("{:.3}", r99.var),
                format!("[{:.3}, {:.3}]", r99.var_ci.0, r99.var_ci.1),
                format!("{:.3} ± {:.3}", r99.es, r99.es_se),
            ]);
            csv.push_str(&format!(
                "{scenarios},{},{},{},{},{},{},{},{},{},{}\n",
                r95.var,
                r95.var_ci.0,
                r95.var_ci.1,
                r95.es,
                r95.es_se,
                r99.var,
                r99.var_ci.0,
                r99.var_ci.1,
                r99.es,
                r99.es_se
            ));
        };
    let mut finest: Vec<finbench_core::portfolio::RiskSummary> = Vec::new();
    for &scenarios in grids {
        let risk = sweep(scenarios);
        push(scenarios.to_string(), scenarios, &risk);
        finest = risk;
    }
    let reference = sweep(reference_scenarios);
    push(
        format!("{reference_scenarios} (ref)"),
        reference_scenarios,
        &reference,
    );
    println!(
        "{}",
        table(
            &[
                "scenarios",
                "VaR95",
                "95% CI",
                "ES95",
                "VaR99",
                "99% CI",
                "ES99"
            ],
            &rows
        )
    );
    maybe_write_csv(&opts.csv_dir, "portfolio_convergence.csv", &csv);
    println!("  (CIs are order statistics at rank ± 1.96·sqrt(c(1-c)n); ES ± tail std err)");
    println!();

    // Gate: the finest sweep grid's VaR must sit inside (a slightly
    // widened copy of) its own CI around the reference value — the
    // estimator converges toward the reference as the grid grows.
    let var_check = finest.iter().zip(reference.iter()).all(|(f, r)| {
        let half = ((f.var_ci.1 - f.var_ci.0) / 2.0).max(1e-9);
        (f.var - r.var).abs() <= 2.0 * half
    });

    // (c) One request through the sharded serving plane, replayed
    // natively. The chunk size forces a real fan-out so the merge path
    // (spill/steal/redrive territory) is what gets checked, and the
    // native sweep is the independent single-threaded oracle.
    let scenarios = if opts.quick { 96 } else { 384 };
    let replay_positions = if opts.quick { 24 } else { 64 };
    let chunk = 16;
    let server = Server::start(ServeConfig {
        queue_capacity: 1024,
        max_delay: Duration::from_micros(200),
        max_batch: 64,
        shards: 2,
        ..ServeConfig::default()
    });
    let req = PortfolioRequest::new(1, SEED, replay_positions, scenarios).with_chunk(chunk);
    let resp = server
        .submit_portfolio(req)
        .recv()
        .expect("portfolio response");
    let snapshot = server.shutdown();
    let out = match resp.outcome {
        Ok(out) => out,
        Err(e) => {
            println!("  portfolio replay: FAIL (request rejected: {e})");
            println!(
                "  portfolio var check: {}",
                if var_check { "OK" } else { "FAIL" }
            );
            return;
        }
    };
    let replay_book = Book::random(replay_positions, SEED);
    let cfg = ScenarioConfig::standard(scenarios, SEED);
    let mut scratch = RevalScratch::new();
    let mut native = Vec::new();
    revalue_into::<8>(&replay_book, M, &cfg.grid(), &mut scratch, &mut native);
    let bit_identical = out.pnl.len() == native.len()
        && out
            .pnl
            .iter()
            .zip(native.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "  [serve] {} scenarios in {} chunks across {} shards, rungs {:?}, \
         merged in {:.1} ms",
        out.scenarios,
        out.chunks,
        snapshot.shards.len(),
        out.rungs,
        out.latency.as_secs_f64() * 1e3
    );
    for r in &out.risk {
        println!(
            "  served VaR{:.0}: {:.4} (CI [{:.4}, {:.4}]), ES {:.4} ± {:.4}",
            r.confidence * 100.0,
            r.var,
            r.var_ci.0,
            r.var_ci.1,
            r.es,
            r.es_se
        );
    }

    // Gate lines (grepped by ci.sh).
    println!(
        "  portfolio replay: {} ({} scenarios bit-identical served vs native)",
        if bit_identical { "OK" } else { "FAIL" },
        native.len()
    );
    println!(
        "  portfolio var check: {}",
        if var_check { "OK" } else { "FAIL" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_mix_matches_paper_band() {
        let n = 32;
        let (plain, expanded) = black_scholes_op_mix(n);
        // Four cnd calls per option in the basic kernel, exactly.
        assert_eq!(plain.cnds, 4 * n as u64);
        assert_eq!(plain.cnds, expanded.cnds);
        // Plain tally: a few dozen ops when transcendentals count as one.
        let plain_per = plain.total_with_transcendentals() / n as u64;
        assert!((20..=60).contains(&plain_per), "plain {plain_per}");
        // Expanded tally: the paper's ~200 ops/option (§IV-A).
        let per = expanded.total_with_transcendentals() / n as u64;
        assert!((180..=230).contains(&per), "expanded {per} ops/option");
    }
}
