//! `finbench bench-report` / `bench-compare`: the machine-readable perf
//! trajectory.
//!
//! `bench-report` runs the full engine registry (all kernels × all rungs
//! through [`Engine::run_ladder_samples`]'s interleaved trials), a quick
//! serve + greeks load sweep (closed-loop latency percentiles plus an
//! open-loop peak-sustainable-load search), and an allocations-per-batch
//! measurement on the hot pricing paths, then writes one schema-versioned
//! `BENCH_<n>.json` at the repo root — the trajectory point every future
//! PR compares against.
//!
//! `bench-compare` diffs two such snapshots into a per-metric delta table
//! with a configurable noise threshold. Metrics are **gated** (a harmful
//! move beyond the threshold fails CI: per-rung median rates on
//! non-threaded rungs, serve shed counts, allocations/iter) or
//! **advisory** (reported, never fatal: latency percentiles, peak load,
//! best-of rates, cycle counts, threaded rungs). `--self-test` degrades
//! every gated metric of a snapshot synthetically and verifies the gate
//! actually fires — the regression gate's own regression test.

use crate::native;
use crate::render::{fmt_num, section, table};
use finbench_core::greeks::GreeksBatchSoa;
use finbench_engine::RungSamples;
use finbench_serve::{
    padded_batch_into, search_peak, GreeksRequest, GreeksResponse, LoadMode, PeakReport,
    PeakSearchConfig, PeakStep, PortfolioRequest, PricerConfig, Rejected, Scratch, ServeConfig,
    Server, ServingRung,
};
use finbench_telemetry as telemetry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use telemetry::json::{self, Json};

/// Schema version stamped into every `BENCH_<n>.json`; [`load_bench`]
/// rejects versions it doesn't know with a typed [`CompareError`].
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Default noise threshold for gated metrics, percent.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// Options for `bench-report`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReportOptions {
    /// Shrink workloads and sweep sizes (CI-friendly).
    pub quick: bool,
    /// Interleaved trials per kernel ladder (0 = auto: 2 quick, 3 full).
    pub trials: usize,
    /// Output path (default: next free `BENCH_<n>.json` in the cwd).
    pub out: Option<String>,
}

impl BenchReportOptions {
    fn effective_trials(&self) -> usize {
        match self.trials {
            0 if self.quick => 2,
            0 => 3,
            t => t,
        }
    }
}

/// How `bench-compare` was invoked.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareMode {
    /// Diff two snapshot files.
    Files {
        /// Baseline snapshot path.
        old: String,
        /// Candidate snapshot path.
        new: String,
    },
    /// Degrade `snapshot` synthetically and verify the gate fires.
    SelfTest {
        /// Snapshot to degrade.
        snapshot: String,
    },
}

/// Parsed `bench-compare` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCompareArgs {
    /// Files or self-test.
    pub mode: CompareMode,
    /// Noise threshold for gated metrics, percent.
    pub threshold_pct: f64,
}

// ---------------------------------------------------------------------------
// bench-report
// ---------------------------------------------------------------------------

struct LaneStats {
    lane: String,
    rung: String,
    offered: usize,
    served: usize,
    shed: usize,
    other_rejected: usize,
    throughput_rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    peak: PeakReport,
}

struct AllocLane {
    lane: String,
    rung: String,
    batch: usize,
    iters: usize,
    allocs_per_iter: f64,
    bytes_per_iter: f64,
}

/// Run the full bench sweep and write the snapshot; returns the path
/// written. Errors are I/O only — measurement itself cannot fail.
pub fn bench_report(opts: &BenchReportOptions) -> Result<PathBuf, String> {
    // Counters/spans must be on for shed counters and rung summaries to
    // record; an explicit FINBENCH_LOG still wins.
    if std::env::var("FINBENCH_LOG").is_err() {
        telemetry::set_filter("all");
    }
    telemetry::reset_metrics();
    let quick = opts.quick;
    let trials = opts.effective_trials();
    let engine = native::engine();

    println!(
        "{}",
        section(&format!(
            "bench-report (schema v{BENCH_SCHEMA_VERSION}, {} mode, {trials} trials, {} timer @ {:.2} GHz)",
            if quick { "quick" } else { "full" },
            telemetry::cycles::cycle_source(),
            telemetry::cycles::tsc_ghz(),
        ))
    );

    // 1. Native ladders: every kernel × every rung, interleaved trials.
    let mut kernels_json = Vec::new();
    let mut rows = Vec::new();
    for kernel in engine.registry().kernels() {
        let rungs = engine.run_ladder_samples(kernel, quick, trials);
        for r in &rungs {
            rows.push(vec![
                kernel.name().to_string(),
                r.slug.clone(),
                r.samples.count().to_string(),
                fmt_num(r.samples.median()),
                fmt_num(r.samples.p95()),
                fmt_num(r.samples.median_cycles_per_item()),
            ]);
        }
        kernels_json.push(kernel_json(kernel.name(), kernel.unit(), &rungs));
    }
    println!(
        "{}",
        table(
            &["kernel", "rung", "reps", "median", "p95", "cycles/item"],
            &rows
        )
    );

    // 2. Serve + greeks lanes: closed-loop latency, open-loop peak.
    let pricer = PricerConfig {
        binomial_steps: if quick { 64 } else { 256 },
        ..PricerConfig::default()
    };
    let lanes = vec![
        price_lane("black_scholes", pricer, quick),
        greeks_lane(pricer, quick),
        portfolio_lane(pricer, quick),
    ];
    let lane_rows: Vec<Vec<String>> = lanes
        .iter()
        .map(|l| {
            vec![
                l.lane.clone(),
                l.served.to_string(),
                l.shed.to_string(),
                fmt_num(l.throughput_rps),
                format!("{:.0}", l.p50_us),
                format!("{:.0}", l.p95_us),
                format!("{:.0}", l.p99_us),
                fmt_num(l.peak.sustained_hz()),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "lane",
                "served",
                "shed",
                "req/s",
                "p50 µs",
                "p95 µs",
                "p99 µs",
                "peak req/s"
            ],
            &lane_rows
        )
    );

    // 3. Allocations per batch iteration on the hot pricing paths (all
    // servers above have shut down, so no other thread is allocating).
    let allocs = alloc_lanes(pricer);
    if telemetry::counting_allocator_active() {
        let alloc_rows: Vec<Vec<String>> = allocs
            .iter()
            .map(|a| {
                vec![
                    a.lane.clone(),
                    a.batch.to_string(),
                    format!("{:.1}", a.allocs_per_iter),
                    fmt_num(a.bytes_per_iter),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                &["alloc lane", "batch", "allocs/iter", "bytes/iter"],
                &alloc_rows
            )
        );
        // Machine-readable zero-alloc gate lines: ci.sh requires every
        // pooled (steady-state serve) lane to report exactly 0.0.
        for a in allocs.iter().filter(|a| a.lane.ends_with("_pooled")) {
            println!(
                "  alloc-gate {} allocs_per_iter={:.1}",
                a.lane, a.allocs_per_iter
            );
        }
    } else {
        println!("  (counting allocator not installed; allocs/iter unavailable)");
    }

    // 4. Shed/degradation counters accumulated by the sweep above.
    let counters: Vec<(String, u64)> = telemetry::counter_snapshot()
        .into_iter()
        .filter(|(name, _)| {
            ["serve.", "greeks.", "portfolio.", "loadgen."]
                .iter()
                .any(|p| name.starts_with(p))
        })
        .collect();

    let doc = assemble_json(opts, trials, kernels_json, &lanes, &allocs, &counters);
    let path = match &opts.out {
        Some(p) => PathBuf::from(p),
        None => next_bench_path(Path::new(".")),
    };
    std::fs::write(&path, doc.to_json() + "\n")
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("  snapshot written to {}", path.display());
    Ok(path)
}

fn kernel_json(name: &str, unit: &str, rungs: &[RungSamples]) -> Json {
    let rungs_json: Vec<Json> = rungs
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("slug".into(), Json::Str(r.slug.clone())),
                ("label".into(), Json::Str(r.label.to_string())),
                ("level".into(), Json::Str(r.level.to_string())),
                ("threaded".into(), Json::Bool(r.threaded)),
                ("items".into(), Json::Num(r.items as f64)),
                ("reps".into(), Json::Num(r.samples.count() as f64)),
                ("median_rate".into(), Json::Num(r.samples.median())),
                ("p95_rate".into(), Json::Num(r.samples.p95())),
                ("best_rate".into(), Json::Num(r.samples.best())),
                (
                    "median_cpi".into(),
                    Json::Num(r.samples.median_cycles_per_item()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("name".into(), Json::Str(name.to_string())),
        ("unit".into(), Json::Str(unit.to_string())),
        ("rungs".into(), Json::Arr(rungs_json)),
    ])
}

fn serve_config(pricer: PricerConfig, queue_capacity: usize) -> ServeConfig {
    ServeConfig {
        queue_capacity,
        max_delay: Duration::from_micros(500),
        max_batch: 4096,
        pricer,
        ..ServeConfig::default()
    }
}

fn peak_schedule(closed_rps: f64, quick: bool) -> PeakSearchConfig {
    PeakSearchConfig {
        // Start well under the closed-loop throughput so the first steps
        // establish a sustained floor before the search rides into shed.
        start_hz: (closed_rps * 0.25).max(200.0),
        growth: 1.7,
        max_steps: if quick { 5 } else { 8 },
        window_secs: if quick { 0.12 } else { 0.3 },
        seed: 0xBEA7,
    }
}

/// Closed-loop latency + open-loop peak for one price-request kernel.
fn price_lane(kernel: &str, pricer: PricerConfig, quick: bool) -> LaneStats {
    let rung = finbench_serve::pricer::resolve(native::engine(), kernel, &pricer)
        .map(|r: ServingRung| r.slug)
        .unwrap_or_default();
    let clients = 4;
    let per_client = if quick { 150 } else { 600 };
    let server = Server::start(serve_config(pricer, clients * per_client));
    let closed = finbench_serve::run_load(
        &server,
        kernel,
        LoadMode::Closed {
            clients,
            requests_per_client: per_client,
        },
        0xC0FFEE,
        None,
    );
    server.shutdown();
    // Peak search against a realistically bounded queue: overload must
    // shed, not buffer forever.
    let peak = finbench_serve::find_peak_sustained(
        || Server::start(serve_config(pricer, 256)),
        kernel,
        &peak_schedule(closed.throughput, quick),
    );
    LaneStats {
        lane: kernel.to_string(),
        rung,
        offered: closed.offered,
        served: closed.served,
        shed: closed.total_shed(),
        other_rejected: closed.rejected_total() + closed.invalid_input + closed.internal,
        throughput_rps: closed.throughput,
        p50_us: closed.p50_us,
        p95_us: closed.p95_us,
        p99_us: closed.p99_us,
        peak,
    }
}

/// Closed-loop latency + open-loop peak for the greeks lane (its own
/// request type, so it can't ride [`finbench_serve::run_load`]).
fn greeks_lane(pricer: PricerConfig, quick: bool) -> LaneStats {
    let rung = finbench_serve::greeks_ladder(pricer.market)
        .first()
        .map(|r| r.slug.clone())
        .unwrap_or_default();
    let clients = 4;
    let per_client = if quick { 150 } else { 600 };
    let server = Server::start(serve_config(pricer, clients * per_client));
    let t0 = Instant::now();
    let per_client_results: Vec<(Vec<f64>, usize, usize, usize)> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let server = &server;
                scope.spawn(move || {
                    let mut stream = finbench_serve::OptionStream::new(0x9EEC5 + c as u64);
                    let mut lat_us = Vec::with_capacity(per_client);
                    let (mut served, mut shed, mut other) = (0usize, 0usize, 0usize);
                    for i in 0..per_client {
                        let (s, x, t) = stream.next_option();
                        let id = (c * per_client + i) as u64;
                        let sent = Instant::now();
                        let rx = server.submit_greeks(GreeksRequest::new(id, s, x, t));
                        match rx.recv() {
                            Ok(resp) => tally(
                                &resp,
                                sent.elapsed(),
                                &mut lat_us,
                                &mut served,
                                &mut shed,
                                &mut other,
                            ),
                            Err(_) => break,
                        }
                    }
                    (lat_us, served, shed, other)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("greeks client thread"))
            .collect()
    });
    let wall = t0.elapsed();
    server.shutdown();
    let mut lat_us = Vec::new();
    let (mut served, mut shed, mut other) = (0usize, 0usize, 0usize);
    for (lat, s, sh, o) in per_client_results {
        lat_us.extend(lat);
        served += s;
        shed += sh;
        other += o;
    }
    let throughput_rps = served as f64 / wall.as_secs_f64().max(1e-9);
    let pct = |q: f64| {
        if lat_us.is_empty() {
            0.0
        } else {
            telemetry::nearest_rank_unsorted(&lat_us, q)
        }
    };
    let (p50_us, p95_us, p99_us) = (pct(0.50), pct(0.95), pct(0.99));
    let peak = search_peak(
        &peak_schedule(throughput_rps, quick),
        |rate_hz, total, seed| {
            let server = Server::start(serve_config(pricer, 256));
            let step = greeks_open_step(&server, rate_hz, total, seed);
            server.shutdown();
            step
        },
    );
    LaneStats {
        lane: "greeks".into(),
        rung,
        offered: clients * per_client,
        served,
        shed,
        other_rejected: other,
        throughput_rps,
        p50_us,
        p95_us,
        p99_us,
        peak,
    }
}

/// Closed-loop latency + open-loop peak for the portfolio lane. Each
/// request fans a multi-chunk scenario sweep across the shards and
/// merges VaR/ES back, so "one request" here is hundreds of pricings —
/// the lane's req/s is necessarily far below the price lanes'.
fn portfolio_lane(pricer: PricerConfig, quick: bool) -> LaneStats {
    let rung = finbench_serve::portfolio_ladder(pricer.market)
        .first()
        .map(|r| r.slug.clone())
        .unwrap_or_default();
    let clients = 2;
    let per_client = if quick { 20 } else { 60 };
    let (positions, scenarios, chunk) = (16usize, 64usize, 16usize);
    let server = Server::start(serve_config(pricer, 1024));
    let t0 = Instant::now();
    let per_client_results: Vec<(Vec<f64>, usize, usize, usize)> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let server = &server;
                scope.spawn(move || {
                    let mut lat_us = Vec::with_capacity(per_client);
                    let (mut served, mut shed, mut other) = (0usize, 0usize, 0usize);
                    for i in 0..per_client {
                        let id = (c * per_client + i) as u64;
                        let seed = finbench_serve::mix_seed(0x9F0C, id);
                        let sent = Instant::now();
                        let rx = server.submit_portfolio(
                            PortfolioRequest::new(id, seed, positions, scenarios).with_chunk(chunk),
                        );
                        match rx.recv() {
                            Ok(resp) => tally_portfolio(
                                &resp,
                                sent.elapsed(),
                                &mut lat_us,
                                &mut served,
                                &mut shed,
                                &mut other,
                            ),
                            Err(_) => break,
                        }
                    }
                    (lat_us, served, shed, other)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("portfolio client thread"))
            .collect()
    });
    let wall = t0.elapsed();
    server.shutdown();
    let mut lat_us = Vec::new();
    let (mut served, mut shed, mut other) = (0usize, 0usize, 0usize);
    for (lat, s, sh, o) in per_client_results {
        lat_us.extend(lat);
        served += s;
        shed += sh;
        other += o;
    }
    let throughput_rps = served as f64 / wall.as_secs_f64().max(1e-9);
    let pct = |q: f64| {
        if lat_us.is_empty() {
            0.0
        } else {
            telemetry::nearest_rank_unsorted(&lat_us, q)
        }
    };
    let (p50_us, p95_us, p99_us) = (pct(0.50), pct(0.95), pct(0.99));
    let peak = search_peak(
        &peak_schedule(throughput_rps, quick),
        |rate_hz, total, seed| {
            let server = Server::start(serve_config(pricer, 256));
            let step = portfolio_open_step(&server, rate_hz, total, seed, positions, scenarios);
            server.shutdown();
            step
        },
    );
    LaneStats {
        lane: "portfolio".into(),
        rung,
        offered: clients * per_client,
        served,
        shed,
        other_rejected: other,
        throughput_rps,
        p50_us,
        p95_us,
        p99_us,
        peak,
    }
}

fn tally_portfolio(
    resp: &finbench_serve::PortfolioResponse,
    rtt: Duration,
    lat_us: &mut Vec<f64>,
    served: &mut usize,
    shed: &mut usize,
    other: &mut usize,
) {
    match &resp.outcome {
        Ok(_) => {
            *served += 1;
            lat_us.push(rtt.as_secs_f64() * 1e6);
        }
        Err(Rejected::QueueFull { .. }) | Err(Rejected::DeadlineExceeded { .. }) => *shed += 1,
        Err(_) => *other += 1,
    }
}

/// One paced open-loop window of portfolio requests. Fan-out requests
/// are answered through per-request merge tasks, so the collector drains
/// one response per submitted request just like the price lanes.
fn portfolio_open_step(
    server: &Server,
    rate_hz: f64,
    total: usize,
    seed: u64,
    positions: usize,
    scenarios: usize,
) -> PeakStep {
    let gap = Duration::from_secs_f64(1.0 / rate_hz.max(1.0));
    let (tx, rx) = mpsc::channel::<finbench_serve::PortfolioResponse>();
    let collector = std::thread::spawn(move || {
        let (mut served, mut shed, mut other) = (0usize, 0usize, 0usize);
        let mut lat = Vec::new();
        for resp in rx.iter() {
            tally_portfolio(
                &resp,
                Duration::ZERO,
                &mut lat,
                &mut served,
                &mut shed,
                &mut other,
            );
        }
        (served, shed, other)
    });
    let t0 = Instant::now();
    for i in 0..total {
        let due = t0 + gap.mul_f64(i as f64);
        if let Some(sleep) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        let req = PortfolioRequest::new(
            i as u64,
            finbench_serve::mix_seed(seed, i as u64),
            positions,
            scenarios,
        )
        .with_chunk(16);
        server.submit_portfolio_with(req, &tx);
    }
    drop(tx);
    let (served, shed, other_rejected) = collector.join().expect("portfolio collector thread");
    PeakStep {
        rate_hz,
        offered: total,
        served,
        shed,
        other_rejected,
    }
}

fn tally(
    resp: &GreeksResponse,
    rtt: Duration,
    lat_us: &mut Vec<f64>,
    served: &mut usize,
    shed: &mut usize,
    other: &mut usize,
) {
    match &resp.outcome {
        Ok(_) => {
            *served += 1;
            lat_us.push(rtt.as_secs_f64() * 1e6);
        }
        Err(Rejected::QueueFull { .. }) | Err(Rejected::DeadlineExceeded { .. }) => *shed += 1,
        Err(_) => *other += 1,
    }
}

/// One paced open-loop window of greeks requests (the greeks analogue of
/// the loadgen open loop, counting outcomes instead of latencies).
fn greeks_open_step(server: &Server, rate_hz: f64, total: usize, seed: u64) -> PeakStep {
    let gap = Duration::from_secs_f64(1.0 / rate_hz.max(1.0));
    let mut stream = finbench_serve::OptionStream::new(seed);
    let (tx, rx) = mpsc::channel::<GreeksResponse>();
    let collector = std::thread::spawn(move || {
        let (mut served, mut shed, mut other) = (0usize, 0usize, 0usize);
        let mut lat = Vec::new();
        for resp in rx.iter() {
            tally(
                &resp,
                Duration::ZERO,
                &mut lat,
                &mut served,
                &mut shed,
                &mut other,
            );
        }
        (served, shed, other)
    });
    let t0 = Instant::now();
    for i in 0..total {
        let due = t0 + gap.mul_f64(i as f64);
        if let Some(sleep) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        let (s, x, t) = stream.next_option();
        server.submit_greeks_with(GreeksRequest::new(i as u64, s, x, t), &tx);
    }
    drop(tx);
    let (served, shed, other_rejected) = collector.join().expect("greeks collector thread");
    PeakStep {
        rate_hz,
        offered: total,
        served,
        shed,
        other_rejected,
    }
}

const ALLOC_BATCH: usize = 128;
const ALLOC_ITERS: usize = 64;

/// Allocations per batch iteration on the hot pricing paths. Zeros mean
/// either a genuinely allocation-free path or an uninstalled counting
/// allocator — the snapshot records which via `alloc_counter_active`.
///
/// Two families per kernel: the historical *allocating* lane (fresh
/// batch per iteration, the pre-`*_into` serve path) and a `_pooled`
/// lane that reuses one [`Scratch`] across iterations the way a serve
/// lane does at steady state. The pooled SOA lanes must report **0**
/// allocs/iter — ci.sh greps the `alloc-gate` lines for exactly that.
fn alloc_lanes(pricer: PricerConfig) -> Vec<AllocLane> {
    let mut stream = finbench_serve::OptionStream::new(0xA110C);
    let opts: Vec<(f64, f64, f64)> = (0..ALLOC_BATCH).map(|_| stream.next_option()).collect();
    let mut out = Vec::new();
    for kernel in ["black_scholes", "binomial"] {
        if let Ok(rung) = finbench_serve::pricer::resolve(native::engine(), kernel, &pricer) {
            let per_iter = |_: usize| {
                let mut batch = finbench_core::OptionBatchSoa::zeroed(0);
                padded_batch_into(&mut batch, &opts, rung.width);
                rung.price(&mut batch);
                std::hint::black_box(&batch);
            };
            let (allocs_per_iter, bytes_per_iter) = measure_allocs(per_iter);
            out.push(AllocLane {
                lane: kernel.to_string(),
                rung: rung.slug.clone(),
                batch: ALLOC_BATCH,
                iters: ALLOC_ITERS,
                allocs_per_iter,
                bytes_per_iter,
            });
        }
    }
    // Pooled Black-Scholes: the steady-state serve price path (binomial
    // is excluded — its lattice kernel allocates internally by design).
    if let Ok(rung) = finbench_serve::pricer::resolve(native::engine(), "black_scholes", &pricer) {
        let mut scratch = Scratch::new();
        let per_iter = |_: usize| {
            scratch.opts.clear();
            scratch.opts.extend_from_slice(&opts);
            scratch.stage(rung.width);
            rung.price(&mut scratch.soa);
            std::hint::black_box(&scratch.soa);
        };
        let (allocs_per_iter, bytes_per_iter) = measure_allocs(per_iter);
        out.push(AllocLane {
            lane: "black_scholes_pooled".into(),
            rung: rung.slug.clone(),
            batch: ALLOC_BATCH,
            iters: ALLOC_ITERS,
            allocs_per_iter,
            bytes_per_iter,
        });
    }
    if let Some(rung) = finbench_serve::greeks_ladder(pricer.market)
        .into_iter()
        .next()
    {
        let per_iter = |_: usize| {
            let mut batch = finbench_core::OptionBatchSoa::zeroed(0);
            padded_batch_into(&mut batch, &opts, rung.width);
            let mut greeks = GreeksBatchSoa::zeroed(batch.len());
            rung.compute(&batch, &mut greeks);
            std::hint::black_box(&greeks);
        };
        let (allocs_per_iter, bytes_per_iter) = measure_allocs(per_iter);
        out.push(AllocLane {
            lane: "greeks".into(),
            rung: rung.slug.clone(),
            batch: ALLOC_BATCH,
            iters: ALLOC_ITERS,
            allocs_per_iter,
            bytes_per_iter,
        });
        // Pooled greeks: the steady-state serve greeks path.
        let mut scratch = Scratch::new();
        let per_iter = |_: usize| {
            scratch.opts.clear();
            scratch.opts.extend_from_slice(&opts);
            scratch.stage(rung.width);
            scratch.greeks.resize(scratch.soa.len());
            rung.compute(&scratch.soa, &mut scratch.greeks);
            std::hint::black_box(&scratch.greeks);
        };
        let (allocs_per_iter, bytes_per_iter) = measure_allocs(per_iter);
        out.push(AllocLane {
            lane: "greeks_pooled".into(),
            rung: rung.slug.clone(),
            batch: ALLOC_BATCH,
            iters: ALLOC_ITERS,
            allocs_per_iter,
            bytes_per_iter,
        });
    }
    // Pooled fused pass: prices + all ten greeks in one sweep over the
    // same reused scratch — the cheapest way to serve both planes.
    {
        let mut scratch = Scratch::new();
        let market = pricer.market;
        let per_iter = |_: usize| {
            scratch.opts.clear();
            scratch.opts.extend_from_slice(&opts);
            scratch.stage(8);
            scratch.greeks.resize(scratch.soa.len());
            finbench_core::greeks::price_and_greeks_into::<8>(
                &mut scratch.soa,
                market,
                &mut scratch.greeks,
            );
            std::hint::black_box(&scratch.greeks);
        };
        let (allocs_per_iter, bytes_per_iter) = measure_allocs(per_iter);
        out.push(AllocLane {
            lane: "fused_pooled".into(),
            rung: "advanced_fused_price_greeks_w_8".into(),
            batch: ALLOC_BATCH,
            iters: ALLOC_ITERS,
            allocs_per_iter,
            bytes_per_iter,
        });
    }
    out
}

fn measure_allocs(mut per_iter: impl FnMut(usize)) -> (f64, f64) {
    for i in 0..4 {
        per_iter(i); // warmup: lazy statics, pool spin-up
    }
    let before = telemetry::alloc_stats();
    for i in 0..ALLOC_ITERS {
        per_iter(i);
    }
    let d = telemetry::alloc_stats().since(before);
    (
        d.allocs as f64 / ALLOC_ITERS as f64,
        d.bytes as f64 / ALLOC_ITERS as f64,
    )
}

fn assemble_json(
    opts: &BenchReportOptions,
    trials: usize,
    kernels: Vec<Json>,
    lanes: &[LaneStats],
    allocs: &[AllocLane],
    counters: &[(String, u64)],
) -> Json {
    let lanes_json: Vec<Json> = lanes
        .iter()
        .map(|l| {
            Json::Obj(vec![
                ("lane".into(), Json::Str(l.lane.clone())),
                ("rung".into(), Json::Str(l.rung.clone())),
                ("offered".into(), Json::Num(l.offered as f64)),
                ("served".into(), Json::Num(l.served as f64)),
                ("shed".into(), Json::Num(l.shed as f64)),
                ("other_rejected".into(), Json::Num(l.other_rejected as f64)),
                ("throughput_rps".into(), Json::Num(l.throughput_rps)),
                ("p50_us".into(), Json::Num(l.p50_us)),
                ("p95_us".into(), Json::Num(l.p95_us)),
                ("p99_us".into(), Json::Num(l.p99_us)),
                ("peak_sustained_hz".into(), Json::Num(l.peak.sustained_hz())),
                (
                    "peak_last_attempted_hz".into(),
                    Json::Num(l.peak.last_attempted_hz),
                ),
                ("peak_steps".into(), Json::Num(l.peak.steps.len() as f64)),
            ])
        })
        .collect();
    let allocs_json: Vec<Json> = allocs
        .iter()
        .map(|a| {
            Json::Obj(vec![
                ("lane".into(), Json::Str(a.lane.clone())),
                ("rung".into(), Json::Str(a.rung.clone())),
                ("batch".into(), Json::Num(a.batch as f64)),
                ("iters".into(), Json::Num(a.iters as f64)),
                ("allocs_per_iter".into(), Json::Num(a.allocs_per_iter)),
                ("bytes_per_iter".into(), Json::Num(a.bytes_per_iter)),
            ])
        })
        .collect();
    let counters_json: Vec<(String, Json)> = counters
        .iter()
        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
        .collect();
    Json::Obj(vec![
        (
            "schema_version".into(),
            Json::Num(BENCH_SCHEMA_VERSION as f64),
        ),
        ("tool".into(), Json::Str("finbench bench-report".into())),
        ("quick".into(), Json::Bool(opts.quick)),
        ("trials".into(), Json::Num(trials as f64)),
        (
            "cycle_source".into(),
            Json::Str(telemetry::cycles::cycle_source().into()),
        ),
        ("tsc_ghz".into(), Json::Num(telemetry::cycles::tsc_ghz())),
        (
            "cycle_overhead".into(),
            Json::Num(telemetry::cycles::overhead_cycles()),
        ),
        (
            "alloc_counter_active".into(),
            Json::Bool(telemetry::counting_allocator_active()),
        ),
        ("host".into(), HostFingerprint::current().to_json()),
        ("kernels".into(), Json::Arr(kernels)),
        ("serve".into(), Json::Arr(lanes_json)),
        ("allocs".into(), Json::Arr(allocs_json)),
        ("counters".into(), Json::Obj(counters_json)),
    ])
}

/// The machine a snapshot was taken on. Rates are only comparable
/// between identical hosts; `bench-compare` downgrades gated metrics to
/// advisory when fingerprints differ.
#[derive(Debug, Clone, PartialEq)]
pub struct HostFingerprint {
    /// CPU model string (`/proc/cpuinfo` "model name"; "unknown" when
    /// unavailable).
    pub cpu_model: String,
    /// Logical core count.
    pub logical_cores: u64,
    /// Calibrated TSC frequency, GHz.
    pub tsc_ghz: f64,
}

impl HostFingerprint {
    /// Fingerprint of the machine running this process.
    pub fn current() -> Self {
        Self {
            cpu_model: cpu_model_string(),
            logical_cores: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
            tsc_ghz: telemetry::cycles::tsc_ghz(),
        }
    }

    /// Whether two fingerprints describe different machines: model or
    /// core count differs, or the calibrated TSC differs by more than 5%
    /// (calibration wobbles a little between boots; a different part
    /// doesn't).
    pub fn differs_from(&self, other: &Self) -> bool {
        if self.cpu_model != other.cpu_model || self.logical_cores != other.logical_cores {
            return true;
        }
        let base = self.tsc_ghz.abs().max(1e-9);
        (self.tsc_ghz - other.tsc_ghz).abs() / base > 0.05
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cpu_model".into(), Json::Str(self.cpu_model.clone())),
            ("logical_cores".into(), Json::Num(self.logical_cores as f64)),
            ("tsc_ghz".into(), Json::Num(self.tsc_ghz)),
        ])
    }
}

impl std::fmt::Display for HostFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} × {} @ {:.2} GHz",
            self.logical_cores, self.cpu_model, self.tsc_ghz
        )
    }
}

/// First `model name` line of `/proc/cpuinfo` (Linux); "unknown"
/// elsewhere or when the file is unreadable.
fn cpu_model_string() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Next free `BENCH_<n>.json` in `dir`: one past the highest committed
/// trajectory point.
pub fn next_bench_path(dir: &Path) -> PathBuf {
    let mut max_n = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix("BENCH_")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                max_n = max_n.max(n);
            }
        }
    }
    dir.join(format!("BENCH_{}.json", max_n + 1))
}

// ---------------------------------------------------------------------------
// bench-compare
// ---------------------------------------------------------------------------

/// Typed failure modes of snapshot loading/comparison — never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareError {
    /// The file couldn't be read.
    Io {
        /// Offending path.
        path: String,
        /// OS error text.
        msg: String,
    },
    /// The file isn't valid JSON.
    Parse {
        /// Offending path.
        path: String,
        /// Parser error text.
        msg: String,
    },
    /// The snapshot declares a schema version this binary doesn't know
    /// (or none at all).
    UnknownSchema {
        /// Offending path.
        path: String,
        /// What the file declared (`"missing"` when absent).
        found: String,
        /// The version this binary supports.
        supported: u64,
    },
    /// The snapshot parses but doesn't have the expected shape, or the
    /// two snapshots aren't comparable (quick vs. full).
    Malformed {
        /// Offending path (or both, for comparability errors).
        path: String,
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompareError::Io { path, msg } => write!(f, "{path}: {msg}"),
            CompareError::Parse { path, msg } => write!(f, "{path}: invalid JSON: {msg}"),
            CompareError::UnknownSchema {
                path,
                found,
                supported,
            } => write!(
                f,
                "{path}: unknown schema_version {found} (this binary supports {supported})"
            ),
            CompareError::Malformed { path, what } => write!(f, "{path}: {what}"),
        }
    }
}

impl std::error::Error for CompareError {}

/// One comparable scalar extracted from a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Dotted metric path, e.g. `native.black_scholes.simd_soa_w_8.median_rate`.
    pub path: String,
    /// The value.
    pub value: f64,
    /// Gated metrics fail CI on a harmful move beyond threshold;
    /// advisory metrics only report.
    pub gated: bool,
    /// Direction of "good".
    pub higher_is_better: bool,
    /// Minimum harmful delta that counts, in metric units — lets
    /// count-like metrics sitting at 0 gate on "any increase" while
    /// ignoring float dust.
    pub abs_floor: f64,
}

/// A loaded, flattened snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Whether the snapshot was taken in `--quick` mode.
    pub quick: bool,
    /// The machine the snapshot was taken on (absent in snapshots
    /// predating the fingerprint field).
    pub host: Option<HostFingerprint>,
    /// All comparable metrics, document order.
    pub metrics: Vec<Metric>,
}

/// Load and flatten one `BENCH_<n>.json`.
pub fn load_bench(path: &Path) -> Result<BenchDoc, CompareError> {
    let label = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| CompareError::Io {
        path: label.clone(),
        msg: e.to_string(),
    })?;
    let doc = json::parse(&text).map_err(|e| CompareError::Parse {
        path: label.clone(),
        msg: e,
    })?;
    flatten(&doc, &label)
}

fn flatten(doc: &Json, label: &str) -> Result<BenchDoc, CompareError> {
    match doc.get("schema_version") {
        Some(Json::Num(v)) if *v == BENCH_SCHEMA_VERSION as f64 => {}
        Some(other) => {
            return Err(CompareError::UnknownSchema {
                path: label.to_string(),
                found: other.to_json(),
                supported: BENCH_SCHEMA_VERSION,
            })
        }
        None => {
            return Err(CompareError::UnknownSchema {
                path: label.to_string(),
                found: "missing".to_string(),
                supported: BENCH_SCHEMA_VERSION,
            })
        }
    }
    let quick = matches!(doc.get("quick"), Some(Json::Bool(true)));
    let host = doc.get("host").map(|h| HostFingerprint {
        cpu_model: h
            .get("cpu_model")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        logical_cores: h.get("logical_cores").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        tsc_ghz: h.get("tsc_ghz").and_then(Json::as_f64).unwrap_or(0.0),
    });
    let mut metrics = Vec::new();

    let arr = |key: &str| -> Result<&[Json], CompareError> {
        match doc.get(key) {
            Some(Json::Arr(items)) => Ok(items),
            _ => Err(CompareError::Malformed {
                path: label.to_string(),
                what: format!("missing or non-array {key:?} section"),
            }),
        }
    };
    let str_of = |obj: &Json, key: &str| -> Result<String, CompareError> {
        obj.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| CompareError::Malformed {
                path: label.to_string(),
                what: format!("entry missing string {key:?}"),
            })
    };

    for kernel in arr("kernels")? {
        let name = str_of(kernel, "name")?;
        let Some(Json::Arr(rungs)) = kernel.get("rungs") else {
            return Err(CompareError::Malformed {
                path: label.to_string(),
                what: format!("kernel {name:?} has no rungs array"),
            });
        };
        for rung in rungs {
            let slug = str_of(rung, "slug")?;
            let threaded = matches!(rung.get("threaded"), Some(Json::Bool(true)));
            let base = format!("native.{name}.{slug}");
            let mut push = |field: &str, gated: bool, higher: bool| {
                if let Some(v) = rung.get(field).and_then(Json::as_f64) {
                    metrics.push(Metric {
                        path: format!("{base}.{field}"),
                        value: v,
                        gated,
                        higher_is_better: higher,
                        abs_floor: 0.0,
                    });
                }
            };
            // Thread-pool rungs wobble with scheduler load; advisory.
            push("median_rate", !threaded, true);
            push("p95_rate", false, true);
            push("best_rate", false, true);
            push("median_cpi", false, false);
        }
    }

    for lane in arr("serve")? {
        let name = str_of(lane, "lane")?;
        let base = format!("serve.{name}");
        let mut push = |field: &str, gated: bool, higher: bool, floor: f64| {
            if let Some(v) = lane.get(field).and_then(Json::as_f64) {
                metrics.push(Metric {
                    path: format!("{base}.{field}"),
                    value: v,
                    gated,
                    higher_is_better: higher,
                    abs_floor: floor,
                });
            }
        };
        // A closed-loop lane with ample queue must not shed at all: any
        // increase (floor 0.5 ⇒ ≥ 1 whole request) is a gated regression.
        push("shed", true, false, 0.5);
        push("other_rejected", true, false, 0.5);
        push("throughput_rps", false, true, 0.0);
        push("p50_us", false, false, 0.0);
        push("p95_us", false, false, 0.0);
        push("p99_us", false, false, 0.0);
        push("peak_sustained_hz", false, true, 0.0);
    }

    for lane in arr("allocs")? {
        let name = str_of(lane, "lane")?;
        let base = format!("allocs.{name}");
        let mut push = |field: &str, gated: bool, floor: f64| {
            if let Some(v) = lane.get(field).and_then(Json::as_f64) {
                metrics.push(Metric {
                    path: format!("{base}.{field}"),
                    value: v,
                    gated,
                    higher_is_better: false,
                    abs_floor: floor,
                });
            }
        };
        // Floor of 4 allocs/iter on the allocating lanes: the hot path
        // gate triggers on real regressions (a new Vec per batch = +1.0),
        // not allocator jitter around tiny counts. Pooled lanes promise
        // exactly zero, so any allocation at all (≥ 1/iter) is gated.
        let floor = if name.ends_with("_pooled") { 0.5 } else { 4.0 };
        push("allocs_per_iter", true, floor);
        push("bytes_per_iter", false, 0.0);
    }

    if let Some(Json::Obj(counters)) = doc.get("counters") {
        for (name, v) in counters {
            let Some(v) = v.as_f64() else { continue };
            // Only failure-ish counters are comparable (advisory): raw
            // served/offered totals scale with sweep size, not health.
            let failure_ish = [
                "shed",
                "degraded",
                "restart",
                "internal",
                "unmatched",
                "rejected",
            ]
            .iter()
            .any(|s| name.contains(s));
            if failure_ish {
                metrics.push(Metric {
                    path: format!("counters.{name}"),
                    value: v,
                    gated: false,
                    higher_is_better: false,
                    abs_floor: 0.5,
                });
            }
        }
    }

    Ok(BenchDoc {
        quick,
        host,
        metrics,
    })
}

/// One metric's old-vs-new delta.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Dotted metric path.
    pub path: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Signed relative change, percent (NaN when old == 0).
    pub pct: f64,
    /// Whether this metric is gated.
    pub gated: bool,
    /// Gated and harmfully past threshold.
    pub regressed: bool,
    /// Beneficially past threshold (any metric).
    pub improved: bool,
}

/// A finished comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Per-metric deltas for paths present in both snapshots, baseline
    /// order.
    pub deltas: Vec<Delta>,
    /// Paths only in the candidate.
    pub added: Vec<String>,
    /// Paths only in the baseline.
    pub removed: Vec<String>,
    /// The noise threshold used, percent.
    pub threshold_pct: f64,
    /// Printed warning when the snapshots came from different machines
    /// and gated metrics were downgraded to advisory.
    pub note: Option<String>,
}

impl CompareReport {
    /// Number of gated regressions (CI fails when > 0).
    pub fn gated_regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regressed).count()
    }

    /// Render the delta table: every gated metric, plus advisory metrics
    /// that moved past the threshold, plus a summary.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for d in &self.deltas {
            if !d.gated && !d.regressed && !d.improved {
                continue;
            }
            let status = if d.regressed {
                "REGRESSED"
            } else if d.improved {
                "improved"
            } else {
                "ok"
            };
            let pct = if d.pct.is_nan() {
                "n/a".to_string()
            } else {
                format!("{:+.1}%", d.pct)
            };
            rows.push(vec![
                d.path.clone(),
                fmt_num(d.old),
                fmt_num(d.new),
                pct,
                (if d.gated { "gated" } else { "advisory" }).to_string(),
                status.to_string(),
            ]);
        }
        let mut out = String::new();
        if let Some(note) = &self.note {
            out.push_str(&format!("  warning: {note}\n"));
        }
        out.push_str(&table(
            &["metric", "old", "new", "delta", "class", "status"],
            &rows,
        ));
        if !self.added.is_empty() || !self.removed.is_empty() {
            out.push_str(&format!(
                "  metrics added: {}, removed: {}\n",
                self.added.len(),
                self.removed.len()
            ));
        }
        out.push_str(&format!(
            "  gated regressions: {} (threshold {:.1}%)\n",
            self.gated_regressions(),
            self.threshold_pct
        ));
        out
    }
}

/// Compare two flattened metric sets. A gated metric regresses when its
/// harmful delta exceeds `max(threshold% × |old|, abs_floor)`.
pub fn compare_metrics(old: &[Metric], new: &[Metric], threshold_pct: f64) -> CompareReport {
    let new_by_path: BTreeMap<&str, &Metric> = new.iter().map(|m| (m.path.as_str(), m)).collect();
    let old_paths: std::collections::BTreeSet<&str> = old.iter().map(|m| m.path.as_str()).collect();
    let mut deltas = Vec::new();
    for o in old {
        let Some(n) = new_by_path.get(o.path.as_str()) else {
            continue;
        };
        let harmful = if o.higher_is_better {
            o.value - n.value
        } else {
            n.value - o.value
        };
        let allowed = (threshold_pct / 100.0 * o.value.abs()).max(o.abs_floor);
        let pct = if o.value == 0.0 {
            f64::NAN
        } else {
            (n.value - o.value) / o.value.abs() * 100.0
        };
        deltas.push(Delta {
            path: o.path.clone(),
            old: o.value,
            new: n.value,
            pct,
            gated: o.gated,
            regressed: o.gated && harmful > allowed,
            improved: harmful < -allowed,
        });
    }
    CompareReport {
        deltas,
        added: new
            .iter()
            .filter(|m| !old_paths.contains(m.path.as_str()))
            .map(|m| m.path.clone())
            .collect(),
        removed: old
            .iter()
            .filter(|m| !new_by_path.contains_key(m.path.as_str()))
            .map(|m| m.path.clone())
            .collect(),
        threshold_pct,
        note: None,
    }
}

/// Load two snapshots and compare. Quick and full snapshots are not
/// comparable (different workload sizes) — that's a typed error, not a
/// wall of bogus regressions.
pub fn bench_compare(
    old_path: &Path,
    new_path: &Path,
    threshold_pct: f64,
) -> Result<CompareReport, CompareError> {
    let old = load_bench(old_path)?;
    let new = load_bench(new_path)?;
    if old.quick != new.quick {
        return Err(CompareError::Malformed {
            path: format!("{} vs {}", old_path.display(), new_path.display()),
            what: format!(
                "mode mismatch: baseline quick={}, candidate quick={} (re-run bench-report with matching --quick)",
                old.quick, new.quick
            ),
        });
    }
    // Rates from different machines don't gate: downgrade every gated
    // metric to advisory and say so. A missing fingerprint (pre-schema
    // snapshot) keeps the gate armed — same-host is the safe assumption
    // for a trajectory committed to one repo.
    let mut old_metrics = old.metrics;
    let mut note = None;
    if let (Some(a), Some(b)) = (&old.host, &new.host) {
        if a.differs_from(b) {
            for m in &mut old_metrics {
                m.gated = false;
            }
            note = Some(format!(
                "host fingerprint mismatch (baseline: {a}; candidate: {b}); \
                 gated metrics downgraded to advisory"
            ));
        }
    }
    let mut rep = compare_metrics(&old_metrics, &new.metrics, threshold_pct);
    rep.note = note;
    Ok(rep)
}

/// Degrade every gated metric of `doc` harmfully past `threshold_pct`.
fn degrade(metrics: &[Metric], threshold_pct: f64) -> Vec<Metric> {
    let rel = (2.0 * threshold_pct / 100.0).min(0.99);
    metrics
        .iter()
        .map(|m| {
            let mut out = m.clone();
            if m.gated {
                out.value = if m.higher_is_better {
                    m.value * (1.0 - rel)
                } else {
                    m.value * (1.0 + rel) + 2.0 * m.abs_floor + 1.0
                };
            }
            out
        })
        .collect()
}

/// The regression gate's own regression test: synthetically degrade
/// every gated metric of `snapshot` and verify the gate flags each one.
/// Returns `(flagged, gated_total, report)`; the gate is healthy iff
/// `flagged == gated_total > 0`.
pub fn gate_self_test(
    snapshot: &Path,
    threshold_pct: f64,
) -> Result<(usize, usize, CompareReport), CompareError> {
    let doc = load_bench(snapshot)?;
    let degraded = degrade(&doc.metrics, threshold_pct);
    let report = compare_metrics(&doc.metrics, &degraded, threshold_pct);
    let gated_total = doc.metrics.iter().filter(|m| m.gated).count();
    Ok((report.gated_regressions(), gated_total, report))
}

// ---------------------------------------------------------------------------
// bench-trend
// ---------------------------------------------------------------------------

/// All `BENCH_<n>.json` files in `dir`, ascending by `n`.
fn bench_snapshots(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix("BENCH_")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                files.push((n, entry.path()));
            }
        }
    }
    files.sort_by_key(|(n, _)| *n);
    files
}

/// Render the gated-metric trajectory across every committed
/// `BENCH_<n>.json` in `dir`: one row per (metric, snapshot) with the
/// value and its delta against the previous snapshot carrying that
/// metric. Mixed quick/full trajectories are rendered with a mode column
/// (deltas across a mode switch reflect the workload change, not a
/// regression).
pub fn bench_trend(dir: &Path) -> Result<String, CompareError> {
    let files = bench_snapshots(dir);
    if files.is_empty() {
        return Err(CompareError::Malformed {
            path: dir.display().to_string(),
            what: "no BENCH_<n>.json snapshots found".to_string(),
        });
    }
    let mut snaps: Vec<(u64, BenchDoc)> = Vec::with_capacity(files.len());
    for (n, path) in &files {
        snaps.push((*n, load_bench(path)?));
    }
    // Gated metric paths in first-appearance order across the trajectory.
    let mut order: Vec<String> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (_, doc) in &snaps {
        for m in doc.metrics.iter().filter(|m| m.gated) {
            if seen.insert(m.path.clone()) {
                order.push(m.path.clone());
            }
        }
    }
    let mut rows = Vec::new();
    for path in &order {
        let mut prev: Option<f64> = None;
        for (n, doc) in &snaps {
            let Some(m) = doc.metrics.iter().find(|m| m.gated && &m.path == path) else {
                continue;
            };
            let delta = match prev {
                Some(p) if p != 0.0 => format!("{:+.1}%", (m.value - p) / p.abs() * 100.0),
                Some(p) => {
                    // From an exact zero (e.g. shed counts) percentages
                    // are meaningless; show the absolute move.
                    format!("{:+}", m.value - p)
                }
                None => "-".to_string(),
            };
            rows.push(vec![
                path.clone(),
                n.to_string(),
                (if doc.quick { "quick" } else { "full" }).to_string(),
                fmt_num(m.value),
                delta,
            ]);
            prev = Some(m.value);
        }
    }
    let mut out = section(&format!(
        "bench-trend ({} snapshots, {} gated metrics)",
        snaps.len(),
        order.len()
    ));
    out.push('\n');
    out.push_str(&table(&["metric", "n", "mode", "value", "delta"], &rows));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature but schema-complete snapshot document.
    fn sample_doc(quick: bool, rate: f64, shed: f64, allocs: f64) -> String {
        format!(
            r#"{{
              "schema_version": 1,
              "quick": {quick},
              "kernels": [
                {{"name": "black_scholes", "unit": "options/s", "rungs": [
                  {{"slug": "simd_w8", "threaded": false,
                    "median_rate": {rate}, "p95_rate": {rate}, "best_rate": {rate}, "median_cpi": 4.0}},
                  {{"slug": "threads", "threaded": true, "median_rate": 99.0}}
                ]}}
              ],
              "serve": [
                {{"lane": "black_scholes", "shed": {shed}, "other_rejected": 0,
                  "throughput_rps": 1000.0, "p50_us": 50.0, "p95_us": 80.0, "p99_us": 120.0,
                  "peak_sustained_hz": 2000.0}}
              ],
              "allocs": [
                {{"lane": "black_scholes", "allocs_per_iter": {allocs}, "bytes_per_iter": 4096.0}}
              ],
              "counters": {{"serve.shed.queue_full": {shed}, "serve.served": 600}}
            }}"#
        )
    }

    fn write_tmp(name: &str, text: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("finbench_report_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn flatten_classifies_gated_and_advisory() {
        let doc = json::parse(&sample_doc(true, 100.0, 0.0, 2.0)).unwrap();
        let bench = flatten(&doc, "x").unwrap();
        assert!(bench.quick);
        let by_path: BTreeMap<&str, &Metric> =
            bench.metrics.iter().map(|m| (m.path.as_str(), m)).collect();
        assert!(by_path["native.black_scholes.simd_w8.median_rate"].gated);
        assert!(!by_path["native.black_scholes.simd_w8.p95_rate"].gated);
        // Threaded rungs are advisory even on median.
        assert!(!by_path["native.black_scholes.threads.median_rate"].gated);
        assert!(by_path["serve.black_scholes.shed"].gated);
        assert!(!by_path["serve.black_scholes.p99_us"].gated);
        assert!(by_path["allocs.black_scholes.allocs_per_iter"].gated);
        // Only failure-ish counters flatten, advisory.
        assert!(!by_path["counters.serve.shed.queue_full"].gated);
        assert!(!by_path.contains_key("counters.serve.served"));
    }

    #[test]
    fn identical_snapshots_have_zero_gated_regressions() {
        let a = load_bench(&write_tmp(
            "ident_a.json",
            &sample_doc(true, 100.0, 0.0, 2.0),
        ))
        .unwrap();
        let report = compare_metrics(&a.metrics, &a.metrics, DEFAULT_THRESHOLD_PCT);
        assert_eq!(report.gated_regressions(), 0);
        assert!(report.added.is_empty() && report.removed.is_empty());
        assert!(report.render().contains("gated regressions: 0"));
    }

    #[test]
    fn noise_inside_threshold_does_not_gate() {
        let old = flatten(
            &json::parse(&sample_doc(true, 100.0, 0.0, 2.0)).unwrap(),
            "o",
        )
        .unwrap();
        let new = flatten(
            &json::parse(&sample_doc(true, 93.0, 0.0, 2.0)).unwrap(),
            "n",
        )
        .unwrap();
        let report = compare_metrics(&old.metrics, &new.metrics, 10.0);
        assert_eq!(report.gated_regressions(), 0, "{report:?}");
    }

    #[test]
    fn rate_drop_past_threshold_gates() {
        let old = flatten(
            &json::parse(&sample_doc(true, 100.0, 0.0, 2.0)).unwrap(),
            "o",
        )
        .unwrap();
        let new = flatten(
            &json::parse(&sample_doc(true, 80.0, 0.0, 2.0)).unwrap(),
            "n",
        )
        .unwrap();
        let report = compare_metrics(&old.metrics, &new.metrics, 10.0);
        assert_eq!(report.gated_regressions(), 1);
        let bad = report.deltas.iter().find(|d| d.regressed).unwrap();
        assert_eq!(bad.path, "native.black_scholes.simd_w8.median_rate");
        assert!(report.render().contains("REGRESSED"), "{}", report.render());
    }

    #[test]
    fn new_shed_gates_via_abs_floor_even_from_zero() {
        let old = flatten(
            &json::parse(&sample_doc(true, 100.0, 0.0, 2.0)).unwrap(),
            "o",
        )
        .unwrap();
        let new = flatten(
            &json::parse(&sample_doc(true, 100.0, 3.0, 2.0)).unwrap(),
            "n",
        )
        .unwrap();
        let report = compare_metrics(&old.metrics, &new.metrics, 10.0);
        assert!(report
            .deltas
            .iter()
            .any(|d| d.path == "serve.black_scholes.shed" && d.regressed));
    }

    #[test]
    fn alloc_jitter_under_floor_does_not_gate_but_real_growth_does() {
        let old = flatten(
            &json::parse(&sample_doc(true, 100.0, 0.0, 2.0)).unwrap(),
            "o",
        )
        .unwrap();
        // +3 allocs/iter is under the floor of 4: noise.
        let small = flatten(
            &json::parse(&sample_doc(true, 100.0, 0.0, 5.0)).unwrap(),
            "n",
        )
        .unwrap();
        assert_eq!(
            compare_metrics(&old.metrics, &small.metrics, 10.0).gated_regressions(),
            0
        );
        // +40 allocs/iter is a real hot-path regression.
        let big = flatten(
            &json::parse(&sample_doc(true, 100.0, 0.0, 42.0)).unwrap(),
            "n",
        )
        .unwrap();
        assert_eq!(
            compare_metrics(&old.metrics, &big.metrics, 10.0).gated_regressions(),
            1
        );
    }

    #[test]
    fn unknown_schema_version_is_a_typed_error() {
        let text = sample_doc(true, 100.0, 0.0, 2.0)
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = load_bench(&write_tmp("schema99.json", &text)).unwrap_err();
        assert!(
            matches!(err, CompareError::UnknownSchema { ref found, supported, .. }
                if found == "99" && supported == BENCH_SCHEMA_VERSION),
            "{err:?}"
        );
        // Missing entirely is also UnknownSchema, not a panic.
        let text = sample_doc(true, 100.0, 0.0, 2.0).replace("\"schema_version\": 1,", "");
        let err = load_bench(&write_tmp("schema_none.json", &text)).unwrap_err();
        assert!(matches!(err, CompareError::UnknownSchema { ref found, .. } if found == "missing"));
    }

    #[test]
    fn io_and_parse_errors_are_typed() {
        let err = load_bench(Path::new("/nonexistent/bench.json")).unwrap_err();
        assert!(matches!(err, CompareError::Io { .. }), "{err:?}");
        let err = load_bench(&write_tmp("garbage.json", "{not json")).unwrap_err();
        assert!(matches!(err, CompareError::Parse { .. }), "{err:?}");
        let err = load_bench(&write_tmp("shapeless.json", "{\"schema_version\": 1}")).unwrap_err();
        assert!(matches!(err, CompareError::Malformed { .. }), "{err:?}");
    }

    #[test]
    fn quick_vs_full_snapshots_refuse_to_compare() {
        let q = write_tmp("mode_q.json", &sample_doc(true, 100.0, 0.0, 2.0));
        let f = write_tmp("mode_f.json", &sample_doc(false, 100.0, 0.0, 2.0));
        let err = bench_compare(&q, &f, 10.0).unwrap_err();
        assert!(
            matches!(err, CompareError::Malformed { ref what, .. } if what.contains("mode mismatch")),
            "{err:?}"
        );
        assert!(bench_compare(&q, &q, 10.0).is_ok());
    }

    #[test]
    fn self_test_flags_every_gated_metric() {
        let path = write_tmp("selftest.json", &sample_doc(true, 100.0, 0.0, 2.0));
        let (flagged, gated_total, report) = gate_self_test(&path, 10.0).unwrap();
        assert!(gated_total > 0);
        assert_eq!(flagged, gated_total, "{}", report.render());
        // And an un-degraded comparison stays clean at the same threshold.
        let doc = load_bench(&path).unwrap();
        assert_eq!(
            compare_metrics(&doc.metrics, &doc.metrics, 10.0).gated_regressions(),
            0
        );
    }

    #[test]
    fn added_and_removed_paths_are_reported_not_fatal() {
        let old = flatten(
            &json::parse(&sample_doc(true, 100.0, 0.0, 2.0)).unwrap(),
            "o",
        )
        .unwrap();
        let mut new = old.clone();
        new.metrics.remove(0);
        new.metrics.push(Metric {
            path: "native.new_kernel.rung.median_rate".into(),
            value: 1.0,
            gated: true,
            higher_is_better: true,
            abs_floor: 0.0,
        });
        let report = compare_metrics(&old.metrics, &new.metrics, 10.0);
        assert_eq!(report.removed.len(), 1);
        assert_eq!(report.added.len(), 1);
        assert_eq!(report.gated_regressions(), 0);
    }

    /// Inject a host fingerprint into a [`sample_doc`] snapshot.
    fn with_host(doc: &str, model: &str, cores: u64, ghz: f64) -> String {
        doc.replacen(
            "\"quick\":",
            &format!(
                "\"host\": {{\"cpu_model\": \"{model}\", \"logical_cores\": {cores}, \
                 \"tsc_ghz\": {ghz}}},\n              \"quick\":"
            ),
            1,
        )
    }

    #[test]
    fn host_fingerprint_round_trips_and_detects_difference() {
        let doc = json::parse(&with_host(
            &sample_doc(true, 100.0, 0.0, 2.0),
            "Xeon E5-2670",
            32,
            2.6,
        ))
        .unwrap();
        let bench = flatten(&doc, "x").unwrap();
        let host = bench.host.expect("host fingerprint parsed");
        assert_eq!(host.cpu_model, "Xeon E5-2670");
        assert_eq!(host.logical_cores, 32);
        assert!(!host.differs_from(&host.clone()));
        // TSC wobble inside 5% is the same machine; beyond it isn't.
        let mut wobble = host.clone();
        wobble.tsc_ghz = 2.65;
        assert!(!host.differs_from(&wobble));
        wobble.tsc_ghz = 3.2;
        assert!(host.differs_from(&wobble));
        let mut other = host.clone();
        other.cpu_model = "Xeon Phi 7120".into();
        assert!(host.differs_from(&other));
        // Pre-fingerprint snapshots load with no host at all.
        let legacy = flatten(
            &json::parse(&sample_doc(true, 100.0, 0.0, 2.0)).unwrap(),
            "x",
        )
        .unwrap();
        assert_eq!(legacy.host, None);
        // And the fingerprint of this machine is at least well-formed.
        let cur = HostFingerprint::current();
        assert!(!cur.cpu_model.is_empty());
    }

    #[test]
    fn fingerprint_mismatch_downgrades_gated_metrics_with_a_warning() {
        // A 20% rate drop that would normally gate...
        let old = write_tmp(
            "fp_old.json",
            &with_host(&sample_doc(true, 100.0, 0.0, 2.0), "Xeon E5-2670", 32, 2.6),
        );
        let new_other_host = write_tmp(
            "fp_new_other.json",
            &with_host(&sample_doc(true, 80.0, 0.0, 2.0), "Xeon Phi 7120", 244, 1.2),
        );
        let rep = bench_compare(&old, &new_other_host, 10.0).unwrap();
        assert_eq!(rep.gated_regressions(), 0, "{}", rep.render());
        let rendered = rep.render();
        assert!(rendered.contains("warning:"), "{rendered}");
        assert!(rendered.contains("fingerprint mismatch"), "{rendered}");
        // ...still gates on the same machine...
        let new_same_host = write_tmp(
            "fp_new_same.json",
            &with_host(&sample_doc(true, 80.0, 0.0, 2.0), "Xeon E5-2670", 32, 2.6),
        );
        let rep = bench_compare(&old, &new_same_host, 10.0).unwrap();
        assert_eq!(rep.gated_regressions(), 1);
        assert_eq!(rep.note, None);
        // ...and a missing baseline fingerprint keeps the gate armed, so
        // pre-fingerprint trajectory points don't lose their teeth.
        let legacy_old = write_tmp("fp_legacy.json", &sample_doc(true, 100.0, 0.0, 2.0));
        let rep = bench_compare(&legacy_old, &new_other_host, 10.0).unwrap();
        assert_eq!(rep.gated_regressions(), 1);
        assert_eq!(rep.note, None);
    }

    #[test]
    fn bench_trend_renders_per_metric_deltas_in_snapshot_order() {
        let dir = std::env::temp_dir().join("finbench_bench_trend");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(
            bench_trend(&dir).is_err(),
            "empty dir must be a typed error"
        );
        std::fs::write(dir.join("BENCH_1.json"), sample_doc(true, 100.0, 0.0, 2.0)).unwrap();
        std::fs::write(dir.join("BENCH_2.json"), sample_doc(true, 110.0, 0.0, 2.0)).unwrap();
        std::fs::write(dir.join("BENCH_10.json"), sample_doc(true, 99.0, 0.0, 2.0)).unwrap();
        let out = bench_trend(&dir).unwrap();
        assert!(out.contains("3 snapshots"), "{out}");
        assert!(
            out.contains("native.black_scholes.simd_w8.median_rate"),
            "{out}"
        );
        assert!(out.contains("+10.0%"), "{out}");
        assert!(out.contains("-10.0%"), "{out}");
        // Advisory metrics stay out of the trend table.
        assert!(!out.contains("p99_us"), "{out}");
        // A broken snapshot is a typed error, not a panic.
        std::fs::write(dir.join("BENCH_11.json"), "{nope").unwrap();
        assert!(matches!(bench_trend(&dir), Err(CompareError::Parse { .. })));
    }

    #[test]
    fn next_bench_path_increments_past_the_highest() {
        let dir = std::env::temp_dir().join("finbench_bench_numbering");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_bench_path(&dir), dir.join("BENCH_1.json"));
        std::fs::write(dir.join("BENCH_2.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_10.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
        assert_eq!(next_bench_path(&dir), dir.join("BENCH_11.json"));
    }
}
