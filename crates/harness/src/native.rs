//! Native measurements: run the real Rust kernels on the build host at
//! every optimization level, reporting items/second.
//!
//! These are the "did the optimization ladder actually help on real
//! silicon" numbers that complement the machine model's SNB-EP/KNC
//! regeneration. Absolute values depend on the host; the *ladder shape*
//! (SOA beats AOS, tiling beats plain SIMD, fused beats streamed) is the
//! reproducible part and is what the integration tests assert.
//!
//! There are no per-kernel driver functions here: the seven kernels
//! implement [`finbench_engine::Kernel`] in `finbench_core::engine`, and
//! one shared [`Engine`] drives every ladder through the same generic
//! loop — spans (`native.<kernel>.<slug>` with label, workload size,
//! per-rep throughput summary, pool imbalance) and the planner's
//! `plan.<kernel>` decision span come with it.

use finbench_core::engine::registry;
use finbench_engine::{Engine, LadderRates};
use std::sync::OnceLock;

/// The process-wide engine: the seven-kernel registry plus a planner for
/// the build host (honoring `FINBENCH_PLAN` overrides).
pub fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine::new(registry()))
}

/// Registered kernel names, registration (paper-artifact) order.
pub fn kernel_names() -> Vec<&'static str> {
    engine().registry().names()
}

/// Measure one kernel's full ladder by registry name.
///
/// # Panics
/// If `name` is not a registered kernel (CLI validation happens earlier).
pub fn ladder(name: &str, quick: bool) -> LadderRates {
    engine()
        .run_ladder_named(name, quick)
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_exposes_all_eight_kernels() {
        assert_eq!(
            kernel_names(),
            [
                "black_scholes",
                "binomial",
                "brownian_bridge",
                "monte_carlo",
                "crank_nicolson",
                "rng",
                "greeks",
                "portfolio"
            ]
        );
    }

    #[test]
    fn all_ladders_produce_positive_rates() {
        for name in kernel_names() {
            let rates = ladder(name, true);
            assert!(!rates.is_empty(), "{name}");
            for (label, rate) in &rates {
                assert!(rate.is_finite() && *rate > 0.0, "{name}/{label}: {rate}");
            }
        }
    }
}
