//! Native measurements: run the real Rust kernels on the build host at
//! every optimization level, reporting items/second.
//!
//! These are the "did the optimization ladder actually help on real
//! silicon" numbers that complement the machine model's SNB-EP/KNC
//! regeneration. Absolute values depend on the host; the *ladder shape*
//! (SOA beats AOS, tiling beats plain SIMD, fused beats streamed) is the
//! reproducible part and is what the integration tests assert.
//!
//! Every rung runs inside a telemetry span `native.<kernel>.<slug>` that
//! carries the label, workload size, per-rep throughput summary (from
//! [`throughput_samples`]) and — for thread-parallel rungs — the pool's
//! load-imbalance factor.

use crate::timing::throughput_samples;
use finbench_core::binomial;
use finbench_core::black_scholes::{reference, soa, vml};
use finbench_core::brownian_bridge::{
    interleaved, reference as bridge_ref, simd as bridge_simd, BridgePlan,
};
use finbench_core::crank_nicolson::{CnProblem, PsorKind};
use finbench_core::monte_carlo::{reference as mc_ref, simd as mc_simd, GbmTerminal};
use finbench_core::workload::{MarketParams, OptionBatchSoa, WorkloadRanges};
use finbench_rng::normal::{fill_standard_normal_icdf, fill_standard_normal_polar};
use finbench_rng::uniform::fill_uniform;
use finbench_rng::{Mt19937_64, Philox4x32, StreamFamily};
use finbench_telemetry as telemetry;

const M: MarketParams = MarketParams::PAPER;

fn min_secs(quick: bool) -> f64 {
    if quick {
        0.02
    } else {
        0.15
    }
}

/// Lowercase a rung label into a span-name segment (`[a-z0-9_]+`).
fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Measure one ladder rung inside its own telemetry span and append the
/// best rate to `out`. The span carries `label`, `items`, the
/// [`throughput_samples`] summary, and `pool_imbalance` (1.0 unless a
/// pool dispatch inside `body` overwrites it).
fn rung(
    out: &mut Vec<(String, f64)>,
    kernel: &str,
    label: &str,
    items: usize,
    secs: f64,
    body: impl FnMut(),
) {
    let _g = telemetry::span(format!("native.{kernel}.{}", slug(label)));
    telemetry::set_attr("label", label);
    telemetry::set_attr("items", items);
    telemetry::set_attr("pool_imbalance", 1.0);
    let s = throughput_samples(items, secs, body);
    out.push((label.to_string(), s.best()));
}

/// Black-Scholes ladder: options/second at each level.
pub fn black_scholes_ladder(quick: bool) -> Vec<(String, f64)> {
    let n = if quick { 20_000 } else { 400_000 };
    let soa_batch = OptionBatchSoa::random(n, 1, WorkloadRanges::default());
    let aos_batch = soa_batch.to_aos();
    let secs = min_secs(quick);
    let k = "black_scholes";
    let mut out = Vec::new();

    let mut b = aos_batch.clone();
    rung(&mut out, k, "Basic: scalar AOS reference", n, secs, || {
        reference::price_aos::<f64>(&mut b, M)
    });
    let mut b = aos_batch.clone();
    rung(
        &mut out,
        k,
        "Basic+: SIMD on AOS (gathers)",
        n,
        secs,
        || reference::price_aos_simd_gather::<8>(&mut b, M),
    );
    let mut b = soa_batch.clone();
    rung(&mut out, k, "Intermediate: scalar SOA", n, secs, || {
        soa::price_soa_scalar(&mut b, M)
    });
    let mut b = soa_batch.clone();
    rung(&mut out, k, "Intermediate: SIMD SOA (W=4)", n, secs, || {
        soa::price_soa_simd::<4>(&mut b, M)
    });
    let mut b = soa_batch.clone();
    rung(&mut out, k, "Intermediate: SIMD SOA (W=8)", n, secs, || {
        soa::price_soa_simd::<8>(&mut b, M)
    });
    let mut b = soa_batch.clone();
    rung(&mut out, k, "Advanced: erf + parity (W=8)", n, secs, || {
        soa::price_soa_simd_erf_parity::<8>(&mut b, M)
    });
    let mut b = soa_batch.clone();
    let mut ws = vml::VmlWorkspace::with_capacity(n);
    rung(&mut out, k, "Advanced: VML-style batch", n, secs, || {
        vml::price_soa_vml(&mut b, M, &mut ws)
    });
    let mut b = soa_batch.clone();
    rung(&mut out, k, "Advanced + own-pool threads", n, secs, || {
        soa::par_price_soa::<8>(&mut b, M, 4096)
    });
    out
}

/// Binomial-tree ladder: options/second at `n_steps` time steps.
pub fn binomial_ladder(quick: bool) -> Vec<(String, f64)> {
    let n_steps = if quick { 256 } else { 1024 };
    let n_opts = if quick { 16 } else { 64 };
    let mut batch = OptionBatchSoa::random(n_opts, 2, WorkloadRanges::default());
    for t in &mut batch.t {
        *t = 1.0;
    }
    let secs = min_secs(quick);
    let k = "binomial";
    let mut out = Vec::new();

    let mut b = batch.clone();
    rung(&mut out, k, "Basic: scalar reference", n_opts, secs, || {
        binomial::reference::price_batch(&mut b, M, n_steps)
    });
    let mut b = batch.clone();
    rung(
        &mut out,
        k,
        "Intermediate: SIMD across options (W=8)",
        n_opts,
        secs,
        || binomial::simd::price_batch_simd::<8>(&mut b, M, n_steps, true),
    );
    let mut b = batch.clone();
    rung(
        &mut out,
        k,
        "Advanced: register tiling (W=8, TS=4)",
        n_opts,
        secs,
        || binomial::tiled::price_batch_tiled::<8, 4>(&mut b, M, n_steps, true),
    );
    let mut b = batch.clone();
    rung(
        &mut out,
        k,
        "Advanced: register tiling (W=8, TS=8)",
        n_opts,
        secs,
        || binomial::tiled::price_batch_tiled::<8, 8>(&mut b, M, n_steps, true),
    );
    out
}

/// Brownian-bridge ladder: paths/second for a 64-step bridge.
pub fn brownian_ladder(quick: bool) -> Vec<(String, f64)> {
    let plan = BridgePlan::new(6, 1.0);
    let n_paths = if quick { 4_096 } else { 65_536 };
    let per = plan.randoms_per_path();
    let points = plan.points();
    let secs = min_secs(quick);
    let k = "brownian_bridge";

    let mut rng = Mt19937_64::new(3);
    let mut randoms = vec![0.0; n_paths * per];
    fill_standard_normal_icdf(&mut rng, &mut randoms);
    let transposed = bridge_simd::transpose_randoms::<8>(&randoms, per);
    let fam = StreamFamily::new(77);

    // NOTE: the first two rows consume pre-generated normals (the paper's
    // Fig. 6 timings exclude RNG generation); the advanced rows generate
    // their normals inline, so on hosts where the inverse-CDF transform is
    // slow they can sit *below* the streamed rows — compare them against
    // each other, and see the `ablation_normal_transform` bench for the
    // transform cost itself.
    let mut out = Vec::new();
    let mut buf = vec![0.0; n_paths * points];
    rung(
        &mut out,
        k,
        "Basic: scalar depth-level",
        n_paths,
        secs,
        || bridge_ref::build_paths::<f64>(&plan, &randoms, &mut buf, n_paths),
    );
    rung(
        &mut out,
        k,
        "Intermediate: SIMD across paths (W=8)",
        n_paths,
        secs,
        || bridge_simd::build_paths_simd::<8>(&plan, &transposed, &mut buf, n_paths),
    );
    rung(
        &mut out,
        k,
        "Advanced: interleaved RNG (incl. RNG gen)",
        n_paths,
        secs,
        || interleaved::build_paths_interleaved::<8>(&plan, &fam, &mut buf, n_paths),
    );
    let mut stats = vec![0.0; n_paths];
    rung(
        &mut out,
        k,
        "Advanced: cache-to-cache fused (incl. RNG gen)",
        n_paths,
        secs,
        || {
            interleaved::simulate_fused::<8>(
                &plan,
                &fam,
                n_paths,
                &mut stats,
                interleaved::path_average,
            )
        },
    );
    out
}

/// Monte-Carlo rates: paths/second, streamed vs computed RNG, plus the
/// per-option rate at the paper's 256k path length.
pub fn monte_carlo_ladder(quick: bool) -> Vec<(String, f64)> {
    let n_paths = if quick { 1 << 17 } else { 1 << 21 };
    let g = GbmTerminal::new(1.0, M);
    let secs = min_secs(quick);
    let k = "monte_carlo";

    let mut rng = Mt19937_64::new(5);
    let mut randoms = vec![0.0; n_paths];
    fill_standard_normal_icdf(&mut rng, &mut randoms);
    let fam = StreamFamily::new(5);

    let mut out = Vec::new();
    rung(
        &mut out,
        k,
        "Basic: scalar streamed RNG (paths/s)",
        n_paths,
        secs,
        || {
            std::hint::black_box(mc_ref::paths_streamed::<f64>(100.0, 100.0, g, &randoms));
        },
    );
    rung(
        &mut out,
        k,
        "SIMD streamed RNG (paths/s)",
        n_paths,
        secs,
        || {
            std::hint::black_box(mc_simd::paths_streamed_simd::<8>(100.0, 100.0, g, &randoms));
        },
    );
    rung(
        &mut out,
        k,
        "SIMD computed RNG (paths/s)",
        n_paths,
        secs,
        || {
            std::hint::black_box(mc_simd::paths_computed_simd::<8>(
                100.0, 100.0, g, &fam, 0, n_paths,
            ));
        },
    );
    rung(
        &mut out,
        k,
        "Antithetic variates (paths/s)",
        n_paths,
        secs,
        || {
            std::hint::black_box(mc_simd::paths_antithetic::<8>(100.0, 100.0, g, &randoms));
        },
    );
    out
}

/// Crank-Nicolson ladder: options/second (each "option" is a full
/// 256-point × n-step PSOR solve).
pub fn crank_nicolson_ladder(quick: bool) -> Vec<(String, f64)> {
    let n_steps = if quick { 100 } else { 500 };
    let mut prob = CnProblem::paper(M, 1.0);
    prob.n_steps = n_steps;
    let secs = min_secs(quick);
    let k = "crank_nicolson";

    let mut out = Vec::new();
    for (label, kind) in [
        ("Basic: scalar PSOR", PsorKind::Reference),
        ("Advanced: wavefront manual SIMD", PsorKind::Wavefront),
        ("Advanced: + data transform", PsorKind::WavefrontSoa),
    ] {
        let p = prob.clone();
        rung(&mut out, k, label, 1, secs, || {
            std::hint::black_box(p.solve(kind));
        });
    }
    out
}

/// Raw RNG rates (Table II rows 3-4): numbers/second.
pub fn rng_rates(quick: bool) -> Vec<(String, f64)> {
    let n = if quick { 1 << 18 } else { 1 << 22 };
    let secs = min_secs(quick);
    let k = "rng";
    let mut buf = vec![0.0; n];
    let mut out = Vec::new();

    let mut mt = Mt19937_64::new(1);
    rung(&mut out, k, "uniform DP (MT19937-64)", n, secs, || {
        fill_uniform(&mut mt, &mut buf)
    });
    let mut px = Philox4x32::new(1);
    rung(&mut out, k, "uniform DP (Philox4x32)", n, secs, || {
        fill_uniform(&mut px, &mut buf)
    });
    let mut mt = Mt19937_64::new(2);
    rung(&mut out, k, "normal DP (ICDF)", n, secs, || {
        fill_standard_normal_icdf(&mut mt, &mut buf)
    });
    let mut mt = Mt19937_64::new(3);
    rung(&mut out, k, "normal DP (polar)", n, secs, || {
        fill_standard_normal_polar(&mut mt, &mut buf)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ladders_produce_positive_rates() {
        for ladder in [
            black_scholes_ladder(true),
            binomial_ladder(true),
            brownian_ladder(true),
            monte_carlo_ladder(true),
            crank_nicolson_ladder(true),
            rng_rates(true),
        ] {
            assert!(!ladder.is_empty());
            for (label, rate) in &ladder {
                assert!(rate.is_finite() && *rate > 0.0, "{label}: {rate}");
            }
        }
    }

    #[test]
    fn slug_flattens_labels() {
        assert_eq!(
            slug("Basic: scalar AOS reference"),
            "basic_scalar_aos_reference"
        );
        assert_eq!(
            slug("Advanced + own-pool threads"),
            "advanced_own_pool_threads"
        );
        assert_eq!(slug("SIMD SOA (W=8)"), "simd_soa_w_8");
        assert_eq!(slug("---"), "");
    }
}
