//! The `finbench` experiment CLI.
//!
//! ```text
//! finbench all                   # every table/figure + native runs
//! finbench fig4 table2           # specific artifacts
//! finbench native --quick        # reduced native workloads
//! finbench all --csv results/    # also export CSV series
//! finbench native --json t.jsonl # export the telemetry trace (JSON lines)
//! finbench native --report       # print the telemetry span tree
//! finbench --list                # print experiment ids
//! ```

use finbench_harness::cli::{parse_args, CliAction};
use finbench_harness::run_experiment;
use finbench_telemetry as telemetry;

fn main() {
    let action = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", finbench_harness::cli::usage_line());
            std::process::exit(2);
        }
    };
    let parsed = match action {
        CliAction::Help => {
            println!("{}", finbench_harness::cli::usage_line());
            return;
        }
        CliAction::List => {
            for id in finbench_harness::EXPERIMENTS {
                println!("{id}");
            }
            return;
        }
        CliAction::Run(p) => p,
    };

    // Spans must be recorded for the exporters to have anything to show;
    // FINBENCH_LOG still overrides when the user sets it explicitly.
    if (parsed.opts.json.is_some() || parsed.opts.report) && std::env::var("FINBENCH_LOG").is_err()
    {
        telemetry::set_filter("all");
    }

    // Arm the fault-injection registry when a FINBENCH_FAULTS plan is set
    // (e.g. `FINBENCH_FAULTS=batch.black_scholes=panic@0.1`); default off.
    match finbench_faults::install_from_env() {
        Ok(true) => {
            // Injected panics are expected and caught by the serving
            // lanes; keep their backtraces off the console.
            finbench_faults::silence_injected_panics();
            eprintln!("fault plan armed from FINBENCH_FAULTS");
        }
        Ok(false) => {}
        Err(msg) => {
            eprintln!("error: FINBENCH_FAULTS: {msg}");
            std::process::exit(2);
        }
    }

    for id in &parsed.ids {
        // Ids were validated by parse_args; a false here is a logic error.
        assert!(run_experiment(id, &parsed.opts), "unknown experiment: {id}");
    }

    if parsed.opts.report {
        print!("{}", telemetry::render_tree());
    }
    if let Some(path) = &parsed.opts.json {
        if let Err(e) = telemetry::write_jsonl(std::path::Path::new(path)) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("telemetry trace written to {path}");
    }
}
