//! The `finbench` experiment CLI.
//!
//! ```text
//! finbench all                   # every table/figure + native runs
//! finbench fig4 table2           # specific artifacts
//! finbench native --quick        # reduced native workloads
//! finbench all --csv results/    # also export CSV series
//! finbench native --json t.jsonl # export the telemetry trace (JSON lines)
//! finbench native --report       # print the telemetry span tree
//! finbench --list                # print experiment ids
//! ```

use finbench_harness::cli::{parse_args, CliAction};
use finbench_harness::report::{self, CompareMode};
use finbench_harness::run_experiment;
use finbench_telemetry as telemetry;

fn main() {
    let action = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", finbench_harness::cli::usage_line());
            std::process::exit(2);
        }
    };
    let parsed = match action {
        CliAction::Help => {
            println!("{}", finbench_harness::cli::usage_line());
            return;
        }
        CliAction::List => {
            for id in finbench_harness::EXPERIMENTS {
                println!("{id}");
            }
            return;
        }
        CliAction::BenchReport(opts) => {
            if let Err(msg) = report::bench_report(&opts) {
                eprintln!("error: bench-report: {msg}");
                std::process::exit(1);
            }
            return;
        }
        CliAction::BenchCompare(args) => {
            std::process::exit(run_bench_compare(&args));
        }
        CliAction::BenchTrend { dir } => {
            match report::bench_trend(std::path::Path::new(&dir)) {
                Ok(table) => print!("{table}"),
                Err(e) => {
                    eprintln!("error: bench-trend: {e}");
                    std::process::exit(2);
                }
            }
            return;
        }
        CliAction::Run(p) => p,
    };

    // Spans must be recorded for the exporters to have anything to show;
    // FINBENCH_LOG still overrides when the user sets it explicitly.
    if (parsed.opts.json.is_some() || parsed.opts.report) && std::env::var("FINBENCH_LOG").is_err()
    {
        telemetry::set_filter("all");
    }

    // Arm the fault-injection registry when a FINBENCH_FAULTS plan is set
    // (e.g. `FINBENCH_FAULTS=batch.black_scholes=panic@0.1`); default off.
    match finbench_faults::install_from_env() {
        Ok(true) => {
            // Injected panics are expected and caught by the serving
            // lanes; keep their backtraces off the console.
            finbench_faults::silence_injected_panics();
            eprintln!("fault plan armed from FINBENCH_FAULTS");
        }
        Ok(false) => {}
        Err(msg) => {
            eprintln!("error: FINBENCH_FAULTS: {msg}");
            std::process::exit(2);
        }
    }

    for id in &parsed.ids {
        // Ids were validated by parse_args; a false here is a logic error.
        assert!(run_experiment(id, &parsed.opts), "unknown experiment: {id}");
    }

    if parsed.opts.report {
        print!("{}", telemetry::render_tree());
    }
    if let Some(path) = &parsed.opts.json {
        if let Err(e) = telemetry::write_jsonl(std::path::Path::new(path)) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("telemetry trace written to {path}");
    }
}

/// `bench-compare` exit codes: 0 clean, 1 gated regressions (or a failed
/// self-test), 2 on typed load/compare errors — the same code parse
/// errors use, so CI can tell "slow" from "broken".
fn run_bench_compare(args: &finbench_harness::report::BenchCompareArgs) -> i32 {
    use std::path::Path;
    match &args.mode {
        CompareMode::Files { old, new } => {
            match report::bench_compare(Path::new(old), Path::new(new), args.threshold_pct) {
                Ok(rep) => {
                    print!("{}", rep.render());
                    i32::from(rep.gated_regressions() > 0)
                }
                Err(e) => {
                    eprintln!("error: bench-compare: {e}");
                    2
                }
            }
        }
        CompareMode::SelfTest { snapshot } => {
            match report::gate_self_test(Path::new(snapshot), args.threshold_pct) {
                Ok((flagged, gated_total, rep)) => {
                    print!("{}", rep.render());
                    if flagged == gated_total && gated_total > 0 {
                        println!(
                            "  self-test OK: gate flagged all {gated_total} degraded gated metrics"
                        );
                        0
                    } else {
                        eprintln!(
                            "error: self-test FAILED: gate flagged {flagged} of {gated_total} degraded gated metrics"
                        );
                        1
                    }
                }
                Err(e) => {
                    eprintln!("error: bench-compare --self-test: {e}");
                    2
                }
            }
        }
    }
}
