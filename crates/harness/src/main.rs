//! The `finbench` experiment CLI.
//!
//! ```text
//! finbench all                 # every table/figure + native runs
//! finbench fig4 table2         # specific artifacts
//! finbench native --quick      # reduced native workloads
//! finbench all --csv results/  # also export CSV series
//! ```

use finbench_harness::{run_experiment, RunOptions, EXPERIMENTS};

fn usage() -> ! {
    eprintln!("usage: finbench [EXPERIMENT ...] [--quick] [--csv DIR]");
    eprintln!("experiments: {} | all", EXPERIMENTS.join(" | "));
    std::process::exit(2);
}

fn main() {
    let mut opts = RunOptions::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => opts.quick = true,
            "--csv" => match args.next() {
                Some(dir) => opts.csv_dir = Some(dir),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    for id in &ids {
        if !run_experiment(id, &opts) {
            eprintln!("unknown experiment: {id}");
            usage();
        }
    }
}
