//! Plain-text rendering: section headers, aligned tables, horizontal bar
//! charts (the terminal stand-in for the paper's stacked bars), and CSV
//! export.

use std::fmt::Write as _;

/// Format a throughput-style number with engineering grouping.
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.3}e9", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e4 {
        format!("{:.1}K", v / 1e3)
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// A section banner.
pub fn section(title: &str) -> String {
    let bar = "=".repeat(title.len().max(8) + 4);
    format!("\n{bar}\n  {title}\n{bar}\n")
}

/// Render an aligned table. `rows` may be shorter than `headers` rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (c, cell) in cells.iter().enumerate().take(cols) {
            let _ = write!(out, "| {:<w$} ", cell, w = widths[c]);
        }
        out.push_str("|\n");
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let mut sep = String::new();
    for w in &widths {
        let _ = write!(sep, "|{}", "-".repeat(w + 2));
    }
    sep.push_str("|\n");
    out.push_str(&sep);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Horizontal bar chart: one bar per `(label, value)`, scaled to the
/// maximum of `values` and `reference_max` (so sibling charts share a
/// scale when desired).
pub fn bar_chart(rows: &[(String, f64)], unit: &str, reference_max: Option<f64>) -> String {
    const WIDTH: usize = 46;
    let max = rows
        .iter()
        .map(|r| r.1)
        .chain(reference_max)
        .fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let n = if max > 0.0 {
            ((v / max) * WIDTH as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "  {:<label_w$}  {:>10} {unit}  |{}",
            label,
            fmt_num(*v),
            "#".repeat(n.min(WIDTH)),
        );
    }
    out
}

/// Serialize `(label, value)` rows to a two-column CSV string.
pub fn to_csv(series_name: &str, rows: &[(String, f64)]) -> String {
    let mut out = format!("label,{series_name}\n");
    for (label, v) in rows {
        let quoted = if label.contains(',') {
            format!("\"{label}\"")
        } else {
            label.clone()
        };
        let _ = writeln!(out, "{quoted},{v}");
    }
    out
}

/// Write a CSV file into `dir` (created if needed); silently skipped when
/// `dir` is `None`.
pub fn maybe_write_csv(dir: &Option<String>, file: &str, contents: &str) {
    if let Some(dir) = dir {
        let _ = std::fs::create_dir_all(dir);
        let path = std::path::Path::new(dir).join(file);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(1.5e9), "1.500e9");
        assert_eq!(fmt_num(2.5e6), "2.50M");
        assert_eq!(fmt_num(42_000.0), "42.0K");
        assert_eq!(fmt_num(123.0), "123");
        assert_eq!(fmt_num(1.25), "1.250");
        assert_eq!(fmt_num(f64::INFINITY), "inf");
    }

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows share the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[2].contains("a"));
        assert!(lines[3].contains("longer-name"));
    }

    #[test]
    fn bars_scale_to_max() {
        let rows = vec![("half".to_string(), 50.0), ("full".to_string(), 100.0)];
        let chart = bar_chart(&rows, "u", None);
        let full_len = chart.lines().nth(1).unwrap().matches('#').count();
        let half_len = chart.lines().next().unwrap().matches('#').count();
        assert_eq!(full_len, 46);
        assert_eq!(half_len, 23);
    }

    #[test]
    fn bars_respect_reference_max() {
        let rows = vec![("x".to_string(), 50.0)];
        let chart = bar_chart(&rows, "u", Some(100.0));
        assert_eq!(chart.lines().next().unwrap().matches('#').count(), 23);
    }

    #[test]
    fn csv_round_trip_shape() {
        let rows = vec![("plain".to_string(), 1.0), ("with,comma".to_string(), 2.0)];
        let csv = to_csv("tput", &rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "label,tput");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",2");
    }

    #[test]
    fn empty_chart_is_empty() {
        assert_eq!(bar_chart(&[], "u", None), "");
    }
}
