//! Named counters and gauges.
//!
//! Values live in a process-wide registry keyed by name. Every mutation
//! first checks the [`crate::filter`] — when counters are filtered out
//! (or the crate is built with the `off` feature) the call returns before
//! touching the registry, so hot paths pay one relaxed atomic load.
//! Mutations themselves are atomic (`fetch_add` on shared `AtomicU64`s),
//! so concurrent workers never lose increments.

use crate::filter::{enabled, Kind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

fn counters() -> &'static Mutex<HashMap<String, Arc<AtomicU64>>> {
    static REG: OnceLock<Mutex<HashMap<String, Arc<AtomicU64>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

fn gauges() -> &'static Mutex<HashMap<String, Arc<AtomicU64>>> {
    static REG: OnceLock<Mutex<HashMap<String, Arc<AtomicU64>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cell(reg: &'static Mutex<HashMap<String, Arc<AtomicU64>>>, name: &str) -> Arc<AtomicU64> {
    let mut map = reg.lock().unwrap();
    if let Some(c) = map.get(name) {
        return Arc::clone(c);
    }
    let c = Arc::new(AtomicU64::new(0));
    map.insert(name.to_string(), Arc::clone(&c));
    c
}

/// Add `n` to the named counter (creating it at zero on first use).
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if !enabled(Kind::Counter) || n == 0 {
        return;
    }
    cell(counters(), name).fetch_add(n, Ordering::Relaxed);
}

/// Current value of the named counter (0 if it never incremented).
pub fn counter_value(name: &str) -> u64 {
    counters()
        .lock()
        .unwrap()
        .get(name)
        .map(|c| c.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// Set the named gauge to `v`.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if !enabled(Kind::Counter) {
        return;
    }
    cell(gauges(), name).store(v.to_bits(), Ordering::Relaxed);
}

/// Current value of the named gauge (0.0 if never set).
pub fn gauge_value(name: &str) -> f64 {
    gauges()
        .lock()
        .unwrap()
        .get(name)
        .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
        .unwrap_or(0.0)
}

/// Snapshot all counters, sorted by name.
pub fn counter_snapshot() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = counters()
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    out.sort();
    out
}

/// Snapshot all gauges, sorted by name.
pub fn gauge_snapshot() -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = gauges()
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Zero every counter and gauge (they stay registered).
pub fn reset_metrics() {
    for c in counters().lock().unwrap().values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in gauges().lock().unwrap().values() {
        g.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        crate::filter::set_filter("all");
        counter_add("metrics_test.a", 3);
        counter_add("metrics_test.a", 4);
        assert_eq!(counter_value("metrics_test.a"), 7);
        gauge_set("metrics_test.g", 1.25);
        assert_eq!(gauge_value("metrics_test.g"), 1.25);
        reset_metrics();
        assert_eq!(counter_value("metrics_test.a"), 0);
        assert_eq!(gauge_value("metrics_test.g"), 0.0);
        crate::filter::set_filter("all");
    }

    #[test]
    fn unknown_names_read_zero() {
        assert_eq!(counter_value("metrics_test.never"), 0);
        assert_eq!(gauge_value("metrics_test.never"), 0.0);
    }
}
