//! Cycle-accurate timestamps for the micro-kernel rungs.
//!
//! On x86_64 the source is the invariant TSC read through `RDTSC` with an
//! `LFENCE` on both sides: the leading fence keeps earlier instructions
//! from draining into the timed region, the trailing one keeps the timed
//! region from hoisting above the read. Off x86_64 (or wherever `RDTSC`
//! is unavailable) every reader falls back to the monotonic clock in
//! nanoseconds, so "cycles" degrade gracefully to nanoseconds and the
//! whole surface stays usable on any host.
//!
//! Two one-time calibrations, both cached for the process lifetime:
//!
//! * [`overhead_cycles`] — the median cost of one back-to-back reader
//!   pair, subtracted from every [`CycleStamp::elapsed_cycles`] so tiny
//!   regions aren't dominated by the measurement itself.
//! * [`tsc_ghz`] — cycles per nanosecond against the monotonic clock
//!   over a short busy-wait, which converts cycle counts back to time
//!   (and is exactly 1.0 on the nanosecond fallback).

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Reader pairs sampled by the overhead calibration.
const CAL_REPS: usize = 256;

/// Busy-wait length for the frequency estimate.
const FREQ_WINDOW: Duration = Duration::from_millis(10);

/// Name of the active time source: `"rdtsc"` on x86_64, `"instant"`
/// elsewhere — recorded in bench reports so trajectories across hosts
/// are comparable knowingly.
pub fn cycle_source() -> &'static str {
    if cfg!(target_arch = "x86_64") {
        "rdtsc"
    } else {
        "instant"
    }
}

/// Monotonic-clock fallback reader: nanoseconds since the first call.
/// Always compiled (not just off x86_64) so the fallback path is
/// exercised by tests on every host.
pub fn read_fallback_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn read_raw() -> u64 {
    // Safe on every x86_64 CPU this workspace targets; `_rdtsc` has no
    // memory preconditions, the fences only order surrounding code.
    unsafe {
        core::arch::x86_64::_mm_lfence();
        let t = core::arch::x86_64::_rdtsc();
        core::arch::x86_64::_mm_lfence();
        t
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn read_raw() -> u64 {
    read_fallback_ns()
}

/// One fenced cycle-counter read (monotonic per thread on invariant-TSC
/// hardware; monotonic everywhere on the fallback).
#[inline]
pub fn read() -> u64 {
    read_raw()
}

/// Median cost, in cycles, of one back-to-back [`read`] pair — the
/// self-measurement overhead subtracted by [`CycleStamp::elapsed_cycles`].
/// Calibrated once per process; always finite and `>= 0`.
pub fn overhead_cycles() -> f64 {
    static OVERHEAD: OnceLock<f64> = OnceLock::new();
    *OVERHEAD.get_or_init(|| calibrate_overhead(read_raw))
}

/// Median delta of `CAL_REPS` back-to-back reader pairs. Generic over the
/// reader so the fallback path is calibratable in tests.
fn calibrate_overhead(read: impl Fn() -> u64) -> f64 {
    // Warm the icache/branch predictors so the first samples aren't cold.
    for _ in 0..32 {
        std::hint::black_box(read());
    }
    let mut deltas: Vec<u64> = (0..CAL_REPS)
        .map(|_| {
            let a = read();
            let b = read();
            b.saturating_sub(a)
        })
        .collect();
    deltas.sort_unstable();
    deltas[deltas.len() / 2] as f64
}

/// Estimated TSC frequency in GHz (equivalently: cycles per nanosecond),
/// from one busy-wait window against the monotonic clock. On the
/// nanosecond fallback this converges to 1.0 by construction. Calibrated
/// once per process.
pub fn tsc_ghz() -> f64 {
    static GHZ: OnceLock<f64> = OnceLock::new();
    *GHZ.get_or_init(|| {
        let t0 = Instant::now();
        let c0 = read_raw();
        while t0.elapsed() < FREQ_WINDOW {
            std::hint::spin_loop();
        }
        let cycles = read_raw().wrapping_sub(c0) as f64;
        let ns = t0.elapsed().as_nanos() as f64;
        cycles / ns.max(1.0)
    })
}

/// A start timestamp; [`elapsed_cycles`](Self::elapsed_cycles) closes the
/// interval with overhead compensation.
#[derive(Debug, Clone, Copy)]
pub struct CycleStamp(u64);

/// Open a cycle-timed interval.
#[inline]
pub fn start() -> CycleStamp {
    CycleStamp(read_raw())
}

impl CycleStamp {
    /// Cycles elapsed since [`start`], with the calibrated read overhead
    /// subtracted and the result clamped to `>= 0` (a region shorter than
    /// the overhead reports 0, never a negative count).
    pub fn elapsed_cycles(self) -> f64 {
        let now = read_raw();
        (now.saturating_sub(self.0) as f64 - overhead_cycles()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_calibrated_nonnegative_and_finite() {
        let oh = overhead_cycles();
        assert!(oh.is_finite() && oh >= 0.0, "{oh}");
        // Cached: a second call returns the identical value.
        assert_eq!(oh.to_bits(), overhead_cycles().to_bits());
    }

    #[test]
    fn reads_are_monotone() {
        let mut prev = read();
        for _ in 0..10_000 {
            let now = read();
            assert!(now >= prev, "counter went backwards: {prev} -> {now}");
            prev = now;
        }
    }

    #[test]
    fn fallback_reader_is_monotone_and_advances() {
        let a = read_fallback_ns();
        let b = read_fallback_ns();
        assert!(b >= a);
        std::thread::sleep(Duration::from_millis(2));
        let c = read_fallback_ns();
        assert!(c > b, "fallback did not advance across a sleep: {b} -> {c}");
    }

    #[test]
    fn fallback_overhead_calibrates_nonnegative() {
        let oh = calibrate_overhead(read_fallback_ns);
        assert!(oh.is_finite() && oh >= 0.0, "{oh}");
    }

    #[test]
    fn synthetic_counter_calibrates_to_its_stride() {
        use std::cell::Cell;
        // A reader that advances exactly 5 "cycles" per read: every
        // back-to-back pair differs by 5, so the median overhead is 5.
        let ticks = Cell::new(0u64);
        let oh = calibrate_overhead(|| {
            ticks.set(ticks.get() + 5);
            ticks.get()
        });
        assert_eq!(oh, 5.0);
    }

    #[test]
    fn frequency_estimate_is_positive() {
        let ghz = tsc_ghz();
        assert!(ghz.is_finite() && ghz > 0.0, "{ghz}");
        // Anything from ~0.5 (fallback on a slow clock) to ~10 GHz is
        // plausible silicon; far outside means the window math broke.
        assert!(ghz < 100.0, "{ghz}");
    }

    #[test]
    fn elapsed_cycles_is_nonnegative_and_grows_with_work() {
        let empty = start().elapsed_cycles();
        assert!(empty >= 0.0);
        let t = start();
        let mut acc = 0u64;
        for i in 0..100_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        let busy = t.elapsed_cycles();
        assert!(busy > 0.0, "{busy}");
    }

    #[test]
    fn source_name_matches_arch() {
        let s = cycle_source();
        assert!(s == "rdtsc" || s == "instant");
        assert_eq!(s == "rdtsc", cfg!(target_arch = "x86_64"));
    }
}
