//! A counting global allocator: every heap allocation in the process is
//! tallied on relaxed atomics, so bench reports can put a hard number on
//! "allocations per batch iteration" for the hot pricing paths.
//!
//! The allocator forwards to [`System`] and adds two relaxed
//! `fetch_add`s per call — cheap enough to leave installed permanently.
//! Installation is the binary crate's choice (the `finbench` harness
//! does it):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: finbench_telemetry::CountingAlloc = finbench_telemetry::CountingAlloc;
//! ```
//!
//! Binaries that don't install it still link fine; [`alloc_stats`] just
//! stays at zero, and [`counting_allocator_active`] reports whether the
//! numbers mean anything.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static DEALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// The counting allocator; a unit type so it can be a `static`.
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// GlobalAlloc contract; the added atomic counters have no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOC_CALLS.fetch_add(1, Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is one allocator round trip; count the new size (the
        // old bytes were already counted when first allocated).
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Cumulative allocation tallies since process start (all zeros unless
/// [`CountingAlloc`] is installed as the global allocator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocation calls (`alloc` + `alloc_zeroed` + `realloc`).
    pub allocs: u64,
    /// Deallocation calls.
    pub deallocs: u64,
    /// Bytes requested across allocation calls.
    pub bytes: u64,
}

impl AllocStats {
    /// Tallies accumulated between `earlier` and `self` (saturating, so a
    /// torn pair of snapshots can't produce a wrapped count).
    pub fn since(self, earlier: AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            deallocs: self.deallocs.saturating_sub(earlier.deallocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Snapshot the process-wide allocation tallies.
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        allocs: ALLOC_CALLS.load(Relaxed),
        deallocs: DEALLOC_CALLS.load(Relaxed),
        bytes: ALLOC_BYTES.load(Relaxed),
    }
}

/// True when [`CountingAlloc`] is actually installed in this binary:
/// probes with one heap allocation and checks the counter moved.
pub fn counting_allocator_active() -> bool {
    let before = ALLOC_CALLS.load(Relaxed);
    std::hint::black_box(Vec::<u8>::with_capacity(64));
    ALLOC_CALLS.load(Relaxed) > before
}

#[cfg(test)]
mod tests {
    use super::*;

    // The telemetry test binary does not install the allocator, so drive
    // the GlobalAlloc impl directly and watch the counters.
    #[test]
    fn forwarded_calls_count_and_return_usable_memory() {
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = alloc_stats();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            p.write(0xAB);
            assert_eq!(p.read(), 0xAB);
            let z = CountingAlloc.alloc_zeroed(layout);
            assert!(!z.is_null());
            assert_eq!(z.read(), 0);
            let grown = CountingAlloc.realloc(p, layout, 128);
            assert!(!grown.is_null());
            CountingAlloc.dealloc(grown, Layout::from_size_align(128, 8).unwrap());
            CountingAlloc.dealloc(z, layout);
        }
        let d = alloc_stats().since(before);
        assert_eq!(d.allocs, 3, "{d:?}");
        assert_eq!(d.deallocs, 2, "{d:?}");
        assert_eq!(d.bytes, 64 + 64 + 128, "{d:?}");
    }

    #[test]
    fn since_saturates_instead_of_wrapping() {
        let small = AllocStats {
            allocs: 1,
            deallocs: 1,
            bytes: 1,
        };
        let big = AllocStats {
            allocs: 5,
            deallocs: 5,
            bytes: 5,
        };
        assert_eq!(small.since(big), AllocStats::default());
        assert_eq!(
            big.since(small),
            AllocStats {
                allocs: 4,
                deallocs: 4,
                bytes: 4
            }
        );
    }
}
