//! Exporters: human-readable span tree, JSON-lines, and CSV.
//!
//! All exporters read the span registry and metric registries; only
//! [`write_jsonl`] drains the span registry (so a run can be exported
//! exactly once to a file and the in-memory state reclaimed).

use crate::json::Json;
use crate::metrics::{counter_snapshot, gauge_snapshot};
use crate::span::{snapshot, AttrValue, SpanRecord};
use std::fmt::Write as _;
use std::io::Write as _;

/// Schema version stamped on the leading `meta` line of every JSONL
/// export. Bump when the line shapes change incompatibly; consumers
/// (`finbench bench-compare` and external tooling) reject versions they
/// don't know.
pub const JSONL_SCHEMA_VERSION: u64 = 1;

fn attr_json(v: &AttrValue) -> Json {
    match v {
        AttrValue::Int(i) => Json::Num(*i as f64),
        AttrValue::Float(f) => Json::Num(*f),
        AttrValue::Str(s) => Json::Str(s.clone()),
    }
}

/// One span as a JSON-lines record.
pub fn span_to_json(rec: &SpanRecord) -> Json {
    let attrs = Json::Obj(
        rec.attrs
            .iter()
            .map(|(k, v)| (k.clone(), attr_json(v)))
            .collect(),
    );
    Json::Obj(vec![
        ("type".into(), Json::Str("span".into())),
        ("id".into(), Json::Num(rec.id as f64)),
        ("parent".into(), Json::Num(rec.parent as f64)),
        ("name".into(), Json::Str(rec.name.clone())),
        ("depth".into(), Json::Num(rec.depth as f64)),
        ("start_ns".into(), Json::Num(rec.start_ns as f64)),
        ("dur_ns".into(), Json::Num(rec.dur_ns as f64)),
        ("attrs".into(), attrs),
    ])
}

/// Serialize the given spans plus all counters and gauges as JSON lines.
///
/// The output is deterministic for a deterministic run: a `meta` line
/// carrying [`JSONL_SCHEMA_VERSION`] comes first, spans follow in
/// document order (`start_ns`, then id — not the racy completion order
/// the registry stores), then counters and gauges sorted by name.
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    let meta = Json::Obj(vec![
        ("type".into(), Json::Str("meta".into())),
        (
            "schema_version".into(),
            Json::Num(JSONL_SCHEMA_VERSION as f64),
        ),
        (
            "format".into(),
            Json::Str("finbench-telemetry-jsonl".into()),
        ),
    ]);
    out.push_str(&meta.to_json());
    out.push('\n');
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|r| (r.start_ns, r.id));
    for rec in ordered {
        out.push_str(&span_to_json(rec).to_json());
        out.push('\n');
    }
    for (name, value) in counter_snapshot() {
        let line = Json::Obj(vec![
            ("type".into(), Json::Str("counter".into())),
            ("name".into(), Json::Str(name)),
            ("value".into(), Json::Num(value as f64)),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    for (name, value) in gauge_snapshot() {
        let line = Json::Obj(vec![
            ("type".into(), Json::Str("gauge".into())),
            ("name".into(), Json::Str(name)),
            ("value".into(), Json::Num(value)),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    out
}

/// Drain the span registry and write everything (spans, counters,
/// gauges) as JSON lines to `path`.
pub fn write_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    let spans = crate::span::drain();
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_jsonl(&spans).as_bytes())?;
    Ok(())
}

fn fmt_dur(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

fn fmt_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) => {
            if f.abs() >= 1e5 {
                format!("{f:.3e}")
            } else {
                format!("{f:.3}")
            }
        }
        AttrValue::Str(s) => s.clone(),
    }
}

/// Render the finished spans as an indented tree, children under their
/// parents, with durations and attributes. Counters and gauges follow.
pub fn render_tree() -> String {
    let spans = snapshot();
    let mut out = String::new();
    if !spans.is_empty() {
        out.push_str("spans:\n");
        // Completion order has children before parents; rebuild document
        // order by emitting each root then its subtree by start time.
        let mut by_start: Vec<&SpanRecord> = spans.iter().collect();
        by_start.sort_by_key(|r| (r.start_ns, r.id));
        for rec in by_start {
            let indent = "  ".repeat(rec.depth as usize + 1);
            let _ = write!(out, "{indent}{} [{}]", rec.name, fmt_dur(rec.dur_ns));
            for (k, v) in &rec.attrs {
                let _ = write!(out, " {k}={}", fmt_attr(v));
            }
            out.push('\n');
        }
    }
    let counters = counter_snapshot();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in counters {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }
    let gauges = gauge_snapshot();
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in gauges {
            let _ = writeln!(out, "  {name} = {value:.4}");
        }
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialize the finished spans as CSV (one row per span, attributes as a
/// `k=v;k=v` column), followed by counter rows.
pub fn to_csv() -> String {
    let mut out = String::from("kind,id,parent,name,depth,dur_ns,attrs_or_value\n");
    for rec in snapshot() {
        let attrs = rec
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={}", fmt_attr(v)))
            .collect::<Vec<_>>()
            .join(";");
        let _ = writeln!(
            out,
            "span,{},{},{},{},{},{}",
            rec.id,
            rec.parent,
            csv_escape(&rec.name),
            rec.depth,
            rec.dur_ns,
            csv_escape(&attrs)
        );
    }
    for (name, value) in counter_snapshot() {
        let _ = writeln!(out, "counter,,,{},,,{}", csv_escape(&name), value);
    }
    for (name, value) in gauge_snapshot() {
        let _ = writeln!(out, "gauge,,,{},,,{}", csv_escape(&name), value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_span() -> SpanRecord {
        SpanRecord {
            id: 7,
            parent: 3,
            name: "native.black_scholes.basic".into(),
            depth: 1,
            start_ns: 1000,
            dur_ns: 2_500_000,
            attrs: vec![
                ("reps".into(), AttrValue::Int(12)),
                ("median_rate".into(), AttrValue::Float(1.5e8)),
                ("label".into(), AttrValue::Str("Basic scalar".into())),
            ],
        }
    }

    #[test]
    fn span_json_round_trips() {
        let rec = sample_span();
        let line = span_to_json(&rec).to_json();
        let back = json::parse(&line).unwrap();
        assert_eq!(back.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(back.get("id").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            back.get("name").unwrap().as_str(),
            Some("native.black_scholes.basic")
        );
        let attrs = back.get("attrs").unwrap();
        assert_eq!(attrs.get("reps").unwrap().as_f64(), Some(12.0));
        assert_eq!(attrs.get("median_rate").unwrap().as_f64(), Some(1.5e8));
        assert_eq!(attrs.get("label").unwrap().as_str(), Some("Basic scalar"));
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let recs = vec![sample_span(), sample_span()];
        let text = to_jsonl(&recs);
        let mut n = 0;
        for line in text.lines() {
            json::parse(line).unwrap();
            n += 1;
        }
        assert!(n >= 2);
    }

    #[test]
    fn jsonl_leads_with_a_versioned_meta_line() {
        let text = to_jsonl(&[sample_span()]);
        let first = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(
            first.get("schema_version").unwrap().as_f64(),
            Some(JSONL_SCHEMA_VERSION as f64)
        );
    }

    #[test]
    fn jsonl_orders_spans_by_start_time_not_completion_order() {
        // Completion order (children first) feeds spans in reverse start
        // order; the export must re-sort to document order.
        let mut child = sample_span();
        child.id = 9;
        child.start_ns = 5000;
        let mut parent = sample_span();
        parent.id = 8;
        parent.start_ns = 100;
        let text = to_jsonl(&[child, parent]);
        let ids: Vec<f64> = text
            .lines()
            .map(|l| json::parse(l).unwrap())
            .filter(|v| v.get("type").and_then(|t| t.as_str()) == Some("span"))
            .map(|v| v.get("id").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(ids, vec![8.0, 9.0]);
    }

    #[test]
    fn jsonl_counters_and_gauges_come_out_sorted_by_name() {
        crate::filter::set_filter("all");
        // Register deliberately out of alphabetical order.
        crate::metrics::counter_add("export_order_test.zz", 1);
        crate::metrics::counter_add("export_order_test.aa", 1);
        crate::metrics::gauge_set("export_order_test.gz", 2.0);
        crate::metrics::gauge_set("export_order_test.ga", 1.0);
        let text = to_jsonl(&[]);
        let names_of = |kind: &str| -> Vec<String> {
            text.lines()
                .map(|l| json::parse(l).unwrap())
                .filter(|v| v.get("type").and_then(|t| t.as_str()) == Some(kind))
                .filter_map(|v| {
                    v.get("name")
                        .and_then(|n| n.as_str())
                        .filter(|n| n.starts_with("export_order_test."))
                        .map(str::to_string)
                })
                .collect()
        };
        for kind in ["counter", "gauge"] {
            let names = names_of(kind);
            let mut sorted = names.clone();
            sorted.sort();
            assert!(!names.is_empty(), "{kind}");
            assert_eq!(names, sorted, "{kind}: {names:?}");
        }
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
