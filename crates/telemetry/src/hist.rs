//! Streaming log-bucketed histograms.
//!
//! Buckets are geometric with ratio [`GROWTH`] (2% wide), so quantile
//! estimates carry at most ~1% relative error from bucketing while the
//! memory footprint stays bounded by the dynamic range of the data, not
//! the sample count. Exact `min`/`max`/`count`/`sum` are tracked on the
//! side, and quantile estimates are clamped into `[min, max]`.

use std::collections::BTreeMap;

/// Geometric bucket growth factor.
pub const GROWTH: f64 = 1.02;

/// A streaming histogram over positive doubles (non-positive and
/// non-finite samples land in a single underflow bucket).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: BTreeMap<i32, u64>,
    underflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: f64) -> i32 {
        (v.ln() / GROWTH.ln()).floor() as i32
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if v.is_finite() && v > 0.0 {
            *self.buckets.entry(Self::bucket_of(v)).or_insert(0) += 1;
        } else {
            self.underflow += 1;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Number of occupied buckets (diagnostic).
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len() + usize::from(self.underflow > 0)
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by walking the buckets
    /// and reporting the geometric midpoint of the bucket containing the
    /// target rank, clamped to the exact `[min, max]`. Underflow samples
    /// rank below every bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // The endpoints are tracked exactly.
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Nearest-rank (1-based) target.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        if target <= self.underflow {
            return self.min;
        }
        let mut seen = self.underflow;
        for (&b, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                let lo = GROWTH.powi(b);
                let mid = lo * GROWTH.sqrt();
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.underflow += other.underflow;
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nearest-rank quantile on a sorted vector — the oracle (the shared
    /// definition in [`crate::stats`]).
    fn oracle(sorted: &[f64], q: f64) -> f64 {
        crate::stats::nearest_rank(sorted, q)
    }

    #[test]
    fn quantiles_match_sorted_vector_oracle() {
        // Deterministic log-uniform samples over three decades.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut samples = Vec::new();
        let mut h = Histogram::new();
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let v = 10f64.powf(u * 3.0); // [1, 1000)
            samples.push(v);
            h.record(v);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let want = oracle(&samples, q);
            let got = h.quantile(q);
            let rel = ((got - want) / want).abs();
            assert!(rel < 0.025, "q={q}: got {got} want {want} rel {rel}");
        }
        assert_eq!(h.min(), samples[0]);
        assert_eq!(h.max(), *samples.last().unwrap());
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn small_sample_quantiles_clamp_to_extremes() {
        let mut h = Histogram::new();
        for v in [5.0, 7.0, 9.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 5.0);
        assert!(h.quantile(1.0) <= 9.0 + 1e-12);
        assert!((h.mean() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn underflow_bucket_holds_nonpositive() {
        let mut h = Histogram::new();
        h.record(-1.0);
        h.record(0.0);
        h.record(2.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -1.0);
        // Low quantiles resolve to min via the underflow bucket.
        assert_eq!(h.quantile(0.3), -1.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for i in 1..500 {
            let v = i as f64 * 0.37;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.median(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }
}
