//! The `FINBENCH_LOG` runtime filter.
//!
//! Instrumentation falls into three signal classes — spans, counters (and
//! gauges), and histograms — each of which can be toggled independently:
//!
//! ```text
//! FINBENCH_LOG=span,counter      # spans and counters, no histograms
//! FINBENCH_LOG=off               # everything disabled
//! (unset)                        # everything enabled
//! ```
//!
//! The filter is a single `AtomicU32` read with one relaxed load on every
//! hot-path check; the environment is parsed once on first use. Building
//! the crate with the `off` feature compiles every check to a constant
//! `false`, removing the instrumentation entirely.

use std::sync::atomic::{AtomicU32, Ordering};

/// Signal classes the filter distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Hierarchical spans.
    Span,
    /// Counters and gauges.
    Counter,
    /// Histograms.
    Hist,
}

pub(crate) const BIT_SPAN: u32 = 1;
pub(crate) const BIT_COUNTER: u32 = 2;
pub(crate) const BIT_HIST: u32 = 4;
const BIT_INIT: u32 = 1 << 31;
const ALL: u32 = BIT_SPAN | BIT_COUNTER | BIT_HIST;

static FILTER: AtomicU32 = AtomicU32::new(0);

/// Parse a `FINBENCH_LOG`-style value into filter bits.
fn parse(value: &str) -> u32 {
    let v = value.trim();
    if v.is_empty() {
        return ALL;
    }
    match v.to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => return 0,
        "all" | "on" | "1" => return ALL,
        _ => {}
    }
    let mut bits = 0;
    for tok in v.split(',') {
        match tok.trim().to_ascii_lowercase().as_str() {
            "span" | "spans" => bits |= BIT_SPAN,
            "counter" | "counters" | "gauge" | "gauges" => bits |= BIT_COUNTER,
            "hist" | "hists" | "histogram" | "histograms" => bits |= BIT_HIST,
            "" => {}
            other => eprintln!("FINBENCH_LOG: ignoring unknown token {other:?}"),
        }
    }
    bits
}

fn load() -> u32 {
    let bits = FILTER.load(Ordering::Relaxed);
    if bits & BIT_INIT != 0 {
        return bits;
    }
    let parsed = match std::env::var("FINBENCH_LOG") {
        Ok(v) => parse(&v),
        Err(_) => ALL,
    } | BIT_INIT;
    FILTER.store(parsed, Ordering::Relaxed);
    parsed
}

/// Is the given signal class enabled?
#[inline]
pub fn enabled(kind: Kind) -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    let bits = load();
    let bit = match kind {
        Kind::Span => BIT_SPAN,
        Kind::Counter => BIT_COUNTER,
        Kind::Hist => BIT_HIST,
    };
    bits & bit != 0
}

/// Programmatically override the filter (tests and embedding tools); the
/// same format as the `FINBENCH_LOG` variable.
pub fn set_filter(spec: &str) {
    FILTER.store(parse(spec) | BIT_INIT, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar() {
        assert_eq!(parse("off"), 0);
        assert_eq!(parse("none"), 0);
        assert_eq!(parse("all"), ALL);
        assert_eq!(parse(""), ALL);
        assert_eq!(parse("span"), BIT_SPAN);
        assert_eq!(parse("span,counter"), BIT_SPAN | BIT_COUNTER);
        assert_eq!(parse(" hist , spans "), BIT_HIST | BIT_SPAN);
        assert_eq!(parse("bogus"), 0);
    }
}
