//! Minimal hand-rolled JSON: a value tree, a writer, and a recursive
//! descent parser. Exists so the JSON-lines exporter has zero external
//! dependencies and so tests can round-trip exporter output.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as double).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize to compact JSON text. Non-finite numbers become `null`
    /// (JSON has no NaN/inf).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if *v == v.trunc() && v.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document from `text`.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("a \"quoted\"\nlabel".into())),
            ("n".into(), Json::Num(42.0)),
            ("rate".into(), Json::Num(1.25e9)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Num(0.001)]),
            ),
        ]);
        let text = doc.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_serialize_without_exponent() {
        assert_eq!(Json::Num(42.0).to_json(), "42");
        assert_eq!(Json::Num(-7.0).to_json(), "-7");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , \"\\u00e9\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Str("é".into())])
        );
    }
}
