//! Shared order statistics: the nearest-rank percentile definition every
//! report path in the workspace uses.
//!
//! Three call sites used to hand-roll this computation (the engine's
//! timing samples, the serve load generator's latency report, and the
//! histogram test oracle) with two subtly different rank conventions.
//! This module is the single definition: the classic nearest-rank method,
//! `rank = ceil(q * n)` (1-based, clamped to `[1, n]`), which always
//! returns an element of the sample — no interpolation.

/// Nearest-rank quantile of an **ascending-sorted, finite** sample.
///
/// `q` is clamped to `[0, 1]`; `q = 0` returns the minimum and `q = 1`
/// the maximum. An empty sample returns `NaN` (callers that prefer a
/// sentinel map it themselves).
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Nearest-rank quantile of an **unsorted** sample: drops NaN samples
/// (so one poisoned measurement can't become "the median"), sorts a
/// copy, then applies [`nearest_rank`]. An all-NaN (or empty) sample
/// returns `NaN`. Convenience for one-shot report paths.
pub fn nearest_rank_unsorted(samples: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
    sorted.sort_by(f64::total_cmp);
    nearest_rank(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_nan() {
        assert!(nearest_rank(&[], 0.5).is_nan());
        assert!(nearest_rank_unsorted(&[], 0.99).is_nan());
    }

    #[test]
    fn singleton_returns_the_value_for_every_q() {
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(nearest_rank(&[7.5], q), 7.5, "q={q}");
        }
    }

    #[test]
    fn exact_quantiles_on_a_small_sorted_sample() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        // rank = ceil(q * 5): q=0.2 → element 1, q=0.4 → element 2, ...
        assert_eq!(nearest_rank(&v, 0.0), 1.0);
        assert_eq!(nearest_rank(&v, 0.2), 1.0);
        assert_eq!(nearest_rank(&v, 0.4), 2.0);
        assert_eq!(nearest_rank(&v, 0.5), 3.0);
        assert_eq!(nearest_rank(&v, 0.8), 4.0);
        assert_eq!(nearest_rank(&v, 0.95), 5.0);
        assert_eq!(nearest_rank(&v, 1.0), 5.0);
    }

    #[test]
    fn q_outside_unit_interval_clamps() {
        let v = [10.0, 20.0];
        assert_eq!(nearest_rank(&v, -0.5), 10.0);
        assert_eq!(nearest_rank(&v, 1.5), 20.0);
    }

    #[test]
    fn unsorted_variant_sorts_first() {
        let v = [9.0, 1.0, 5.0];
        assert_eq!(nearest_rank_unsorted(&v, 0.5), 5.0);
        assert_eq!(nearest_rank_unsorted(&v, 1.0), 9.0);
        assert_eq!(nearest_rank_unsorted(&v, 0.0), 1.0);
    }

    #[test]
    fn all_equal_sample_returns_that_value_for_every_q() {
        let v = [3.25; 9];
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            assert_eq!(nearest_rank(&v, q), 3.25, "q={q}");
            assert_eq!(nearest_rank_unsorted(&v, q), 3.25, "q={q}");
        }
    }

    #[test]
    fn nan_samples_are_rejected_not_ranked() {
        // Without rejection, total_cmp sorts NaN last and q=1.0 would
        // report NaN as "the maximum".
        let v = [2.0, f64::NAN, 1.0, f64::NAN, 3.0];
        assert_eq!(nearest_rank_unsorted(&v, 0.0), 1.0);
        assert_eq!(nearest_rank_unsorted(&v, 0.5), 2.0);
        assert_eq!(nearest_rank_unsorted(&v, 1.0), 3.0);
        // An all-NaN sample has no rankable elements: NaN, like empty.
        assert!(nearest_rank_unsorted(&[f64::NAN, f64::NAN], 0.5).is_nan());
    }

    #[test]
    fn infinities_still_rank() {
        // Only NaN is rejected; infinite samples are real measurements of
        // a degenerate kind and keep their order.
        let v = [1.0, f64::INFINITY, f64::NEG_INFINITY];
        assert_eq!(nearest_rank_unsorted(&v, 0.0), f64::NEG_INFINITY);
        assert_eq!(nearest_rank_unsorted(&v, 0.5), 1.0);
        assert_eq!(nearest_rank_unsorted(&v, 1.0), f64::INFINITY);
    }

    #[test]
    fn always_returns_a_sample_element() {
        let v: Vec<f64> = (0..17).map(|i| i as f64 * 1.5).collect();
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let got = nearest_rank(&v, q);
            assert!(v.contains(&got), "q={q} returned non-element {got}");
        }
    }
}
