//! Hierarchical spans with RAII guards.
//!
//! A [`span`] call pushes an active span onto the calling thread's stack
//! and returns a guard; dropping the guard pops the span, stamps its
//! duration, and appends a finished [`SpanRecord`] to the process-wide
//! registry. Nesting follows lexical scope per thread; attributes attach
//! to the innermost open span of the calling thread via [`set_attr`].

use crate::filter::{enabled, Kind};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Double.
    Float(f64),
    /// String.
    Str(String),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// A finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (monotonic, process-wide, starts at 1).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Span name (dotted-path convention, e.g. `experiment.fig4`).
    pub name: String,
    /// Nesting depth on the opening thread (root = 0).
    pub depth: u32,
    /// Start time in nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Attributes, in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: String,
    depth: u32,
    start: Instant,
    attrs: Vec<(String, AttrValue)>,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static REGISTRY: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Open a span; it closes (and is recorded) when the returned guard drops.
/// When spans are filtered out the guard is inert and nothing is recorded.
#[must_use = "the span closes when the guard is dropped"]
pub fn span(name: impl Into<String>) -> SpanGuard {
    if !enabled(Kind::Span) {
        return SpanGuard { active: false };
    }
    let start = Instant::now();
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let (parent, depth) = match stack.last() {
            Some(top) => (top.id, top.depth + 1),
            None => (0, 0),
        };
        stack.push(ActiveSpan {
            id,
            parent,
            name: name.into(),
            depth,
            start,
            attrs: Vec::new(),
        });
    });
    SpanGuard { active: true }
}

/// RAII guard returned by [`span`].
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let done = Instant::now();
        let Some(active) = STACK.with(|stack| stack.borrow_mut().pop()) else {
            return;
        };
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            depth: active.depth,
            start_ns: active.start.duration_since(epoch()).as_nanos() as u64,
            dur_ns: done.duration_since(active.start).as_nanos() as u64,
            attrs: active.attrs,
        };
        REGISTRY.lock().unwrap().push(record);
    }
}

/// Upsert an attribute on the calling thread's innermost open span; a
/// no-op when no span is open or spans are filtered out.
pub fn set_attr(key: &str, value: impl Into<AttrValue>) {
    if !enabled(Kind::Span) {
        return;
    }
    let value = value.into();
    STACK.with(|stack| {
        if let Some(top) = stack.borrow_mut().last_mut() {
            if let Some(slot) = top.attrs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                top.attrs.push((key.to_string(), value));
            }
        }
    });
}

/// Name of the calling thread's innermost open span, if any.
pub fn current_name() -> Option<String> {
    STACK.with(|stack| stack.borrow().last().map(|s| s.name.clone()))
}

/// Snapshot all finished spans (completion order: children precede their
/// parent).
pub fn snapshot() -> Vec<SpanRecord> {
    REGISTRY.lock().unwrap().clone()
}

/// Drain all finished spans, leaving the registry empty.
pub fn drain() -> Vec<SpanRecord> {
    std::mem::take(&mut *REGISTRY.lock().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_link_and_order() {
        crate::filter::set_filter("all");
        {
            let _a = span("span_test.outer");
            set_attr("k", 1i64);
            {
                let _b = span("span_test.inner");
                set_attr("x", 2.5f64);
            }
            set_attr("k", 7i64); // upsert
        }
        // Other unit tests share the process-wide registry, so assert on
        // this test's own spans instead of the whole snapshot.
        let recs = snapshot();
        let inner_pos = recs
            .iter()
            .position(|r| r.name == "span_test.inner")
            .unwrap();
        let outer_pos = recs
            .iter()
            .position(|r| r.name == "span_test.outer")
            .unwrap();
        assert!(inner_pos < outer_pos, "children complete before parents");
        let (inner, outer) = (&recs[inner_pos], &recs[outer_pos]);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.depth, outer.depth + 1);
        assert_eq!(inner.attrs, vec![("x".to_string(), AttrValue::Float(2.5))]);
        assert_eq!(
            outer.attrs.iter().find(|(k, _)| k == "k"),
            Some(&("k".to_string(), AttrValue::Int(7)))
        );
    }

    #[test]
    fn attrs_without_open_span_are_ignored() {
        crate::filter::set_filter("all");
        set_attr("orphan", 1i64); // must not panic
    }
}
