//! # finbench-telemetry
//!
//! Zero-dependency tracing, metrics, and profiling for the finbench
//! workspace. Everything lives in-process and in-memory; exporters turn
//! the collected state into a human-readable tree, JSON lines, or CSV.
//!
//! Four building blocks:
//!
//! - **Spans** ([`span`], [`set_attr`]): hierarchical RAII-timed regions.
//!   `let _g = telemetry::span("experiment.fig4");` opens a span that
//!   closes when the guard drops; nesting follows lexical scope per
//!   thread, and key/value attributes attach to the innermost open span.
//! - **Counters and gauges** ([`counter_add`], [`gauge_set`]): named
//!   process-wide atomics, safe to bump from worker threads.
//! - **Histograms** ([`Histogram`]): streaming log-bucketed distribution
//!   sketches for per-rep throughput samples — median/p95 instead of
//!   only best-of.
//! - **Exporters** ([`render_tree`], [`to_jsonl`], [`write_jsonl`],
//!   [`to_csv`]): pull everything recorded so far out of the registries.
//!
//! Two measurement substrates ride along for the bench-report plane:
//! [`cycles`] (fenced RDTSC timestamps with calibrated overhead
//! subtraction, nanosecond fallback off x86_64) and [`alloc`] (a counting
//! global allocator binaries may install to get allocations-per-iteration
//! numbers).
//!
//! Instrumentation cost is governed by the `FINBENCH_LOG` environment
//! variable (see [`filter`]): every hot-path call first does one relaxed
//! atomic load and returns immediately when its signal class is filtered
//! out. Compiling with the `off` feature turns that check into a
//! constant `false` so the optimizer removes the instrumentation
//! entirely.

pub mod alloc;
pub mod cycles;
pub mod export;
pub mod filter;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod span;
pub mod stats;

pub use alloc::{alloc_stats, counting_allocator_active, AllocStats, CountingAlloc};
pub use export::{render_tree, span_to_json, to_csv, to_jsonl, write_jsonl, JSONL_SCHEMA_VERSION};
pub use filter::{enabled, set_filter, Kind};
pub use hist::Histogram;
pub use metrics::{
    counter_add, counter_snapshot, counter_value, gauge_set, gauge_snapshot, gauge_value,
    reset_metrics,
};
pub use span::{current_name, drain, set_attr, snapshot, span, AttrValue, SpanGuard, SpanRecord};
pub use stats::{nearest_rank, nearest_rank_unsorted};
