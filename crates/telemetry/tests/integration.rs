//! End-to-end tests through the public API: span nesting, attribute
//! attachment, and the JSON-lines round trip via the built-in parser.

use finbench_telemetry as telemetry;
use telemetry::json;

#[test]
fn spans_nest_export_and_round_trip() {
    telemetry::set_filter("all");

    {
        let _outer = telemetry::span("it.experiment");
        telemetry::set_attr("kernel", "black_scholes");
        {
            let _rung = telemetry::span("it.rung");
            telemetry::set_attr("reps", 5u64);
            telemetry::set_attr("median_rate", 2.0e8f64);
            telemetry::set_attr("p95_rate", 2.2e8f64);
        }
        {
            let _rung = telemetry::span("it.rung2");
            telemetry::set_attr("reps", 9u64);
        }
    }
    telemetry::counter_add("it.ops", 123);

    let spans = telemetry::snapshot();
    let outer = spans.iter().find(|s| s.name == "it.experiment").unwrap();
    let rung = spans.iter().find(|s| s.name == "it.rung").unwrap();
    let rung2 = spans.iter().find(|s| s.name == "it.rung2").unwrap();
    assert_eq!(rung.parent, outer.id);
    assert_eq!(rung2.parent, outer.id);
    assert_eq!(rung.depth, outer.depth + 1);
    // The outer span covers both rungs.
    assert!(outer.dur_ns >= rung.dur_ns + rung2.dur_ns);

    // JSONL round trip: every line parses, and the rung record carries
    // its attributes through serialization intact.
    let text = telemetry::to_jsonl(&spans);
    let mut parsed = Vec::new();
    for line in text.lines() {
        parsed.push(json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}")));
    }
    let rung_line = parsed
        .iter()
        .find(|v| v.get("name").and_then(|n| n.as_str()) == Some("it.rung"))
        .unwrap();
    assert_eq!(rung_line.get("type").unwrap().as_str(), Some("span"));
    assert_eq!(rung_line.get("id").unwrap().as_f64(), Some(rung.id as f64));
    assert_eq!(
        rung_line.get("parent").unwrap().as_f64(),
        Some(outer.id as f64)
    );
    let attrs = rung_line.get("attrs").unwrap();
    assert_eq!(attrs.get("reps").unwrap().as_f64(), Some(5.0));
    assert_eq!(attrs.get("median_rate").unwrap().as_f64(), Some(2.0e8));
    assert_eq!(attrs.get("p95_rate").unwrap().as_f64(), Some(2.2e8));

    let counter_line = parsed
        .iter()
        .find(|v| v.get("name").and_then(|n| n.as_str()) == Some("it.ops"))
        .unwrap();
    assert_eq!(counter_line.get("type").unwrap().as_str(), Some("counter"));
    assert_eq!(counter_line.get("value").unwrap().as_f64(), Some(123.0));

    // Tree render mentions the spans and the counter.
    let tree = telemetry::render_tree();
    assert!(tree.contains("it.experiment"));
    assert!(tree.contains("it.rung"));
    assert!(tree.contains("it.ops"));

    // CSV has a header plus at least our three span rows.
    let csv = telemetry::to_csv();
    assert!(csv.starts_with("kind,id,parent,name,depth,dur_ns"));
    assert!(csv.contains("span,"));
}

#[test]
fn write_jsonl_drains_registry_to_file() {
    telemetry::set_filter("all");
    {
        let _s = telemetry::span("it.file_span");
    }
    let dir = std::env::temp_dir().join("finbench_telemetry_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("out.jsonl");
    telemetry::write_jsonl(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.lines().any(|l| l.contains("it.file_span")));
    for line in text.lines() {
        json::parse(line).unwrap();
    }
    // Drained: a second export has no spans from before.
    assert!(telemetry::snapshot()
        .iter()
        .all(|s| s.name != "it.file_span"));
    std::fs::remove_file(&path).ok();
}
