//! Single-test file: mutates the process-global filter, so it must not
//! share a process with other telemetry tests.

use finbench_telemetry as telemetry;

#[test]
fn disabled_counters_leave_tallies_at_zero() {
    telemetry::set_filter("off");
    for _ in 0..1000 {
        telemetry::counter_add("disabled_test.ops", 17);
    }
    telemetry::gauge_set("disabled_test.g", 3.5);
    assert_eq!(telemetry::counter_value("disabled_test.ops"), 0);
    assert_eq!(telemetry::gauge_value("disabled_test.g"), 0.0);
    // Spans are inert too: guard drops record nothing.
    {
        let _g = telemetry::span("disabled_test.span");
    }
    assert!(telemetry::snapshot()
        .iter()
        .all(|s| s.name != "disabled_test.span"));

    // Re-enable and verify the same counter now tallies.
    telemetry::set_filter("counter");
    telemetry::counter_add("disabled_test.ops", 17);
    assert_eq!(telemetry::counter_value("disabled_test.ops"), 17);
}
