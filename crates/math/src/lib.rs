//! # finbench-math
//!
//! Scalar special-function substrate for the finbench derivative-pricing
//! benchmark suite (SC 2012, Smelyanskiy et al.).
//!
//! The paper's kernels lean on a small set of transcendental functions —
//! `exp`, `log`, `erf`, the cumulative normal distribution `cnd` and its
//! inverse — supplied there by Intel's SVML/MKL. This crate reimplements
//! them from scratch in pure Rust:
//!
//! * [`fn@exp`] — Cephes-style rational approximation after two-part
//!   `ln 2` range reduction.
//! * [`ln`] — atanh-series evaluation after mantissa/exponent reduction.
//! * [`fn@erf`] / [`erfc`] — Maclaurin series near zero, Hart/West rational
//!   form elsewhere.
//! * [`norm_cdf`] / [`norm_pdf`] — double-precision cumulative normal
//!   (Hart 1968 rational approximation as popularized by West 2005).
//! * [`inv_norm_cdf`] — Acklam's rational initial guess polished with a
//!   Halley step to near machine precision.
//! * [`sincos`] — Cody-Waite-reduced Taylor kernels (for Box-Muller).
//!
//! All kernels are **branch-light** by construction so the same algorithm
//! can be lifted lane-wise into the SIMD vector classes of `finbench-simd`
//! (the paper's `F64vec4`/`F64vec8`).
//!
//! The crate also provides the op-counting scaffolding used to audit the
//! machine model's cost descriptors:
//!
//! * [`Real`] — a scalar-arithmetic abstraction implemented by `f64` and
//!   by [`CountedF64`].
//! * [`CountedF64`] — an instrumented double that tallies every arithmetic
//!   and transcendental operation into a thread-local [`OpCounts`].
//! * [`counting_expanded`] — op counting with one-level transcendental
//!   expansion: the [`generic`] `*_r` kernels expose the polynomial
//!   arithmetic *inside* `exp`/`log`/`cnd`, the basis of the paper's
//!   "~200 ops per Black-Scholes option" figure.

pub mod counted;
pub mod erf;
pub mod exp;
pub mod generic;
pub mod log;
pub mod norm;
pub mod poly;
pub mod real;
pub mod trig;

pub use counted::{counting, counting_expanded, CountedF64, OpCounts};
pub use erf::{erf, erfc};
pub use exp::exp;
pub use generic::{erf_r, exp_r, ln_r, norm_cdf_r, polevl_r};
pub use log::ln;
pub use norm::{inv_norm_cdf, inv_norm_cdf_acklam, norm_cdf, norm_pdf};
pub use real::Real;
pub use trig::{cos, sin, sincos};

/// `1/sqrt(2)`, used to map `cnd(x)` onto `erf` per the paper:
/// `cnd(x) = (1 + erf(x/sqrt(2)))/2`.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// `sqrt(2*pi)`; normalizing constant of the standard normal density.
pub const SQRT_2PI: f64 = 2.506_628_274_631_000_5;
