//! Operation-counting instrumented scalar.
//!
//! [`CountedF64`] behaves exactly like `f64` but tallies every arithmetic
//! and transcendental operation into a thread-local [`OpCounts`]. Running
//! the generic scalar kernels of `finbench-core` with it yields the *exact*
//! dynamic operation mix of each benchmark, which the machine-model tests
//! compare against the analytic cost formulas the paper reasons with
//! ("about 200 ops" per Black-Scholes option, `3·N(N+1)/2` flops per
//! binomial option, and so on).

use crate::real::Real;
use core::cell::Cell;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A tally of scalar operations, grouped the way the machine model charges
/// them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions and subtractions (including negations).
    pub adds: u64,
    /// Multiplications.
    pub muls: u64,
    /// Divisions.
    pub divs: u64,
    /// Square roots.
    pub sqrts: u64,
    /// `exp` calls.
    pub exps: u64,
    /// `ln` calls.
    pub logs: u64,
    /// `erf` calls.
    pub erfs: u64,
    /// `norm_cdf` calls.
    pub cnds: u64,
    /// `max` / comparison-select operations.
    pub maxs: u64,
    /// Fused multiply-adds.
    pub fmas: u64,
}

impl OpCounts {
    /// Plain floating-point operations, counting an FMA as two flops and a
    /// max as one — the convention of the paper's flop formulas, which
    /// exclude transcendental interiors.
    pub fn flops(&self) -> u64 {
        self.adds + self.muls + self.divs + self.sqrts + self.maxs + 2 * self.fmas
    }

    /// Total operations including each transcendental counted as one call.
    pub fn total_with_transcendentals(&self) -> u64 {
        self.flops() + self.exps + self.logs + self.erfs + self.cnds
    }

    /// Transcendental call count.
    pub fn transcendentals(&self) -> u64 {
        self.exps + self.logs + self.erfs + self.cnds
    }
}

thread_local! {
    static COUNTS: Cell<OpCounts> = Cell::new(OpCounts::default());
    /// When false, transcendental implementations do not count their own
    /// interior arithmetic (they are charged as single calls).
    static ENABLED: Cell<bool> = const { Cell::new(true) };
}

#[inline]
fn bump(f: impl FnOnce(&mut OpCounts)) {
    if ENABLED.with(|e| e.get()) {
        COUNTS.with(|c| {
            let mut v = c.get();
            f(&mut v);
            c.set(v);
        });
    }
}

/// Reset the thread-local counters to zero.
pub fn reset_counts() {
    COUNTS.with(|c| c.set(OpCounts::default()));
}

/// Read the thread-local counters.
pub fn read_counts() -> OpCounts {
    COUNTS.with(|c| c.get())
}

/// Run `f` with fresh counters and return `(result, counts)`.
pub fn counting<T>(f: impl FnOnce() -> T) -> (T, OpCounts) {
    reset_counts();
    let out = f();
    (out, read_counts())
}

/// An `f64` wrapper that records every operation performed on it.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct CountedF64(pub f64);

impl Add for CountedF64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        bump(|c| c.adds += 1);
        Self(self.0 + rhs.0)
    }
}
impl Sub for CountedF64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // op *counter* increments
    fn sub(self, rhs: Self) -> Self {
        bump(|c| c.adds += 1);
        Self(self.0 - rhs.0)
    }
}
impl Mul for CountedF64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // op *counter* increments
    fn mul(self, rhs: Self) -> Self {
        bump(|c| c.muls += 1);
        Self(self.0 * rhs.0)
    }
}
impl Div for CountedF64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // op *counter* increments
    fn div(self, rhs: Self) -> Self {
        bump(|c| c.divs += 1);
        Self(self.0 / rhs.0)
    }
}
impl Neg for CountedF64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        bump(|c| c.adds += 1);
        Self(-self.0)
    }
}
impl AddAssign for CountedF64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for CountedF64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for CountedF64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Real for CountedF64 {
    #[inline]
    fn of(x: f64) -> Self {
        Self(x)
    }
    #[inline]
    fn into_f64(self) -> f64 {
        self.0
    }
    #[inline]
    fn exp(self) -> Self {
        bump(|c| c.exps += 1);
        Self(crate::exp(self.0))
    }
    #[inline]
    fn ln(self) -> Self {
        bump(|c| c.logs += 1);
        Self(crate::ln(self.0))
    }
    #[inline]
    fn sqrt(self) -> Self {
        bump(|c| c.sqrts += 1);
        Self(self.0.sqrt())
    }
    #[inline]
    fn erf(self) -> Self {
        bump(|c| c.erfs += 1);
        Self(crate::erf(self.0))
    }
    #[inline]
    fn norm_cdf(self) -> Self {
        bump(|c| c.cnds += 1);
        Self(crate::norm_cdf(self.0))
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        bump(|c| c.maxs += 1);
        Self(self.0.max(other.0))
    }
    #[inline]
    fn abs(self) -> Self {
        bump(|c| c.maxs += 1);
        Self(self.0.abs())
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        bump(|c| c.fmas += 1);
        Self(self.0.mul_add(a.0, b.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_expression() {
        let (val, counts) = counting(|| {
            let a = CountedF64(2.0);
            let b = CountedF64(3.0);
            let c = a * b + a - b / a;
            c.into_f64()
        });
        assert_eq!(val, 2.0 * 3.0 + 2.0 - 3.0 / 2.0);
        assert_eq!(counts.muls, 1);
        assert_eq!(counts.adds, 2); // one add, one sub
        assert_eq!(counts.divs, 1);
        assert_eq!(counts.flops(), 4);
    }

    #[test]
    fn counts_transcendentals_as_calls() {
        let (_, counts) = counting(|| {
            let x = CountedF64(0.5);
            let _ = x.exp();
            let _ = x.ln();
            let _ = x.erf();
            let _ = x.norm_cdf();
            let _ = x.sqrt();
        });
        assert_eq!(counts.exps, 1);
        assert_eq!(counts.logs, 1);
        assert_eq!(counts.erfs, 1);
        assert_eq!(counts.cnds, 1);
        assert_eq!(counts.sqrts, 1);
        assert_eq!(counts.transcendentals(), 4);
    }

    #[test]
    fn reset_clears() {
        let _ = counting(|| CountedF64(1.0) + CountedF64(2.0));
        reset_counts();
        assert_eq!(read_counts(), OpCounts::default());
    }

    #[test]
    fn fma_counts_two_flops() {
        let (_, counts) = counting(|| CountedF64(2.0).mul_add(CountedF64(3.0), CountedF64(4.0)));
        assert_eq!(counts.fmas, 1);
        assert_eq!(counts.flops(), 2);
    }

    #[test]
    fn values_track_f64_semantics() {
        let (v, _) = counting(|| {
            let x = CountedF64(-2.0);
            (x.abs() * x.abs()).sqrt().into_f64()
        });
        assert_eq!(v, 2.0);
    }

    #[test]
    fn binomial_inner_step_cost() {
        // One binomial-tree inner step is pu*a + pd*b: 2 muls + 1 add = 3
        // flops — the basis of the paper's 3N(N+1)/2 formula.
        let (_, counts) = counting(|| {
            let pu = CountedF64(0.6);
            let pd = CountedF64(0.4);
            let a = CountedF64(10.0);
            let b = CountedF64(11.0);
            pu * a + pd * b
        });
        assert_eq!(counts.flops(), 3);
    }
}
