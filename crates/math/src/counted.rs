//! Operation-counting instrumented scalar.
//!
//! [`CountedF64`] behaves exactly like `f64` but tallies every arithmetic
//! and transcendental operation into a thread-local [`OpCounts`]. Running
//! the generic scalar kernels of `finbench-core` with it yields the *exact*
//! dynamic operation mix of each benchmark, which the machine-model tests
//! compare against the analytic cost formulas the paper reasons with
//! ("about 200 ops" per Black-Scholes option, `3·N(N+1)/2` flops per
//! binomial option, and so on).

use crate::real::Real;
use core::cell::Cell;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A tally of scalar operations, grouped the way the machine model charges
/// them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions and subtractions (including negations).
    pub adds: u64,
    /// Multiplications.
    pub muls: u64,
    /// Divisions.
    pub divs: u64,
    /// Square roots.
    pub sqrts: u64,
    /// `exp` calls.
    pub exps: u64,
    /// `ln` calls.
    pub logs: u64,
    /// `erf` calls.
    pub erfs: u64,
    /// `norm_cdf` calls.
    pub cnds: u64,
    /// `max` / comparison-select operations.
    pub maxs: u64,
    /// Fused multiply-adds.
    pub fmas: u64,
}

impl OpCounts {
    /// Plain floating-point operations, counting an FMA as two flops and a
    /// max as one — the convention of the paper's flop formulas, which
    /// exclude transcendental interiors.
    pub fn flops(&self) -> u64 {
        self.adds + self.muls + self.divs + self.sqrts + self.maxs + 2 * self.fmas
    }

    /// Total operations including each transcendental counted as one call.
    pub fn total_with_transcendentals(&self) -> u64 {
        self.flops() + self.exps + self.logs + self.erfs + self.cnds
    }

    /// Transcendental call count.
    pub fn transcendentals(&self) -> u64 {
        self.exps + self.logs + self.erfs + self.cnds
    }
}

thread_local! {
    static COUNTS: Cell<OpCounts> = Cell::new(OpCounts::default());
    /// When true, each transcendental call additionally evaluates the
    /// [`crate::generic`] twin of its kernel so the *interior* polynomial
    /// arithmetic is tallied too. Expansion is one level deep: the flag is
    /// cleared while an interior runs, so transcendentals nested inside an
    /// interior (e.g. the Gaussian `exp` inside `norm_cdf`) are charged as
    /// single calls.
    static EXPAND: Cell<bool> = const { Cell::new(false) };
}

#[inline]
fn bump(f: impl FnOnce(&mut OpCounts)) {
    COUNTS.with(|c| {
        let mut v = c.get();
        f(&mut v);
        c.set(v);
    });
}

/// Reset the thread-local counters to zero.
pub fn reset_counts() {
    COUNTS.with(|c| c.set(OpCounts::default()));
}

/// Read the thread-local counters.
pub fn read_counts() -> OpCounts {
    COUNTS.with(|c| c.get())
}

/// Turn one-level transcendental expansion on or off for this thread
/// (see [`counting_expanded`]).
pub fn set_expand_transcendentals(on: bool) {
    EXPAND.with(|e| e.set(on));
}

/// Run `f` with fresh counters and return `(result, counts)`.
pub fn counting<T>(f: impl FnOnce() -> T) -> (T, OpCounts) {
    reset_counts();
    let out = f();
    (out, read_counts())
}

/// Like [`counting`], but with one-level transcendental expansion: each
/// `exp`/`ln`/`erf`/`norm_cdf` call is still tallied as a call *and* its
/// interior polynomial arithmetic lands in the flop counters. This is the
/// mode behind the paper's "~200 operations per Black-Scholes option"
/// figure, which counts the work inside the SVML-style kernels rather
/// than treating them as free.
pub fn counting_expanded<T>(f: impl FnOnce() -> T) -> (T, OpCounts) {
    set_expand_transcendentals(true);
    let out = counting(f);
    set_expand_transcendentals(false);
    out
}

/// Evaluate `interior(x)` with expansion suppressed, so nested
/// transcendentals count as single calls.
#[inline]
fn expand_interior(x: CountedF64, interior: fn(CountedF64) -> CountedF64) -> CountedF64 {
    EXPAND.with(|e| e.set(false));
    let y = interior(x);
    EXPAND.with(|e| e.set(true));
    y
}

/// An `f64` wrapper that records every operation performed on it.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct CountedF64(pub f64);

impl Add for CountedF64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        bump(|c| c.adds += 1);
        Self(self.0 + rhs.0)
    }
}
impl Sub for CountedF64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // op *counter* increments
    fn sub(self, rhs: Self) -> Self {
        bump(|c| c.adds += 1);
        Self(self.0 - rhs.0)
    }
}
impl Mul for CountedF64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // op *counter* increments
    fn mul(self, rhs: Self) -> Self {
        bump(|c| c.muls += 1);
        Self(self.0 * rhs.0)
    }
}
impl Div for CountedF64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // op *counter* increments
    fn div(self, rhs: Self) -> Self {
        bump(|c| c.divs += 1);
        Self(self.0 / rhs.0)
    }
}
impl Neg for CountedF64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        bump(|c| c.adds += 1);
        Self(-self.0)
    }
}
impl AddAssign for CountedF64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for CountedF64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for CountedF64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Real for CountedF64 {
    #[inline]
    fn of(x: f64) -> Self {
        Self(x)
    }
    #[inline]
    fn into_f64(self) -> f64 {
        self.0
    }
    #[inline]
    fn exp(self) -> Self {
        bump(|c| c.exps += 1);
        if EXPAND.with(|e| e.get()) {
            expand_interior(self, crate::generic::exp_r)
        } else {
            Self(crate::exp(self.0))
        }
    }
    #[inline]
    fn ln(self) -> Self {
        bump(|c| c.logs += 1);
        if EXPAND.with(|e| e.get()) {
            expand_interior(self, crate::generic::ln_r)
        } else {
            Self(crate::ln(self.0))
        }
    }
    #[inline]
    fn sqrt(self) -> Self {
        bump(|c| c.sqrts += 1);
        Self(self.0.sqrt())
    }
    #[inline]
    fn erf(self) -> Self {
        bump(|c| c.erfs += 1);
        if EXPAND.with(|e| e.get()) {
            expand_interior(self, crate::generic::erf_r)
        } else {
            Self(crate::erf(self.0))
        }
    }
    #[inline]
    fn norm_cdf(self) -> Self {
        bump(|c| c.cnds += 1);
        if EXPAND.with(|e| e.get()) {
            expand_interior(self, crate::generic::norm_cdf_r)
        } else {
            Self(crate::norm_cdf(self.0))
        }
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        bump(|c| c.maxs += 1);
        Self(self.0.max(other.0))
    }
    #[inline]
    fn abs(self) -> Self {
        bump(|c| c.maxs += 1);
        Self(self.0.abs())
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        bump(|c| c.fmas += 1);
        Self(self.0.mul_add(a.0, b.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_expression() {
        let (val, counts) = counting(|| {
            let a = CountedF64(2.0);
            let b = CountedF64(3.0);
            let c = a * b + a - b / a;
            c.into_f64()
        });
        assert_eq!(val, 2.0 * 3.0 + 2.0 - 3.0 / 2.0);
        assert_eq!(counts.muls, 1);
        assert_eq!(counts.adds, 2); // one add, one sub
        assert_eq!(counts.divs, 1);
        assert_eq!(counts.flops(), 4);
    }

    #[test]
    fn counts_transcendentals_as_calls() {
        let (_, counts) = counting(|| {
            let x = CountedF64(0.5);
            let _ = x.exp();
            let _ = x.ln();
            let _ = x.erf();
            let _ = x.norm_cdf();
            let _ = x.sqrt();
        });
        assert_eq!(counts.exps, 1);
        assert_eq!(counts.logs, 1);
        assert_eq!(counts.erfs, 1);
        assert_eq!(counts.cnds, 1);
        assert_eq!(counts.sqrts, 1);
        assert_eq!(counts.transcendentals(), 4);
    }

    #[test]
    fn reset_clears() {
        let _ = counting(|| CountedF64(1.0) + CountedF64(2.0));
        reset_counts();
        assert_eq!(read_counts(), OpCounts::default());
    }

    #[test]
    fn fma_counts_two_flops() {
        let (_, counts) = counting(|| CountedF64(2.0).mul_add(CountedF64(3.0), CountedF64(4.0)));
        assert_eq!(counts.fmas, 1);
        assert_eq!(counts.flops(), 2);
    }

    #[test]
    fn values_track_f64_semantics() {
        let (v, _) = counting(|| {
            let x = CountedF64(-2.0);
            (x.abs() * x.abs()).sqrt().into_f64()
        });
        assert_eq!(v, 2.0);
    }

    #[test]
    fn expanded_counting_preserves_values_and_adds_interior_flops() {
        let x = 0.7;
        let (plain_v, plain) = counting(|| CountedF64(x).norm_cdf().into_f64());
        let (exp_v, expanded) = counting_expanded(|| CountedF64(x).norm_cdf().into_f64());
        // Expansion never changes the numerical result.
        assert_eq!(plain_v.to_bits(), exp_v.to_bits());
        assert_eq!(plain.cnds, 1);
        assert_eq!(plain.flops(), 0);
        assert_eq!(expanded.cnds, 1);
        // One level deep: the Gaussian exp inside cnd is a single call...
        assert_eq!(expanded.exps, 1);
        // ...while cnd's own rational interior lands in the flop counters.
        assert!(expanded.flops() > 20, "flops = {}", expanded.flops());
    }

    #[test]
    fn expansion_flag_resets_after_counting_expanded() {
        let _ = counting_expanded(|| CountedF64(1.0).exp());
        let (_, counts) = counting(|| CountedF64(1.0).exp());
        assert_eq!(counts.exps, 1);
        assert_eq!(
            counts.flops(),
            0,
            "expansion leaked out of counting_expanded"
        );
    }

    #[test]
    fn binomial_inner_step_cost() {
        // One binomial-tree inner step is pu*a + pd*b: 2 muls + 1 add = 3
        // flops — the basis of the paper's 3N(N+1)/2 formula.
        let (_, counts) = counting(|| {
            let pu = CountedF64(0.6);
            let pd = CountedF64(0.4);
            let a = CountedF64(10.0);
            let b = CountedF64(11.0);
            pu * a + pd * b
        });
        assert_eq!(counts.flops(), 3);
    }
}
