//! Double-precision `exp` from scratch.
//!
//! Algorithm (after Cephes `exp.c`, the same family of kernel Intel's SVML
//! uses for its vector `exp`):
//!
//! 1. Range-reduce `x = n*ln2 + r` with `|r| <= ln2/2`, subtracting `n*ln2`
//!    in two parts (`C1` exact in double, `C2` the residual) to keep `r`
//!    accurate to the last bit.
//! 2. Approximate `e^r` with the rational form
//!    `e^r = 1 + 2r·P(r²) / (Q(r²) − r·P(r²))`.
//! 3. Reconstruct with an exponent-field `ldexp` by `n`.
//!
//! The kernel is branch-free apart from the overflow/underflow clamps, so
//! `finbench-simd` evaluates the identical polynomial lane-wise.

use crate::poly::{ldexp, polevl};

/// Numerator coefficients `P` of the `e^r` rational approximation,
/// descending powers of `r²`.
pub const EXP_P: [f64; 3] = [
    1.261_771_930_748_105_9e-4,
    3.029_944_077_074_419_6e-2,
    #[allow(clippy::excessive_precision)] // Cephes coefficient, kept verbatim
    9.999_999_999_999_999_9e-1,
];

/// Denominator coefficients `Q`, descending powers of `r²`.
pub const EXP_Q: [f64; 4] = [
    3.001_985_051_386_644_6e-6,
    2.524_483_403_496_841e-3,
    2.272_655_482_081_550_3e-1,
    2.000_000_000_000_000_0,
];

/// `log2(e)` used to compute the reduction integer `n`.
pub const LOG2E: f64 = std::f64::consts::LOG2_E;
/// High part of `ln 2` (exactly representable, 32 significant bits).
pub const LN2_C1: f64 = 6.931_457_519_531_25e-1;
/// Low (residual) part of `ln 2`; `LN2_C1 + LN2_C2 == ln 2` to full
/// double-double precision.
pub const LN2_C2: f64 = 1.428_606_820_309_417_2e-6;

/// Input above which `exp` overflows to `+inf`.
pub const EXP_OVERFLOW: f64 = 709.782_712_893_384;
/// Input below which `exp` underflows to `0`.
pub const EXP_UNDERFLOW: f64 = -745.133_219_101_941_1;

/// Compute `e^x` in double precision.
///
/// Relative error is within a few ulp of the correctly rounded result over
/// the whole finite range; the unit tests compare against `f64::exp` at
/// `<= 4e-16` relative tolerance.
///
/// ```
/// let y = finbench_math::exp(1.0);
/// assert!((y - std::f64::consts::E).abs() < 1e-15);
/// ```
#[inline]
pub fn exp(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x > EXP_OVERFLOW {
        return f64::INFINITY;
    }
    if x < EXP_UNDERFLOW {
        return 0.0;
    }

    // n = round(x / ln2)
    let n = (LOG2E * x + 0.5).floor();
    let mut r = x - n * LN2_C1;
    r -= n * LN2_C2;

    // Rational approximation of e^r.
    let rr = r * r;
    let p = r * polevl(rr, &EXP_P);
    let e = 1.0 + 2.0 * p / (polevl(rr, &EXP_Q) - p);

    ldexp(e, n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    }

    #[test]
    fn matches_std_over_typical_range() {
        // Option-pricing exponents live in roughly [-50, 10]; sweep wider.
        let mut worst = 0.0f64;
        let mut i = -70000;
        while i <= 70000 {
            let x = i as f64 * 0.01; // [-700, 700]
            let e = rel_err(exp(x), x.exp());
            worst = worst.max(e);
            i += 7;
        }
        assert!(worst < 4e-16, "worst rel err {worst}");
    }

    #[test]
    fn special_values() {
        assert_eq!(exp(0.0), 1.0);
        assert!((exp(1.0) - std::f64::consts::E).abs() < 1e-15);
        assert_eq!(exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp(f64::NEG_INFINITY), 0.0);
        assert!(exp(f64::NAN).is_nan());
    }

    #[test]
    fn overflow_and_underflow() {
        assert_eq!(exp(710.0), f64::INFINITY);
        assert_eq!(exp(-746.0), 0.0);
        assert!(exp(709.0).is_finite());
        assert!(exp(-744.0) > 0.0);
    }

    #[test]
    fn subnormal_results() {
        // exp of a very negative number lands in the subnormal range but
        // must still be positive and close to std.
        let x = -708.5;
        let got = exp(x);
        let want = x.exp();
        assert!(got > 0.0);
        assert!(rel_err(got, want) < 1e-12);
    }

    #[test]
    fn monotone_on_grid() {
        let mut prev = exp(-20.0);
        let mut i = 1;
        while i <= 4000 {
            let x = -20.0 + i as f64 * 0.01;
            let cur = exp(x);
            assert!(cur >= prev, "non-monotone at x={x}");
            prev = cur;
            i += 1;
        }
    }

    #[test]
    fn reduction_identity() {
        // exp(a+b) == exp(a)*exp(b) to tight tolerance for moderate args.
        for (a, b) in [(0.3, 0.7), (-1.25, 2.5), (5.0, -3.0), (-0.001, 0.002)] {
            let lhs = exp(a + b);
            let rhs = exp(a) * exp(b);
            assert!(rel_err(lhs, rhs) < 1e-14);
        }
    }
}
