//! Standard normal distribution functions: `norm_cdf` (the paper's `cnd`),
//! `norm_pdf`, and the inverse CDF used by the RNG's inverse-transform
//! normal generator.
//!
//! `norm_cdf` uses the Hart (1968) double-precision rational approximation
//! in the form given by West, *Better approximations to cumulative normal
//! functions* (Wilmott, 2005): a degree-6/degree-7 rational times the
//! Gaussian density for `|x| < 7.07`, and a short continued fraction in the
//! far tail. Absolute error is below 1e-15 across the real line, and the
//! *relative* error of the small tail values is also ~1e-15 — important
//! because deep out-of-the-money option prices are exactly such tails.
//!
//! `inv_norm_cdf` uses Acklam's rational approximation (~1.15e-9 relative)
//! polished with one Halley iteration, giving ~1e-15.

use crate::exp::exp;
use crate::log::ln;
use crate::SQRT_2PI;

/// Density of the standard normal distribution.
///
/// ```
/// let top = finbench_math::norm_pdf(0.0);
/// assert!((top - 0.3989422804014327).abs() < 1e-15);
/// ```
#[inline]
pub fn norm_pdf(x: f64) -> f64 {
    exp(-0.5 * x * x) / SQRT_2PI
}

/// Hart/West numerator coefficients (applied to `|x|`, descending for
/// Horner evaluation). Public so `finbench-simd` evaluates the identical
/// rational lane-wise.
pub const CND_NUM: [f64; 7] = [
    0.035_262_496_599_891_1,
    0.700_383_064_443_688,
    6.373_962_203_531_65,
    33.912_866_078_383,
    112.079_291_497_871,
    221.213_596_169_931,
    220.206_867_912_376,
];

/// Hart/West denominator coefficients.
pub const CND_DEN: [f64; 8] = [
    0.088_388_347_648_318_4,
    1.755_667_163_182_64,
    16.064_177_579_207,
    86.780_732_202_946_1,
    296.564_248_779_674,
    637.333_633_378_831,
    793.826_512_519_948,
    440.413_735_824_752,
];

/// Cumulative distribution function of the standard normal; the paper's
/// `cnd`.
///
/// ```
/// assert!((finbench_math::norm_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((finbench_math::norm_cdf(1.0) - 0.8413447460685429).abs() < 1e-14);
/// ```
#[inline]
pub fn norm_cdf(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    let ax = x.abs();
    let cumulative = if ax > 37.0 {
        0.0
    } else {
        let e = exp(-0.5 * ax * ax);
        if ax < 7.071_067_811_865_475 {
            let mut num = CND_NUM[0];
            for &c in &CND_NUM[1..] {
                num = num * ax + c;
            }
            let mut den = CND_DEN[0];
            for &c in &CND_DEN[1..] {
                den = den * ax + c;
            }
            e * num / den
        } else {
            // Far tail: Laplace continued fraction for the Mills ratio,
            // Phi(-x) = phi(x) / (x + 1/(x + 2/(x + 3/(...)))).
            // West (2005) truncates at depth 4, which is only ~1e-9
            // accurate right at the 7.07 switch point; depth 12 brings the
            // truncation error below 1e-12 everywhere past the switch.
            let mut b = ax + 0.65;
            let mut k = 12.0;
            while k >= 1.0 {
                b = ax + k / b;
                k -= 1.0;
            }
            e / (b * SQRT_2PI)
        }
    };
    if x > 0.0 {
        1.0 - cumulative
    } else {
        cumulative
    }
}

// ---------------------------------------------------------------------------
// Inverse CDF (Acklam + Halley)
// ---------------------------------------------------------------------------

const INV_A: [f64; 6] = [
    -3.969_683_028_665_376e1,
    2.209_460_984_245_205e2,
    -2.759_285_104_469_687e2,
    1.383_577_518_672_69e2,
    -3.066_479_806_614_716e1,
    2.506_628_277_459_239,
];
const INV_B: [f64; 5] = [
    -5.447_609_879_822_406e1,
    1.615_858_368_580_409e2,
    -1.556_989_798_598_866e2,
    6.680_131_188_771_972e1,
    -1.328_068_155_288_572e1,
];
const INV_C: [f64; 6] = [
    -7.784_894_002_430_293e-3,
    -3.223_964_580_411_365e-1,
    -2.400_758_277_161_838,
    -2.549_732_539_343_734,
    4.374_664_141_464_968,
    2.938_163_982_698_783,
];
const INV_D: [f64; 4] = [
    7.784_695_709_041_462e-3,
    3.224_671_290_700_398e-1,
    2.445_134_137_142_996,
    3.754_408_661_907_416,
];

const P_LOW: f64 = 0.02425;
const P_HIGH: f64 = 1.0 - P_LOW;

/// Acklam's rational approximation to the inverse normal CDF *without*
/// the Halley polish: ~1.15e-9 relative error, roughly twice as fast as
/// [`inv_norm_cdf`]. Plenty for Monte-Carlo sampling, where the
/// discretization error dwarfs 1e-9 (the statistical tests in
/// `finbench-rng` pass with either transform).
#[inline]
pub fn inv_norm_cdf_acklam(p: f64) -> f64 {
    if p.is_nan() {
        return p;
    }
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    acklam_guess(p)
}

#[inline]
fn acklam_guess(p: f64) -> f64 {
    if p < P_LOW {
        let q = (-2.0 * ln(p)).sqrt();
        (((((INV_C[0] * q + INV_C[1]) * q + INV_C[2]) * q + INV_C[3]) * q + INV_C[4]) * q
            + INV_C[5])
            / ((((INV_D[0] * q + INV_D[1]) * q + INV_D[2]) * q + INV_D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((INV_A[0] * r + INV_A[1]) * r + INV_A[2]) * r + INV_A[3]) * r + INV_A[4]) * r
            + INV_A[5])
            * q
            / (((((INV_B[0] * r + INV_B[1]) * r + INV_B[2]) * r + INV_B[3]) * r + INV_B[4]) * r
                + 1.0)
    } else {
        let q = (-2.0 * ln(1.0 - p)).sqrt();
        -(((((INV_C[0] * q + INV_C[1]) * q + INV_C[2]) * q + INV_C[3]) * q + INV_C[4]) * q
            + INV_C[5])
            / ((((INV_D[0] * q + INV_D[1]) * q + INV_D[2]) * q + INV_D[3]) * q + 1.0)
    }
}

/// Inverse of [`norm_cdf`]: returns `x` such that `norm_cdf(x) = p`.
///
/// Accurate to ~1e-15 relative over `p ∈ (0, 1)`; `p = 0` and `p = 1` map
/// to `-inf`/`+inf`.
///
/// ```
/// let x = finbench_math::inv_norm_cdf(0.975);
/// assert!((x - 1.959963984540054).abs() < 1e-12);
/// ```
#[inline]
pub fn inv_norm_cdf(p: f64) -> f64 {
    if p.is_nan() {
        return p;
    }
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }

    let x = acklam_guess(p);
    // Past |x| ~ 36 the density underflows and the Halley correction would
    // be 0/0; Acklam alone is ~1e-9 relative there, which the deep tail
    // does not improve on anyway (norm_cdf itself clamps at 37).
    if x.abs() >= 36.0 {
        return x;
    }
    // One Halley iteration: e = Phi(x) - p, u = e / phi(x),
    // x <- x - u / (1 + x*u/2).
    let e = norm_cdf(x) - p;
    let u = e / norm_pdf(x);
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_known_values() {
        assert!((norm_pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-15);
        assert!((norm_pdf(1.0) - 0.241_970_724_519_143_37).abs() < 1e-15);
        assert!((norm_pdf(-1.0) - norm_pdf(1.0)).abs() == 0.0);
    }

    #[test]
    fn cdf_known_values() {
        // Reference values computed with mpmath at 50 digits.
        let cases = [
            (0.0, 0.5),
            (1.0, 0.841_344_746_068_542_9),
            (-1.0, 0.158_655_253_931_457_05),
            (2.0, 0.977_249_868_051_820_8),
            (0.5, 0.691_462_461_274_013_1),
            (-1.96, 0.024_997_895_148_220_435),
            (1.96, 0.975_002_104_851_779_5),
            (3.0, 0.998_650_101_968_369_9),
            (-3.0, 1.349_898_031_630_094_6e-3),
        ];
        for (x, want) in cases {
            let got = norm_cdf(x);
            assert!(
                (got - want).abs() < 2e-15,
                "x={x} got={got} want={want} diff={}",
                (got - want).abs()
            );
        }
    }

    #[test]
    fn cdf_deep_tail_relative_accuracy() {
        // Phi(-8) = 6.22096057427178e-16 * ... ; reference from mpmath:
        let want = 6.220_960_574_271_786e-16;
        let got = norm_cdf(-8.0);
        assert!(((got - want) / want).abs() < 1e-12, "got={got}");
        // Phi(-10)
        let want10 = 7.619_853_024_160_527e-24;
        let got10 = norm_cdf(-10.0);
        assert!(((got10 - want10) / want10).abs() < 1e-12, "got={got10}");
    }

    #[test]
    fn cdf_symmetry() {
        let mut i = 0;
        while i <= 800 {
            let x = i as f64 * 0.01;
            let s = norm_cdf(x) + norm_cdf(-x);
            assert!((s - 1.0).abs() < 2e-15, "x={x}");
            i += 1;
        }
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = norm_cdf(-12.0);
        let mut i = 1;
        while i <= 2400 {
            let x = -12.0 + i as f64 * 0.01;
            let cur = norm_cdf(x);
            assert!(cur >= prev, "x={x}");
            prev = cur;
            i += 1;
        }
    }

    #[test]
    fn cdf_extremes() {
        assert_eq!(norm_cdf(40.0), 1.0);
        assert_eq!(norm_cdf(-40.0), 0.0);
        assert!(norm_cdf(f64::NAN).is_nan());
    }

    #[test]
    fn inverse_round_trip() {
        let mut i = 1;
        while i < 10000 {
            let p = i as f64 / 10000.0;
            let x = inv_norm_cdf(p);
            let back = norm_cdf(x);
            assert!((back - p).abs() < 1e-13, "p={p} x={x} back={back}");
            i += 7;
        }
    }

    #[test]
    fn inverse_tails() {
        for &p in &[1e-250f64, 1e-100, 1e-20, 1e-10, 1e-5] {
            let x = inv_norm_cdf(p);
            let back = norm_cdf(x);
            assert!(((back - p) / p).abs() < 1e-9, "p={p} x={x} back={back}");
            // Symmetry of the inverse.
            let xq = inv_norm_cdf(1.0 - p);
            if p >= 1e-16 {
                assert!((x + xq).abs() < 1e-6 * x.abs(), "p={p}");
            }
        }
    }

    #[test]
    fn acklam_fast_path_within_stated_error() {
        let mut i = 1;
        while i < 100_000 {
            let p = i as f64 / 100_000.0;
            let fast = inv_norm_cdf_acklam(p);
            let exact = inv_norm_cdf(p);
            let err = (fast - exact).abs() / exact.abs().max(1.0);
            assert!(err < 1.5e-9, "p={p}: {err}");
            i += 37;
        }
        assert_eq!(inv_norm_cdf_acklam(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_norm_cdf_acklam(1.0), f64::INFINITY);
        assert!(inv_norm_cdf_acklam(f64::NAN).is_nan());
    }

    #[test]
    fn inverse_known_values() {
        assert_eq!(inv_norm_cdf(0.5), 0.0);
        assert!((inv_norm_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-12);
        assert!((inv_norm_cdf(0.841_344_746_068_542_9) - 1.0).abs() < 1e-12);
        assert_eq!(inv_norm_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_norm_cdf(1.0), f64::INFINITY);
    }
}
