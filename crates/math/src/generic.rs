//! [`Real`]-generic transcendental kernels.
//!
//! Each `*_r` function mirrors its scalar `f64` sibling *operation for
//! operation* — same reduction, same polynomial, same evaluation order —
//! so instantiated with `f64` it is bit-identical to the scalar path
//! (the tests assert `to_bits` equality across sweeps), and instantiated
//! with [`crate::CountedF64`] it exposes the *interior* arithmetic of a
//! transcendental to the op-count audit. That interior mix is what the
//! paper's "~200 ops per Black-Scholes option" figure counts: the
//! polynomial flops inside `exp`/`log`/`cnd`, not just one opaque call.
//!
//! Exponent bookkeeping (the range-reduction integer `n`, `frexp`
//! mantissa extraction, `2^n` reconstruction scales) runs on plain
//! doubles and is deliberately *not* counted — the machine model charges
//! it to the int pipe, not the FP pipe.

use crate::exp::{EXP_OVERFLOW, EXP_P, EXP_Q, EXP_UNDERFLOW, LN2_C1, LN2_C2, LOG2E};
use crate::log::{frexp_sqrt2, LN2_HI, LN2_LO, LOG_SERIES};
use crate::norm::{CND_DEN, CND_NUM};
use crate::poly::pow2i;
use crate::real::Real;
use crate::SQRT_2PI;

/// Horner evaluation over an abstract scalar; the generic twin of
/// [`crate::poly::polevl`].
#[inline]
pub fn polevl_r<R: Real>(x: R, coeffs: &[f64]) -> R {
    let mut acc = R::of(coeffs[0]);
    for &c in &coeffs[1..] {
        acc = acc * x + R::of(c);
    }
    acc
}

/// Generic twin of [`crate::exp`]. Bit-identical for finite in-range
/// inputs; NaN/overflow/underflow fall back to the scalar path.
#[inline]
pub fn exp_r<R: Real>(x: R) -> R {
    let xf = x.into_f64();
    if xf.is_nan() || !(EXP_UNDERFLOW..=EXP_OVERFLOW).contains(&xf) {
        return R::of(crate::exp(xf));
    }

    // Range-reduction integer (uncounted exponent bookkeeping).
    let n = (LOG2E * xf + 0.5).floor();
    let nr = R::of(n);
    let mut r = x - nr * R::of(LN2_C1);
    r -= nr * R::of(LN2_C2);

    let rr = r * r;
    let p = r * polevl_r(rr, &EXP_P);
    let e = R::of(1.0) + R::of(2.0) * p / (polevl_r(rr, &EXP_Q) - p);

    // ldexp by n, mirroring crate::poly::ldexp's two-part scale.
    let n = (n as i32).clamp(-2 * 1023, 2 * 1023);
    let half = n / 2;
    let rest = n - half;
    e * R::of(pow2i(half)) * R::of(pow2i(rest))
}

/// Generic twin of [`crate::ln`]. Bit-identical for positive finite
/// inputs; domain edges fall back to the scalar path.
#[inline]
pub fn ln_r<R: Real>(x: R) -> R {
    let xf = x.into_f64();
    // `xf <= 0.0` alone would miss NaN, which must also take the fallback.
    if xf <= 0.0 || xf.is_nan() || xf == f64::INFINITY {
        return R::of(crate::ln(xf));
    }

    let (m, e) = frexp_sqrt2(xf); // uncounted mantissa/exponent split
    let m = R::of(m);
    let t = (m - R::of(1.0)) / (m + R::of(1.0));
    let t2 = t * t;
    let lnm = R::of(2.0) * t * polevl_r(t2, &LOG_SERIES);
    let ef = R::of(e as f64);
    ef * R::of(LN2_HI) + (lnm + ef * R::of(LN2_LO))
}

/// Generic twin of [`crate::norm_cdf`] (Hart/West rational plus the
/// far-tail continued fraction). The interior Gaussian `exp` goes
/// through [`Real::exp`], so with [`crate::CountedF64`] it is tallied as
/// one nested transcendental call.
#[inline]
pub fn norm_cdf_r<R: Real>(x: R) -> R {
    let xf = x.into_f64();
    if xf.is_nan() {
        return R::of(xf);
    }
    let ax = x.abs();
    let axf = ax.into_f64();
    let cumulative = if axf > 37.0 {
        R::of(0.0)
    } else {
        let e = (R::of(-0.5) * ax * ax).exp();
        if axf < 7.071_067_811_865_475 {
            let mut num = R::of(CND_NUM[0]);
            for &c in &CND_NUM[1..] {
                num = num * ax + R::of(c);
            }
            let mut den = R::of(CND_DEN[0]);
            for &c in &CND_DEN[1..] {
                den = den * ax + R::of(c);
            }
            e * num / den
        } else {
            let mut b = ax + R::of(0.65);
            let mut k = 12.0;
            while k >= 1.0 {
                b = ax + R::of(k) / b;
                k -= 1.0;
            }
            e / (b * R::of(SQRT_2PI))
        }
    };
    if xf > 0.0 {
        R::of(1.0) - cumulative
    } else {
        cumulative
    }
}

/// Number of Maclaurin terms in the small-|x| erf branch (mirrors
/// `crate::erf::ERF_SERIES_TERMS`).
const ERF_SERIES_TERMS: u32 = 14;

/// Generic twin of [`crate::erf`]: Maclaurin series for `|x| < 0.5`,
/// `2·Φ(x√2) − 1` elsewhere (the Φ going through [`Real::norm_cdf`]).
#[inline]
pub fn erf_r<R: Real>(x: R) -> R {
    let xf = x.into_f64();
    if xf.is_nan() {
        return R::of(xf);
    }
    let ax = x.abs();
    if ax.into_f64() < 0.5 {
        let x2 = x * x;
        let mut pow = x;
        let mut fact = 1.0f64;
        let mut acc = x;
        for k in 1..ERF_SERIES_TERMS {
            let kf = k as f64;
            fact *= kf;
            pow *= x2;
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            // Divisor built in plain f64 exactly as the scalar path does.
            let d = fact * (2.0 * kf + 1.0);
            acc += R::of(sign) * pow / R::of(d);
        }
        R::of(crate::erf::FRAC_2_SQRT_PI) * acc
    } else {
        let y = R::of(2.0) * (ax * R::of(std::f64::consts::SQRT_2)).norm_cdf() - R::of(1.0);
        if xf < 0.0 {
            -y
        } else {
            y
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_r_bit_identical_to_scalar() {
        let mut i = -60_000;
        while i <= 60_000 {
            let x = i as f64 * 0.01; // [-600, 600]
            assert_eq!(exp_r::<f64>(x).to_bits(), crate::exp(x).to_bits(), "x={x}");
            i += 13;
        }
        assert_eq!(exp_r::<f64>(800.0), f64::INFINITY);
        assert_eq!(exp_r::<f64>(-800.0), 0.0);
        assert!(exp_r::<f64>(f64::NAN).is_nan());
    }

    #[test]
    fn ln_r_bit_identical_to_scalar() {
        let mut x = 1e-12;
        while x < 1e12 {
            assert_eq!(ln_r::<f64>(x).to_bits(), crate::ln(x).to_bits(), "x={x}");
            x *= 1.017;
        }
        assert_eq!(ln_r::<f64>(0.0), f64::NEG_INFINITY);
        assert!(ln_r::<f64>(-1.0).is_nan());
        assert_eq!(ln_r::<f64>(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn norm_cdf_r_bit_identical_to_scalar() {
        let mut i = -1200;
        while i <= 1200 {
            let x = i as f64 * 0.01; // [-12, 12], both Hart and tail branches
            assert_eq!(
                norm_cdf_r::<f64>(x).to_bits(),
                crate::norm_cdf(x).to_bits(),
                "x={x}"
            );
            i += 1;
        }
        assert_eq!(norm_cdf_r::<f64>(40.0), 1.0);
        assert_eq!(norm_cdf_r::<f64>(-40.0), 0.0);
    }

    #[test]
    fn erf_r_bit_identical_to_scalar() {
        let mut i = -600;
        while i <= 600 {
            let x = i as f64 * 0.01;
            assert_eq!(erf_r::<f64>(x).to_bits(), crate::erf(x).to_bits(), "x={x}");
            i += 1;
        }
    }

    #[test]
    fn counted_instantiation_matches_values() {
        use crate::counted::CountedF64;
        for x in [-3.0, -0.3, 0.0, 0.4, 1.7, 5.0] {
            assert_eq!(exp_r(CountedF64(x)).0.to_bits(), crate::exp(x).to_bits());
            assert_eq!(
                norm_cdf_r(CountedF64(x)).0.to_bits(),
                crate::norm_cdf(x).to_bits()
            );
            assert_eq!(erf_r(CountedF64(x)).0.to_bits(), crate::erf(x).to_bits());
            if x > 0.0 {
                assert_eq!(ln_r(CountedF64(x)).0.to_bits(), crate::ln(x).to_bits());
            }
        }
    }
}
