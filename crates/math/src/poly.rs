//! Polynomial evaluation helpers.
//!
//! Every transcendental kernel in this crate reduces to one or two short
//! polynomial (or rational) evaluations. Keeping them in one place lets the
//! SIMD crate mirror them lane-for-lane and keeps the op-count audit exact:
//! a degree-`n` Horner evaluation is `n` multiplies and `n` adds.

/// Evaluate a polynomial with coefficients in *descending* degree order
/// using Horner's rule: `c[0]*x^(n-1) + c[1]*x^(n-2) + ... + c[n-1]`.
///
/// Matches Cephes' `polevl`.
#[inline(always)]
pub fn polevl(x: f64, coeffs: &[f64]) -> f64 {
    let mut acc = coeffs[0];
    for &c in &coeffs[1..] {
        acc = acc * x + c;
    }
    acc
}

/// Evaluate a *monic* polynomial (implicit leading coefficient 1.0) with the
/// remaining coefficients in descending degree order.
///
/// Matches Cephes' `p1evl`: `x^n + c[0]*x^(n-1) + ... + c[n-1]`.
#[inline(always)]
pub fn p1evl(x: f64, coeffs: &[f64]) -> f64 {
    let mut acc = x + coeffs[0];
    for &c in &coeffs[1..] {
        acc = acc * x + c;
    }
    acc
}

/// Fused-multiply-add Horner evaluation; identical result shape to
/// [`polevl`] but expressed through `f64::mul_add` so the compiler emits
/// FMA instructions on targets that have them (the KNC modeled by
/// `finbench-machine` has FMA; SNB-EP does not — the machine model charges
/// the two flavours differently).
#[inline(always)]
pub fn polevl_fma(x: f64, coeffs: &[f64]) -> f64 {
    let mut acc = coeffs[0];
    for &c in &coeffs[1..] {
        acc = acc.mul_add(x, c);
    }
    acc
}

/// `ldexp(x, n) = x * 2^n` computed by exponent-bit arithmetic, valid for
/// the range produced by the `exp` range reduction (`|n| <= 1100`).
///
/// The multiplication is split in two so that intermediate scale factors
/// stay normal even when `2^n` alone would overflow or be subnormal.
#[inline(always)]
pub fn ldexp(x: f64, n: i32) -> f64 {
    let n = n.clamp(-2 * 1023, 2 * 1023);
    let half = n / 2;
    let rest = n - half;
    x * pow2i(half) * pow2i(rest)
}

/// `2^n` for `|n| <= 1023` via direct exponent-field construction. Public
/// so the generic `exp_r` kernel can mirror [`ldexp`]'s two-part scale.
#[inline(always)]
pub fn pow2i(n: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&n));
    f64::from_bits(((1023 + n) as u64) << 52)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polevl_constant() {
        assert_eq!(polevl(123.0, &[7.0]), 7.0);
    }

    #[test]
    fn polevl_quadratic() {
        // 2x^2 + 3x + 4 at x = 5 -> 69
        assert_eq!(polevl(5.0, &[2.0, 3.0, 4.0]), 69.0);
    }

    #[test]
    fn p1evl_matches_polevl_with_leading_one() {
        let c = [3.0, -2.0, 0.5];
        let full = [1.0, 3.0, -2.0, 0.5];
        for &x in &[-2.5, -1.0, 0.0, 0.3, 1.7, 11.0] {
            assert!((p1evl(x, &c) - polevl(x, &full)).abs() < 1e-12);
        }
    }

    #[test]
    fn polevl_fma_close_to_polevl() {
        let c = [1.25e-4, 3.0e-2, 1.0];
        for i in 0..100 {
            let x = -1.0 + 0.02 * i as f64;
            let a = polevl(x, &c);
            let b = polevl_fma(x, &c);
            assert!((a - b).abs() <= 1e-15 * a.abs().max(1.0));
        }
    }

    #[test]
    fn ldexp_basic() {
        assert_eq!(ldexp(1.0, 0), 1.0);
        assert_eq!(ldexp(1.0, 3), 8.0);
        assert_eq!(ldexp(3.0, -2), 0.75);
        assert_eq!(ldexp(1.5, 10), 1536.0);
    }

    #[test]
    fn ldexp_extremes() {
        // Near the top of the normal range.
        assert_eq!(ldexp(1.0, 1023), 2f64.powi(1023));
        // Descend into subnormals and back.
        let tiny = ldexp(1.0, -1040);
        assert!(tiny > 0.0 && tiny < f64::MIN_POSITIVE);
        assert_eq!(ldexp(tiny, 1040), 1.0);
    }

    #[test]
    fn ldexp_matches_std_scale() {
        for n in -600..600 {
            let want = 1.7 * 2f64.powi(n);
            let got = ldexp(1.7, n);
            assert!(
                (got - want).abs() <= want.abs() * 1e-15,
                "n={n} got={got} want={want}"
            );
        }
    }
}
