//! The [`Real`] scalar-arithmetic abstraction.
//!
//! The pricing kernels in `finbench-core` ship a *generic scalar* variant
//! written against this trait. Instantiated with `f64` it is the paper's
//! reference ("basic") code path; instantiated with
//! [`crate::CountedF64`] it produces an exact dynamic operation count that
//! the machine-model tests audit against the paper's analytic flop formulas
//! (e.g. binomial tree = `3·N(N+1)/2` flops per option, Black-Scholes ≈ 200
//! ops per option).

use core::fmt::Debug;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Abstract IEEE-double-like scalar used by the generic kernel variants.
pub trait Real:
    Copy
    + Clone
    + Debug
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// Lift a plain double into the scalar type.
    fn of(x: f64) -> Self;
    /// Lower back to a plain double (for output buffers and assertions).
    fn into_f64(self) -> f64;

    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Error function.
    fn erf(self) -> Self;
    /// Cumulative standard normal (the paper's `cnd`).
    fn norm_cdf(self) -> Self;
    /// Pairwise maximum (the early-exercise / payoff clamp).
    fn max(self, other: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
}

impl Real for f64 {
    #[inline(always)]
    fn of(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn into_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn exp(self) -> Self {
        crate::exp(self)
    }
    #[inline(always)]
    fn ln(self) -> Self {
        crate::ln(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn erf(self) -> Self {
        crate::erf(self)
    }
    #[inline(always)]
    fn norm_cdf(self) -> Self {
        crate::norm_cdf(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_bs_d1<R: Real>(s: R, x: R, t: R, r: R, sig: R) -> R {
        let sig22 = sig * sig * R::of(0.5);
        let qlog = (s / x).ln();
        let denom = R::of(1.0) / (sig * t.sqrt());
        (qlog + (r + sig22) * t) * denom
    }

    #[test]
    fn f64_impl_round_trips() {
        assert_eq!(f64::of(2.5).into_f64(), 2.5);
        assert_eq!(3.0f64.max(4.0), 4.0);
        assert_eq!((-3.0f64).abs(), 3.0);
        assert!((2.0f64.mul_add(3.0, 1.0) - 7.0).abs() < 1e-15);
    }

    #[test]
    fn generic_kernel_matches_direct_f64() {
        let d1 = generic_bs_d1(100.0, 95.0, 0.5, 0.02, 0.25);
        let sig22 = 0.25 * 0.25 * 0.5;
        let want = ((100.0f64 / 95.0).ln() + (0.02 + sig22) * 0.5) / (0.25 * 0.5f64.sqrt());
        assert!((d1 - want).abs() < 1e-12);
    }

    #[test]
    fn transcendentals_delegate_to_crate() {
        assert_eq!(Real::exp(1.0f64), crate::exp(1.0));
        assert_eq!(Real::ln(2.0f64), crate::ln(2.0));
        assert_eq!(Real::erf(0.3f64), crate::erf(0.3));
        assert_eq!(Real::norm_cdf(0.7f64), crate::norm_cdf(0.7));
    }
}
