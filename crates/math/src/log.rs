//! Double-precision natural logarithm from scratch.
//!
//! Algorithm:
//!
//! 1. Decompose `x = m · 2^e` with `m ∈ [√½, √2)` by exponent-field
//!    extraction (a branch-light `frexp`).
//! 2. Let `t = (m−1)/(m+1)`; then `ln m = 2·atanh t` and `|t| ≤ 3−2√2 ≈
//!    0.1716`, so the odd series `2t·(1 + t²/3 + t⁴/5 + …)` converges to
//!    double precision within ten terms.
//! 3. Reconstruct `ln x = e·ln2 + ln m` with a hi/lo split of `ln 2`.
//!
//! The same polynomial is evaluated lane-wise by `finbench-simd`.

use crate::poly::polevl;

/// High part of `ln 2` for the reconstruction step.
pub const LN2_HI: f64 = 6.931_471_803_691_238e-1;
/// Low part of `ln 2`; `LN2_HI + LN2_LO == ln 2` in double-double.
pub const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;

/// Odd-series coefficients of `atanh t / t` in `t²`, descending powers:
/// `1/19, 1/17, ..., 1/3, 1`.
pub const LOG_SERIES: [f64; 10] = [
    1.0 / 19.0,
    1.0 / 17.0,
    1.0 / 15.0,
    1.0 / 13.0,
    1.0 / 11.0,
    1.0 / 9.0,
    1.0 / 7.0,
    1.0 / 5.0,
    1.0 / 3.0,
    1.0,
];

/// Split a positive, finite, normal-or-subnormal `x` into `(m, e)` with
/// `x = m · 2^e` and `m ∈ [√½, √2)`.
#[inline(always)]
pub fn frexp_sqrt2(x: f64) -> (f64, i32) {
    // Scale subnormals into the normal range first.
    let (x, bias) = if x < f64::MIN_POSITIVE {
        (x * 2f64.powi(54), -54)
    } else {
        (x, 0)
    };
    let bits = x.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    let mut e = raw_exp - 1023 + bias;
    // Mantissa with unit exponent: m0 in [1, 2).
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    const SQRT2: f64 = std::f64::consts::SQRT_2;
    if m >= SQRT2 {
        m *= 0.5;
        e += 1;
    }
    (m, e)
}

/// Compute `ln x` in double precision.
///
/// Domain handling matches `f64::ln`: `ln 0 = −inf`, `ln` of a negative
/// number is NaN, `ln inf = inf`.
///
/// ```
/// assert!((finbench_math::ln(std::f64::consts::E) - 1.0).abs() < 1e-15);
/// ```
#[inline]
pub fn ln(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x < 0.0 {
        return f64::NAN;
    }
    if x == f64::INFINITY {
        return f64::INFINITY;
    }

    let (m, e) = frexp_sqrt2(x);
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let lnm = 2.0 * t * polevl(t2, &LOG_SERIES);
    let ef = e as f64;
    ef * LN2_HI + (lnm + ef * LN2_LO)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    }

    #[test]
    fn frexp_reconstructs() {
        for &x in &[1e-300, 1e-10, 0.5, 0.9, 1.0, 1.5, 2.0, 3.25, 1e10, 1e300] {
            let (m, e) = frexp_sqrt2(x);
            assert!((std::f64::consts::FRAC_1_SQRT_2..std::f64::consts::SQRT_2).contains(&m));
            let back = m * 2f64.powi(e);
            assert!(rel_err(back, x) < 1e-15, "x={x}");
        }
    }

    #[test]
    fn matches_std_over_wide_range() {
        let mut worst = 0.0f64;
        // Geometric sweep over ~30 decades.
        let mut x = 1e-15;
        while x < 1e15 {
            let e = (ln(x) - x.ln()).abs() / x.ln().abs().max(1.0);
            worst = worst.max(e);
            x *= 1.000_937;
        }
        assert!(worst < 5e-16, "worst err {worst}");
    }

    #[test]
    fn accurate_near_one() {
        // ln is delicate near 1 where the result passes through zero; the
        // atanh form is specifically good here.
        for i in 1..2000 {
            let d = i as f64 * 1e-6;
            for x in [1.0 + d, 1.0 - d] {
                let got = ln(x);
                let want = x.ln();
                assert!(
                    (got - want).abs() <= want.abs() * 1e-13 + 1e-18,
                    "x={x} got={got} want={want}"
                );
            }
        }
    }

    #[test]
    fn special_values() {
        assert_eq!(ln(1.0), 0.0);
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
        assert_eq!(ln(f64::INFINITY), f64::INFINITY);
        assert!(ln(f64::NAN).is_nan());
    }

    #[test]
    fn subnormal_inputs() {
        let x = f64::MIN_POSITIVE / 1024.0;
        assert!(rel_err(ln(x), x.ln()) < 1e-15);
    }

    #[test]
    fn inverse_of_exp() {
        for &x in &[-30.0, -1.0, -1e-3, 0.0, 1e-3, 1.0, 10.0, 300.0] {
            let y = crate::exp(x);
            assert!((ln(y) - x).abs() < 1e-13 * x.abs().max(1.0), "x={x}");
        }
    }

    #[test]
    fn log_of_ratio_matches_difference() {
        // qlog = ln(S/X) is the first operation of the Black-Scholes kernel.
        for (s, x) in [(100.0, 90.0), (55.0, 260.0), (1.0, 1.0), (3.7, 3.6999)] {
            let lhs = ln(s / x);
            let rhs = s.ln() - x.ln();
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }
}
