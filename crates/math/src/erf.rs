//! Error function `erf` and its complement `erfc`.
//!
//! The paper replaces `cnd` with `erf` ("erf is less computationally
//! intensive than cnd") via `cnd(x) = (1 + erf(x/√2))/2`; we provide both
//! directions so either kernel formulation can be benchmarked.
//!
//! * For `|x| < 0.5` the Maclaurin series
//!   `erf x = (2/√π) Σ (−1)^k x^{2k+1} / (k! (2k+1))`
//!   is used — the region where the CDF-based route would cancel.
//! * Elsewhere `erf x = 2·Φ(x√2) − 1` (for `x ≥ ½`) and
//!   `erfc x = 2·Φ(−x√2)` delegate to the Hart/West CDF, whose tail form
//!   keeps `erfc` relatively accurate out to `x ≈ 26`.

use crate::norm::norm_cdf;

/// `2/sqrt(pi)` — the erf series prefactor.
pub const FRAC_2_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Number of Maclaurin terms used for `|x| < 0.5`; term 14 is below
/// `0.5^29 / (14! · 29) ≈ 7e-22`, comfortably under one ulp.
const ERF_SERIES_TERMS: u32 = 14;

/// The exact series coefficient `(−1)^k / (k! (2k+1))`; exposed for the
/// op-count audit and the SIMD crate's table generation.
pub fn erf_series_coeff(k: u32) -> f64 {
    let mut fact = 1.0f64;
    for i in 1..=k {
        fact *= i as f64;
    }
    let sign = if k.is_multiple_of(2) { 1.0 } else { -1.0 };
    sign / (fact * (2 * k + 1) as f64)
}

/// Maclaurin evaluation for `|x| < 0.5`, accurate to ~1 ulp *relative*.
#[inline]
fn erf_small(x: f64) -> f64 {
    let x2 = x * x;
    let mut pow = x; // x^{2k+1}
    let mut fact = 1.0; // k!
    let mut acc = x; // k = 0 term
    for k in 1..ERF_SERIES_TERMS {
        let kf = k as f64;
        fact *= kf;
        pow *= x2;
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        acc += sign * pow / (fact * (2.0 * kf + 1.0));
    }
    FRAC_2_SQRT_PI * acc
}

/// Error function.
///
/// ```
/// assert!((finbench_math::erf(1.0) - 0.8427007929497149).abs() < 1e-14);
/// ```
#[inline]
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    let ax = x.abs();
    if ax < 0.5 {
        erf_small(x)
    } else {
        let y = 2.0 * norm_cdf(ax * SQRT_2) - 1.0;
        if x < 0.0 {
            -y
        } else {
            y
        }
    }
}

/// Complementary error function `erfc x = 1 − erf x`, computed without
/// cancellation in the right tail.
///
/// ```
/// assert!((finbench_math::erfc(0.0) - 1.0).abs() < 1e-15);
/// ```
#[inline]
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x < 0.5 {
        1.0 - erf(x)
    } else {
        2.0 * norm_cdf(-x * SQRT_2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_coefficients() {
        assert!((erf_series_coeff(0) - 1.0).abs() < 1e-18);
        assert!((erf_series_coeff(1) + 1.0 / 3.0).abs() < 1e-18);
        assert!((erf_series_coeff(2) - 0.1).abs() < 1e-18);
        assert!((erf_series_coeff(3) + 1.0 / 42.0).abs() < 1e-18);
        assert!((erf_series_coeff(4) - 1.0 / 216.0).abs() < 1e-18);
    }

    #[test]
    fn known_values() {
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
            (-1.0, -0.842_700_792_949_714_9),
        ];
        for (x, want) in cases {
            let got = erf(x);
            assert!((got - want).abs() < 2e-15, "x={x} got={got} want={want}");
        }
    }

    #[test]
    fn small_x_relative_accuracy() {
        // Near zero erf(x) ~ 2x/sqrt(pi); relative accuracy matters. Use a
        // 25-term series as the oracle (truncation far below one ulp for
        // |x| < 0.5).
        for &x in &[1e-300f64, 1e-20, 1e-10, 1e-5, 0.01, 0.1, 0.49] {
            let mut want = 0.0;
            for k in (0..25u32).rev() {
                want += erf_series_coeff(k) * x.powi(2 * k as i32 + 1);
            }
            want *= FRAC_2_SQRT_PI;
            let got = erf(x);
            assert!(
                ((got - want) / want).abs() < 1e-13,
                "x={x} got={got} want={want}"
            );
        }
    }

    #[test]
    fn odd_symmetry() {
        let mut i = 0;
        while i <= 600 {
            let x = i as f64 * 0.01;
            assert_eq!(erf(x), -erf(-x), "x={x}");
            i += 1;
        }
    }

    #[test]
    fn erfc_complements_erf() {
        let mut i = -300;
        while i <= 300 {
            let x = i as f64 * 0.01;
            let s = erf(x) + erfc(x);
            assert!((s - 1.0).abs() < 4e-15, "x={x} sum={s}");
            i += 1;
        }
    }

    #[test]
    fn erfc_tail_relative() {
        // erfc(5) = 1.5374597944280348e-12 (mpmath)
        let want = 1.537_459_794_428_034_8e-12;
        let got = erfc(5.0);
        assert!(((got - want) / want).abs() < 1e-11, "got={got}");
    }

    #[test]
    fn cnd_equivalence_from_paper() {
        // cnd(x) = (1 + erf(x/sqrt(2)))/2 must reproduce norm_cdf.
        let mut i = -500;
        while i <= 500 {
            let x = i as f64 * 0.01;
            let via_erf = 0.5 * (1.0 + erf(x * std::f64::consts::FRAC_1_SQRT_2));
            let direct = norm_cdf(x);
            assert!((via_erf - direct).abs() < 4e-15, "x={x}");
            i += 1;
        }
    }

    #[test]
    fn continuity_at_half() {
        // The series/Hart switchover at |x| = 0.5 must be seamless.
        let below = erf(0.5 - 1e-12);
        let above = erf(0.5 + 1e-12);
        assert!((above - below).abs() < 1e-11);
    }

    #[test]
    fn monotone() {
        let mut prev = erf(-6.0);
        let mut i = 1;
        while i <= 1200 {
            let x = -6.0 + i as f64 * 0.01;
            let cur = erf(x);
            assert!(cur >= prev, "x={x}");
            prev = cur;
            i += 1;
        }
    }
}
