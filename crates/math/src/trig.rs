//! Double-precision `sin`/`cos` from scratch — completing the math
//! substrate so the Box-Muller normal transform (the classic alternative
//! to the inverse-CDF route the paper's MKL pipeline uses) needs no
//! `std` trigonometry.
//!
//! Algorithm:
//!
//! 1. Cody-Waite range reduction modulo `π/2` with a two-part constant
//!    (`FRAC_PI_2` + its representation residual): `x = n·π/2 + r`,
//!    `|r| ≤ π/4`.
//! 2. Taylor kernels on the reduced interval — with `|r| ≤ π/4` the
//!    series through `r¹⁵/15!` (sin) and `r¹⁶/16!` (cos) are below one
//!    ulp, and exact-rational Taylor coefficients cannot harbor
//!    transcription errors the way minimax tables can.
//! 3. Quadrant dispatch on `n mod 4`.
//!
//! Accuracy: ~1 ulp for `|x| ≲ 1e4`, degrading linearly with `|x|`
//! beyond (the two-part reduction is not Payne-Hanek); the Box-Muller
//! consumer only ever passes `x ∈ [0, 2π)`.

/// High part of `π/2` (the f64 nearest value).
const PIO2_HI: f64 = std::f64::consts::FRAC_PI_2;
/// Residual `π/2 − PIO2_HI` to double-double accuracy.
const PIO2_LO: f64 = 6.123_233_995_736_766e-17;
/// `2/π` for computing the reduction quotient.
const FRAC_2_PI: f64 = std::f64::consts::FRAC_2_PI;

/// Taylor kernel for `sin r`, `|r| ≤ π/4` (terms through `r^15`).
#[inline(always)]
fn sin_kernel(r: f64) -> f64 {
    let r2 = r * r;
    // Exact Taylor coefficients 1/3!, 1/5!, ..., 1/15!, Horner in r².
    let p = -1.0 / 1_307_674_368_000.0; // -1/15!
    let p = p * r2 + 1.0 / 6_227_020_800.0; // +1/13!
    let p = p * r2 - 1.0 / 39_916_800.0; // -1/11!
    let p = p * r2 + 1.0 / 362_880.0; // +1/9!
    let p = p * r2 - 1.0 / 5_040.0; // -1/7!
    let p = p * r2 + 1.0 / 120.0; // +1/5!
    let p = p * r2 - 1.0 / 6.0; // -1/3!
    r + r * r2 * p
}

/// Taylor kernel for `cos r`, `|r| ≤ π/4` (terms through `r^16`).
#[inline(always)]
fn cos_kernel(r: f64) -> f64 {
    let r2 = r * r;
    let p = 1.0 / 20_922_789_888_000.0; // +1/16!
    let p = p * r2 - 1.0 / 87_178_291_200.0; // -1/14!
    let p = p * r2 + 1.0 / 479_001_600.0; // +1/12!
    let p = p * r2 - 1.0 / 3_628_800.0; // -1/10!
    let p = p * r2 + 1.0 / 40_320.0; // +1/8!
    let p = p * r2 - 1.0 / 720.0; // -1/6!
    let p = p * r2 + 1.0 / 24.0; // +1/4!
    let p = p * r2 - 0.5; // -1/2!
    1.0 + r2 * p
}

/// Simultaneous `(sin x, cos x)` — one range reduction, two kernels.
///
/// ```
/// let (s, c) = finbench_math::sincos(1.0);
/// assert!((s - 0.8414709848078965).abs() < 1e-15);
/// assert!((c - 0.5403023058681398).abs() < 1e-15);
/// ```
#[inline]
pub fn sincos(x: f64) -> (f64, f64) {
    if !x.is_finite() {
        return (f64::NAN, f64::NAN);
    }
    let n = (x * FRAC_2_PI).round();
    let r = (x - n * PIO2_HI) - n * PIO2_LO;
    let (s, c) = (sin_kernel(r), cos_kernel(r));
    match (n as i64).rem_euclid(4) {
        0 => (s, c),
        1 => (c, -s),
        2 => (-s, -c),
        _ => (-c, s),
    }
}

/// `sin x`.
///
/// ```
/// assert!(finbench_math::sin(0.0) == 0.0);
/// ```
#[inline]
pub fn sin(x: f64) -> f64 {
    sincos(x).0
}

/// `cos x`.
///
/// ```
/// assert!((finbench_math::cos(0.0) - 1.0).abs() < 1e-15);
/// ```
#[inline]
pub fn cos(x: f64) -> f64 {
    sincos(x).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let pi = std::f64::consts::PI;
        assert!((sin(pi / 6.0) - 0.5).abs() < 1e-15);
        assert!((cos(pi / 3.0) - 0.5).abs() < 1e-15);
        assert!((sin(pi / 2.0) - 1.0).abs() < 1e-15);
        assert!(cos(pi / 2.0).abs() < 1e-15);
        assert!((sin(pi / 4.0) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-15);
    }

    #[test]
    fn matches_std_over_box_muller_range() {
        // The consumer range: [0, 2*pi).
        let mut i = 0;
        while i < 10_000 {
            let x = i as f64 * (2.0 * std::f64::consts::PI / 10_000.0);
            let (s, c) = sincos(x);
            assert!((s - x.sin()).abs() < 2e-16, "sin({x})");
            assert!((c - x.cos()).abs() < 2e-16, "cos({x})");
            i += 1;
        }
    }

    #[test]
    fn matches_std_over_moderate_range() {
        let mut x = -100.0;
        while x < 100.0 {
            let (s, c) = sincos(x);
            assert!((s - x.sin()).abs() < 1e-13, "sin({x}): {s} vs {}", x.sin());
            assert!((c - x.cos()).abs() < 1e-13, "cos({x})");
            x += 0.0137;
        }
    }

    #[test]
    fn large_arguments_stay_bounded_and_close() {
        // Two-part reduction: absolute error grows ~ 1e-16 * |x|.
        for &x in &[1e4f64, -3.7e4, 9.9e5, -1e6] {
            let (s, c) = sincos(x);
            assert!(s.abs() <= 1.0 + 1e-12 && c.abs() <= 1.0 + 1e-12);
            assert!((s - x.sin()).abs() < 1e-9, "sin({x})");
            assert!((c - x.cos()).abs() < 1e-9, "cos({x})");
        }
    }

    #[test]
    fn pythagorean_identity() {
        let mut x = -50.0;
        while x < 50.0 {
            let (s, c) = sincos(x);
            assert!((s * s + c * c - 1.0).abs() < 1e-14, "x={x}");
            x += 0.173;
        }
    }

    #[test]
    fn odd_even_symmetry() {
        for i in 0..1000 {
            let x = i as f64 * 0.011;
            assert_eq!(sin(-x), -sin(x), "x={x}");
            assert_eq!(cos(-x), cos(x), "x={x}");
        }
    }

    #[test]
    fn non_finite_inputs() {
        assert!(sin(f64::NAN).is_nan());
        assert!(cos(f64::INFINITY).is_nan());
        assert!(sincos(f64::NEG_INFINITY).0.is_nan());
    }
}
