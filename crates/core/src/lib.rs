//! # finbench-core
//!
//! The six derivative-pricing kernels of the SC 2012 financial-analytics
//! benchmark (Smelyanskiy et al.), each implemented at the paper's three
//! optimization levels:
//!
//! | Kernel | Basic | Intermediate | Advanced |
//! |---|---|---|---|
//! | [`black_scholes`] | scalar AOS reference (Lis. 1) | AOS→SOA + SIMD across options | erf + call/put parity, VML-style batch |
//! | [`binomial`] | scalar reference (Lis. 2) | SIMD across options | register/cache tiling (Lis. 3) |
//! | [`brownian_bridge`] | scalar depth-level (Lis. 4) | SIMD across paths | interleaved RNG, cache-to-cache fusion |
//! | [`monte_carlo`] | scalar path loop (Lis. 5) | SIMD + unrolled accumulators | streamed vs computed RNG drivers |
//! | [`crank_nicolson`] | scalar PSOR (Lis. 6–7) | wavefront manual SIMD (Fig. 7) | skewed data layout |
//! | RNG | scalar MT | vector ICDF batches | parallel streams — lives in `finbench-rng` |
//!
//! Every kernel's reference variant is additionally generic over
//! [`finbench_math::Real`], so the same source instantiates both the `f64`
//! production path and the op-counting audit path used to validate the
//! machine model's cost descriptors.
//!
//! Shared infrastructure: [`workload`] (option-batch generators and
//! AOS/SOA layouts), [`greeks`] (closed-form sensitivities and implied
//! volatility, an extension exercising the same math substrate), and
//! [`portfolio`] (scenario-grid full-book revaluation aggregated into
//! VaR / expected shortfall — the production market-risk workload built
//! on top of the pricing ladders).

pub mod binomial;
pub mod black_scholes;
pub mod brownian_bridge;
pub mod crank_nicolson;
pub mod engine;
pub mod greeks;
pub mod monte_carlo;
pub mod portfolio;
pub mod workload;

pub use workload::{MarketParams, OptionBatchAos, OptionBatchSoa, OptionRecord};
