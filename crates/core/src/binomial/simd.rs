//! Intermediate-level binomial kernel: SIMD across options.
//!
//! The paper (§IV-B2): "To improve SIMD efficiency and avoid unaligned
//! memory accesses, we compute one option per SIMD lane". The `Call` array
//! becomes an array of `W`-wide vectors; the inner reduction loop is the
//! same three-flop recurrence, now on full vectors with no `Call[j+1]`
//! misalignment and no ragged loop tail.

use super::{fill_leaves_simd, CrrParams};
use crate::workload::{MarketParams, OptionBatchSoa};
use finbench_simd::F64v;

/// Reduce a vector-of-options leaf array in place; lane `l` of the result
/// is the root value of option `l`.
pub fn reduce_simd<const W: usize>(
    call: &mut [F64v<W>],
    n: usize,
    pu_by_df: f64,
    pd_by_df: f64,
) -> F64v<W> {
    assert!(call.len() > n, "call buffer must hold n+1 nodes");
    for i in (1..=n).rev() {
        for j in 0..i {
            call[j] = call[j + 1] * pu_by_df + call[j] * pd_by_df;
        }
    }
    call[0]
}

/// Price a full batch, `W` options per pass. All options share the expiry
/// grid (`t` is read per group from the first lane; the workload
/// generators for the binomial experiments use a uniform expiry, matching
/// the paper's fixed 1024/2048-step setup). The scalar reference handles
/// any ragged tail.
pub fn price_batch_simd<const W: usize>(
    batch: &mut OptionBatchSoa,
    market: MarketParams,
    n: usize,
    is_call: bool,
) {
    let total = batch.len();
    let main = total - total % W;
    let mut call: Vec<F64v<W>> = vec![F64v::zero(); n + 1];

    let mut g = 0;
    while g < main {
        let crr = CrrParams::new(market, batch.t[g], n);
        fill_leaves_simd(&mut call, &batch.s[g..], &batch.x[g..], n, &crr, is_call);
        let root = reduce_simd(&mut call, n, crr.pu_by_df, crr.pd_by_df);
        let out = if is_call {
            &mut batch.call
        } else {
            &mut batch.put
        };
        root.store(out, g);
        g += W;
    }
    for i in main..total {
        let price = super::reference::price_european(
            batch.s[i], batch.x[i], batch.t[i], market, n, is_call,
        );
        if is_call {
            batch.call[i] = price;
        } else {
            batch.put[i] = price;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::reference;
    use crate::workload::WorkloadRanges;

    const M: MarketParams = MarketParams {
        r: 0.05,
        sigma: 0.25,
    };

    fn uniform_expiry_batch(n_opts: usize) -> OptionBatchSoa {
        let mut b = OptionBatchSoa::random(n_opts, 17, WorkloadRanges::default());
        for t in &mut b.t {
            *t = 1.0;
        }
        b
    }

    #[test]
    fn simd_reduction_is_bit_identical_to_reference() {
        // Same nodes, same expressions, same order: the lanes must match
        // scalar runs exactly, not approximately.
        let n = 257;
        let mut b = uniform_expiry_batch(8);
        price_batch_simd::<8>(&mut b, M, n, true);
        for i in 0..8 {
            let want = reference::price_european(b.s[i], b.x[i], 1.0, M, n, true);
            assert_eq!(b.call[i].to_bits(), want.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn ragged_tail_falls_back_to_scalar() {
        let n = 64;
        let mut b = uniform_expiry_batch(13); // 8 SIMD + 5 scalar for W=8
        price_batch_simd::<8>(&mut b, M, n, false);
        for i in 0..13 {
            let want = reference::price_european(b.s[i], b.x[i], 1.0, M, n, false);
            assert_eq!(b.put[i].to_bits(), want.to_bits(), "i={i}");
        }
    }

    #[test]
    fn width_4_and_8_agree() {
        let n = 128;
        let mut a = uniform_expiry_batch(32);
        let mut b = a.clone();
        price_batch_simd::<4>(&mut a, M, n, true);
        price_batch_simd::<8>(&mut b, M, n, true);
        for i in 0..32 {
            assert_eq!(a.call[i].to_bits(), b.call[i].to_bits(), "i={i}");
        }
    }

    #[test]
    fn converges_to_black_scholes_per_lane() {
        let mut b = uniform_expiry_batch(8);
        price_batch_simd::<8>(&mut b, M, 2048, true);
        for i in 0..8 {
            let (bs, _) = crate::black_scholes::price_single(b.s[i], b.x[i], 1.0, M);
            assert!(
                (b.call[i] - bs).abs() < 0.02,
                "lane {i}: {} vs {bs}",
                b.call[i]
            );
        }
    }
}
