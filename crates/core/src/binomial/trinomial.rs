//! Trinomial-tree pricing — the other lattice method of the paper's
//! Fig. 1 taxonomy, included as the natural ablation partner of the
//! binomial kernel: same backward-reduction dataflow (so the same tiling
//! ideas apply), three children per node, and markedly faster
//! convergence in `N`.
//!
//! Boyle's parameterization: over each step the price moves up by
//! `u = e^(σ√(2Δt))`, stays, or moves down by `1/u`, with
//!
//! ```text
//! pu = ((e^(rΔt/2) − e^(−σ√(Δt/2))) / (e^(σ√(Δt/2)) − e^(−σ√(Δt/2))))²
//! pd = ((e^(σ√(Δt/2)) − e^(rΔt/2)) / (e^(σ√(Δt/2)) − e^(−σ√(Δt/2))))²
//! pm = 1 − pu − pd
//! ```

use crate::workload::MarketParams;
use finbench_math::exp;

/// Precomputed trinomial lattice parameters (probabilities already
/// discounted by `e^(−rΔt)`, like the binomial `puByDf`).
#[derive(Debug, Clone, Copy)]
pub struct TriParams {
    /// Up factor `e^(σ√(2Δt))`.
    pub u: f64,
    /// Discounted up probability.
    pub pu_by_df: f64,
    /// Discounted middle probability.
    pub pm_by_df: f64,
    /// Discounted down probability.
    pub pd_by_df: f64,
}

impl TriParams {
    /// Lattice parameters for expiry `t` over `n` steps.
    ///
    /// # Panics
    /// If `n == 0`, `t <= 0`, or the parameters imply a negative
    /// probability (too-coarse grid for the given `r`, `σ`).
    pub fn new(market: MarketParams, t: f64, n: usize) -> Self {
        assert!(n > 0, "trinomial tree needs at least one step");
        assert!(t > 0.0, "expiry must be positive");
        let dt = t / n as f64;
        let a = exp(market.r * dt / 2.0);
        let sp = exp(market.sigma * (dt / 2.0).sqrt());
        let sm = 1.0 / sp;
        let denom = sp - sm;
        let pu = ((a - sm) / denom).powi(2);
        let pd = ((sp - a) / denom).powi(2);
        let pm = 1.0 - pu - pd;
        assert!(
            pu >= 0.0 && pd >= 0.0 && pm >= 0.0,
            "degenerate trinomial probabilities: pu={pu} pm={pm} pd={pd}"
        );
        let df = exp(-market.r * dt);
        Self {
            u: exp(market.sigma * (2.0 * dt).sqrt()),
            pu_by_df: pu * df,
            pm_by_df: pm * df,
            pd_by_df: pd * df,
        }
    }
}

/// Price a European option on an `n`-step trinomial lattice.
pub fn price_european(
    s: f64,
    x: f64,
    t: f64,
    market: MarketParams,
    n: usize,
    is_call: bool,
) -> f64 {
    let p = TriParams::new(market, t, n);
    // Leaves: 2n+1 nodes, price = s * u^(j-n) for j = 0..=2n.
    let mut value: Vec<f64> = (0..=2 * n)
        .map(|j| {
            let price = s * p.u.powi(j as i32 - n as i32);
            if is_call {
                (price - x).max(0.0)
            } else {
                (x - price).max(0.0)
            }
        })
        .collect();
    for i in (0..n).rev() {
        for j in 0..=2 * i {
            value[j] =
                p.pu_by_df * value[j + 2] + p.pm_by_df * value[j + 1] + p.pd_by_df * value[j];
        }
    }
    value[0]
}

/// Price an American option on an `n`-step trinomial lattice.
pub fn price_american(
    s: f64,
    x: f64,
    t: f64,
    market: MarketParams,
    n: usize,
    is_call: bool,
) -> f64 {
    let p = TriParams::new(market, t, n);
    let payoff = |price: f64| {
        if is_call {
            (price - x).max(0.0)
        } else {
            (x - price).max(0.0)
        }
    };
    let mut value: Vec<f64> = (0..=2 * n)
        .map(|j| payoff(s * p.u.powi(j as i32 - n as i32)))
        .collect();
    for i in (0..n).rev() {
        for j in 0..=2 * i {
            let cont =
                p.pu_by_df * value[j + 2] + p.pm_by_df * value[j + 1] + p.pd_by_df * value[j];
            let price = s * p.u.powi(j as i32 - i as i32);
            value[j] = cont.max(payoff(price));
        }
    }
    value[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::black_scholes::price_single;

    const M: MarketParams = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };

    #[test]
    fn probabilities_form_a_distribution() {
        let p = TriParams::new(M, 1.0, 500);
        let df = exp(-M.r * (1.0 / 500.0));
        let total = p.pu_by_df + p.pm_by_df + p.pd_by_df;
        assert!((total - df).abs() < 1e-14);
        assert!(p.u > 1.0);
    }

    #[test]
    fn converges_to_black_scholes() {
        let (bs_call, bs_put) = price_single(100.0, 95.0, 1.0, M);
        let call = price_european(100.0, 95.0, 1.0, M, 500, true);
        let put = price_european(100.0, 95.0, 1.0, M, 500, false);
        assert!((call - bs_call).abs() < 0.01, "{call} vs {bs_call}");
        assert!((put - bs_put).abs() < 0.01, "{put} vs {bs_put}");
    }

    #[test]
    fn converges_faster_than_binomial_at_equal_steps() {
        // The trinomial's extra degree of freedom buys ~one order of
        // accuracy at matched N on ATM contracts.
        let (bs_call, _) = price_single(100.0, 100.0, 1.0, M);
        let n = 100;
        let tri_err = (price_european(100.0, 100.0, 1.0, M, n, true) - bs_call).abs();
        let bin_err = (crate::binomial::reference::price_european(100.0, 100.0, 1.0, M, n, true)
            - bs_call)
            .abs();
        assert!(tri_err < bin_err, "tri {tri_err} vs bin {bin_err}");
    }

    #[test]
    fn american_matches_binomial_american() {
        let tri = price_american(100.0, 100.0, 1.0, M, 1000, false);
        let bin =
            crate::binomial::american::price_american::<f64>(100.0, 100.0, 1.0, M, 2000, false);
        assert!((tri - bin).abs() < 0.01, "tri {tri} vs bin {bin}");
    }

    #[test]
    fn american_dominates_european() {
        for (s, x) in [(80.0, 100.0), (100.0, 100.0), (120.0, 100.0)] {
            let am = price_american(s, x, 1.0, M, 200, false);
            let eu = price_european(s, x, 1.0, M, 200, false);
            assert!(am >= eu - 1e-10, "s={s}");
            assert!(am >= (x - s).max(0.0) - 1e-10);
        }
    }

    #[test]
    fn one_step_tree_by_hand() {
        let p = TriParams::new(M, 1.0, 1);
        let (s, x) = (100.0, 100.0);
        let up = (s * p.u - x).max(0.0);
        let mid = (s - x).max(0.0);
        let dn = (s / p.u - x).max(0.0);
        let want = p.pu_by_df * up + p.pm_by_df * mid + p.pd_by_df * dn;
        let got = price_european(s, x, 1.0, M, 1, true);
        assert!((got - want).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        TriParams::new(M, 1.0, 0);
    }
}
