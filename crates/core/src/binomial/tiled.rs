//! Advanced-level binomial kernel: the paper's novel register/cache tiling
//! (Lis. 3, Fig. 2b).
//!
//! A `TS`-deep wavefront (`Tile`) is carried through the `Call` array so
//! that `TS` time steps are applied per element load/store instead of one.
//! The pass splits into the *lower-triangular* prologue (seeding the
//! wavefront from `Call[0..TS]`) and the *trapezoidal* steady state (each
//! `Call[i]` is read once, pushed through `TS` reduction steps inside the
//! tile, and written back to `Call[i−TS]`). With `TS·W` doubles sized to
//! the register file this is the paper's register tiling; sized to L1/L2
//! it is the second-level cache tiling.
//!
//! Wavefront invariant entering trapezoid iteration `i` (time level `N`
//! at the top of a pass): `Tile[j]` holds the value of tree node
//! `(time = N − (TS−1−j), node = i−1−(TS−1−j))`. Each inner step computes
//! `node value = pu·(up child) + pd·(down child)` — exactly the reference
//! recurrence — so every tree node is evaluated by the *same* expression
//! as in Lis. 2 and the tiled result is **bit-identical** to the
//! reference (asserted in tests).

use super::{fill_leaves_simd, CrrParams};
use crate::workload::{MarketParams, OptionBatchSoa};
use finbench_simd::F64v;

/// Tiled in-place reduction of a vector-of-options leaf array.
///
/// `TS` is the tile depth (the paper tunes it to the register file; 4–16
/// are sensible for 16–32 architectural vector registers).
pub fn reduce_tiled<const W: usize, const TS: usize>(
    call: &mut [F64v<W>],
    n: usize,
    pu_by_df: f64,
    pd_by_df: f64,
) -> F64v<W> {
    assert!(call.len() > n, "call buffer must hold n+1 nodes");
    assert!(TS >= 1, "tile depth must be at least 1");
    let pu = pu_by_df;
    let pd = pd_by_df;

    let mut m = n;
    while m >= TS {
        // Lower-triangular prologue: seed the wavefront from Call[0..TS].
        let mut tile = [F64v::<W>::zero(); TS];
        tile[TS - 1] = call[0];
        for i in 1..TS {
            let mut m1 = call[i];
            for j in ((TS - i)..TS).rev() {
                let m2 = m1 * pu + tile[j] * pd;
                tile[j] = m1;
                m1 = m2;
            }
            tile[TS - 1 - i] = m1;
        }
        // Trapezoidal steady state (the paper's Lis. 3 inner loops).
        for i in TS..=m {
            let mut m1 = call[i];
            for j in (0..TS).rev() {
                let m2 = m1 * pu + tile[j] * pd;
                tile[j] = m1;
                m1 = m2;
            }
            call[i - TS] = m1;
        }
        m -= TS;
    }
    // Remainder (< TS steps) with the plain recurrence.
    for i in (1..=m).rev() {
        for j in 0..i {
            call[j] = call[j + 1] * pu + call[j] * pd;
        }
    }
    call[0]
}

/// FMA flavour of the tiled reduction: `m1.mul_add(pu, tile[j] * pd)`.
/// Not bit-identical to the reference (the fused multiply skips one
/// rounding), but one instruction shorter per node — the machine model
/// charges KNC's FMA units through this variant.
pub fn reduce_tiled_fma<const W: usize, const TS: usize>(
    call: &mut [F64v<W>],
    n: usize,
    pu_by_df: f64,
    pd_by_df: f64,
) -> F64v<W> {
    assert!(call.len() > n, "call buffer must hold n+1 nodes");
    let pu = F64v::<W>::splat(pu_by_df);
    let pd = F64v::<W>::splat(pd_by_df);

    let mut m = n;
    while m >= TS {
        let mut tile = [F64v::<W>::zero(); TS];
        tile[TS - 1] = call[0];
        for i in 1..TS {
            let mut m1 = call[i];
            for j in ((TS - i)..TS).rev() {
                let m2 = m1.mul_add(pu, tile[j] * pd);
                tile[j] = m1;
                m1 = m2;
            }
            tile[TS - 1 - i] = m1;
        }
        for i in TS..=m {
            let mut m1 = call[i];
            for j in (0..TS).rev() {
                let m2 = m1.mul_add(pu, tile[j] * pd);
                tile[j] = m1;
                m1 = m2;
            }
            call[i - TS] = m1;
        }
        m -= TS;
    }
    for i in (1..=m).rev() {
        for j in 0..i {
            call[j] = call[j + 1].mul_add(pu, call[j] * pd);
        }
    }
    call[0]
}

/// Batch driver for the tiled kernel (same grouping contract as
/// [`crate::binomial::simd::price_batch_simd`]).
pub fn price_batch_tiled<const W: usize, const TS: usize>(
    batch: &mut OptionBatchSoa,
    market: MarketParams,
    n: usize,
    is_call: bool,
) {
    let total = batch.len();
    let main = total - total % W;
    let mut call: Vec<F64v<W>> = vec![F64v::zero(); n + 1];

    let mut g = 0;
    while g < main {
        let crr = CrrParams::new(market, batch.t[g], n);
        fill_leaves_simd(&mut call, &batch.s[g..], &batch.x[g..], n, &crr, is_call);
        let root = reduce_tiled::<W, TS>(&mut call, n, crr.pu_by_df, crr.pd_by_df);
        let out = if is_call {
            &mut batch.call
        } else {
            &mut batch.put
        };
        root.store(out, g);
        g += W;
    }
    for i in main..total {
        let price = super::reference::price_european(
            batch.s[i], batch.x[i], batch.t[i], market, n, is_call,
        );
        if is_call {
            batch.call[i] = price;
        } else {
            batch.put[i] = price;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::reference;
    use crate::binomial::simd::reduce_simd;

    fn leaf_vec(n: usize, seed: u64) -> Vec<F64v<4>> {
        // Deterministic pseudo-leaves; positive, payoff-like.
        let mut out = Vec::with_capacity(n + 1);
        let mut state = seed;
        for _ in 0..=n {
            let mut lanes = [0.0; 4];
            for l in &mut lanes {
                state = finbench_rng::SplitMix64::mix(state);
                *l = (state >> 11) as f64 / (1u64 << 53) as f64 * 50.0;
            }
            out.push(F64v(lanes));
        }
        out
    }

    #[test]
    fn tiled_is_bit_identical_to_simd_reference() {
        // Sweep N across tile-boundary cases: multiples of TS, off-by-one,
        // N < TS, N == TS.
        for n in [1usize, 3, 4, 5, 7, 8, 16, 17, 31, 32, 33, 100, 255, 256] {
            let mut a = leaf_vec(n, 42);
            let mut b = a.clone();
            let ra = reduce_simd(&mut a, n, 0.5002, 0.4988);
            let rb = reduce_tiled::<4, 4>(&mut b, n, 0.5002, 0.4988);
            for l in 0..4 {
                assert_eq!(ra[l].to_bits(), rb[l].to_bits(), "n={n} lane={l}");
            }
        }
    }

    #[test]
    fn tile_depths_all_agree() {
        let n = 123;
        let mut reference_buf = leaf_vec(n, 7);
        let want = reduce_simd(&mut reference_buf, n, 0.497, 0.501);
        macro_rules! check_ts {
            ($($ts:literal),*) => {$(
                let mut buf = leaf_vec(n, 7);
                let got = reduce_tiled::<4, $ts>(&mut buf, n, 0.497, 0.501);
                for l in 0..4 {
                    assert_eq!(got[l].to_bits(), want[l].to_bits(), "TS={} lane={l}", $ts);
                }
            )*};
        }
        check_ts!(1, 2, 3, 4, 8, 16);
    }

    #[test]
    fn fma_variant_close_to_exact() {
        let n = 512;
        let mut a = leaf_vec(n, 9);
        let mut b = a.clone();
        let ra = reduce_simd(&mut a, n, 0.5002, 0.4988);
        let rb = reduce_tiled_fma::<4, 8>(&mut b, n, 0.5002, 0.4988);
        for l in 0..4 {
            let rel = ((ra[l] - rb[l]) / ra[l].max(1e-30)).abs();
            assert!(rel < 1e-12, "lane {l}: {} vs {}", ra[l], rb[l]);
        }
    }

    #[test]
    fn batch_driver_matches_scalar_reference() {
        use crate::workload::{OptionBatchSoa, WorkloadRanges};
        let m = crate::workload::MarketParams::PAPER;
        let mut b = OptionBatchSoa::random(19, 5, WorkloadRanges::default());
        for t in &mut b.t {
            *t = 2.0;
        }
        let n = 200;
        price_batch_tiled::<8, 4>(&mut b, m, n, true);
        for i in 0..b.len() {
            let want = reference::price_european(b.s[i], b.x[i], 2.0, m, n, true);
            assert_eq!(b.call[i].to_bits(), want.to_bits(), "i={i}");
        }
    }

    #[test]
    fn n_smaller_than_tile_uses_remainder_path() {
        let n = 2;
        let mut a = leaf_vec(n, 3);
        let mut b = a.clone();
        let ra = reduce_simd(&mut a, n, 0.5, 0.5);
        let rb = reduce_tiled::<4, 8>(&mut b, n, 0.5, 0.5);
        for l in 0..4 {
            assert_eq!(ra[l].to_bits(), rb[l].to_bits());
        }
    }
}
