//! American-exercise binomial pricing — the case the lattice method exists
//! for ("there is no known closed-form solution ... the binomial option
//! method provides a very close approximation", §II-B). The paper
//! benchmarks the European reduction; this extension adds the
//! early-exercise clamp and is the oracle the Crank-Nicolson experiment
//! validates against.

use super::CrrParams;
use crate::workload::MarketParams;
use finbench_math::Real;

/// Price an American option on an `n`-step CRR lattice.
///
/// At every interior node the continuation value is clamped from below by
/// the immediate-exercise payoff:
/// `V = max(payoff(S_node), pu·V_up + pd·V_down)`.
pub fn price_american<R: Real>(
    s: f64,
    x: f64,
    t: f64,
    market: MarketParams,
    n: usize,
    is_call: bool,
) -> f64 {
    let crr = CrrParams::new(market, t, n);
    let pu = R::of(crr.pu_by_df);
    let pd = R::of(crr.pd_by_df);
    let xv = R::of(x);
    let zero = R::of(0.0);

    // Node prices at the current level, updated by division by u each step
    // backwards (S_{i,j} = S_{i+1,j} · d since u·d = 1 ... S_{i,j} =
    // S·u^j·d^(i−j), so stepping i→i−1 multiplies by u).
    let mut price: Vec<R> = Vec::with_capacity(n + 1);
    let mut p = s * crr.d.powi(n as i32);
    let u2 = crr.u * crr.u;
    for _ in 0..=n {
        price.push(R::of(p));
        p *= u2;
    }

    let payoff = |price: R| {
        if is_call {
            (price - xv).max(zero)
        } else {
            (xv - price).max(zero)
        }
    };

    let mut value: Vec<R> = price.iter().map(|&p| payoff(p)).collect();

    let u = R::of(crr.u);
    for i in (0..n).rev() {
        for j in 0..=i {
            // Stepping back one level multiplies the lowest node price by u.
            price[j] *= u;
            let cont = pu * value[j + 1] + pd * value[j];
            value[j] = cont.max(payoff(price[j]));
        }
    }
    value[0].into_f64()
}

/// Price a Bermudan option: exercise is allowed only at lattice levels
/// that are multiples of `exercise_stride` (plus expiry). `stride == 1`
/// recovers the American contract; `stride >= n` leaves only the terminal
/// date and recovers the European one.
pub fn price_bermudan(
    s: f64,
    x: f64,
    t: f64,
    market: MarketParams,
    n: usize,
    exercise_stride: usize,
    is_call: bool,
) -> f64 {
    assert!(exercise_stride >= 1, "stride must be at least 1");
    let crr = CrrParams::new(market, t, n);
    let payoff = |price: f64| {
        if is_call {
            (price - x).max(0.0)
        } else {
            (x - price).max(0.0)
        }
    };

    let mut price: Vec<f64> = Vec::with_capacity(n + 1);
    let mut p = s * crr.d.powi(n as i32);
    let u2 = crr.u * crr.u;
    for _ in 0..=n {
        price.push(p);
        p *= u2;
    }
    let mut value: Vec<f64> = price.iter().map(|&p| payoff(p)).collect();

    for i in (0..n).rev() {
        let exercisable = i % exercise_stride == 0 && i > 0;
        for j in 0..=i {
            price[j] *= crr.u;
            let cont = crr.pu_by_df * value[j + 1] + crr.pd_by_df * value[j];
            value[j] = if exercisable {
                cont.max(payoff(price[j]))
            } else {
                cont
            };
        }
    }
    value[0]
}

/// Early-exercise premium: American minus European price on the same
/// lattice (guaranteed non-negative).
pub fn early_exercise_premium(
    s: f64,
    x: f64,
    t: f64,
    market: MarketParams,
    n: usize,
    is_call: bool,
) -> f64 {
    let american = price_american::<f64>(s, x, t, market, n, is_call);
    let european = super::reference::price_european(s, x, t, market, n, is_call);
    american - european
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: MarketParams = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };

    #[test]
    fn american_put_textbook_value() {
        // S=K=100, r=5%, sigma=20%, T=1: the American put converges to
        // ~6.090 (vs the European 5.5735).
        let p = price_american::<f64>(100.0, 100.0, 1.0, M, 2000, false);
        assert!((p - 6.090).abs() < 0.01, "got {p}");
    }

    #[test]
    fn american_dominates_european() {
        for (s, x, t) in [(100.0, 100.0, 1.0), (80.0, 100.0, 2.0), (120.0, 100.0, 0.5)] {
            for is_call in [true, false] {
                let prem = early_exercise_premium(s, x, t, M, 500, is_call);
                assert!(prem >= -1e-10, "premium {prem} s={s} x={x} call={is_call}");
            }
        }
    }

    #[test]
    fn american_call_no_dividends_equals_european() {
        // Merton: early exercise of a call on a non-dividend asset is
        // never optimal, so the premium vanishes.
        let prem = early_exercise_premium(100.0, 95.0, 1.0, M, 500, true);
        assert!(prem.abs() < 1e-9, "premium {prem}");
    }

    #[test]
    fn american_value_at_least_intrinsic() {
        for (s, x) in [(60.0, 100.0), (100.0, 100.0), (150.0, 100.0)] {
            let p = price_american::<f64>(s, x, 1.0, M, 300, false);
            assert!(p >= (x - s).max(0.0) - 1e-10, "s={s}");
        }
    }

    #[test]
    fn deep_itm_put_pins_to_intrinsic() {
        // For a very deep ITM American put immediate exercise is optimal.
        let p = price_american::<f64>(10.0, 100.0, 1.0, M, 500, false);
        assert!((p - 90.0).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn premium_grows_with_rate_for_puts() {
        // Higher r makes waiting costlier for puts => larger premium.
        let lo = early_exercise_premium(
            100.0,
            100.0,
            1.0,
            MarketParams {
                r: 0.01,
                sigma: 0.2,
            },
            400,
            false,
        );
        let hi = early_exercise_premium(
            100.0,
            100.0,
            1.0,
            MarketParams {
                r: 0.08,
                sigma: 0.2,
            },
            400,
            false,
        );
        assert!(hi > lo, "lo={lo} hi={hi}");
    }

    #[test]
    fn counted_instantiation_runs() {
        let (_, counts) = finbench_math::counted::counting(|| {
            price_american::<finbench_math::CountedF64>(100.0, 100.0, 0.5, M, 16, false)
        });
        // Reduction is 3 flops + 1 mul (price update) + payoff (1 sub +
        // 1 max) + 1 clamp max per node => > 3*N(N+1)/2.
        assert!(counts.flops() as usize > 3 * 16 * 17 / 2);
    }

    #[test]
    fn bermudan_sandwiched_between_european_and_american() {
        let (s, x, t, n) = (100.0, 100.0, 1.0, 600);
        let eur = crate::binomial::reference::price_european(s, x, t, M, n, false);
        let amer = price_american::<f64>(s, x, t, M, n, false);
        let mut prev = eur;
        // More exercise dates (smaller stride) => weakly more valuable.
        for stride in [600usize, 200, 50, 10, 1] {
            let berm = price_bermudan(s, x, t, M, n, stride, false);
            assert!(berm >= prev - 1e-10, "stride {stride}: {berm} < {prev}");
            assert!(berm <= amer + 1e-10, "stride {stride}");
            prev = berm;
        }
    }

    #[test]
    fn bermudan_stride_one_is_american() {
        let berm = price_bermudan(95.0, 100.0, 1.5, M, 400, 1, false);
        let amer = price_american::<f64>(95.0, 100.0, 1.5, M, 400, false);
        assert!((berm - amer).abs() < 1e-12, "{berm} vs {amer}");
    }

    #[test]
    fn bermudan_huge_stride_is_european() {
        let berm = price_bermudan(95.0, 100.0, 1.5, M, 400, 10_000, false);
        let eur = crate::binomial::reference::price_european(95.0, 100.0, 1.5, M, 400, false);
        assert!((berm - eur).abs() < 1e-12, "{berm} vs {eur}");
    }
}
