//! 1D binomial-tree option pricing (paper §IV-B, Lis. 2–3, Figs. 2 & 5).
//!
//! The Cox-Ross-Rubinstein lattice: over `N` steps the underlying moves up
//! by `u = e^(σ√Δt)` or down by `d = 1/u`; leaves hold the payoff and the
//! tree is reduced backwards with the discounted risk-neutral weights
//! `puByDf = p/e^(rΔt)`, `pdByDf = (1−p)/e^(rΔt)` — 3 flops per node,
//! `3·N(N+1)/2` flops per option (the paper's compute bound for Fig. 5).
//!
//! Optimization ladder:
//! * **Basic** — [`reference::price_european`]: the paper's Lis. 2, inner
//!   `j` loop over nodes (what the autovectorizer reaches).
//! * **Intermediate** — [`simd::price_batch_simd`]: one option per SIMD
//!   lane, vectorizing the *outer* loop so every access is aligned and
//!   full-width.
//! * **Advanced** — [`tiled::price_batch_tiled`]: the paper's novel
//!   register-tiling (Lis. 3 / Fig. 2b): a `TS`-deep wavefront lives in
//!   the register file, so each `Call` element is loaded and stored once
//!   per `TS` time steps instead of once per step.
//! * [`american`] extends the lattice with early exercise (the case the
//!   method exists for; the paper prices European for benchmark parity),
//!   and [`trinomial`] adds the other lattice of the paper's Fig. 1
//!   taxonomy as an ablation partner.

pub mod american;
pub mod reference;
pub mod simd;
pub mod tiled;
pub mod trinomial;

use crate::workload::MarketParams;
use finbench_simd::F64v;

/// Precomputed Cox-Ross-Rubinstein lattice parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrrParams {
    /// Up factor `e^(σ√Δt)`.
    pub u: f64,
    /// Down factor `1/u`.
    pub d: f64,
    /// Discounted up probability `p / e^(rΔt)` — the paper's `puByDf`.
    pub pu_by_df: f64,
    /// Discounted down probability `(1−p) / e^(rΔt)` — the paper's `pdByDf`.
    pub pd_by_df: f64,
    /// Time step `T/N`.
    pub dt: f64,
}

impl CrrParams {
    /// Lattice parameters for expiry `t` over `n` steps.
    ///
    /// # Panics
    /// If `n == 0` or `t <= 0`.
    pub fn new(market: MarketParams, t: f64, n: usize) -> Self {
        assert!(n > 0, "binomial tree needs at least one step");
        assert!(t > 0.0, "expiry must be positive");
        let dt = t / n as f64;
        let u = finbench_math::exp(market.sigma * dt.sqrt());
        let d = 1.0 / u;
        let a = finbench_math::exp(market.r * dt);
        let p = (a - d) / (u - d);
        Self {
            u,
            d,
            pu_by_df: p / a,
            pd_by_df: (1.0 - p) / a,
            dt,
        }
    }
}

/// Fill `out[j] = max(S·u^j·d^(N−j) − X, 0)` for a call (or the mirrored
/// put payoff), for `j = 0..=n`.
///
/// `u^j d^(n−j) = e^((2j−n)σ√Δt)` is built incrementally by repeated
/// multiplication with `u² = u/d`.
pub fn fill_leaves(out: &mut [f64], s: f64, x: f64, n: usize, crr: &CrrParams, is_call: bool) {
    assert_eq!(out.len(), n + 1, "leaf buffer must hold n+1 nodes");
    let mut price = s * crr.d.powi(n as i32);
    let u2 = crr.u * crr.u;
    for slot in out.iter_mut() {
        *slot = if is_call {
            (price - x).max(0.0)
        } else {
            (x - price).max(0.0)
        };
        price *= u2;
    }
}

/// Vector-of-options leaf fill: lane `l` of `out[j]` gets the leaf payoff
/// of option `l`.
pub fn fill_leaves_simd<const W: usize>(
    out: &mut [F64v<W>],
    s: &[f64],
    x: &[f64],
    n: usize,
    crr: &CrrParams,
    is_call: bool,
) {
    assert_eq!(out.len(), n + 1);
    assert!(s.len() >= W && x.len() >= W);
    let mut price = F64v::<W>::load(s, 0) * crr.d.powi(n as i32);
    let xv = F64v::<W>::load(x, 0);
    let u2 = crr.u * crr.u;
    for slot in out.iter_mut() {
        *slot = if is_call {
            (price - xv).max(F64v::zero())
        } else {
            (xv - price).max(F64v::zero())
        };
        price *= u2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crr_params_sane() {
        let crr = CrrParams::new(MarketParams::PAPER, 1.0, 1000);
        assert!(crr.u > 1.0 && crr.d < 1.0);
        assert!((crr.u * crr.d - 1.0).abs() < 1e-14);
        // Discounted probabilities sum to the one-step discount factor.
        let df = finbench_math::exp(-MarketParams::PAPER.r * crr.dt);
        assert!((crr.pu_by_df + crr.pd_by_df - df).abs() < 1e-14);
        assert!(crr.pu_by_df > 0.0 && crr.pd_by_df > 0.0, "no-arbitrage");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        CrrParams::new(MarketParams::PAPER, 1.0, 0);
    }

    #[test]
    fn leaves_match_direct_formula() {
        let crr = CrrParams::new(MarketParams::PAPER, 2.0, 64);
        let mut buf = vec![0.0; 65];
        fill_leaves(&mut buf, 100.0, 95.0, 64, &crr, true);
        for (j, &v) in buf.iter().enumerate() {
            let price = 100.0 * crr.u.powi(j as i32) * crr.d.powi(64 - j as i32);
            let want = (price - 95.0f64).max(0.0);
            assert!((v - want).abs() < 1e-9 * want.max(1.0), "j={j}");
        }
        // Put leaves mirror.
        let mut put = vec![0.0; 65];
        fill_leaves(&mut put, 100.0, 95.0, 64, &crr, false);
        for j in 0..=64 {
            assert!(put[j] == 0.0 || buf[j] == 0.0, "payoffs overlap at {j}");
        }
    }

    #[test]
    fn simd_leaves_match_scalar() {
        let crr = CrrParams::new(MarketParams::PAPER, 1.5, 32);
        let s = [90.0, 100.0, 110.0, 120.0];
        let x = [100.0; 4];
        let mut v = vec![F64v::<4>::zero(); 33];
        fill_leaves_simd(&mut v, &s, &x, 32, &crr, true);
        for lane in 0..4 {
            let mut scalar = vec![0.0; 33];
            fill_leaves(&mut scalar, s[lane], x[lane], 32, &crr, true);
            for j in 0..=32 {
                assert!((v[j][lane] - scalar[j]).abs() < 1e-9, "lane {lane} j {j}");
            }
        }
    }
}
