//! Basic-level binomial kernel: the paper's Lis. 2.

use super::{fill_leaves, CrrParams};
use crate::workload::{MarketParams, OptionBatchSoa};
use finbench_math::Real;

/// Reduce a leaf array in place: after the call, `call[0]` holds the root
/// (present) value. This is exactly the paper's inner two loops:
///
/// ```c
/// for(int i = N; i > 0; i--)
///   for(int j = 0; j <= i - 1; j++)
///     Call[j] = puByDf*Call[j+1] + pdByDf*Call[j];
/// ```
pub fn reduce<R: Real>(call: &mut [R], n: usize, pu_by_df: R, pd_by_df: R) -> R {
    assert!(call.len() > n, "call buffer must hold n+1 nodes");
    for i in (1..=n).rev() {
        for j in 0..i {
            call[j] = pu_by_df * call[j + 1] + pd_by_df * call[j];
        }
    }
    call[0]
}

/// Price one European option (reference path). `is_call` selects the
/// payoff at the leaves; the reduction is payoff-agnostic.
pub fn price_european(
    s: f64,
    x: f64,
    t: f64,
    market: MarketParams,
    n: usize,
    is_call: bool,
) -> f64 {
    let crr = CrrParams::new(market, t, n);
    let mut call = vec![0.0f64; n + 1];
    fill_leaves(&mut call, s, x, n, &crr, is_call);
    reduce(&mut call, n, crr.pu_by_df, crr.pd_by_df)
}

/// Batch driver: price every option in the batch with the scalar reference
/// kernel, writing calls and puts (the paper prices one side; we fill both
/// for the validation suite). The scratch buffer is reused across options.
pub fn price_batch(batch: &mut OptionBatchSoa, market: MarketParams, n: usize) {
    let mut scratch = vec![0.0f64; n + 1];
    for i in 0..batch.len() {
        let crr = CrrParams::new(market, batch.t[i], n);
        fill_leaves(&mut scratch, batch.s[i], batch.x[i], n, &crr, true);
        batch.call[i] = reduce(&mut scratch, n, crr.pu_by_df, crr.pd_by_df);
        fill_leaves(&mut scratch, batch.s[i], batch.x[i], n, &crr, false);
        batch.put[i] = reduce(&mut scratch, n, crr.pu_by_df, crr.pd_by_df);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::black_scholes::price_single;
    use crate::workload::WorkloadRanges;
    use finbench_math::CountedF64;

    const M: MarketParams = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };

    #[test]
    fn converges_to_black_scholes() {
        let (bs_call, bs_put) = price_single(100.0, 100.0, 1.0, M);
        let call = price_european(100.0, 100.0, 1.0, M, 1000, true);
        let put = price_european(100.0, 100.0, 1.0, M, 1000, false);
        assert!((call - bs_call).abs() < 0.01, "call {call} vs {bs_call}");
        assert!((put - bs_put).abs() < 0.01, "put {put} vs {bs_put}");
    }

    #[test]
    fn error_shrinks_with_more_steps() {
        let (bs_call, _) = price_single(100.0, 110.0, 0.75, M);
        let coarse = (price_european(100.0, 110.0, 0.75, M, 64, true) - bs_call).abs();
        let fine = (price_european(100.0, 110.0, 0.75, M, 2048, true) - bs_call).abs();
        assert!(fine < coarse, "coarse {coarse} fine {fine}");
        assert!(fine < 0.01);
    }

    #[test]
    fn one_step_tree_by_hand() {
        // N=1: root = pu*leaf_up + pd*leaf_down.
        let crr = CrrParams::new(M, 1.0, 1);
        let s = 100.0;
        let x = 100.0;
        let up = (s * crr.u - x).max(0.0);
        let dn = (s * crr.d - x).max(0.0);
        let want = crr.pu_by_df * up + crr.pd_by_df * dn;
        let got = price_european(s, x, 1.0, M, 1, true);
        assert!((got - want).abs() < 1e-14);
    }

    #[test]
    fn put_call_parity_approx() {
        // European options on a lattice obey parity up to lattice error.
        for n in [128usize, 512] {
            let c = price_european(105.0, 95.0, 2.0, M, n, true);
            let p = price_european(105.0, 95.0, 2.0, M, n, false);
            let parity = 105.0 - 95.0 * (-M.r * 2.0f64).exp();
            assert!((c - p - parity).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn flop_count_matches_paper_formula() {
        // The paper: "This kernel requires ~ 3N(N+1)/2 floating point
        // computations" for the reduction.
        for n in [8usize, 33, 100] {
            let mut call: Vec<CountedF64> = (0..=n).map(|j| CountedF64(j as f64)).collect();
            let (_, counts) = finbench_math::counted::counting(|| {
                reduce(&mut call, n, CountedF64(0.5), CountedF64(0.49));
            });
            let want = 3 * n * (n + 1) / 2;
            assert_eq!(counts.flops() as usize, want, "n={n}");
        }
    }

    #[test]
    fn batch_driver_consistent_with_single() {
        let mut b = OptionBatchSoa::random(16, 3, WorkloadRanges::default());
        price_batch(&mut b, M, 64);
        for i in 0..b.len() {
            let want = price_european(b.s[i], b.x[i], b.t[i], M, 64, true);
            assert_eq!(b.call[i].to_bits(), want.to_bits(), "i={i}");
        }
    }

    #[test]
    #[should_panic(expected = "must hold n+1")]
    fn short_buffer_panics() {
        let mut buf = vec![0.0f64; 4];
        reduce(&mut buf, 4, 0.5, 0.5);
    }
}
