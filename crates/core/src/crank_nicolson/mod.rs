//! Crank-Nicolson American option pricing with Projected SOR
//! (paper §II-C & §IV-E, Lis. 6–7, Figs. 7–8).
//!
//! ## Formulation
//!
//! Following the paper's references (Wilmott/Howison/Dewynne; Kerman), the
//! Black-Scholes PDE is transformed to the heat equation `u_τ = u_xx` via
//! `S = K·e^x`, `t = T − 2τ/σ²`, `V = K·e^(−(k−1)x/2 − (k+1)²τ/4)·u`,
//! with `k = 2r/σ²`. The American put becomes a linear complementarity
//! problem: `u ≥ g` everywhere, where the transformed payoff is
//!
//! ```text
//! g(x, τ) = e^((k+1)²τ/4) · max(e^((k−1)x/2) − e^((k+1)x/2), 0)
//! ```
//!
//! Each Crank-Nicolson step splits into an explicit half
//! (`B = (1−α)U + (α/2)(U₊ + U₋)`, `α = Δτ/Δx²`) and an implicit half
//! solved by **projected Gauss-Seidel SOR**:
//!
//! ```text
//! y  = (B[j] + (α/2)(u[j−1] + u[j+1])) / (1 + α)
//! u[j] ← max(g[j], u[j] + ω(y − u[j]))        (projection for American)
//! ```
//!
//! iterated until the summed squared update drops below `eps`, with the
//! over-relaxation factor ω adapted across time steps (Lis. 6).
//!
//! ## Optimization ladder
//!
//! * **Basic** — [`mod@reference`]: scalar PSOR exactly as Lis. 7 (the loop
//!   the compiler cannot vectorize because both the space and the
//!   convergence loop carry dependencies).
//! * **Advanced (manual SIMD)** — [`wavefront::psor_solve_wavefront`]: the
//!   paper's novel scheme (Fig. 7): the convergence loop is unrolled by
//!   the vector width and `W` consecutive SOR iterations advance along a
//!   skewed wavefront, lane `w` computing iteration `k+w+1` at position
//!   `j−2w`; convergence is checked every `W` iterations.
//! * **Advanced (data transform)** —
//!   [`wavefront::psor_solve_wavefront_soa`]: the `B`/`G` arrays are
//!   physically re-skewed per solve so each wavefront step reads unit
//!   stride instead of stride-2 gathers.

pub mod reference;
pub mod wavefront;

use crate::workload::MarketParams;
use finbench_math::{exp, ln};

/// Which PSOR implementation a solve should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsorKind {
    /// Scalar Lis. 7 (basic level).
    Reference,
    /// Skewed wavefront, strided loads (advanced: manual SIMD).
    Wavefront,
    /// Skewed wavefront over re-skewed contiguous arrays (advanced:
    /// manual SIMD + data-structure transform).
    WavefrontSoa,
}

/// A Crank-Nicolson pricing problem for one option (strike-normalized
/// grid; one `CnProblem` prices any spot via [`CnSolution::price`]).
#[derive(Debug, Clone)]
pub struct CnProblem {
    /// Market parameters.
    pub market: MarketParams,
    /// Expiry in years.
    pub expiry: f64,
    /// Grid points (the paper's figure uses 256).
    pub n_points: usize,
    /// Time steps (the paper's figure uses 1000).
    pub n_steps: usize,
    /// Log-moneyness grid bounds `x = ln(S/K)`.
    pub xmin: f64,
    /// Upper grid bound.
    pub xmax: f64,
    /// PSOR convergence threshold on the summed squared update.
    pub eps: f64,
    /// `true` prices American exercise (projection on); `false` European.
    pub american: bool,
}

impl CnProblem {
    /// The paper's Fig. 8 configuration: 256 underlying prices, 1000 time
    /// steps, American exercise.
    pub fn paper(market: MarketParams, expiry: f64) -> Self {
        Self {
            market,
            expiry,
            n_points: 256,
            n_steps: 1000,
            xmin: -2.5,
            xmax: 2.5,
            eps: 1e-16,
            american: true,
        }
    }

    /// `k = 2r/σ²`.
    pub fn k(&self) -> f64 {
        2.0 * self.market.r / (self.market.sigma * self.market.sigma)
    }

    /// Grid spacing.
    pub fn dx(&self) -> f64 {
        (self.xmax - self.xmin) / (self.n_points - 1) as f64
    }

    /// Heat-time step (`τ` runs to `σ²T/2`).
    pub fn dtau(&self) -> f64 {
        0.5 * self.market.sigma * self.market.sigma * self.expiry / self.n_steps as f64
    }

    /// The CN ratio `α = Δτ/Δx²`.
    pub fn alpha(&self) -> f64 {
        self.dtau() / (self.dx() * self.dx())
    }

    /// Transformed put payoff `g(x, τ)`.
    pub fn payoff_u(&self, x: f64, tau: f64) -> f64 {
        let k = self.k();
        let growth = exp(0.25 * (k + 1.0) * (k + 1.0) * tau);
        let diff = exp(0.5 * (k - 1.0) * x) - exp(0.5 * (k + 1.0) * x);
        growth * diff.max(0.0)
    }

    /// Solve the marching problem with the chosen PSOR kernel.
    pub fn solve(&self, kind: PsorKind) -> CnSolution {
        assert!(self.n_points >= 3, "need at least 3 grid points");
        let m = self.n_points - 1; // jmax
        let dx = self.dx();
        let dtau = self.dtau();
        let alpha = self.alpha();
        let alphah = 0.5 * alpha;
        let coeff = 1.0 / (1.0 + alpha);

        let x_of = |j: usize| self.xmin + j as f64 * dx;

        let mut u: Vec<f64> = (0..=m).map(|j| self.payoff_u(x_of(j), 0.0)).collect();
        let mut b = vec![0.0; m + 1];
        let mut g = vec![0.0; m + 1];

        // Lis. 6 omega adaptation state.
        let mut omega = 1.0f64;
        let domega = 0.05;
        let mut oldloops = usize::MAX;
        let mut total_iters = 0usize;

        for n in 1..=self.n_steps {
            let tau = n as f64 * dtau;
            // Explicit half step + payoff refresh (uses the old U).
            for j in 1..m {
                g[j] = self.payoff_u(x_of(j), tau);
                b[j] = (1.0 - alpha) * u[j] + alphah * (u[j + 1] + u[j - 1]);
            }
            g[0] = self.payoff_u(self.xmin, tau);
            g[m] = self.payoff_u(self.xmax, tau);
            u[0] = g[0];
            u[m] = g[m];

            let loops = match kind {
                PsorKind::Reference => reference::psor_solve(
                    &mut u,
                    &b,
                    &g,
                    1,
                    m - 1,
                    alphah,
                    coeff,
                    omega,
                    self.american,
                    self.eps,
                ),
                PsorKind::Wavefront => wavefront::psor_solve_wavefront::<8>(
                    &mut u,
                    &b,
                    &g,
                    1,
                    m - 1,
                    alphah,
                    coeff,
                    omega,
                    self.american,
                    self.eps,
                ),
                PsorKind::WavefrontSoa => wavefront::psor_solve_wavefront_soa::<8>(
                    &mut u,
                    &b,
                    &g,
                    1,
                    m - 1,
                    alphah,
                    coeff,
                    omega,
                    self.american,
                    self.eps,
                ),
            };
            total_iters += loops;

            // Lis. 6: nudge omega when the iteration count grows.
            if loops > oldloops && omega < 1.9 {
                omega += domega;
            }
            oldloops = loops;
        }

        CnSolution {
            problem: self.clone(),
            u,
            psor_iterations: total_iters,
        }
    }
}

/// A finished Crank-Nicolson solve: the `u(x, τ_final)` grid plus
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct CnSolution {
    /// The problem this solves.
    pub problem: CnProblem,
    /// `u` at the final heat time (= present date).
    pub u: Vec<f64>,
    /// Total PSOR iterations across all time steps.
    pub psor_iterations: usize,
}

impl CnSolution {
    /// Price the put for spot `s` and strike `strike` by transforming the
    /// linearly interpolated `u(ln(S/K))` back to money space.
    ///
    /// # Panics
    /// If `ln(S/K)` falls outside the grid.
    pub fn price(&self, s: f64, strike: f64) -> f64 {
        let p = &self.problem;
        let x0 = ln(s / strike);
        assert!(x0 >= p.xmin && x0 <= p.xmax, "spot outside grid: x0={x0}");
        let dx = p.dx();
        let f = (x0 - p.xmin) / dx;
        let j = (f.floor() as usize).min(p.n_points - 2);
        let w = f - j as f64;
        let u0 = self.u[j] * (1.0 - w) + self.u[j + 1] * w;

        let k = p.k();
        let tau_fin = 0.5 * p.market.sigma * p.market.sigma * p.expiry;
        strike * u0 * exp(-0.5 * (k - 1.0) * x0 - 0.25 * (k + 1.0) * (k + 1.0) * tau_fin)
    }
}

/// Convenience wrapper: price one American (or European) put.
pub fn price_put(
    s: f64,
    strike: f64,
    expiry: f64,
    market: MarketParams,
    kind: PsorKind,
    american: bool,
) -> f64 {
    let mut prob = CnProblem::paper(market, expiry);
    prob.american = american;
    prob.solve(kind).price(s, strike)
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: MarketParams = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };

    #[test]
    fn problem_parameters() {
        let p = CnProblem::paper(M, 1.0);
        assert_eq!(p.n_points, 256);
        assert!((p.k() - 2.5).abs() < 1e-15);
        assert!(p.alpha() > 0.0);
        // tau_final = sigma^2 T / 2 = 0.02.
        assert!((p.dtau() * p.n_steps as f64 - 0.02).abs() < 1e-15);
    }

    #[test]
    fn payoff_transform_matches_money_space_at_tau_zero() {
        // V(S, expiry) from u(x, 0) must be the put payoff max(K-S, 0).
        let p = CnProblem::paper(M, 1.0);
        let strike = 100.0;
        for x in [-1.0, -0.5, -0.1, 0.0, 0.1, 1.0] {
            let s = strike * exp(x);
            let k = p.k();
            let v = strike * p.payoff_u(x, 0.0) * exp(-0.5 * (k - 1.0) * x);
            let want = (strike - s).max(0.0);
            assert!(
                (v - want).abs() < 1e-9 * want.max(1.0),
                "x={x}: {v} vs {want}"
            );
        }
    }

    #[test]
    fn european_put_matches_black_scholes() {
        let (_, bs_put) = crate::black_scholes::price_single(100.0, 100.0, 1.0, M);
        let cn = price_put(100.0, 100.0, 1.0, M, PsorKind::Reference, false);
        assert!((cn - bs_put).abs() < 0.01, "cn {cn} vs bs {bs_put}");
    }

    #[test]
    fn american_put_matches_binomial() {
        let bin =
            crate::binomial::american::price_american::<f64>(100.0, 100.0, 1.0, M, 2000, false);
        let cn = price_put(100.0, 100.0, 1.0, M, PsorKind::Reference, true);
        assert!((cn - bin).abs() < 0.02, "cn {cn} vs binomial {bin}");
    }

    #[test]
    fn american_dominates_european_and_intrinsic() {
        let prob_a = CnProblem::paper(M, 1.0);
        let mut prob_e = prob_a.clone();
        prob_e.american = false;
        let sol_a = prob_a.solve(PsorKind::Reference);
        let sol_e = prob_e.solve(PsorKind::Reference);
        for s in [70.0, 85.0, 100.0, 115.0, 130.0] {
            let a = sol_a.price(s, 100.0);
            let e = sol_e.price(s, 100.0);
            assert!(a >= e - 1e-9, "s={s}: american {a} < european {e}");
            // u >= g holds at the nodes; linear interpolation between
            // nodes can undershoot the (convex) obstacle by O(dx²).
            let interp_tol = 100.0 * prob_a.dx() * prob_a.dx();
            assert!(
                a >= (100.0 - s).max(0.0) - interp_tol,
                "s={s} below intrinsic: {a}"
            );
        }
    }

    #[test]
    fn solution_respects_constraint_everywhere() {
        let p = CnProblem::paper(M, 1.0);
        let sol = p.solve(PsorKind::Reference);
        let tau_fin = 0.02;
        let dx = p.dx();
        for j in 0..p.n_points {
            let x = p.xmin + j as f64 * dx;
            let g = p.payoff_u(x, tau_fin);
            assert!(sol.u[j] >= g - 1e-9, "j={j}: u={} g={g}", sol.u[j]);
        }
    }

    #[test]
    #[should_panic(expected = "spot outside grid")]
    fn out_of_grid_spot_panics() {
        let p = CnProblem::paper(M, 1.0);
        let sol = p.solve(PsorKind::Reference);
        sol.price(0.001, 100.0);
    }
}
