//! Basic-level PSOR: the paper's Lis. 7, scalar Gauss-Seidel SOR with
//! projection.
//!
//! "This code is not easily vectorized since both the inner j-loop over
//! asset prices and the outer do-while convergence loop both have
//! dependencies" — this is the kernel the wavefront scheme rewrites.

/// One projected SOR sweep over the interior `[lo, hi]`; returns the
/// summed squared update (the paper's `error`).
///
/// `alphah = α/2`, `coeff = 1/(1+α)`, `omega` the relaxation factor,
/// `american` enables the `max(g, ·)` projection.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn psor_sweep(
    u: &mut [f64],
    b: &[f64],
    g: &[f64],
    lo: usize,
    hi: usize,
    alphah: f64,
    coeff: f64,
    omega: f64,
    american: bool,
) -> f64 {
    let mut error = 0.0;
    for j in lo..=hi {
        let y = coeff * (b[j] + alphah * (u[j - 1] + u[j + 1]));
        let old = u[j];
        let mut val = old + omega * (y - old);
        if american {
            val = val.max(g[j]);
        }
        let err = val - old;
        error += err * err;
        u[j] = val;
    }
    error
}

/// Iterate [`psor_sweep`] until the squared-update sum drops below `eps`;
/// returns the iteration count (the paper's `loops`).
#[allow(clippy::too_many_arguments)]
pub fn psor_solve(
    u: &mut [f64],
    b: &[f64],
    g: &[f64],
    lo: usize,
    hi: usize,
    alphah: f64,
    coeff: f64,
    omega: f64,
    american: bool,
    eps: f64,
) -> usize {
    let mut loops = 0;
    loop {
        loops += 1;
        let error = psor_sweep(u, b, g, lo, hi, alphah, coeff, omega, american);
        if error <= eps || loops >= 10_000 {
            return loops;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a small diffusion-like test system with a known solution:
    /// solve (1+α)u - (α/2)(u₋+u₊) = b for b produced from a target u*.
    fn manufactured(n: usize, alpha: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let target: Vec<f64> = (0..n)
            .map(|j| (j as f64 * 0.37).sin().abs() + 0.5)
            .collect();
        let mut b = vec![0.0; n];
        for j in 1..n - 1 {
            b[j] = (1.0 + alpha) * target[j] - 0.5 * alpha * (target[j - 1] + target[j + 1]);
        }
        let g = vec![f64::NEG_INFINITY; n]; // projection never binds
        (target, b, g)
    }

    #[test]
    fn gsor_solves_manufactured_system() {
        let n = 64;
        let alpha = 0.8;
        let (target, b, g) = manufactured(n, alpha);
        let mut u = vec![0.0; n];
        u[0] = target[0];
        u[n - 1] = target[n - 1];
        let loops = psor_solve(
            &mut u,
            &b,
            &g,
            1,
            n - 2,
            alpha / 2.0,
            1.0 / (1.0 + alpha),
            1.2,
            false,
            1e-28,
        );
        assert!(loops < 10_000, "did not converge");
        for j in 0..n {
            assert!(
                (u[j] - target[j]).abs() < 1e-10,
                "j={j}: {} vs {}",
                u[j],
                target[j]
            );
        }
    }

    #[test]
    fn projection_clamps_to_obstacle() {
        // With an obstacle above the unconstrained solution, PSOR must
        // return the obstacle where it binds and stay >= it everywhere.
        let n = 32;
        let alpha = 0.5;
        let (target, b, _) = manufactured(n, alpha);
        let g: Vec<f64> = target.iter().map(|t| t + 0.25).collect(); // binds everywhere
        let mut u = g.clone();
        psor_solve(
            &mut u,
            &b,
            &g,
            1,
            n - 2,
            alpha / 2.0,
            1.0 / (1.0 + alpha),
            1.0,
            true,
            1e-24,
        );
        for j in 1..n - 1 {
            assert!(u[j] >= g[j] - 1e-12, "j={j}");
            assert!((u[j] - g[j]).abs() < 1e-8, "obstacle should bind at {j}");
        }
    }

    #[test]
    fn sor_omega_one_is_gauss_seidel() {
        // With omega = 1 the relaxation reduces to plain Gauss-Seidel:
        // val = y exactly.
        let n = 16;
        let alpha = 0.3;
        let (_, b, g) = manufactured(n, alpha);
        let mut u1 = vec![1.0; n];
        let mut u2 = u1.clone();
        psor_sweep(
            &mut u1,
            &b,
            &g,
            1,
            n - 2,
            alpha / 2.0,
            1.0 / (1.0 + alpha),
            1.0,
            false,
        );
        // Manual Gauss-Seidel.
        let coeff = 1.0 / (1.0 + alpha);
        for j in 1..=n - 2 {
            u2[j] = coeff * (b[j] + alpha / 2.0 * (u2[j - 1] + u2[j + 1]));
        }
        for j in 0..n {
            assert_eq!(u1[j].to_bits(), u2[j].to_bits(), "j={j}");
        }
    }

    #[test]
    fn over_relaxation_converges_faster_here() {
        // A stiff system (large alpha => Jacobi spectral radius near 1)
        // where the optimal omega is well above 1.
        let n = 128;
        let alpha = 50.0;
        let (_, b, g) = manufactured(n, alpha);
        let run = |omega: f64| {
            let mut u = vec![0.0; n];
            psor_solve(
                &mut u,
                &b,
                &g,
                1,
                n - 2,
                alpha / 2.0,
                1.0 / (1.0 + alpha),
                omega,
                false,
                1e-26,
            )
        };
        let plain = run(1.0);
        let sor = run(1.5);
        assert!(sor < plain, "omega=1: {plain}, omega=1.5: {sor}");
    }

    #[test]
    fn error_is_zero_at_fixed_point() {
        let n = 16;
        let alpha = 0.3;
        let (target, b, g) = manufactured(n, alpha);
        let mut u = target.clone();
        let err = psor_sweep(
            &mut u,
            &b,
            &g,
            1,
            n - 2,
            alpha / 2.0,
            1.0 / (1.0 + alpha),
            1.0,
            false,
        );
        assert!(err < 1e-25, "err {err}");
    }
}
