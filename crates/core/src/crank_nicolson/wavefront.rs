//! Advanced-level PSOR: the paper's wavefront vectorization (Fig. 7).
//!
//! ## The scheme
//!
//! Projected SOR carries two dependences: `u^{k+1}_j` needs `u^{k+1}_{j−1}`
//! (same iteration, previous point) and `u^k_{j+1}` (previous iteration,
//! next point). In the `(iteration, position)` plane the computation is a
//! 2-D dataflow whose legal hyperplanes are `t = 2k + j`: lane `w` of a
//! `W`-wide wavefront computes **iteration `k+w+1` at position `s − 2w`**
//! at sweep step `s`. All cross-lane inputs then come from the previous
//! two steps:
//!
//! * `left  = u^{k+w+1}_{j−1}` — lane `w`'s own output at step `s−1`;
//! * `right = u^{k+w}_{j+1}`  — lane `w−1`'s output at step `s−1`;
//! * `old   = u^{k+w}_{j}`    — lane `w−1`'s output at step `s−2`;
//!
//! with lane 0 reading the base arrays and boundary lanes reading the
//! (iteration-invariant) boundary values. One pass of `s` over
//! `[lo, hi + 2(W−1)]` advances the whole interior by `W` PSOR iterations
//! — exactly the paper's "unroll the convergence loop by a factor of the
//! vector width ... we now check for convergence every 4 or 8 iterations".
//! Prologue and epilogue triangles (Fig. 7) fall out of lane masking.
//!
//! Every `(k, j)` iterate is produced by the *same floating-point
//! expression* as the scalar Lis. 7, so a fixed iteration count yields
//! **bit-identical** state (asserted in tests).
//!
//! Two data layouts:
//! * [`psor_solve_wavefront`] — lanes read `B[s−2w]`, `G[s−2w]` directly:
//!   stride-2 gathers per step (the paper's intermediate "manual SIMD"
//!   bar, still penalized by irregular access).
//! * [`psor_solve_wavefront_soa`] — `B`/`G` are physically re-skewed into
//!   `[step][lane]` order once per solve so the hot loop is unit-stride
//!   (the paper's final data-structure-transform bar; the transform cost
//!   is the residual gap to ideal SIMD scaling it reports).

/// One `W`-iteration wavefront block over the interior `[lo, hi]`.
/// Returns the summed squared update of the *last* lane (iteration
/// `k+W−1 → k+W`), matching the scalar per-sweep error.
///
/// `b_g_at(s, w) -> (b, g)` abstracts the two layouts.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn psor_block<const W: usize>(
    u: &mut [f64],
    lo: usize,
    hi: usize,
    alphah: f64,
    coeff: f64,
    omega: f64,
    american: bool,
    b_g_at: impl Fn(usize, usize) -> (f64, f64),
) -> f64 {
    let u_lo = u[lo - 1]; // left boundary, iteration-invariant
    let u_hi = u[hi + 1]; // right boundary

    let mut prev1 = [0.0f64; W]; // lane outputs at step s-1
    let mut prev2 = [0.0f64; W]; // lane outputs at step s-2
    let mut error = 0.0f64;

    for s in lo..=(hi + 2 * (W - 1)) {
        let mut new = [0.0f64; W];
        for w in 0..W {
            let j_signed = s as isize - 2 * w as isize;
            if j_signed < lo as isize || j_signed > hi as isize {
                continue; // inactive lane (prologue/epilogue triangle)
            }
            let j = j_signed as usize;

            let left = if j == lo { u_lo } else { prev1[w] };
            let right = if j == hi {
                u_hi
            } else if w == 0 {
                u[j + 1]
            } else {
                prev1[w - 1]
            };
            let old = if w == 0 { u[j] } else { prev2[w - 1] };

            let (b, g) = b_g_at(s, w);
            // Identical expression to reference::psor_sweep.
            let y = coeff * (b + alphah * (left + right));
            let mut val = old + omega * (y - old);
            if american {
                val = val.max(g);
            }
            new[w] = val;

            if w == W - 1 {
                let err = val - old;
                error += err * err;
                u[j] = val;
            }
        }
        prev2 = prev1;
        prev1 = new;
    }
    error
}

/// Wavefront PSOR with in-place strided access to `b`/`g` (manual-SIMD
/// level). Returns total iterations performed (a multiple of `W`).
#[allow(clippy::too_many_arguments)]
pub fn psor_solve_wavefront<const W: usize>(
    u: &mut [f64],
    b: &[f64],
    g: &[f64],
    lo: usize,
    hi: usize,
    alphah: f64,
    coeff: f64,
    omega: f64,
    american: bool,
    eps: f64,
) -> usize {
    assert!(W >= 1 && lo >= 1 && hi >= lo && hi + 1 < u.len());
    let mut iters = 0;
    loop {
        let error = psor_block::<W>(u, lo, hi, alphah, coeff, omega, american, |s, w| {
            let j = s - 2 * w;
            (b[j], g[j])
        });
        iters += W;
        if error <= eps || iters >= 10_000 {
            return iters;
        }
    }
}

/// Run exactly `blocks` wavefront blocks (= `blocks·W` PSOR iterations)
/// with no convergence check — the fixed-iteration entry point used by
/// the bit-exactness tests and the ablation benchmarks.
#[allow(clippy::too_many_arguments)]
pub fn psor_solve_wavefront_fixed_blocks<const W: usize>(
    u: &mut [f64],
    b: &[f64],
    g: &[f64],
    lo: usize,
    hi: usize,
    alphah: f64,
    coeff: f64,
    omega: f64,
    american: bool,
    blocks: usize,
) -> f64 {
    assert!(W >= 1 && lo >= 1 && hi >= lo && hi + 1 < u.len());
    let mut last_error = 0.0;
    for _ in 0..blocks {
        last_error = psor_block::<W>(u, lo, hi, alphah, coeff, omega, american, |s, w| {
            let j = s - 2 * w;
            (b[j], g[j])
        });
    }
    last_error
}

/// Re-skew `src[lo..=hi]` into wavefront order: entry `(s − lo)·W + w`
/// holds `src[s − 2w]` (0 where the lane is inactive). This is the
/// paper's "physically rearranging the B, G and U arrays for contiguous
/// access".
pub fn skew_for_wavefront<const W: usize>(src: &[f64], lo: usize, hi: usize) -> Vec<f64> {
    let steps = hi - lo + 1 + 2 * (W - 1);
    let mut out = vec![0.0; steps * W];
    for s in lo..=(hi + 2 * (W - 1)) {
        for w in 0..W {
            let j = s as isize - 2 * w as isize;
            if j >= lo as isize && j <= hi as isize {
                out[(s - lo) * W + w] = src[j as usize];
            }
        }
    }
    out
}

/// Wavefront PSOR over pre-skewed `b`/`g` copies (data-transform level):
/// the hot loop reads `bsk[(s−lo)·W + w]` — unit stride across lanes. The
/// skewing itself is charged to this call, as in the paper.
#[allow(clippy::too_many_arguments)]
pub fn psor_solve_wavefront_soa<const W: usize>(
    u: &mut [f64],
    b: &[f64],
    g: &[f64],
    lo: usize,
    hi: usize,
    alphah: f64,
    coeff: f64,
    omega: f64,
    american: bool,
    eps: f64,
) -> usize {
    assert!(W >= 1 && lo >= 1 && hi >= lo && hi + 1 < u.len());
    let bsk = skew_for_wavefront::<W>(b, lo, hi);
    let gsk = skew_for_wavefront::<W>(g, lo, hi);
    let mut iters = 0;
    loop {
        let error = psor_block::<W>(u, lo, hi, alphah, coeff, omega, american, |s, w| {
            let idx = (s - lo) * W + w;
            (bsk[idx], gsk[idx])
        });
        iters += W;
        if error <= eps || iters >= 10_000 {
            return iters;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crank_nicolson::reference::psor_sweep;

    /// Deterministic pseudo-random test vectors.
    fn test_system(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut draw = || {
            state = finbench_rng::SplitMix64::mix(state);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let u: Vec<f64> = (0..n).map(|_| draw() * 2.0).collect();
        let b: Vec<f64> = (0..n).map(|_| draw()).collect();
        let g: Vec<f64> = (0..n).map(|_| draw() * 1.5).collect();
        (u, b, g)
    }

    const ALPHA: f64 = 1.46;
    const ALPHAH: f64 = ALPHA / 2.0;
    const COEFF: f64 = 1.0 / (1.0 + ALPHA);

    #[allow(clippy::too_many_arguments)]
    fn scalar_k_sweeps(
        u: &mut [f64],
        b: &[f64],
        g: &[f64],
        lo: usize,
        hi: usize,
        omega: f64,
        american: bool,
        k: usize,
    ) -> f64 {
        let mut last = 0.0;
        for _ in 0..k {
            last = psor_sweep(u, b, g, lo, hi, ALPHAH, COEFF, omega, american);
        }
        last
    }

    #[test]
    fn one_block_is_bit_identical_to_w_scalar_sweeps() {
        for american in [false, true] {
            for n in [8usize, 16, 37, 64, 256] {
                let (u0, b, g) = test_system(n, 1234 + n as u64);
                let (lo, hi) = (1, n - 2);

                let mut us = u0.clone();
                let err_s = scalar_k_sweeps(&mut us, &b, &g, lo, hi, 1.3, american, 8);

                let mut uw = u0.clone();
                let err_w =
                    psor_block::<8>(&mut uw, lo, hi, ALPHAH, COEFF, 1.3, american, |s, w| {
                        let j = s - 2 * w;
                        (b[j], g[j])
                    });

                for j in 0..n {
                    assert_eq!(
                        us[j].to_bits(),
                        uw[j].to_bits(),
                        "american={american} n={n} j={j}: {} vs {}",
                        us[j],
                        uw[j]
                    );
                }
                assert_eq!(
                    err_s.to_bits(),
                    err_w.to_bits(),
                    "error american={american} n={n}"
                );
            }
        }
    }

    #[test]
    fn multiple_blocks_track_scalar() {
        let n = 128;
        let (u0, b, g) = test_system(n, 777);
        let (lo, hi) = (1, n - 2);

        let mut us = u0.clone();
        scalar_k_sweeps(&mut us, &b, &g, lo, hi, 1.5, true, 24);

        let mut uw = u0.clone();
        for _ in 0..3 {
            psor_block::<8>(&mut uw, lo, hi, ALPHAH, COEFF, 1.5, true, |s, w| {
                let j = s - 2 * w;
                (b[j], g[j])
            });
        }
        for j in 0..n {
            assert_eq!(us[j].to_bits(), uw[j].to_bits(), "j={j}");
        }
    }

    #[test]
    fn width_one_block_equals_one_scalar_sweep() {
        let n = 32;
        let (u0, b, g) = test_system(n, 5);
        let mut us = u0.clone();
        let err_s = scalar_k_sweeps(&mut us, &b, &g, 1, n - 2, 1.0, true, 1);
        let mut uw = u0.clone();
        let err_w = psor_block::<1>(&mut uw, 1, n - 2, ALPHAH, COEFF, 1.0, true, |s, _| {
            (b[s], g[s])
        });
        assert_eq!(err_s.to_bits(), err_w.to_bits());
        for j in 0..n {
            assert_eq!(us[j].to_bits(), uw[j].to_bits());
        }
    }

    #[test]
    fn widths_4_and_8_reach_same_fixed_point() {
        let n = 96;
        let (u0, b, g) = test_system(n, 9);
        let mut u4 = u0.clone();
        let mut u8 = u0.clone();
        psor_solve_wavefront::<4>(&mut u4, &b, &g, 1, n - 2, ALPHAH, COEFF, 1.4, true, 1e-26);
        psor_solve_wavefront::<8>(&mut u8, &b, &g, 1, n - 2, ALPHAH, COEFF, 1.4, true, 1e-26);
        for j in 0..n {
            assert!(
                (u4[j] - u8[j]).abs() < 1e-11,
                "j={j}: {} vs {}",
                u4[j],
                u8[j]
            );
        }
    }

    #[test]
    fn soa_variant_identical_to_strided_variant() {
        let n = 200;
        let (u0, b, g) = test_system(n, 31);
        let mut ua = u0.clone();
        let mut ub = u0.clone();
        let ia =
            psor_solve_wavefront::<8>(&mut ua, &b, &g, 1, n - 2, ALPHAH, COEFF, 1.2, true, 1e-24);
        let ib = psor_solve_wavefront_soa::<8>(
            &mut ub,
            &b,
            &g,
            1,
            n - 2,
            ALPHAH,
            COEFF,
            1.2,
            true,
            1e-24,
        );
        assert_eq!(ia, ib);
        for j in 0..n {
            assert_eq!(ua[j].to_bits(), ub[j].to_bits(), "j={j}");
        }
    }

    #[test]
    fn skew_layout_places_entries_correctly() {
        let src: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let sk = skew_for_wavefront::<4>(&src, 1, 8);
        // step s, lane w holds src[s - 2w] when 1 <= s-2w <= 8.
        for s in 1..=(8 + 6) {
            for w in 0..4usize {
                let j = s as isize - 2 * w as isize;
                let got = sk[(s - 1) * 4 + w];
                if (1..=8).contains(&j) {
                    assert_eq!(got, j as f64, "s={s} w={w}");
                } else {
                    assert_eq!(got, 0.0, "s={s} w={w}");
                }
            }
        }
    }

    #[test]
    fn wavefront_converges_on_manufactured_problem() {
        // Same manufactured diffusion system as the reference tests.
        let n = 64;
        let alpha = 0.8;
        let target: Vec<f64> = (0..n)
            .map(|j| (j as f64 * 0.37).sin().abs() + 0.5)
            .collect();
        let mut b = vec![0.0; n];
        for j in 1..n - 1 {
            b[j] = (1.0 + alpha) * target[j] - 0.5 * alpha * (target[j - 1] + target[j + 1]);
        }
        let g = vec![f64::NEG_INFINITY; n];
        let mut u = vec![0.0; n];
        u[0] = target[0];
        u[n - 1] = target[n - 1];
        let iters = psor_solve_wavefront::<8>(
            &mut u,
            &b,
            &g,
            1,
            n - 2,
            alpha / 2.0,
            1.0 / (1.0 + alpha),
            1.2,
            false,
            1e-28,
        );
        assert!(iters < 10_000);
        for j in 0..n {
            assert!((u[j] - target[j]).abs() < 1e-10, "j={j}");
        }
    }
}
