//! [`Kernel`] implementations for the six paper kernels — thin adapters
//! over the existing level functions (no numerics change) — plus the
//! [`GreeksKernel`] and [`PortfolioKernel`] risk workloads and the shared
//! [`registry`] every consumer iterates.
//!
//! Each adapter owns three decisions and nothing else:
//!
//! * **workload construction** ([`Kernel::make_workload`]): the same
//!   sizes the old hand-written harness drivers used, shrunk under
//!   `quick` and overridable through `n_hint` for validation sweeps
//!   (clamped to whatever the algorithms require — SIMD width multiples,
//!   enough samples for the statistical checks);
//! * **the ladder** ([`Kernel::ladder`]): one [`Rung`] per optimization
//!   level, with the equivalence check the §6 strategy prescribes
//!   (bit-exact for reordered-schedule variants, tight relative tolerance
//!   for reordered transcendental arithmetic, statistical agreement for
//!   rungs consuming a different random stream);
//! * **the cost mapping** ([`Kernel::cost`] + [`Rung::cost_level`]): the
//!   machine model's calibrated descriptors, so the planner and the
//!   modeled figure bars can never drift apart.

use crate::binomial;
use crate::black_scholes::{reference, soa, vml};
use crate::brownian_bridge::{
    interleaved, reference as bridge_ref, simd as bridge_simd, BridgePlan,
};
use crate::crank_nicolson::{CnProblem, CnSolution, PsorKind};
use crate::greeks::bump::{binomial_bump_greeks, bs_bump_greeks, BumpSizes};
use crate::greeks::mc::{crn_fd_delta, crn_fd_vega, crn_normals, McEstimate, McGreeks};
use crate::greeks::{greeks_batch_simd, mc, Greeks, GreeksBatchSoa, OptionType};
use crate::monte_carlo::{reference as mc_ref, simd as mc_simd, GbmTerminal, PathSums};
use crate::portfolio::{par_revalue, revalue_into, Book, RevalScratch, ScenarioConfig};
use crate::workload::{MarketParams, OptionBatchAos, OptionBatchSoa, WorkloadRanges};
use finbench_engine::{fn_body, Check, Kernel, OptLevel, Registry, Rung, WorkloadSpec};
use finbench_machine::kernels as cost_model;
use finbench_machine::kernels::Level as CostedLevel;
use finbench_machine::ArchSpec;
use finbench_rng::normal::{fill_standard_normal_icdf, fill_standard_normal_polar};
use finbench_rng::uniform::fill_uniform;
use finbench_rng::{Mt19937_64, Philox4x32, StreamFamily};

const M: MarketParams = MarketParams::PAPER;

/// Round `n` up to a multiple of `w` (the SIMD-width contract several
/// kernels impose on their batch drivers).
fn round_up(n: usize, w: usize) -> usize {
    n.div_ceil(w) * w
}

fn soa_prices(b: &OptionBatchSoa) -> Vec<f64> {
    b.call.iter().chain(b.put.iter()).copied().collect()
}

/// Call side only — the binomial SIMD/tiled drivers price one side per
/// invocation (`is_call = true`), so puts are not comparable there.
fn calls_only(b: &OptionBatchSoa) -> Vec<f64> {
    b.call.clone()
}

fn aos_prices(b: &OptionBatchAos) -> Vec<f64> {
    b.opts
        .iter()
        .map(|o| o.call)
        .chain(b.opts.iter().map(|o| o.put))
        .collect()
}

fn path_sums_mean(s: &Option<PathSums>) -> Vec<f64> {
    let s = s.as_ref().expect("step() ran before output()");
    vec![s.v0 / s.n as f64]
}

// ---------------------------------------------------------------------
// Black-Scholes (Fig. 4)
// ---------------------------------------------------------------------

/// Fig. 4: batched European Black-Scholes pricing.
pub struct BlackScholes;

/// Prepared option batch in both layouts (the ladder spans AOS and SOA).
pub struct BsWorkload {
    soa: OptionBatchSoa,
    aos: OptionBatchAos,
}

impl Kernel for BlackScholes {
    type Workload = BsWorkload;

    fn name(&self) -> &'static str {
        "black_scholes"
    }
    fn artifact(&self) -> &'static str {
        "fig4"
    }
    fn title(&self) -> &'static str {
        "Black-Scholes (options/s)"
    }
    fn unit(&self) -> &'static str {
        "opts/s"
    }

    fn make_workload(&self, spec: &WorkloadSpec) -> BsWorkload {
        let n = spec
            .n_hint
            .unwrap_or(if spec.quick { 20_000 } else { 400_000 })
            .max(1);
        let soa = OptionBatchSoa::random(n, spec.seed, WorkloadRanges::default());
        BsWorkload {
            aos: soa.to_aos(),
            soa,
        }
    }

    fn items(&self, w: &BsWorkload) -> usize {
        w.soa.len()
    }

    fn ladder(&self) -> Vec<Rung<BsWorkload>> {
        vec![
            Rung::new(
                OptLevel::Basic,
                "Basic: scalar AOS reference",
                |w: &BsWorkload, _p| {
                    fn_body(
                        w.aos.clone(),
                        |b| reference::price_aos::<f64>(b, M),
                        aos_prices,
                    )
                },
            )
            .check(Check::None),
            Rung::new(
                OptLevel::Basic,
                "Basic+: SIMD on AOS (gathers)",
                |w: &BsWorkload, _p| {
                    fn_body(
                        w.aos.clone(),
                        |b| reference::price_aos_simd_gather::<8>(b, M),
                        aos_prices,
                    )
                },
            ),
            Rung::new(
                OptLevel::Intermediate,
                "Intermediate: scalar SOA",
                |w: &BsWorkload, _p| {
                    fn_body(w.soa.clone(), |b| soa::price_soa_scalar(b, M), soa_prices)
                },
            )
            .cost_level(1),
            Rung::new(
                OptLevel::Intermediate,
                "Intermediate: SIMD SOA (W=4)",
                |w: &BsWorkload, _p| {
                    fn_body(
                        w.soa.clone(),
                        |b| soa::price_soa_simd::<4>(b, M),
                        soa_prices,
                    )
                },
            )
            .cost_level(1),
            Rung::new(
                OptLevel::Intermediate,
                "Intermediate: SIMD SOA (W=8)",
                |w: &BsWorkload, _p| {
                    fn_body(
                        w.soa.clone(),
                        |b| soa::price_soa_simd::<8>(b, M),
                        soa_prices,
                    )
                },
            )
            .cost_level(1),
            Rung::new(
                OptLevel::Advanced,
                "Advanced: erf + parity (W=8)",
                |w: &BsWorkload, _p| {
                    fn_body(
                        w.soa.clone(),
                        |b| soa::price_soa_simd_erf_parity::<8>(b, M),
                        soa_prices,
                    )
                },
            )
            .cost_level(2),
            Rung::new(
                OptLevel::Advanced,
                "Advanced: VML-style batch",
                |w: &BsWorkload, _p| {
                    let ws = vml::VmlWorkspace::with_capacity(w.soa.len());
                    fn_body(
                        (w.soa.clone(), ws),
                        |(b, ws)| vml::price_soa_vml(b, M, ws),
                        |(b, _)| soa_prices(b),
                    )
                },
            )
            .cost_level(2)
            .staging(),
            Rung::new(
                OptLevel::Advanced,
                "Advanced + own-pool threads",
                |w: &BsWorkload, _p| {
                    fn_body(
                        w.soa.clone(),
                        |b| soa::par_price_soa::<8>(b, M, 4096),
                        soa_prices,
                    )
                },
            )
            .cost_level(2)
            .threaded(),
        ]
    }

    fn cost(&self, arch: &ArchSpec) -> Vec<CostedLevel> {
        cost_model::black_scholes(arch)
    }
}

// ---------------------------------------------------------------------
// Binomial tree (Fig. 5)
// ---------------------------------------------------------------------

/// Fig. 5: CRR binomial-tree pricing, register-tiled at the top level.
pub struct Binomial;

/// Uniform-expiry batch plus the tree depth.
pub struct BinomialWorkload {
    batch: OptionBatchSoa,
    n_steps: usize,
}

impl Kernel for Binomial {
    type Workload = BinomialWorkload;

    fn name(&self) -> &'static str {
        "binomial"
    }
    fn artifact(&self) -> &'static str {
        "fig5"
    }
    fn title(&self) -> &'static str {
        "Binomial tree (options/s)"
    }
    fn unit(&self) -> &'static str {
        "opts/s"
    }

    fn make_workload(&self, spec: &WorkloadSpec) -> BinomialWorkload {
        // The SIMD drivers share one expiry grid per W-group; keep the
        // paper's uniform t=1 workload (ragged tails are handled, but a
        // multiple of W exercises the vector path everywhere).
        let n_opts = round_up(
            spec.n_hint
                .unwrap_or(if spec.quick { 16 } else { 64 })
                .max(1),
            8,
        );
        let mut batch = OptionBatchSoa::random(n_opts, spec.seed, WorkloadRanges::default());
        for t in &mut batch.t {
            *t = 1.0;
        }
        BinomialWorkload {
            batch,
            n_steps: if spec.quick { 256 } else { 1024 },
        }
    }

    fn items(&self, w: &BinomialWorkload) -> usize {
        w.batch.len()
    }

    fn ladder(&self) -> Vec<Rung<BinomialWorkload>> {
        vec![
            Rung::new(
                OptLevel::Basic,
                "Basic: scalar reference",
                |w: &BinomialWorkload, _p| {
                    let n = w.n_steps;
                    fn_body(
                        w.batch.clone(),
                        move |b| binomial::reference::price_batch(b, M, n),
                        calls_only,
                    )
                },
            )
            .check(Check::None),
            Rung::new(
                OptLevel::Intermediate,
                "Intermediate: SIMD across options (W=8)",
                |w: &BinomialWorkload, _p| {
                    let n = w.n_steps;
                    fn_body(
                        w.batch.clone(),
                        move |b| binomial::simd::price_batch_simd::<8>(b, M, n, true),
                        calls_only,
                    )
                },
            )
            .check(Check::Rel(1e-11))
            .cost_level(1),
            Rung::new(
                OptLevel::Advanced,
                "Advanced: register tiling (W=8, TS=4)",
                |w: &BinomialWorkload, _p| {
                    let n = w.n_steps;
                    fn_body(
                        w.batch.clone(),
                        move |b| binomial::tiled::price_batch_tiled::<8, 4>(b, M, n, true),
                        calls_only,
                    )
                },
            )
            // Identical arithmetic to the SIMD rung, reordered schedule.
            .check(Check::BitExact)
            .baseline(1)
            .cost_level(2),
            Rung::new(
                OptLevel::Advanced,
                "Advanced: register tiling (W=8, TS=8)",
                |w: &BinomialWorkload, _p| {
                    let n = w.n_steps;
                    fn_body(
                        w.batch.clone(),
                        move |b| binomial::tiled::price_batch_tiled::<8, 8>(b, M, n, true),
                        calls_only,
                    )
                },
            )
            .check(Check::BitExact)
            .baseline(1)
            .cost_level(3),
        ]
    }

    fn cost(&self, arch: &ArchSpec) -> Vec<CostedLevel> {
        cost_model::binomial(arch, 1024)
    }
}

// ---------------------------------------------------------------------
// Brownian bridge (Fig. 6)
// ---------------------------------------------------------------------

/// Fig. 6: 64-step Brownian-bridge path construction.
pub struct BrownianBridge;

/// Bridge plan plus pre-generated normals in both layouts and the stream
/// family the RNG-inlined rungs draw from.
pub struct BridgeWorkload {
    plan: BridgePlan,
    randoms: Vec<f64>,
    transposed: Vec<f64>,
    fam: StreamFamily,
    n_paths: usize,
}

impl Kernel for BrownianBridge {
    type Workload = BridgeWorkload;

    fn name(&self) -> &'static str {
        "brownian_bridge"
    }
    fn artifact(&self) -> &'static str {
        "fig6"
    }
    fn title(&self) -> &'static str {
        "Brownian bridge (paths/s)"
    }
    fn unit(&self) -> &'static str {
        "paths/s"
    }

    fn make_workload(&self, spec: &WorkloadSpec) -> BridgeWorkload {
        // >= 1024 paths keeps the statistical checks of the RNG-inlined
        // rungs well inside tolerance; multiples of 8 are the SIMD
        // drivers' contract.
        let n_paths = round_up(
            spec.n_hint
                .unwrap_or(if spec.quick { 4_096 } else { 65_536 })
                .max(1024),
            8,
        );
        let plan = BridgePlan::new(6, 1.0);
        let per = plan.randoms_per_path();
        let mut rng = Mt19937_64::new(spec.seed.wrapping_add(2));
        let mut randoms = vec![0.0; n_paths * per];
        fill_standard_normal_icdf(&mut rng, &mut randoms);
        let transposed = bridge_simd::transpose_randoms::<8>(&randoms, per);
        BridgeWorkload {
            plan,
            randoms,
            transposed,
            fam: StreamFamily::new(spec.seed.wrapping_add(77)),
            n_paths,
        }
    }

    fn items(&self, w: &BridgeWorkload) -> usize {
        w.n_paths
    }

    fn ladder(&self) -> Vec<Rung<BridgeWorkload>> {
        // The first two rungs consume pre-generated normals (the paper's
        // Fig. 6 timings exclude RNG generation); the advanced rungs
        // generate their normals inline from a different stream, so their
        // checks are statistical, not element-wise.
        vec![
            Rung::new(
                OptLevel::Basic,
                "Basic: scalar depth-level",
                |w: &BridgeWorkload, _p| {
                    fn_body(
                        (w, vec![0.0; w.n_paths * w.plan.points()]),
                        |(w, buf)| {
                            bridge_ref::build_paths::<f64>(&w.plan, &w.randoms, buf, w.n_paths)
                        },
                        |(_, buf)| buf.clone(),
                    )
                },
            )
            .check(Check::None),
            Rung::new(
                OptLevel::Intermediate,
                "Intermediate: SIMD across paths (W=8)",
                |w: &BridgeWorkload, _p| {
                    fn_body(
                        (w, vec![0.0; w.n_paths * w.plan.points()]),
                        |(w, buf)| {
                            bridge_simd::build_paths_simd::<8>(
                                &w.plan,
                                &w.transposed,
                                buf,
                                w.n_paths,
                            )
                        },
                        |(_, buf)| buf.clone(),
                    )
                },
            )
            .check(Check::BitExact)
            .cost_level(1),
            Rung::new(
                OptLevel::Advanced,
                "Advanced: interleaved RNG (incl. RNG gen)",
                |w: &BridgeWorkload, _p| {
                    fn_body(
                        (w, vec![0.0; w.n_paths * w.plan.points()]),
                        |(w, buf)| {
                            interleaved::build_paths_interleaved::<8>(
                                &w.plan, &w.fam, buf, w.n_paths,
                            )
                        },
                        |(_, buf)| buf.clone(),
                    )
                },
            )
            .check(Check::Stat(0.1))
            .cost_level(2),
            Rung::new(
                OptLevel::Advanced,
                "Advanced: cache-to-cache fused (incl. RNG gen)",
                |w: &BridgeWorkload, _p| {
                    fn_body(
                        (w, vec![0.0; w.n_paths]),
                        |(w, stats)| {
                            interleaved::simulate_fused::<8>(
                                &w.plan,
                                &w.fam,
                                w.n_paths,
                                stats,
                                interleaved::path_average,
                            )
                        },
                        |(_, stats)| stats.clone(),
                    )
                },
            )
            .check(Check::Stat(0.1))
            .cost_level(3),
        ]
    }

    fn cost(&self, arch: &ArchSpec) -> Vec<CostedLevel> {
        cost_model::brownian_bridge(arch)
    }
}

// ---------------------------------------------------------------------
// Monte Carlo (Table II)
// ---------------------------------------------------------------------

/// Table II: terminal-GBM European-call Monte Carlo.
pub struct MonteCarlo;

/// Pre-generated normal stream plus the stream family the computed-RNG
/// rung draws from.
pub struct McWorkload {
    g: GbmTerminal,
    randoms: Vec<f64>,
    fam: StreamFamily,
    n_paths: usize,
}

impl Kernel for MonteCarlo {
    type Workload = McWorkload;

    fn name(&self) -> &'static str {
        "monte_carlo"
    }
    fn artifact(&self) -> &'static str {
        "table2"
    }
    fn title(&self) -> &'static str {
        "Monte Carlo (paths/s)"
    }
    fn unit(&self) -> &'static str {
        "paths/s"
    }

    fn make_workload(&self, spec: &WorkloadSpec) -> McWorkload {
        // >= 2^15 paths keeps the statistical checks (different random
        // stream, antithetic estimator) many sigma inside tolerance.
        let n_paths = round_up(
            spec.n_hint
                .unwrap_or(if spec.quick { 1 << 17 } else { 1 << 21 })
                .max(1 << 15),
            8,
        );
        let mut rng = Mt19937_64::new(spec.seed.wrapping_add(4));
        let mut randoms = vec![0.0; n_paths];
        fill_standard_normal_icdf(&mut rng, &mut randoms);
        McWorkload {
            g: GbmTerminal::new(1.0, M),
            randoms,
            fam: StreamFamily::new(spec.seed.wrapping_add(4)),
            n_paths,
        }
    }

    fn items(&self, w: &McWorkload) -> usize {
        w.n_paths
    }

    fn ladder(&self) -> Vec<Rung<McWorkload>> {
        vec![
            Rung::new(
                OptLevel::Basic,
                "Basic: scalar streamed RNG (paths/s)",
                |w: &McWorkload, _p| {
                    fn_body(
                        (w, None),
                        |(w, sums)| {
                            *sums =
                                Some(mc_ref::paths_streamed::<f64>(100.0, 100.0, w.g, &w.randoms))
                        },
                        |(_, sums)| path_sums_mean(sums),
                    )
                },
            )
            .check(Check::None),
            Rung::new(
                OptLevel::Intermediate,
                "SIMD streamed RNG (paths/s)",
                |w: &McWorkload, _p| {
                    fn_body(
                        (w, None),
                        |(w, sums)| {
                            *sums = Some(mc_simd::paths_streamed_simd::<8>(
                                100.0, 100.0, w.g, &w.randoms,
                            ))
                        },
                        |(_, sums)| path_sums_mean(sums),
                    )
                },
            )
            // Same stream, reordered reduction: the means agree tightly.
            .check(Check::Rel(1e-9)),
            Rung::new(
                OptLevel::Advanced,
                "SIMD computed RNG (paths/s)",
                |w: &McWorkload, _p| {
                    fn_body(
                        (w, None),
                        |(w, sums)| {
                            *sums = Some(mc_simd::paths_computed_simd::<8>(
                                100.0, 100.0, w.g, &w.fam, 0, w.n_paths,
                            ))
                        },
                        |(_, sums)| path_sums_mean(sums),
                    )
                },
            )
            // Different (equal-in-distribution) stream.
            .check(Check::Stat(0.05))
            .cost_level(1),
            Rung::new(
                OptLevel::Advanced,
                "Antithetic variates (paths/s)",
                |w: &McWorkload, _p| {
                    fn_body(
                        (w, None),
                        |(w, sums)| {
                            *sums = Some(mc_simd::paths_antithetic::<8>(
                                100.0, 100.0, w.g, &w.randoms,
                            ))
                        },
                        |(_, sums)| path_sums_mean(sums),
                    )
                },
            )
            // Same expectation, different (variance-reduced) estimator.
            .check(Check::Stat(0.05)),
        ]
    }

    fn cost(&self, arch: &ArchSpec) -> Vec<CostedLevel> {
        cost_model::monte_carlo_levels(arch)
    }
}

// ---------------------------------------------------------------------
// Crank-Nicolson (Fig. 8)
// ---------------------------------------------------------------------

/// Fig. 8: American-put Crank-Nicolson with PSOR.
pub struct CrankNicolson;

impl Kernel for CrankNicolson {
    type Workload = CnProblem;

    fn name(&self) -> &'static str {
        "crank_nicolson"
    }
    fn artifact(&self) -> &'static str {
        "fig8"
    }
    fn title(&self) -> &'static str {
        "Crank-Nicolson (options/s)"
    }
    fn unit(&self) -> &'static str {
        "opts/s"
    }

    fn make_workload(&self, spec: &WorkloadSpec) -> CnProblem {
        let mut prob = CnProblem::paper(M, 1.0);
        // n_hint varies the time-step count (the grid is the paper's
        // fixed 256 points); each "item" is one full solve.
        prob.n_steps = spec
            .n_hint
            .unwrap_or(if spec.quick { 100 } else { 500 })
            .clamp(10, 2000);
        prob
    }

    fn items(&self, _w: &CnProblem) -> usize {
        1
    }

    fn ladder(&self) -> Vec<Rung<CnProblem>> {
        fn solve_rung(level: OptLevel, label: &'static str, kind: PsorKind) -> Rung<CnProblem> {
            Rung::new(level, label, move |w: &CnProblem, _p| {
                fn_body(
                    (w.clone(), None::<CnSolution>),
                    move |(p, sol)| *sol = Some(p.solve(kind)),
                    |(_, sol)| sol.as_ref().expect("step() ran before output()").u.clone(),
                )
            })
        }
        vec![
            solve_rung(OptLevel::Basic, "Basic: scalar PSOR", PsorKind::Reference)
                .check(Check::None),
            // The scalar solver checks convergence every iteration, the
            // wavefront every W, so they stop at slightly different
            // points (see tests/cross_method_pricing.rs).
            solve_rung(
                OptLevel::Advanced,
                "Advanced: wavefront manual SIMD",
                PsorKind::Wavefront,
            )
            .check(Check::Rel(1e-4))
            .cost_level(1),
            // Identical iteration schedule to the wavefront rung.
            solve_rung(
                OptLevel::Advanced,
                "Advanced: + data transform",
                PsorKind::WavefrontSoa,
            )
            .check(Check::Rel(1e-12))
            .baseline(1)
            .cost_level(2),
        ]
    }

    fn cost(&self, arch: &ArchSpec) -> Vec<CostedLevel> {
        cost_model::crank_nicolson(arch, 256, 1000)
    }
}

// ---------------------------------------------------------------------
// Random number generation (Table II rows 3-4)
// ---------------------------------------------------------------------

/// Table II rows 3-4: raw uniform/normal DP generation rates.
pub struct Rng;

/// Buffer size plus the seed the per-rung generators start from.
pub struct RngWorkload {
    n: usize,
    seed: u64,
}

impl Kernel for Rng {
    type Workload = RngWorkload;

    fn name(&self) -> &'static str {
        "rng"
    }
    fn artifact(&self) -> &'static str {
        "table2"
    }
    fn title(&self) -> &'static str {
        "RNG rates (numbers/s)"
    }
    fn unit(&self) -> &'static str {
        "nums/s"
    }

    fn make_workload(&self, spec: &WorkloadSpec) -> RngWorkload {
        // >= 2^16 numbers keeps the cross-generator statistical checks
        // many sigma inside tolerance.
        RngWorkload {
            n: spec
                .n_hint
                .unwrap_or(if spec.quick { 1 << 18 } else { 1 << 22 })
                .max(1 << 16),
            seed: spec.seed,
        }
    }

    fn items(&self, w: &RngWorkload) -> usize {
        w.n
    }

    fn ladder(&self) -> Vec<Rung<RngWorkload>> {
        // Two baselines: the uniform rungs check against rung 0, the
        // normal rungs against rung 2 — different generators (or
        // transforms) produce different sequences, so all the cross
        // checks are statistical.
        vec![
            Rung::new(
                OptLevel::Basic,
                "uniform DP (MT19937-64)",
                |w: &RngWorkload, _p| {
                    fn_body(
                        (Mt19937_64::new(w.seed), vec![0.0; w.n]),
                        |(rng, buf)| fill_uniform(rng, buf),
                        |(_, buf)| buf.clone(),
                    )
                },
            )
            .check(Check::None),
            Rung::new(
                OptLevel::Basic,
                "uniform DP (Philox4x32)",
                |w: &RngWorkload, _p| {
                    fn_body(
                        (Philox4x32::new(w.seed), vec![0.0; w.n]),
                        |(rng, buf)| fill_uniform(rng, buf),
                        |(_, buf)| buf.clone(),
                    )
                },
            )
            .check(Check::Stat(0.01)),
            Rung::new(
                OptLevel::Intermediate,
                "normal DP (ICDF)",
                |w: &RngWorkload, _p| {
                    fn_body(
                        (Mt19937_64::new(w.seed.wrapping_add(1)), vec![0.0; w.n]),
                        |(rng, buf)| fill_standard_normal_icdf(rng, buf),
                        |(_, buf)| buf.clone(),
                    )
                },
            )
            .check(Check::None)
            .cost_level(1),
            Rung::new(
                OptLevel::Intermediate,
                "normal DP (polar)",
                |w: &RngWorkload, _p| {
                    fn_body(
                        (Mt19937_64::new(w.seed.wrapping_add(2)), vec![0.0; w.n]),
                        |(rng, buf)| fill_standard_normal_polar(rng, buf),
                        |(_, buf)| buf.clone(),
                    )
                },
            )
            .check(Check::Stat(0.03))
            .baseline(2)
            .cost_level(1),
        ]
    }

    fn cost(&self, arch: &ArchSpec) -> Vec<CostedLevel> {
        cost_model::rng(arch)
    }
}

// ---------------------------------------------------------------------
// Greeks (risk workload)
// ---------------------------------------------------------------------

/// Risk workload: the five Black-Scholes sensitivities for a batch of
/// European options, estimated three independent ways — analytic closed
/// form (scalar and SIMD-SOA), bump-and-reprice central differences
/// (closed form and a CRR lattice), and Monte Carlo (pathwise and CRN
/// finite differences). Every rung reports the per-option **call delta**
/// vector, the common observable all estimator families share, so the
/// declared checks line up: bit-exact inside the analytic family,
/// tight-relative for bumps, statistical for the sampled estimators.
pub struct GreeksKernel;

/// Option batch plus the shared CRN normal draws and the lattice depth
/// the bump rung reprices at.
pub struct GreeksWorkload {
    batch: OptionBatchSoa,
    /// One named stream of normals every MC rung replays — common random
    /// numbers across rungs *and* across bump legs.
    randoms: Vec<f64>,
    n_tree: usize,
}

impl Kernel for GreeksKernel {
    type Workload = GreeksWorkload;

    fn name(&self) -> &'static str {
        "greeks"
    }
    fn artifact(&self) -> &'static str {
        "greeks_bench"
    }
    fn title(&self) -> &'static str {
        "Greeks (options/s)"
    }
    fn unit(&self) -> &'static str {
        "opts/s"
    }

    fn make_workload(&self, spec: &WorkloadSpec) -> GreeksWorkload {
        let n = round_up(
            spec.n_hint
                .unwrap_or(if spec.quick { 256 } else { 1024 })
                .max(8),
            8,
        );
        // >= 2^12 paths keeps the per-option pathwise standard error
        // (~0.5/√paths on the delta scale) far inside the Stat band.
        let n_paths = if spec.quick { 1 << 12 } else { 1 << 14 };
        let fam = StreamFamily::new(spec.seed.wrapping_add(9));
        GreeksWorkload {
            batch: OptionBatchSoa::random(n, spec.seed, WorkloadRanges::default()),
            randoms: crn_normals(&fam, 0, n_paths),
            n_tree: if spec.quick { 64 } else { 256 },
        }
    }

    fn items(&self, w: &GreeksWorkload) -> usize {
        w.batch.len()
    }

    fn ladder(&self) -> Vec<Rung<GreeksWorkload>> {
        fn call_deltas(out: &(&GreeksWorkload, GreeksBatchSoa)) -> Vec<f64> {
            out.1.call.delta.clone()
        }
        fn sweep_rung<const W: usize>(
            level: OptLevel,
            label: &'static str,
        ) -> Rung<GreeksWorkload> {
            Rung::new(level, label, |w: &GreeksWorkload, _p| {
                fn_body(
                    (w, GreeksBatchSoa::zeroed(w.batch.len())),
                    |(w, out)| greeks_batch_simd::<W>(&w.batch, M, out),
                    call_deltas,
                )
            })
        }
        fn bump_rung(
            label: &'static str,
            est: fn(&GreeksWorkload, usize) -> Greeks,
        ) -> Rung<GreeksWorkload> {
            Rung::new(OptLevel::Advanced, label, move |w: &GreeksWorkload, _p| {
                fn_body(
                    (w, Vec::<Greeks>::new()),
                    move |(w, out)| {
                        out.clear();
                        out.extend((0..w.batch.len()).map(|i| est(w, i)));
                    },
                    |(_, out)| out.iter().map(|g| g.delta).collect(),
                )
            })
        }
        vec![
            sweep_rung::<1>(OptLevel::Basic, "Basic: scalar greeks sweep").check(Check::None),
            // Same lane arithmetic at every width (shared lane block).
            sweep_rung::<4>(
                OptLevel::Intermediate,
                "Intermediate: SIMD SOA greeks (W=4)",
            )
            .check(Check::BitExact)
            .cost_level(1),
            sweep_rung::<8>(
                OptLevel::Intermediate,
                "Intermediate: SIMD SOA greeks (W=8)",
            )
            .check(Check::BitExact)
            .cost_level(1),
            // Prices + all ten greeks in one SOA pass sharing the
            // d1/√t/discount/N(d1) subexpressions; bit-identical to the
            // separate sweeps (declared below, validated like any rung).
            Rung::new(
                OptLevel::Advanced,
                "Advanced: fused price+greeks (W=8)",
                |w: &GreeksWorkload, _p| {
                    fn_body(
                        (w.batch.clone(), GreeksBatchSoa::zeroed(w.batch.len())),
                        |(batch, out)| crate::greeks::price_and_greeks_into::<8>(batch, M, out),
                        |(_, out)| out.call.delta.clone(),
                    )
                },
            )
            .check(Check::BitExact)
            .cost_level(1),
            bump_rung("Advanced: bump-and-reprice closed form", |w, i| {
                bs_bump_greeks(
                    OptionType::Call,
                    w.batch.s[i],
                    w.batch.x[i],
                    w.batch.t[i],
                    M,
                    BumpSizes::default(),
                )
            })
            // Central differences at the default bump: O(h²) truncation.
            .check(Check::Rel(1e-5))
            .cost_level(2),
            bump_rung("Advanced: bump-and-reprice binomial", |w, i| {
                binomial_bump_greeks(
                    OptionType::Call,
                    w.batch.s[i],
                    w.batch.x[i],
                    w.batch.t[i],
                    M,
                    w.n_tree,
                    BumpSizes::lattice(),
                )
            })
            // Lattice discretization + percent-scale bumps; delta ∈ [0,1]
            // so the Rel scale clamp makes this an absolute band.
            .check(Check::Rel(0.05))
            .cost_level(2),
            Rung::new(
                OptLevel::Advanced,
                "Advanced: MC pathwise (delta/vega)",
                |w: &GreeksWorkload, _p| {
                    fn_body(
                        (w, Vec::<McGreeks>::new()),
                        |(w, out)| {
                            out.clear();
                            out.extend((0..w.batch.len()).map(|i| {
                                mc::pathwise_greeks(
                                    OptionType::Call,
                                    w.batch.s[i],
                                    w.batch.x[i],
                                    w.batch.t[i],
                                    M,
                                    &w.randoms,
                                )
                            }));
                        },
                        |(_, out)| out.iter().map(|g| g.delta.mean()).collect(),
                    )
                },
            )
            .check(Check::Stat(0.05))
            .cost_level(2),
            Rung::new(
                OptLevel::Advanced,
                "Advanced: MC CRN finite difference",
                |w: &GreeksWorkload, _p| {
                    fn_body(
                        (w, Vec::<(McEstimate, McEstimate)>::new()),
                        |(w, out)| {
                            out.clear();
                            out.extend((0..w.batch.len()).map(|i| {
                                let (s, x, t) = (w.batch.s[i], w.batch.x[i], w.batch.t[i]);
                                (
                                    crn_fd_delta(OptionType::Call, s, x, t, M, &w.randoms, 1e-3),
                                    crn_fd_vega(OptionType::Call, s, x, t, M, &w.randoms, 1e-3),
                                )
                            }));
                        },
                        |(_, out)| out.iter().map(|(d, _)| d.mean()).collect(),
                    )
                },
            )
            .check(Check::Stat(0.05))
            .cost_level(2),
        ]
    }

    fn cost(&self, arch: &ArchSpec) -> Vec<CostedLevel> {
        // The analytic sweep is the same transcendental-bound SOA loop as
        // the pricing kernel, with both contract sides and five outputs.
        cost_model::black_scholes(arch)
    }
}

// ---------------------------------------------------------------------
// Portfolio scenario revaluation (market risk)
// ---------------------------------------------------------------------

/// Full-book scenario revaluation — the production market-risk workload
/// layered on the Black-Scholes SOA ladders: a fixed book repriced under
/// a deterministic shocked-scenario grid, one P&L value per scenario.
///
/// The observable checked across rungs is the P&L vector itself. The
/// scalar / W=4 / W=8 sweeps are bit-exact among themselves (the staged
/// book is padded to the widest lane count, so no width ever takes the
/// scalar remainder path), and the chunk-parallel rung is Rel-checked:
/// it is bitwise-identical too (split-invariant grids, fixed-order
/// reduction), but the declared tolerance documents only what the
/// schedule guarantees by construction.
pub struct PortfolioKernel;

/// A book plus its scenario grid, both pure functions of the spec seed.
pub struct PortfolioWorkload {
    book: Book,
    cfg: ScenarioConfig,
    grid: crate::portfolio::ScenarioGrid,
}

impl Kernel for PortfolioKernel {
    type Workload = PortfolioWorkload;

    fn name(&self) -> &'static str {
        "portfolio"
    }
    fn artifact(&self) -> &'static str {
        "portfolio_bench"
    }
    fn title(&self) -> &'static str {
        "Portfolio revaluation (pricings/s)"
    }
    fn unit(&self) -> &'static str {
        "pricings/s"
    }

    fn make_workload(&self, spec: &WorkloadSpec) -> PortfolioWorkload {
        // `n_hint` scales the scenario axis (the one experiments sweep);
        // the book is the per-scenario inner loop and stays fixed.
        let scenarios = spec
            .n_hint
            .unwrap_or(if spec.quick { 128 } else { 2048 })
            .max(8);
        let positions = if spec.quick { 64 } else { 256 };
        let cfg = ScenarioConfig::standard(scenarios, spec.seed);
        PortfolioWorkload {
            book: Book::random(positions, spec.seed),
            grid: cfg.grid(),
            cfg,
        }
    }

    fn items(&self, w: &PortfolioWorkload) -> usize {
        // One item = one option pricing; a sweep does book × scenarios.
        w.book.len() * w.cfg.scenarios
    }

    fn ladder(&self) -> Vec<Rung<PortfolioWorkload>> {
        fn pnl_out(out: &(&PortfolioWorkload, RevalScratch, Vec<f64>)) -> Vec<f64> {
            out.2.clone()
        }
        fn reval_rung<const W: usize>(
            level: OptLevel,
            label: &'static str,
        ) -> Rung<PortfolioWorkload> {
            Rung::new(level, label, |w: &PortfolioWorkload, _p| {
                fn_body(
                    (w, RevalScratch::new(), Vec::new()),
                    |(w, scratch, pnl)| revalue_into::<W>(&w.book, M, &w.grid, scratch, pnl),
                    pnl_out,
                )
            })
        }
        vec![
            reval_rung::<1>(OptLevel::Basic, "Basic: scalar revaluation sweep").check(Check::None),
            // Same padded batch, same lane arithmetic at every width.
            reval_rung::<4>(
                OptLevel::Intermediate,
                "Intermediate: SIMD revaluation (W=4)",
            )
            .check(Check::BitExact)
            .cost_level(1),
            reval_rung::<8>(
                OptLevel::Intermediate,
                "Intermediate: SIMD revaluation (W=8)",
            )
            .check(Check::BitExact)
            .cost_level(1),
            Rung::new(
                OptLevel::Advanced,
                "Advanced: chunk-parallel scenarios",
                |w: &PortfolioWorkload, _p| {
                    fn_body(
                        (w, Vec::new()),
                        |(w, pnl)| par_revalue(&w.book, M, &w.cfg, 256, pnl),
                        |(_, pnl)| pnl.clone(),
                    )
                },
            )
            .check(Check::Rel(1e-12))
            .cost_level(2)
            .threaded(),
        ]
    }

    fn cost(&self, arch: &ArchSpec) -> Vec<CostedLevel> {
        // Each scenario step is the Black-Scholes SOA sweep with a cheap
        // restage + reduce wrapped around it.
        cost_model::black_scholes(arch)
    }
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

/// The six paper kernels in paper-artifact order, plus the greeks and
/// portfolio risk workloads — the single source of truth the harness
/// ladder loop, the experiment index, and the planner share.
pub fn registry() -> Registry {
    let mut reg = Registry::new();
    reg.register(BlackScholes);
    reg.register(Binomial);
    reg.register(BrownianBridge);
    reg.register(MonteCarlo);
    reg.register(CrankNicolson);
    reg.register(Rng);
    reg.register(GreeksKernel);
    reg.register(PortfolioKernel);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use finbench_engine::{Engine, Planner};
    use finbench_machine::{KNC, SNB_EP};

    #[test]
    fn registry_holds_all_eight_kernels() {
        let reg = registry();
        assert_eq!(
            reg.names(),
            [
                "black_scholes",
                "binomial",
                "brownian_bridge",
                "monte_carlo",
                "crank_nicolson",
                "rng",
                "greeks",
                "portfolio"
            ]
        );
    }

    #[test]
    fn registry_is_consistent_on_all_planning_archs() {
        let reg = registry();
        for arch in [SNB_EP, KNC, finbench_machine::arch::host_spec()] {
            let errs = reg.consistency_errors(&arch);
            assert!(errs.is_empty(), "{}: {errs:?}", arch.name);
        }
    }

    #[test]
    fn ladders_match_the_pre_refactor_harness_rungs() {
        // The exact labels (and counts) the hand-written drivers in
        // harness/native.rs produced before the engine refactor — the
        // `finbench native --quick` output contract.
        let want: &[(&str, &[&str])] = &[
            (
                "black_scholes",
                &[
                    "Basic: scalar AOS reference",
                    "Basic+: SIMD on AOS (gathers)",
                    "Intermediate: scalar SOA",
                    "Intermediate: SIMD SOA (W=4)",
                    "Intermediate: SIMD SOA (W=8)",
                    "Advanced: erf + parity (W=8)",
                    "Advanced: VML-style batch",
                    "Advanced + own-pool threads",
                ],
            ),
            (
                "binomial",
                &[
                    "Basic: scalar reference",
                    "Intermediate: SIMD across options (W=8)",
                    "Advanced: register tiling (W=8, TS=4)",
                    "Advanced: register tiling (W=8, TS=8)",
                ],
            ),
            (
                "brownian_bridge",
                &[
                    "Basic: scalar depth-level",
                    "Intermediate: SIMD across paths (W=8)",
                    "Advanced: interleaved RNG (incl. RNG gen)",
                    "Advanced: cache-to-cache fused (incl. RNG gen)",
                ],
            ),
            (
                "monte_carlo",
                &[
                    "Basic: scalar streamed RNG (paths/s)",
                    "SIMD streamed RNG (paths/s)",
                    "SIMD computed RNG (paths/s)",
                    "Antithetic variates (paths/s)",
                ],
            ),
            (
                "crank_nicolson",
                &[
                    "Basic: scalar PSOR",
                    "Advanced: wavefront manual SIMD",
                    "Advanced: + data transform",
                ],
            ),
            (
                "rng",
                &[
                    "uniform DP (MT19937-64)",
                    "uniform DP (Philox4x32)",
                    "normal DP (ICDF)",
                    "normal DP (polar)",
                ],
            ),
        ];
        let reg = registry();
        for (name, labels) in want {
            let got: Vec<&str> = reg
                .get(name)
                .unwrap_or_else(|| panic!("kernel {name} not registered"))
                .rungs()
                .iter()
                .map(|r| r.label)
                .collect();
            assert_eq!(&got, labels, "{name}");
        }
    }

    #[test]
    fn greeks_ladder_spans_all_three_estimator_families() {
        let reg = registry();
        let labels: Vec<&str> = reg
            .get("greeks")
            .expect("greeks kernel registered")
            .rungs()
            .iter()
            .map(|r| r.label)
            .collect();
        assert_eq!(
            labels,
            [
                "Basic: scalar greeks sweep",
                "Intermediate: SIMD SOA greeks (W=4)",
                "Intermediate: SIMD SOA greeks (W=8)",
                "Advanced: fused price+greeks (W=8)",
                "Advanced: bump-and-reprice closed form",
                "Advanced: bump-and-reprice binomial",
                "Advanced: MC pathwise (delta/vega)",
                "Advanced: MC CRN finite difference",
            ]
        );
    }

    #[test]
    fn portfolio_ladder_spans_serial_and_parallel_revaluation() {
        let reg = registry();
        let labels: Vec<&str> = reg
            .get("portfolio")
            .expect("portfolio kernel registered")
            .rungs()
            .iter()
            .map(|r| r.label)
            .collect();
        assert_eq!(
            labels,
            [
                "Basic: scalar revaluation sweep",
                "Intermediate: SIMD revaluation (W=4)",
                "Intermediate: SIMD revaluation (W=8)",
                "Advanced: chunk-parallel scenarios",
            ]
        );
    }

    #[test]
    fn every_rung_validates_against_its_baseline() {
        let engine = Engine::with_planner(registry(), Planner::new(SNB_EP));
        let errs = engine.validate_all(&WorkloadSpec::validation(42, 64));
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn planner_produces_a_plan_for_every_kernel() {
        let reg = registry();
        for arch in [SNB_EP, KNC] {
            let planner = Planner::new(arch);
            for k in reg.kernels() {
                let plan = planner.plan(k).unwrap_or_else(|e| panic!("{e}"));
                assert!(
                    plan.predicted_rate.is_finite() && plan.predicted_rate > 0.0,
                    "{}: {plan:?}",
                    k.name()
                );
                assert!(!plan.reason.is_empty());
            }
        }
    }

    #[test]
    fn planner_skips_vml_staging_when_bandwidth_bound() {
        // On SNB-EP the advanced Black-Scholes level is bandwidth-bound
        // (the paper's §IV-A VML-vs-SVML discussion), so the planner must
        // not choose the two-pass VML batch rung.
        let planner = Planner::new(SNB_EP);
        let reg = registry();
        let plan = planner.plan(reg.get("black_scholes").unwrap()).unwrap();
        assert_ne!(plan.slug, "advanced_vml_style_batch", "{plan:?}");
        assert!(
            plan.reason.contains("skipped") || !plan.overridden,
            "{plan:?}"
        );
    }
}
