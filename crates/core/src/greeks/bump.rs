//! Bump-and-reprice greeks: central finite differences around any
//! repricer — the estimator a risk desk runs against models with no
//! closed-form sensitivities (lattices, PDE grids).
//!
//! ## Bump sizes
//!
//! Central differences trade truncation error `O(h²)` against roundoff
//! `O(ε/h)` (first order) or `O(ε/h²)` (gamma's second difference). For
//! the smooth closed form the near-optimal compromise for a shared
//! 3-point spot stencil is `h ≈ 1e-4` relative ([`BumpSizes::default`]).
//! Lattice and grid repricers are only *piecewise*-smooth in spot (payoff
//! kinks cross tree nodes; the PDE solution is read through linear
//! interpolation), so their bumps must span several nodes to average the
//! kinks out — [`BumpSizes::lattice`] uses percent-scale bumps and
//! accepts the larger truncation error. The `greeks_bench` experiment
//! sweeps `h` and tabulates the resulting error curve.

use super::{Greeks, OptionType};
use crate::crank_nicolson::{CnProblem, PsorKind};
use crate::workload::MarketParams;

/// Bump sizes for the central differences, one per greek input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BumpSizes {
    /// Spot bumped to `s·(1 ± h)`; also the gamma stencil.
    pub rel_spot: f64,
    /// Volatility bumped to `σ·(1 ± h)`.
    pub rel_vol: f64,
    /// Rate bumped to `r ± h` (absolute — `r` can be zero).
    pub abs_rate: f64,
    /// Expiry bumped to `t·(1 ± h)`.
    pub rel_time: f64,
}

impl Default for BumpSizes {
    fn default() -> Self {
        Self {
            rel_spot: 1e-4,
            rel_vol: 1e-4,
            abs_rate: 1e-6,
            rel_time: 1e-5,
        }
    }
}

impl BumpSizes {
    /// Percent-scale bumps for piecewise-smooth repricers (binomial
    /// lattices, interpolated PDE grids): wide enough to span several
    /// nodes so the FD reads curvature, not interpolation kinks.
    pub fn lattice() -> Self {
        Self {
            rel_spot: 5e-2,
            rel_vol: 1e-2,
            abs_rate: 1e-4,
            rel_time: 1e-2,
        }
    }

    /// Uniform relative spot/vol/time bump with a proportional rate bump
    /// — the knob the accuracy-vs-bump-size sweep turns.
    pub fn uniform(h: f64) -> Self {
        Self {
            rel_spot: h,
            rel_vol: h,
            abs_rate: h * 1e-2,
            rel_time: h,
        }
    }
}

/// All five greeks by central differences around `price(spot, expiry,
/// market)` — 9 repricings (8 bumped + 1 base for the gamma stencil).
pub fn fd_greeks(
    price: &dyn Fn(f64, f64, MarketParams) -> f64,
    s: f64,
    t: f64,
    m: MarketParams,
    h: BumpSizes,
) -> Greeks {
    let hs = h.rel_spot * s;
    let p0 = price(s, t, m);
    let p_su = price(s + hs, t, m);
    let p_sd = price(s - hs, t, m);

    let hv = h.rel_vol * m.sigma;
    let bump_v = |dv: f64| MarketParams {
        sigma: m.sigma + dv,
        ..m
    };
    let p_vu = price(s, t, bump_v(hv));
    let p_vd = price(s, t, bump_v(-hv));

    let hr = h.abs_rate;
    let bump_r = |dr: f64| MarketParams { r: m.r + dr, ..m };
    let p_ru = price(s, t, bump_r(hr));
    let p_rd = price(s, t, bump_r(-hr));

    let ht = h.rel_time * t;
    let p_tu = price(s, t + ht, m);
    let p_td = price(s, t - ht, m);

    Greeks {
        delta: (p_su - p_sd) / (2.0 * hs),
        gamma: (p_su - 2.0 * p0 + p_sd) / (hs * hs),
        vega: (p_vu - p_vd) / (2.0 * hv),
        // Theta is calendar decay: dV/dt = −dV/dT.
        theta: -(p_tu - p_td) / (2.0 * ht),
        rho: (p_ru - p_rd) / (2.0 * hr),
    }
}

/// Bumped Black-Scholes closed form — the self-check the engine ladder
/// declares as `Rel` against the analytic rung.
pub fn bs_bump_greeks(
    kind: OptionType,
    s: f64,
    x: f64,
    t: f64,
    m: MarketParams,
    h: BumpSizes,
) -> Greeks {
    fd_greeks(
        &|s, t, m| {
            let (c, p) = crate::black_scholes::price_single(s, x, t, m);
            match kind {
                OptionType::Call => c,
                OptionType::Put => p,
            }
        },
        s,
        t,
        m,
        h,
    )
}

/// Bumped CRR binomial lattice with `n_steps` time steps. The lattice
/// price is piecewise linear in spot, so use [`BumpSizes::lattice`]-scale
/// bumps (gamma from a node-spanning secant, not a local kink).
pub fn binomial_bump_greeks(
    kind: OptionType,
    s: f64,
    x: f64,
    t: f64,
    m: MarketParams,
    n_steps: usize,
    h: BumpSizes,
) -> Greeks {
    fd_greeks(
        &|s, t, m| {
            crate::binomial::reference::price_european(
                s,
                x,
                t,
                m,
                n_steps,
                kind == OptionType::Call,
            )
        },
        s,
        t,
        m,
        h,
    )
}

/// Bumped Crank-Nicolson put greeks on a `n_points × n_steps` grid.
///
/// The solver is strike-normalized, so **one** solved grid prices every
/// bumped spot: delta and gamma come from a single solve. Vega, rho, and
/// theta re-solve with bumped parameters — 7 solves total.
#[allow(clippy::too_many_arguments)]
pub fn cn_put_bump_greeks(
    s: f64,
    x: f64,
    t: f64,
    m: MarketParams,
    n_points: usize,
    n_steps: usize,
    american: bool,
    h: BumpSizes,
) -> Greeks {
    let solve = |m: MarketParams, t: f64| {
        let mut p = CnProblem::paper(m, t);
        p.n_points = n_points;
        p.n_steps = n_steps;
        p.american = american;
        p.solve(PsorKind::Reference)
    };
    let base = solve(m, t);
    let hs = h.rel_spot * s;
    let p0 = base.price(s, x);
    let p_su = base.price(s + hs, x);
    let p_sd = base.price(s - hs, x);

    let hv = h.rel_vol * m.sigma;
    let p_vu = solve(
        MarketParams {
            sigma: m.sigma + hv,
            ..m
        },
        t,
    )
    .price(s, x);
    let p_vd = solve(
        MarketParams {
            sigma: m.sigma - hv,
            ..m
        },
        t,
    )
    .price(s, x);

    let hr = h.abs_rate;
    let p_ru = solve(MarketParams { r: m.r + hr, ..m }, t).price(s, x);
    let p_rd = solve(MarketParams { r: m.r - hr, ..m }, t).price(s, x);

    let ht = h.rel_time * t;
    let p_tu = solve(m, t + ht).price(s, x);
    let p_td = solve(m, t - ht).price(s, x);

    Greeks {
        delta: (p_su - p_sd) / (2.0 * hs),
        gamma: (p_su - 2.0 * p0 + p_sd) / (hs * hs),
        vega: (p_vu - p_vd) / (2.0 * hv),
        theta: -(p_tu - p_td) / (2.0 * ht),
        rho: (p_ru - p_rd) / (2.0 * hr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greeks::greeks;

    const M: MarketParams = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };

    fn max_rel_err(got: Greeks, want: Greeks) -> f64 {
        [
            (got.delta, want.delta),
            (got.gamma, want.gamma),
            (got.vega, want.vega),
            (got.theta, want.theta),
            (got.rho, want.rho),
        ]
        .iter()
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0, f64::max)
    }

    #[test]
    fn bumped_closed_form_matches_analytic() {
        for kind in [OptionType::Call, OptionType::Put] {
            for (s, x, t) in [(100.0, 100.0, 1.0), (80.0, 100.0, 0.5), (25.0, 20.0, 3.0)] {
                let got = bs_bump_greeks(kind, s, x, t, M, BumpSizes::default());
                let want = greeks(kind, s, x, t, M);
                let err = max_rel_err(got, want);
                assert!(err < 1e-5, "{kind:?} s={s}: max rel err {err}");
            }
        }
    }

    #[test]
    fn bump_size_sweep_has_the_classic_error_valley() {
        // FD error = O(h²) truncation + O(ε/h) roundoff: the default h
        // must beat both a too-large and a too-small bump.
        let want = greeks(OptionType::Call, 100.0, 95.0, 1.0, M).delta;
        let err_at = |h: f64| {
            let g = bs_bump_greeks(OptionType::Call, 100.0, 95.0, 1.0, M, BumpSizes::uniform(h));
            (g.delta - want).abs()
        };
        let sweet = err_at(1e-4);
        assert!(sweet < err_at(1e-1), "truncation should dominate at h=0.1");
        assert!(sweet < err_at(1e-11), "roundoff should dominate at h=1e-11");
        assert!(sweet < 1e-7, "default bump delta error {sweet}");
    }

    #[test]
    fn bumped_binomial_matches_analytic_within_lattice_error() {
        for kind in [OptionType::Call, OptionType::Put] {
            let (s, x, t) = (100.0, 95.0, 1.0);
            let got = binomial_bump_greeks(kind, s, x, t, M, 512, BumpSizes::lattice());
            let want = greeks(kind, s, x, t, M);
            let err = max_rel_err(got, want);
            assert!(err < 0.02, "{kind:?}: max rel err {err}");
        }
    }

    #[test]
    fn bumped_crank_nicolson_matches_analytic_put() {
        // European mode so the analytic put greeks are the exact truth.
        let (s, x, t) = (100.0, 100.0, 1.0);
        let got = cn_put_bump_greeks(s, x, t, M, 192, 200, false, BumpSizes::lattice());
        let want = greeks(OptionType::Put, s, x, t, M);
        let err = max_rel_err(got, want);
        assert!(err < 0.05, "max rel err {err}: {got:?} vs {want:?}");
    }

    #[test]
    fn american_put_delta_steeper_than_european() {
        // Early exercise adds negative delta for in-the-money puts.
        let h = BumpSizes::lattice();
        let eur = cn_put_bump_greeks(85.0, 100.0, 1.0, M, 128, 120, false, h);
        let amer = cn_put_bump_greeks(85.0, 100.0, 1.0, M, 128, 120, true, h);
        assert!(
            amer.delta <= eur.delta + 1e-6,
            "american {} vs european {}",
            amer.delta,
            eur.delta
        );
    }
}
