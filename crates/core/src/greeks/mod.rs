//! Black-Scholes sensitivities ("greeks") and implied volatility — the
//! market-risk workload plane layered over the paper's pricing kernels
//! (the paper's intro motivates risk management and model calibration as
//! the driving workloads; greeks and implied vol are exactly those).
//!
//! Three estimator families, matching how production risk desks compute
//! sensitivities against each pricing model:
//!
//! * **analytic** (this module) — the closed forms, scalar and SIMD-SOA
//!   ([`greeks_batch_simd`], all five greeks for both sides per lane);
//! * **bump-and-reprice** ([`bump`]) — central finite differences around
//!   any repricer (closed form, binomial lattice, Crank-Nicolson grid);
//! * **Monte-Carlo** ([`mc`]) — pathwise estimators and central finite
//!   differences under common random numbers.

pub mod bump;
pub mod fused;
pub mod mc;

pub use fused::price_and_greeks_into;

use crate::workload::MarketParams;
use finbench_math::{exp, ln, norm_cdf, norm_pdf};

/// The five first-order sensitivities of a European option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Greeks {
    /// ∂V/∂S.
    pub delta: f64,
    /// ∂²V/∂S².
    pub gamma: f64,
    /// ∂V/∂σ (per 1.0 of vol, not per percentage point).
    pub vega: f64,
    /// ∂V/∂t (calendar decay, per year; negative of ∂V/∂T).
    pub theta: f64,
    /// ∂V/∂r.
    pub rho: f64,
}

/// Which side of the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionType {
    /// Right to buy.
    Call,
    /// Right to sell.
    Put,
}

fn d1_d2(s: f64, x: f64, t: f64, m: MarketParams) -> (f64, f64) {
    let denom = 1.0 / (m.sigma * t.sqrt());
    let d1 = (ln(s / x) + (m.r + 0.5 * m.sigma * m.sigma) * t) * denom;
    (d1, d1 - m.sigma * t.sqrt())
}

/// Closed-form greeks for a European option.
pub fn greeks(kind: OptionType, s: f64, x: f64, t: f64, m: MarketParams) -> Greeks {
    let (d1, d2) = d1_d2(s, x, t, m);
    let pdf1 = norm_pdf(d1);
    let disc = exp(-m.r * t);
    let gamma = pdf1 / (s * m.sigma * t.sqrt());
    let vega = s * pdf1 * t.sqrt();
    match kind {
        OptionType::Call => Greeks {
            delta: norm_cdf(d1),
            gamma,
            vega,
            theta: -(s * pdf1 * m.sigma) / (2.0 * t.sqrt()) - m.r * x * disc * norm_cdf(d2),
            rho: x * t * disc * norm_cdf(d2),
        },
        OptionType::Put => Greeks {
            delta: norm_cdf(d1) - 1.0,
            gamma,
            vega,
            theta: -(s * pdf1 * m.sigma) / (2.0 * t.sqrt()) + m.r * x * disc * norm_cdf(-d2),
            rho: -x * t * disc * norm_cdf(-d2),
        },
    }
}

/// Invert Black-Scholes for volatility by safeguarded Newton iteration.
///
/// Returns `None` if `price` lies outside the arbitrage bounds for the
/// contract (no vol can reproduce it).
pub fn implied_vol(kind: OptionType, price: f64, s: f64, x: f64, t: f64, r: f64) -> Option<f64> {
    let disc = exp(-r * t);
    let (lo_bound, hi_bound) = match kind {
        OptionType::Call => ((s - x * disc).max(0.0), s),
        OptionType::Put => ((x * disc - s).max(0.0), x * disc),
    };
    if !(price > lo_bound && price < hi_bound) {
        return None;
    }

    let value = |sigma: f64| {
        let m = MarketParams { r, sigma };
        let (c, p) = crate::black_scholes::price_single(s, x, t, m);
        match kind {
            OptionType::Call => c,
            OptionType::Put => p,
        }
    };

    // Bracket then Newton with bisection fallback.
    let (mut lo, mut hi) = (1e-6, 6.0);
    if value(lo) > price || value(hi) < price {
        return None;
    }
    let mut sigma = 0.3f64;
    for _ in 0..100 {
        let m = MarketParams { r, sigma };
        let v = value(sigma);
        let err = v - price;
        if err.abs() < 1e-12 * price.max(1.0) {
            return Some(sigma);
        }
        if err > 0.0 {
            hi = sigma;
        } else {
            lo = sigma;
        }
        let vega = greeks(kind, s, x, t, m).vega;
        let newton = sigma - err / vega;
        sigma = if vega > 1e-12 && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
    }
    Some(sigma)
}

/// SOA batch greeks: delta/gamma/vega for every option in the batch, one
/// option per SIMD lane — the vectorized risk sweep a production book
/// runs alongside pricing. Writes into caller-provided output slices
/// (each `batch.len()` long).
pub fn greeks_soa_simd<const W: usize>(
    kind: OptionType,
    batch: &crate::workload::OptionBatchSoa,
    m: MarketParams,
    delta: &mut [f64],
    gamma: &mut [f64],
    vega: &mut [f64],
) {
    use finbench_simd::math::{vexp, vln, vnorm_cdf};
    use finbench_simd::F64v;

    let n = batch.len();
    assert!(
        delta.len() == n && gamma.len() == n && vega.len() == n,
        "output slices must match the batch"
    );
    let inv_sqrt_2pi = 1.0 / finbench_math::SQRT_2PI;
    let main = n - n % W;
    let mut i = 0;
    while i < main {
        let s = F64v::<W>::load(&batch.s, i);
        let x = F64v::<W>::load(&batch.x, i);
        let t = F64v::<W>::load(&batch.t, i);
        let sqrt_t = t.sqrt();
        let denom = 1.0 / (sqrt_t * m.sigma);
        let d1 = (vln(s / x) + t * (m.r + 0.5 * m.sigma * m.sigma)) * denom;
        let pdf1 = vexp(d1 * d1 * -0.5) * inv_sqrt_2pi;
        let nd1 = vnorm_cdf(d1);

        let dv = match kind {
            OptionType::Call => nd1,
            OptionType::Put => nd1 - 1.0,
        };
        dv.store(delta, i);
        (pdf1 / (s * (m.sigma * 1.0) * sqrt_t)).store(gamma, i);
        (s * pdf1 * sqrt_t).store(vega, i);
        i += W;
    }
    for j in main..n {
        let g = greeks(kind, batch.s[j], batch.x[j], batch.t[j], m);
        delta[j] = g.delta;
        gamma[j] = g.gamma;
        vega[j] = g.vega;
    }
}

/// SOA block of all five greeks for one side of the contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GreeksSoa {
    /// ∂V/∂S per option.
    pub delta: Vec<f64>,
    /// ∂²V/∂S² per option.
    pub gamma: Vec<f64>,
    /// ∂V/∂σ per option.
    pub vega: Vec<f64>,
    /// ∂V/∂t (calendar decay) per option.
    pub theta: Vec<f64>,
    /// ∂V/∂r per option.
    pub rho: Vec<f64>,
}

impl GreeksSoa {
    /// Allocate an all-zero block for `n` options.
    pub fn zeroed(n: usize) -> Self {
        Self {
            delta: vec![0.0; n],
            gamma: vec![0.0; n],
            vega: vec![0.0; n],
            theta: vec![0.0; n],
            rho: vec![0.0; n],
        }
    }

    /// Resize to `n` options in place, zero-filling new tail slots.
    /// Capacity only grows, so reuse across batches stops allocating.
    pub fn resize(&mut self, n: usize) {
        self.delta.resize(n, 0.0);
        self.gamma.resize(n, 0.0);
        self.vega.resize(n, 0.0);
        self.theta.resize(n, 0.0);
        self.rho.resize(n, 0.0);
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.delta.len()
    }

    /// True when the block holds no options.
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// The `i`-th option's greeks as a struct.
    pub fn at(&self, i: usize) -> Greeks {
        Greeks {
            delta: self.delta[i],
            gamma: self.gamma[i],
            vega: self.vega[i],
            theta: self.theta[i],
            rho: self.rho[i],
        }
    }
}

/// Full risk sweep for a batch: all five greeks for **both** the call and
/// the put side, SOA layout (what the serving plane scatters back).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GreeksBatchSoa {
    /// Call-side greeks.
    pub call: GreeksSoa,
    /// Put-side greeks.
    pub put: GreeksSoa,
}

impl GreeksBatchSoa {
    /// Allocate an all-zero sweep for `n` options.
    pub fn zeroed(n: usize) -> Self {
        Self {
            call: GreeksSoa::zeroed(n),
            put: GreeksSoa::zeroed(n),
        }
    }

    /// Resize both sides to `n` options in place; capacity only grows.
    pub fn resize(&mut self, n: usize) {
        self.call.resize(n);
        self.put.resize(n);
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.call.len()
    }

    /// True when the sweep holds no options.
    pub fn is_empty(&self) -> bool {
        self.call.is_empty()
    }
}

/// One `W`-wide block of the analytic sweep at `offset`. Factored out so
/// the main loop and the scalar tail of [`greeks_batch_simd`] run the
/// *same* lane arithmetic: the SIMD math routines are lane-wise, so every
/// output element is bit-identical across vector widths.
fn greeks_lane_block<const W: usize>(
    batch: &crate::workload::OptionBatchSoa,
    m: MarketParams,
    out: &mut GreeksBatchSoa,
    offset: usize,
) {
    use finbench_simd::math::{vexp, vln, vnorm_cdf};
    use finbench_simd::F64v;

    let inv_sqrt_2pi = 1.0 / finbench_math::SQRT_2PI;
    let s = F64v::<W>::load(&batch.s, offset);
    let x = F64v::<W>::load(&batch.x, offset);
    let t = F64v::<W>::load(&batch.t, offset);
    let sqrt_t = t.sqrt();
    let denom = 1.0 / (sqrt_t * m.sigma);
    let d1 = (vln(s / x) + t * (m.r + 0.5 * m.sigma * m.sigma)) * denom;
    let d2 = d1 - sqrt_t * m.sigma;
    let pdf1 = vexp(d1 * d1 * -0.5) * inv_sqrt_2pi;
    let nd1 = vnorm_cdf(d1);
    let nd2 = vnorm_cdf(d2);
    // N(−d2) through the same lane CDF (not 1 − N(d2)): keeps the deep
    // tails accurate and the result independent of the vector width.
    let nmd2 = vnorm_cdf(-d2);
    let disc = vexp(t * -m.r);

    let gamma = pdf1 / (s * m.sigma * sqrt_t);
    let vega = s * pdf1 * sqrt_t;
    let theta_carry = (s * pdf1 * (m.sigma * -0.5)) / sqrt_t;
    let x_disc = x * disc;

    nd1.store(&mut out.call.delta, offset);
    (nd1 - 1.0).store(&mut out.put.delta, offset);
    gamma.store(&mut out.call.gamma, offset);
    gamma.store(&mut out.put.gamma, offset);
    vega.store(&mut out.call.vega, offset);
    vega.store(&mut out.put.vega, offset);
    (theta_carry - x_disc * nd2 * m.r).store(&mut out.call.theta, offset);
    (theta_carry + x_disc * nmd2 * m.r).store(&mut out.put.theta, offset);
    (x_disc * nd2 * t).store(&mut out.call.rho, offset);
    (-(x_disc * nmd2 * t)).store(&mut out.put.rho, offset);
}

/// Analytic greeks for every option in the batch, all five sensitivities
/// for both contract sides, one option per SIMD lane. The tail past the
/// last full `W`-block goes through the same lane function at width 1,
/// so the full output is **bit-identical for every `W`** — the property
/// the engine ladder declares as `Check::BitExact`.
pub fn greeks_batch_simd<const W: usize>(
    batch: &crate::workload::OptionBatchSoa,
    m: MarketParams,
    out: &mut GreeksBatchSoa,
) {
    let n = batch.len();
    assert!(out.len() == n, "output sweep must match the batch");
    let main = n - n % W;
    let mut i = 0;
    while i < main {
        greeks_lane_block::<W>(batch, m, out, i);
        i += W;
    }
    for j in main..n {
        greeks_lane_block::<1>(batch, m, out, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::black_scholes::price_single;

    const M: MarketParams = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };

    #[test]
    fn call_delta_matches_finite_difference() {
        let h = 1e-5;
        for (s, x, t) in [(100.0, 100.0, 1.0), (80.0, 100.0, 0.5), (120.0, 100.0, 2.0)] {
            let g = greeks(OptionType::Call, s, x, t, M);
            let up = price_single(s + h, x, t, M).0;
            let dn = price_single(s - h, x, t, M).0;
            assert!((g.delta - (up - dn) / (2.0 * h)).abs() < 1e-6, "s={s}");
        }
    }

    #[test]
    fn gamma_matches_finite_difference() {
        let h = 1e-4;
        let (s, x, t) = (100.0, 95.0, 1.5);
        let g = greeks(OptionType::Call, s, x, t, M);
        let up = price_single(s + h, x, t, M).0;
        let mid = price_single(s, x, t, M).0;
        let dn = price_single(s - h, x, t, M).0;
        let fd = (up - 2.0 * mid + dn) / (h * h);
        assert!((g.gamma - fd).abs() < 1e-5);
    }

    #[test]
    fn vega_matches_finite_difference() {
        let h = 1e-6;
        let (s, x, t) = (100.0, 105.0, 1.0);
        let g = greeks(OptionType::Put, s, x, t, M);
        let up = price_single(
            s,
            x,
            t,
            MarketParams {
                r: M.r,
                sigma: M.sigma + h,
            },
        )
        .1;
        let dn = price_single(
            s,
            x,
            t,
            MarketParams {
                r: M.r,
                sigma: M.sigma - h,
            },
        )
        .1;
        assert!((g.vega - (up - dn) / (2.0 * h)).abs() < 1e-5);
    }

    #[test]
    fn rho_and_theta_match_finite_difference() {
        let h = 1e-6;
        let (s, x, t) = (100.0, 100.0, 1.0);
        for kind in [OptionType::Call, OptionType::Put] {
            let g = greeks(kind, s, x, t, M);
            let pick = |c: f64, p: f64| match kind {
                OptionType::Call => c,
                OptionType::Put => p,
            };
            let (cu, pu) = price_single(
                s,
                x,
                t,
                MarketParams {
                    r: M.r + h,
                    sigma: M.sigma,
                },
            );
            let (cd, pd) = price_single(
                s,
                x,
                t,
                MarketParams {
                    r: M.r - h,
                    sigma: M.sigma,
                },
            );
            let fd_rho = (pick(cu, pu) - pick(cd, pd)) / (2.0 * h);
            assert!((g.rho - fd_rho).abs() < 1e-5, "{kind:?} rho");

            let (cu, pu) = price_single(s, x, t + h, M);
            let (cd, pd) = price_single(s, x, t - h, M);
            // theta is calendar decay: dV/dt = -dV/dT.
            let fd_theta = -(pick(cu, pu) - pick(cd, pd)) / (2.0 * h);
            assert!((g.theta - fd_theta).abs() < 1e-4, "{kind:?} theta");
        }
    }

    #[test]
    fn put_call_delta_parity() {
        let g_c = greeks(OptionType::Call, 90.0, 100.0, 2.0, M);
        let g_p = greeks(OptionType::Put, 90.0, 100.0, 2.0, M);
        assert!((g_c.delta - g_p.delta - 1.0).abs() < 1e-12);
        assert!((g_c.gamma - g_p.gamma).abs() < 1e-12);
        assert!((g_c.vega - g_p.vega).abs() < 1e-12);
    }

    #[test]
    fn implied_vol_round_trip() {
        for sigma in [0.05, 0.2, 0.6, 1.5] {
            let m = MarketParams { r: 0.03, sigma };
            for (s, x, t) in [(100.0, 100.0, 1.0), (100.0, 130.0, 0.5), (50.0, 40.0, 3.0)] {
                let (c, p) = price_single(s, x, t, m);
                // The vol information lives in the *time value*
                // (price − intrinsic bound); when it underflows, no solver
                // can recover sigma from the price at double precision —
                // skip those quotes, as any production quoter would.
                let disc = (-0.03f64 * t).exp();
                let c_tv = c - (s - x * disc).max(0.0);
                let p_tv = p - (x * disc - s).max(0.0);
                if c_tv > 1e-8 {
                    let iv_c = implied_vol(OptionType::Call, c, s, x, t, 0.03).unwrap();
                    assert!((iv_c - sigma).abs() < 1e-8, "call sigma={sigma} got {iv_c}");
                }
                if p_tv > 1e-8 {
                    let iv_p = implied_vol(OptionType::Put, p, s, x, t, 0.03).unwrap();
                    assert!((iv_p - sigma).abs() < 1e-8, "put sigma={sigma} got {iv_p}");
                }
            }
        }
    }

    #[test]
    fn implied_vol_rejects_arbitrage_prices() {
        assert!(implied_vol(OptionType::Call, 101.0, 100.0, 100.0, 1.0, 0.05).is_none());
        assert!(implied_vol(OptionType::Call, 0.0, 100.0, 100.0, 1.0, 0.05).is_none());
        // Below intrinsic for a deep ITM call.
        assert!(implied_vol(OptionType::Call, 10.0, 100.0, 50.0, 1.0, 0.05).is_none());
    }

    #[test]
    fn batch_greeks_match_scalar() {
        use crate::workload::{OptionBatchSoa, WorkloadRanges};
        let b = OptionBatchSoa::random(333, 8, WorkloadRanges::default());
        for kind in [OptionType::Call, OptionType::Put] {
            let mut delta = vec![0.0; b.len()];
            let mut gamma = vec![0.0; b.len()];
            let mut vega = vec![0.0; b.len()];
            greeks_soa_simd::<8>(kind, &b, M, &mut delta, &mut gamma, &mut vega);
            for i in 0..b.len() {
                let g = greeks(kind, b.s[i], b.x[i], b.t[i], M);
                assert!((delta[i] - g.delta).abs() < 1e-12, "{kind:?} delta {i}");
                assert!(
                    (gamma[i] - g.gamma).abs() < 1e-12 * g.gamma.max(1.0),
                    "{kind:?} gamma {i}"
                );
                assert!(
                    (vega[i] - g.vega).abs() < 1e-10 * g.vega.max(1.0),
                    "{kind:?} vega {i}"
                );
            }
        }
    }

    #[test]
    fn full_sweep_matches_scalar_closed_form() {
        use crate::workload::{OptionBatchSoa, WorkloadRanges};
        let b = OptionBatchSoa::random(123, 9, WorkloadRanges::default());
        let mut out = GreeksBatchSoa::zeroed(b.len());
        greeks_batch_simd::<8>(&b, M, &mut out);
        for i in 0..b.len() {
            for (side, kind) in [(&out.call, OptionType::Call), (&out.put, OptionType::Put)] {
                let want = greeks(kind, b.s[i], b.x[i], b.t[i], M);
                let got = side.at(i);
                for (name, g, w) in [
                    ("delta", got.delta, want.delta),
                    ("gamma", got.gamma, want.gamma),
                    ("vega", got.vega, want.vega),
                    ("theta", got.theta, want.theta),
                    ("rho", got.rho, want.rho),
                ] {
                    assert!(
                        (g - w).abs() < 1e-10 * w.abs().max(1.0),
                        "{kind:?} {name} {i}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_sweep_is_bit_identical_across_widths() {
        use crate::workload::{OptionBatchSoa, WorkloadRanges};
        // 37 is deliberately not a multiple of any width: the tail path
        // must produce the same bits as the full-lane path.
        let b = OptionBatchSoa::random(37, 21, WorkloadRanges::default());
        let mut w1 = GreeksBatchSoa::zeroed(b.len());
        let mut w4 = GreeksBatchSoa::zeroed(b.len());
        let mut w8 = GreeksBatchSoa::zeroed(b.len());
        greeks_batch_simd::<1>(&b, M, &mut w1);
        greeks_batch_simd::<4>(&b, M, &mut w4);
        greeks_batch_simd::<8>(&b, M, &mut w8);
        for (a, c) in [(&w1, &w4), (&w1, &w8)] {
            for (side_a, side_c) in [(&a.call, &c.call), (&a.put, &c.put)] {
                for (va, vc) in [
                    (&side_a.delta, &side_c.delta),
                    (&side_a.gamma, &side_c.gamma),
                    (&side_a.vega, &side_c.vega),
                    (&side_a.theta, &side_c.theta),
                    (&side_a.rho, &side_c.rho),
                ] {
                    for i in 0..va.len() {
                        assert_eq!(va[i].to_bits(), vc[i].to_bits(), "element {i}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "output sweep must match")]
    fn full_sweep_rejects_short_outputs() {
        use crate::workload::{OptionBatchSoa, WorkloadRanges};
        let b = OptionBatchSoa::random(8, 1, WorkloadRanges::default());
        let mut out = GreeksBatchSoa::zeroed(4);
        greeks_batch_simd::<8>(&b, M, &mut out);
    }

    #[test]
    #[should_panic(expected = "output slices must match")]
    fn batch_greeks_reject_short_outputs() {
        use crate::workload::{OptionBatchSoa, WorkloadRanges};
        let b = OptionBatchSoa::random(8, 1, WorkloadRanges::default());
        let mut short = vec![0.0; 4];
        let mut g = vec![0.0; 8];
        let mut v = vec![0.0; 8];
        greeks_soa_simd::<8>(OptionType::Call, &b, M, &mut short, &mut g, &mut v);
    }
}
