//! Monte-Carlo greeks: pathwise estimators and central finite
//! differences under **common random numbers** (CRN).
//!
//! ## Pathwise (infinitesimal perturbation) estimators
//!
//! Under GBM the terminal value `S_T = S·exp(σ√T·Z + (r − σ²/2)T)` is
//! differentiable path-by-path, and for the (a.e. differentiable) vanilla
//! payoff the derivative and expectation commute:
//!
//! ```text
//! call delta: e^{−rT} · 1{S_T > X} · S_T / S
//! call vega:  e^{−rT} · 1{S_T > X} · S_T · (√T·Z − σT)
//! ```
//!
//! (puts flip the indicator and the sign). One pass over the normals
//! yields unbiased delta and vega with no bump-size tuning at all.
//!
//! ## CRN finite differences
//!
//! The bump estimator re-prices both legs of a central difference **on
//! the same draws**: the payoff difference is computed per path, so the
//! path noise common to both legs cancels and the variance of the
//! difference collapses by orders of magnitude versus independent legs.
//! Reusing a named [`StreamFamily`] stream makes the whole estimate
//! bit-reproducible.

use super::OptionType;
use crate::monte_carlo::GbmTerminal;
use crate::workload::MarketParams;
use finbench_math::exp;
use finbench_rng::{normal::fill_standard_normal_icdf, StreamFamily};

/// Streaming mean/variance accumulator for one estimator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct McEstimate {
    /// Sample sum.
    pub sum: f64,
    /// Sample square sum.
    pub sumsq: f64,
    /// Samples accumulated.
    pub n: u64,
}

impl McEstimate {
    /// Accumulate one sample.
    pub fn push(&mut self, v: f64) {
        self.sum += v;
        self.sumsq += v * v;
        self.n += 1;
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sum / self.n as f64
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        let n = self.n as f64;
        let mean = self.mean();
        let var = (self.sumsq / n - mean * mean).max(0.0);
        (var / n).sqrt()
    }

    /// Merge two partial accumulations.
    pub fn merge(self, other: Self) -> Self {
        Self {
            sum: self.sum + other.sum,
            sumsq: self.sumsq + other.sumsq,
            n: self.n + other.n,
        }
    }
}

/// Pathwise delta and vega estimates for one option.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct McGreeks {
    /// Pathwise ∂V/∂S estimate.
    pub delta: McEstimate,
    /// Pathwise ∂V/∂σ estimate.
    pub vega: McEstimate,
}

/// Pathwise delta and vega over a pre-generated normal stream — one pass,
/// no bumps. Deterministic: same `randoms`, same bits out.
pub fn pathwise_greeks(
    kind: OptionType,
    s: f64,
    x: f64,
    t: f64,
    m: MarketParams,
    randoms: &[f64],
) -> McGreeks {
    let g = GbmTerminal::new(t, m);
    let disc = exp(-m.r * t);
    let sqrt_t = t.sqrt();
    let mut out = McGreeks::default();
    for &z in randoms {
        let st = s * exp(g.v_rt_t * z + g.mu_t);
        // dS_T/dσ = S_T·(√T·Z − σT).
        let dsig = st * (sqrt_t * z - m.sigma * t);
        let (d, v) = match kind {
            OptionType::Call if st > x => (st / s, dsig),
            OptionType::Put if st < x => (-st / s, -dsig),
            _ => (0.0, 0.0),
        };
        out.delta.push(disc * d);
        out.vega.push(disc * v);
    }
    out
}

fn vanilla(kind: OptionType, st: f64, x: f64) -> f64 {
    match kind {
        OptionType::Call => (st - x).max(0.0),
        OptionType::Put => (x - st).max(0.0),
    }
}

/// Central-difference delta with both legs on the same draws (CRN). The
/// per-path leg difference is accumulated directly, so [`McEstimate::std_error`]
/// reports the (collapsed) variance of the *difference*, not of either leg.
pub fn crn_fd_delta(
    kind: OptionType,
    s: f64,
    x: f64,
    t: f64,
    m: MarketParams,
    randoms: &[f64],
    rel_bump: f64,
) -> McEstimate {
    let g = GbmTerminal::new(t, m);
    let disc = exp(-m.r * t);
    let hs = rel_bump * s;
    let mut est = McEstimate::default();
    for &z in randoms {
        let growth = exp(g.v_rt_t * z + g.mu_t);
        let up = vanilla(kind, (s + hs) * growth, x);
        let dn = vanilla(kind, (s - hs) * growth, x);
        est.push(disc * (up - dn) / (2.0 * hs));
    }
    est
}

/// Central-difference vega with both legs on the same draws (CRN): each
/// path is re-grown under `σ·(1 ± h)` from the same normal.
pub fn crn_fd_vega(
    kind: OptionType,
    s: f64,
    x: f64,
    t: f64,
    m: MarketParams,
    randoms: &[f64],
    rel_bump: f64,
) -> McEstimate {
    let hv = rel_bump * m.sigma;
    let up = GbmTerminal::new(
        t,
        MarketParams {
            sigma: m.sigma + hv,
            ..m
        },
    );
    let dn = GbmTerminal::new(
        t,
        MarketParams {
            sigma: m.sigma - hv,
            ..m
        },
    );
    let disc = exp(-m.r * t);
    let mut est = McEstimate::default();
    for &z in randoms {
        let pu = vanilla(kind, s * exp(up.v_rt_t * z + up.mu_t), x);
        let pd = vanilla(kind, s * exp(dn.v_rt_t * z + dn.mu_t), x);
        est.push(disc * (pu - pd) / (2.0 * hv));
    }
    est
}

/// Normal draws from one named stream of the workspace RNG family — the
/// bit-reproducible CRN source every estimator leg shares.
pub fn crn_normals(family: &StreamFamily, stream_id: u64, n: usize) -> Vec<f64> {
    let mut rng = family.stream(stream_id);
    let mut buf = vec![0.0; n];
    fill_standard_normal_icdf(&mut rng, &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greeks::greeks;

    const M: MarketParams = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };

    fn draws(n: usize) -> Vec<f64> {
        crn_normals(&StreamFamily::new(42), 0, n)
    }

    #[test]
    fn pathwise_delta_and_vega_land_in_the_stat_band() {
        let randoms = draws(200_000);
        for kind in [OptionType::Call, OptionType::Put] {
            for (s, x, t) in [(100.0, 105.0, 1.0), (100.0, 90.0, 0.5)] {
                let est = pathwise_greeks(kind, s, x, t, M, &randoms);
                let want = greeks(kind, s, x, t, M);
                let d_err = (est.delta.mean() - want.delta).abs();
                let v_err = (est.vega.mean() - want.vega).abs();
                assert!(
                    d_err < 4.0 * est.delta.std_error().max(1e-4),
                    "{kind:?} delta {d_err} vs se {}",
                    est.delta.std_error()
                );
                assert!(
                    v_err < 4.0 * est.vega.std_error().max(1e-3),
                    "{kind:?} vega {v_err} vs se {}",
                    est.vega.std_error()
                );
            }
        }
    }

    #[test]
    fn crn_fd_agrees_with_analytic() {
        let randoms = draws(100_000);
        let (s, x, t) = (100.0, 100.0, 1.0);
        let want = greeks(OptionType::Call, s, x, t, M);
        let d = crn_fd_delta(OptionType::Call, s, x, t, M, &randoms, 1e-3);
        let v = crn_fd_vega(OptionType::Call, s, x, t, M, &randoms, 1e-3);
        assert!(
            (d.mean() - want.delta).abs() < 4.0 * d.std_error().max(1e-4),
            "delta {} vs {}",
            d.mean(),
            want.delta
        );
        assert!(
            (v.mean() - want.vega).abs() < 4.0 * v.std_error().max(1e-2),
            "vega {} vs {}",
            v.mean(),
            want.vega
        );
    }

    #[test]
    fn crn_collapses_the_difference_variance() {
        // The same central difference with *independent* legs: price each
        // leg on its own draws, so the path noise does not cancel.
        let a = draws(50_000);
        let b = crn_normals(&StreamFamily::new(42), 1, 50_000);
        let (s, x, t) = (100.0, 100.0, 1.0);
        let hs = 1e-3 * s;
        let disc = finbench_math::exp(-M.r * t);
        let g = GbmTerminal::new(t, M);
        let mut independent = McEstimate::default();
        for (&za, &zb) in a.iter().zip(&b) {
            let up = vanilla(
                OptionType::Call,
                (s + hs) * finbench_math::exp(g.v_rt_t * za + g.mu_t),
                x,
            );
            let dn = vanilla(
                OptionType::Call,
                (s - hs) * finbench_math::exp(g.v_rt_t * zb + g.mu_t),
                x,
            );
            independent.push(disc * (up - dn) / (2.0 * hs));
        }
        let crn = crn_fd_delta(OptionType::Call, s, x, t, M, &a, 1e-3);
        assert!(
            crn.std_error() * 20.0 < independent.std_error(),
            "CRN se {} should be far below independent se {}",
            crn.std_error(),
            independent.std_error()
        );
    }

    #[test]
    fn crn_estimates_are_bit_reproducible() {
        let a = draws(10_000);
        let b = draws(10_000);
        assert_eq!(a, b, "same family/stream must replay the same draws");
        let (s, x, t) = (100.0, 95.0, 2.0);
        let e1 = pathwise_greeks(OptionType::Call, s, x, t, M, &a);
        let e2 = pathwise_greeks(OptionType::Call, s, x, t, M, &b);
        assert_eq!(e1.delta.sum.to_bits(), e2.delta.sum.to_bits());
        assert_eq!(e1.vega.sum.to_bits(), e2.vega.sum.to_bits());
        let f1 = crn_fd_delta(OptionType::Call, s, x, t, M, &a, 1e-3);
        let f2 = crn_fd_delta(OptionType::Call, s, x, t, M, &b, 1e-3);
        assert_eq!(f1.sum.to_bits(), f2.sum.to_bits());
    }

    #[test]
    fn estimator_accumulator_statistics() {
        let mut e = McEstimate::default();
        for v in [1.0, 2.0, 3.0] {
            e.push(v);
        }
        assert_eq!(e.n, 3);
        assert!((e.mean() - 2.0).abs() < 1e-15);
        let merged = e.merge(McEstimate {
            sum: 4.0,
            sumsq: 16.0,
            n: 1,
        });
        assert_eq!(merged.n, 4);
        assert!((merged.mean() - 2.5).abs() < 1e-15);
        // All-equal samples: variance clamps to zero, not NaN.
        let mut flat = McEstimate::default();
        flat.push(5.0);
        flat.push(5.0);
        assert_eq!(flat.std_error(), 0.0);
    }
}
