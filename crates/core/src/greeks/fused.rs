//! Fused price + full-greeks sweep: call/put prices **and** all ten
//! sensitivities in one SOA pass over the batch.
//!
//! The separate servable passes ([`price_soa_simd`] then
//! [`greeks_batch_simd`]) each recompute the shared Black-Scholes
//! subexpressions and each stream `s/x/t` through the cache once. One
//! fused pass shares `ln(s/x)`, `√t`, the common denominator, `d1`, the
//! discount factor and `N(d1)` between the price and greeks formulas:
//! per block it runs 1 `vln` + 1 `sqrt` + 2 `vexp` + 6 `vnorm_cdf`
//! against the separate passes' 2 + 2 + 3 + 7, and reads the inputs
//! once instead of twice.
//!
//! **Equivalence contract.** Every output is bit-identical to the
//! separate passes (the engine rung declares `Check::BitExact`):
//!
//! * the price-path `d1 = (ln(s/x) + t·(r + σ²/2))/(σ√t)` and the
//!   greeks-path `d1 = (ln(s/x) + t·(r + 0.5·σ·σ))/(√t·σ)` round to the
//!   same bits — multiplying by 0.5 is exact and scaling by powers of
//!   two commutes with rounding, so `(σ·σ)·0.5` and `(0.5·σ)·σ` agree;
//! * the two passes' discount inputs `−(t·r)` and `t·(−r)` differ only
//!   by an exact sign flip, so one `vexp` serves both;
//! * `d2` genuinely differs between the passes — the price path derives
//!   it from the quotient log, the greeks path as `d1 − σ√t` — so the
//!   fused block computes **both** forms rather than pretending they
//!   round identically;
//! * the ragged tail mirrors each pass's own tail: scalar
//!   [`price_single`] for the prices and the width-1 lane block for the
//!   greeks (the vector math agrees with the scalar math only to ≤2 ulp,
//!   so a vector-width-1 price tail would *not* be bit-exact).
//!
//! [`price_soa_simd`]: crate::black_scholes::soa::price_soa_simd
//! [`greeks_batch_simd`]: super::greeks_batch_simd
//! [`price_single`]: crate::black_scholes::price_single

use super::GreeksBatchSoa;
use crate::workload::{MarketParams, OptionBatchSoa};
use finbench_simd::math::{vexp, vln, vnorm_cdf};
use finbench_simd::F64v;

/// One `W`-wide fused block at `offset`: prices into `batch.call/put`,
/// all ten greeks into `out`.
#[inline(always)]
fn fused_lane_block<const W: usize>(
    batch: &mut OptionBatchSoa,
    m: MarketParams,
    out: &mut GreeksBatchSoa,
    offset: usize,
) {
    let r = m.r;
    let sig = m.sigma;
    let sig22 = sig * sig * 0.5;
    let inv_sqrt_2pi = 1.0 / finbench_math::SQRT_2PI;

    let s = F64v::<W>::load(&batch.s, offset);
    let x = F64v::<W>::load(&batch.x, offset);
    let t = F64v::<W>::load(&batch.t, offset);

    // Shared between the price and greeks formulas.
    let qlog = vln(s / x);
    let sqrt_t = t.sqrt();
    let denom = 1.0 / (sqrt_t * sig);
    let d1 = (qlog + t * (r + sig22)) * denom;
    let disc = vexp(-(t * r));
    let x_disc = x * disc;
    let nd1 = vnorm_cdf(d1);

    // Price side: its own d2 derivation (see module docs).
    let d2p = (qlog + t * (r - sig22)) * denom;
    let call = s * nd1 - x_disc * vnorm_cdf(d2p);
    let put = x_disc * vnorm_cdf(-d2p) - s * vnorm_cdf(-d1);
    call.store(&mut batch.call, offset);
    put.store(&mut batch.put, offset);

    // Greeks side: d2 as the greeks pass computes it.
    let d2g = d1 - sqrt_t * sig;
    let pdf1 = vexp(d1 * d1 * -0.5) * inv_sqrt_2pi;
    let nd2 = vnorm_cdf(d2g);
    let nmd2 = vnorm_cdf(-d2g);
    let gamma = pdf1 / (s * sig * sqrt_t);
    let vega = s * pdf1 * sqrt_t;
    let theta_carry = (s * pdf1 * (sig * -0.5)) / sqrt_t;

    nd1.store(&mut out.call.delta, offset);
    (nd1 - 1.0).store(&mut out.put.delta, offset);
    gamma.store(&mut out.call.gamma, offset);
    gamma.store(&mut out.put.gamma, offset);
    vega.store(&mut out.call.vega, offset);
    vega.store(&mut out.put.vega, offset);
    (theta_carry - x_disc * nd2 * r).store(&mut out.call.theta, offset);
    (theta_carry + x_disc * nmd2 * r).store(&mut out.put.theta, offset);
    (x_disc * nd2 * t).store(&mut out.call.rho, offset);
    (-(x_disc * nmd2 * t)).store(&mut out.put.rho, offset);
}

/// Price **and** risk the whole batch in one SOA pass: call/put prices
/// into `batch.call`/`batch.put`, all five greeks for both sides into
/// the caller-owned `out`. Allocation-free; bit-identical to running
/// [`price_soa_simd::<W>`] and [`greeks_batch_simd::<W>`] separately,
/// for every `W` and every batch length.
///
/// Break-even: fusing pays off once the batch no longer fits in L1/L2
/// (one input sweep instead of two); below a few thousand options the
/// separate passes are just as fast, so the serve ladder keeps them as
/// the degradation fallback rather than replacing them.
///
/// [`price_soa_simd::<W>`]: crate::black_scholes::soa::price_soa_simd
/// [`greeks_batch_simd::<W>`]: super::greeks_batch_simd
pub fn price_and_greeks_into<const W: usize>(
    batch: &mut OptionBatchSoa,
    m: MarketParams,
    out: &mut GreeksBatchSoa,
) {
    let n = batch.len();
    assert!(out.len() == n, "output sweep must match the batch");
    let main = n - n % W;
    let mut i = 0;
    while i < main {
        fused_lane_block::<W>(batch, m, out, i);
        i += W;
    }
    for j in main..n {
        let (c, p) = crate::black_scholes::price_single(batch.s[j], batch.x[j], batch.t[j], m);
        batch.call[j] = c;
        batch.put[j] = p;
        super::greeks_lane_block::<1>(batch, m, out, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::black_scholes::soa::price_soa_simd;
    use crate::greeks::greeks_batch_simd;
    use crate::workload::WorkloadRanges;

    const M: MarketParams = MarketParams {
        r: 0.05,
        sigma: 0.2,
    };

    fn assert_bits(a: &[f64], b: &[f64], label: &str) {
        assert_eq!(a.len(), b.len(), "{label} length");
        for i in 0..a.len() {
            assert_eq!(
                a[i].to_bits(),
                b[i].to_bits(),
                "{label} element {i}: {} vs {}",
                a[i],
                b[i]
            );
        }
    }

    fn assert_sweep_bits(a: &GreeksBatchSoa, b: &GreeksBatchSoa) {
        for (side_a, side_b, side) in [(&a.call, &b.call, "call"), (&a.put, &b.put, "put")] {
            assert_bits(&side_a.delta, &side_b.delta, &format!("{side} delta"));
            assert_bits(&side_a.gamma, &side_b.gamma, &format!("{side} gamma"));
            assert_bits(&side_a.vega, &side_b.vega, &format!("{side} vega"));
            assert_bits(&side_a.theta, &side_b.theta, &format!("{side} theta"));
            assert_bits(&side_a.rho, &side_b.rho, &format!("{side} rho"));
        }
    }

    fn check_against_separate_passes<const W: usize>(n: usize, seed: u64) {
        let base = OptionBatchSoa::random(n, seed, WorkloadRanges::default());

        let mut fused_batch = base.clone();
        let mut fused_out = GreeksBatchSoa::zeroed(n);
        price_and_greeks_into::<W>(&mut fused_batch, M, &mut fused_out);

        let mut price_batch = base.clone();
        price_soa_simd::<W>(&mut price_batch, M);
        let mut greeks_out = GreeksBatchSoa::zeroed(n);
        greeks_batch_simd::<W>(&base, M, &mut greeks_out);

        assert_bits(&fused_batch.call, &price_batch.call, "call price");
        assert_bits(&fused_batch.put, &price_batch.put, "put price");
        assert_sweep_bits(&fused_out, &greeks_out);
    }

    #[test]
    fn fused_matches_separate_passes_bitwise_w8() {
        // Ragged lengths so both the main loop and the tail are covered.
        for n in [0, 1, 7, 8, 64, 123] {
            check_against_separate_passes::<8>(n, 21 + n as u64);
        }
    }

    #[test]
    fn fused_matches_separate_passes_bitwise_w4() {
        for n in [3, 4, 37, 100] {
            check_against_separate_passes::<4>(n, 5 + n as u64);
        }
    }

    #[test]
    fn fused_matches_separate_passes_bitwise_w1() {
        for n in [1, 17] {
            check_against_separate_passes::<1>(n, n as u64);
        }
    }

    #[test]
    fn fused_is_bit_identical_across_widths() {
        // 37 is not a multiple of either width: tails must agree too.
        let base = OptionBatchSoa::random(37, 11, WorkloadRanges::default());
        let mut b1 = base.clone();
        let mut b8 = base.clone();
        let mut o1 = GreeksBatchSoa::zeroed(37);
        let mut o8 = GreeksBatchSoa::zeroed(37);
        price_and_greeks_into::<1>(&mut b1, M, &mut o1);
        price_and_greeks_into::<8>(&mut b8, M, &mut o8);
        assert_bits(&b1.call, &b8.call, "call price");
        assert_bits(&b1.put, &b8.put, "put price");
        assert_sweep_bits(&o1, &o8);
    }

    #[test]
    #[should_panic(expected = "output sweep must match")]
    fn fused_rejects_short_outputs() {
        let mut b = OptionBatchSoa::random(8, 1, WorkloadRanges::default());
        let mut out = GreeksBatchSoa::zeroed(4);
        price_and_greeks_into::<8>(&mut b, M, &mut out);
    }
}
